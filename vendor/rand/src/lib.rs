//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the small slice of the rand 0.8 API surface the workspace
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 — statistically solid for test-data and
//! workload initialisation, fully deterministic per seed, and trivially
//! portable. It is **not** cryptographically secure (neither is rand's
//! `StdRng` contractually; nothing here relies on it).

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from the "standard" distribution (uniform on the type's
/// natural unit domain), mirroring `rand::distributions::Standard`.
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// A range that knows how to sample a uniform value from itself,
/// mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                self.start.wrapping_add(r as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 128-bit-spanning type.
                    return rng.next_u64() as $t;
                }
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                lo.wrapping_add(r as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                let x = self.start + unit * (self.end - self.start);
                // `unit` < 1 but the affine map can still round up to
                // `end`; enforce the half-open [start, end) contract.
                if x < self.end {
                    x
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl StdRng {
        /// The full internal state (SplitMix64 is a single counter-like
        /// word). Together with [`StdRng::from_state`] this lets callers
        /// checkpoint and resume a stream mid-sequence — `from_state(s)`
        /// continues exactly where the `state() == s` generator was,
        /// which `seed_from_u64` (a *fresh* stream) does not.
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Rebuilds a generator mid-stream from a value captured with
        /// [`StdRng::state`].
        pub fn from_state(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): passes BigCrush, one add +
            // two xor-shift-multiply rounds per output.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn state_round_trip_resumes_mid_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&y));
            let z = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&z));
        }
    }

    #[test]
    fn tiny_float_range_never_yields_end() {
        // Regression: with end this close to start, rounding in
        // start + unit*(end-start) can land exactly on `end`.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100_000 {
            let x = rng.gen_range(1.0e-6f64..2.0e-6);
            assert!((1.0e-6..2.0e-6).contains(&x), "got {x:e}");
        }
    }

    #[test]
    fn unit_float_in_half_open_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Mean of U[0,1) over 10k samples is ~0.5 within a few sigma.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }
}
