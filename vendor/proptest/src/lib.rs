//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering the subset of its API this workspace's property tests
//! use: the [`proptest!`] macro with `|(binding in strategy, ...)| { .. }`
//! syntax, [`ProptestConfig::with_cases`], range and tuple strategies,
//! `prop::collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberate for an offline build:
//!
//! * **No shrinking.** A failing case reports the concrete generated
//!   inputs so it can be replayed by hand, but is not minimised.
//! * **Deterministic seeding.** Every `proptest!` run derives its RNG
//!   stream from a fixed seed plus the case index, so CI failures
//!   reproduce locally without a persistence file.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Error carried out of a failing property body by the `prop_assert*`
/// macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Subset of `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; keep parity so un-configured
        // properties get comparable coverage.
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies. Wraps the vendored `rand` shim so the
/// whole workspace shares one generator implementation.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic stream for a given property (identified by its
    /// source location salt) and case index.
    pub fn for_case(salt: u64, case: u64) -> Self {
        // Golden-ratio spacing decorrelates per-case streams; the salt
        // decorrelates distinct properties so two tests with the same
        // strategy shape do not replay identical inputs.
        TestRng {
            inner: StdRng::seed_from_u64(
                salt ^ 0xC0FF_EE00_D15E_A5E5 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
        }
    }
}

/// FNV-1a hash of a property's source location, used to give every
/// `proptest!` call site its own input stream (still fully deterministic
/// across runs — failures replay without a persistence file).
#[doc(hidden)]
pub fn location_salt(file: &str, line: u32, column: u32) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in file.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    for b in line.to_le_bytes().iter().chain(column.to_le_bytes().iter()) {
        h = (h ^ *b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy` minus
/// shrinking: `generate` produces one random value.
pub trait Strategy {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// `proptest::collection` subset.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` path used inside `proptest!` bodies
/// (`prop::collection::vec(..)` etc.).
pub mod prop {
    pub use crate::collection;
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Fail the current property case unless `cond` holds. Usable only
/// inside a `proptest!` body (expands to an early `return Err(..)`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current property case unless the two operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fail the current property case if the two operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Run a property: `proptest!(|(x in 0usize..10, v in vec(..))| { .. })`,
/// optionally with a leading [`ProptestConfig`] argument.
///
/// Binding names must be plain identifiers (all uses in this workspace
/// are). Strategies may be arbitrary expressions; a comma at paren
/// nesting depth 0 separates bindings, exactly like real proptest.
#[macro_export]
macro_rules! proptest {
    // The closure-only arm must come first: a leading `$config:expr`
    // fragment would otherwise abort while trying to parse
    // `|(x in ..)| {..}` as an expression instead of falling through.
    (|($($bindings:tt)*)| $body:block) => {
        $crate::__proptest_parse!(@parse ($crate::ProptestConfig::default()); $body; []; $($bindings)*)
    };
    ($config:expr, |($($bindings:tt)*)| $body:block) => {
        $crate::__proptest_parse!(@parse ($config); $body; []; $($bindings)*)
    };
}

/// Internal tt-muncher for [`proptest!`]: splits `name in strategy` pairs
/// on top-level commas, then expands the runner loop.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_parse {
    // All bindings consumed -> expand the runner.
    (@parse $cfg:tt; $body:block; [$($done:tt)*];) => {
        $crate::__proptest_parse!(@run $cfg; $body; [$($done)*])
    };
    // Start of one binding: `name in ...`.
    (@parse $cfg:tt; $body:block; [$($done:tt)*]; $name:ident in $($rest:tt)*) => {
        $crate::__proptest_parse!(@strat $cfg; $body; [$($done)*]; $name; []; $($rest)*)
    };
    // Top-level comma ends the strategy expression for `$name`.
    (@strat $cfg:tt; $body:block; [$($done:tt)*]; $name:ident; [$($acc:tt)*]; , $($rest:tt)*) => {
        $crate::__proptest_parse!(@parse $cfg; $body; [$($done)* ($name; $($acc)*)]; $($rest)*)
    };
    // End of input also ends the strategy expression.
    (@strat $cfg:tt; $body:block; [$($done:tt)*]; $name:ident; [$($acc:tt)*];) => {
        $crate::__proptest_parse!(@parse $cfg; $body; [$($done)* ($name; $($acc)*)];)
    };
    // Any other token belongs to the strategy expression.
    (@strat $cfg:tt; $body:block; [$($done:tt)*]; $name:ident; [$($acc:tt)*]; $tok:tt $($rest:tt)*) => {
        $crate::__proptest_parse!(@strat $cfg; $body; [$($done)*]; $name; [$($acc)* $tok]; $($rest)*)
    };
    // Runner: N cases, fresh deterministic RNG per case, body runs in a
    // Result-returning closure so `prop_assert*` can early-return.
    (@run ($cfg:expr); $body:block; [$(($name:ident; $($strat:tt)*))*]) => {{
        let __cfg: $crate::ProptestConfig = $cfg;
        let __salt = $crate::location_salt(file!(), line!(), column!());
        for __case in 0..__cfg.cases {
            let mut __rng = $crate::TestRng::for_case(__salt, __case as u64);
            $(let $name = $crate::Strategy::generate(&($($strat)*), &mut __rng);)*
            let __result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                $body
                ::core::result::Result::Ok(())
            })();
            if let ::core::result::Result::Err(__err) = __result {
                panic!(
                    "proptest case {}/{} failed: {}\n  inputs:{}",
                    __case + 1,
                    __cfg.cases,
                    __err,
                    String::new() $(+ &format!("\n    {} = {:?}", stringify!($name), $name))*,
                );
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        proptest!(ProptestConfig::with_cases(64), |(
            x in 1usize..10,
            y in 0.0f64..1.0,
            pair in (0u8..3, 5usize..=7),
            v in prop::collection::vec(0usize..4, 0..20),
        )| {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!(pair.0 < 3);
            prop_assert!((5..=7).contains(&pair.1));
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 4));
        });
    }

    #[test]
    fn no_trailing_comma_single_binding_parses() {
        proptest!(|(keys in prop::collection::vec(0usize..32, 0..50))| {
            prop_assert!(keys.len() < 50);
        });
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest!(ProptestConfig::with_cases(8), |(x in 0usize..10)| {
            prop_assert!(x > 100, "x was {}", x);
        });
    }

    #[test]
    fn prop_assert_eq_reports_both_sides() {
        proptest!(ProptestConfig::with_cases(4), |(x in 3usize..4)| {
            prop_assert_eq!(x, 3);
            prop_assert_ne!(x, 4);
        });
    }
}
