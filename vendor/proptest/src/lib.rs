//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering the subset of its API this workspace's property tests
//! use: the [`proptest!`] macro with `|(binding in strategy, ...)| { .. }`
//! syntax, [`ProptestConfig::with_cases`], range and tuple strategies,
//! `prop::collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberate for an offline build:
//!
//! * **No shrinking.** A failing case reports the concrete generated
//!   inputs so it can be replayed by hand, but is not minimised.
//! * **Deterministic seeding.** Every `proptest!` run derives its RNG
//!   stream from a fixed seed plus the case index, so CI failures
//!   reproduce locally without a persistence file.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Error carried out of a failing property body by the `prop_assert*`
/// macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Subset of `proptest::test_runner::Config`, plus the corpus hook
/// (the stand-in's replacement for real proptest's failure
/// persistence).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// When set, the runner replays every seed committed under
    /// `<corpus dir>/<name>.seeds` before the random cases, and appends
    /// the seed of any failing random case to that file. The corpus
    /// directory is `$MPIC_CORPUS_DIR`, defaulting to `tests/corpus/`
    /// under the invoking crate's manifest.
    pub corpus_name: Option<&'static str>,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            corpus_name: None,
        }
    }

    /// Enables seed persistence/replay for this property under `name`.
    pub fn with_corpus(mut self, name: &'static str) -> Self {
        self.corpus_name = Some(name);
        self
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; keep parity so un-configured
        // properties get comparable coverage.
        ProptestConfig::with_cases(256)
    }
}

/// The RNG handed to strategies. Wraps the vendored `rand` shim so the
/// whole workspace shares one generator implementation.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic stream for a given property (identified by its
    /// source location salt) and case index.
    pub fn for_case(salt: u64, case: u64) -> Self {
        TestRng::from_seed_value(case_seed(salt, case))
    }

    /// Stream for an explicit seed — the replay path for corpus entries,
    /// which must keep generating the same inputs even when the
    /// property's source location (and thus its salt) moves.
    pub fn from_seed_value(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

/// The seed a property's `case`-th random input stream is derived from.
/// Golden-ratio spacing decorrelates per-case streams; the salt
/// decorrelates distinct properties so two tests with the same strategy
/// shape do not replay identical inputs.
pub fn case_seed(salt: u64, case: u64) -> u64 {
    salt ^ 0xC0FF_EE00_D15E_A5E5 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Seed-file persistence: the offline stand-in for real proptest's
/// failure persistence. A corpus file (`<name>.seeds`) holds one hex
/// seed per line (`#` comments allowed); committed files are replayed at
/// the start of every run of the property, and newly failing seeds are
/// appended so a CI failure becomes a permanent regression input.
pub mod corpus {
    use std::fs;
    use std::io::Write;
    use std::path::{Path, PathBuf};

    /// Path of the seed file for property `name` under `dir`.
    pub fn seed_file(dir: &Path, name: &str) -> PathBuf {
        dir.join(format!("{name}.seeds"))
    }

    /// Loads the committed seeds for `name`; a missing file is an empty
    /// corpus, a malformed line is skipped (a corrupt corpus must never
    /// turn the replay pass itself into the failure).
    pub fn load(dir: &Path, name: &str) -> Vec<u64> {
        let Ok(text) = fs::read_to_string(seed_file(dir, name)) else {
            return Vec::new();
        };
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|l| {
                let l = l.strip_prefix("0x").unwrap_or(l);
                u64::from_str_radix(l, 16).ok()
            })
            .collect()
    }

    /// Appends a failing seed to `name`'s corpus file (creating the
    /// directory and file as needed); returns the path written, or
    /// `None` if persistence failed — best-effort, the panic that
    /// reports the failure carries the seed either way.
    pub fn record(dir: &Path, name: &str, seed: u64) -> Option<PathBuf> {
        fs::create_dir_all(dir).ok()?;
        let path = seed_file(dir, name);
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .ok()?;
        writeln!(f, "0x{seed:016x}").ok()?;
        Some(path)
    }
}

/// FNV-1a hash of a property's source location, used to give every
/// `proptest!` call site its own input stream (still fully deterministic
/// across runs — failures replay without a persistence file).
#[doc(hidden)]
pub fn location_salt(file: &str, line: u32, column: u32) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in file.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    for b in line.to_le_bytes().iter().chain(column.to_le_bytes().iter()) {
        h = (h ^ *b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy` minus
/// shrinking: `generate` produces one random value.
pub trait Strategy {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// `proptest::collection` subset.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` path used inside `proptest!` bodies
/// (`prop::collection::vec(..)` etc.).
pub mod prop {
    pub use crate::collection;
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Fail the current property case unless `cond` holds. Usable only
/// inside a `proptest!` body (expands to an early `return Err(..)`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current property case unless the two operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fail the current property case if the two operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Run a property: `proptest!(|(x in 0usize..10, v in vec(..))| { .. })`,
/// optionally with a leading [`ProptestConfig`] argument.
///
/// Binding names must be plain identifiers (all uses in this workspace
/// are). Strategies may be arbitrary expressions; a comma at paren
/// nesting depth 0 separates bindings, exactly like real proptest.
#[macro_export]
macro_rules! proptest {
    // The closure-only arm must come first: a leading `$config:expr`
    // fragment would otherwise abort while trying to parse
    // `|(x in ..)| {..}` as an expression instead of falling through.
    (|($($bindings:tt)*)| $body:block) => {
        $crate::__proptest_parse!(@parse ($crate::ProptestConfig::default()); $body; []; $($bindings)*)
    };
    ($config:expr, |($($bindings:tt)*)| $body:block) => {
        $crate::__proptest_parse!(@parse ($config); $body; []; $($bindings)*)
    };
}

/// Internal tt-muncher for [`proptest!`]: splits `name in strategy` pairs
/// on top-level commas, then expands the runner loop.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_parse {
    // All bindings consumed -> expand the runner.
    (@parse $cfg:tt; $body:block; [$($done:tt)*];) => {
        $crate::__proptest_parse!(@run $cfg; $body; [$($done)*])
    };
    // Start of one binding: `name in ...`.
    (@parse $cfg:tt; $body:block; [$($done:tt)*]; $name:ident in $($rest:tt)*) => {
        $crate::__proptest_parse!(@strat $cfg; $body; [$($done)*]; $name; []; $($rest)*)
    };
    // Top-level comma ends the strategy expression for `$name`.
    (@strat $cfg:tt; $body:block; [$($done:tt)*]; $name:ident; [$($acc:tt)*]; , $($rest:tt)*) => {
        $crate::__proptest_parse!(@parse $cfg; $body; [$($done)* ($name; $($acc)*)]; $($rest)*)
    };
    // End of input also ends the strategy expression.
    (@strat $cfg:tt; $body:block; [$($done:tt)*]; $name:ident; [$($acc:tt)*];) => {
        $crate::__proptest_parse!(@parse $cfg; $body; [$($done)* ($name; $($acc)*)];)
    };
    // Any other token belongs to the strategy expression.
    (@strat $cfg:tt; $body:block; [$($done:tt)*]; $name:ident; [$($acc:tt)*]; $tok:tt $($rest:tt)*) => {
        $crate::__proptest_parse!(@strat $cfg; $body; [$($done)*]; $name; [$($acc)* $tok]; $($rest)*)
    };
    // Runner: committed corpus seeds first, then N random cases, a
    // fresh deterministic RNG per case; the body runs in a
    // Result-returning closure so `prop_assert*` can early-return. A
    // failing random case is appended to the corpus (when one is
    // configured) so it replays on every future run.
    (@run ($cfg:expr); $body:block; [$(($name:ident; $($strat:tt)*))*]) => {{
        let __cfg: $crate::ProptestConfig = $cfg;
        let __salt = $crate::location_salt(file!(), line!(), column!());
        // `env!` expands in the invoking crate, so the default corpus
        // lives beside that crate's own tests.
        let __corpus_dir = ::std::path::PathBuf::from(
            ::std::env::var("MPIC_CORPUS_DIR")
                .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus").into()),
        );
        let __replay: ::std::vec::Vec<u64> = match __cfg.corpus_name {
            ::core::option::Option::Some(__n) => $crate::corpus::load(&__corpus_dir, __n),
            ::core::option::Option::None => ::std::vec::Vec::new(),
        };
        let __n_replay = __replay.len();
        let __seeds = __replay
            .into_iter()
            .map(|s| (s, true))
            .chain((0..__cfg.cases).map(|c| ($crate::case_seed(__salt, c as u64), false)));
        for (__i, (__seed, __from_corpus)) in __seeds.enumerate() {
            let mut __rng = $crate::TestRng::from_seed_value(__seed);
            $(let $name = $crate::Strategy::generate(&($($strat)*), &mut __rng);)*
            let __result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                $body
                ::core::result::Result::Ok(())
            })();
            if let ::core::result::Result::Err(__err) = __result {
                let __saved = match (__from_corpus, __cfg.corpus_name) {
                    (false, ::core::option::Option::Some(__n)) => {
                        $crate::corpus::record(&__corpus_dir, __n, __seed)
                    }
                    _ => ::core::option::Option::None,
                };
                panic!(
                    "proptest {} case {}/{} (seed 0x{:016x}) failed: {}\n  inputs:{}{}",
                    if __from_corpus { "corpus" } else { "random" },
                    __i + 1,
                    __n_replay + __cfg.cases as usize,
                    __seed,
                    __err,
                    String::new() $(+ &format!("\n    {} = {:?}", stringify!($name), $name))*,
                    match __saved {
                        ::core::option::Option::Some(p) =>
                            format!("\n  seed persisted to {}", p.display()),
                        ::core::option::Option::None => String::new(),
                    },
                );
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        proptest!(ProptestConfig::with_cases(64), |(
            x in 1usize..10,
            y in 0.0f64..1.0,
            pair in (0u8..3, 5usize..=7),
            v in prop::collection::vec(0usize..4, 0..20),
        )| {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!(pair.0 < 3);
            prop_assert!((5..=7).contains(&pair.1));
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 4));
        });
    }

    #[test]
    fn no_trailing_comma_single_binding_parses() {
        proptest!(|(keys in prop::collection::vec(0usize..32, 0..50))| {
            prop_assert!(keys.len() < 50);
        });
    }

    #[test]
    #[should_panic(expected = "proptest random case")]
    fn failing_property_panics_with_inputs() {
        proptest!(ProptestConfig::with_cases(8), |(x in 0usize..10)| {
            prop_assert!(x > 100, "x was {}", x);
        });
    }

    #[test]
    fn prop_assert_eq_reports_both_sides() {
        proptest!(ProptestConfig::with_cases(4), |(x in 3usize..4)| {
            prop_assert_eq!(x, 3);
            prop_assert_ne!(x, 4);
        });
    }

    #[test]
    fn corpus_record_then_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("mpic-corpus-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(crate::corpus::load(&dir, "missing").is_empty());
        let p1 = crate::corpus::record(&dir, "prop", 0xdead_beef).expect("record");
        let p2 = crate::corpus::record(&dir, "prop", 0x1234).expect("record");
        assert_eq!(p1, p2);
        assert_eq!(crate::corpus::load(&dir, "prop"), vec![0xdead_beef, 0x1234]);
        // Comments and malformed lines are skipped, bare hex accepted.
        std::fs::write(
            crate::corpus::seed_file(&dir, "hand"),
            "# regression seeds\n0x10\n\nnot-a-seed\n20\n",
        )
        .unwrap();
        assert_eq!(crate::corpus::load(&dir, "hand"), vec![0x10, 0x20]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_seeds_replay_before_random_cases() {
        // Same seed -> same generated inputs, whether it arrives via the
        // corpus replay path or the random case derivation.
        let seed = crate::case_seed(crate::location_salt("x.rs", 1, 1), 3);
        let gen = |mut rng: crate::TestRng| {
            crate::Strategy::generate(&crate::collection::vec(0usize..100, 1..40), &mut rng)
        };
        let a = gen(crate::TestRng::from_seed_value(seed));
        let b = gen(crate::TestRng::for_case(
            crate::location_salt("x.rs", 1, 1),
            3,
        ));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest corpus case")]
    fn failing_corpus_seed_is_reported_as_corpus_replay() {
        let dir = std::env::temp_dir().join(format!("mpic-corpus-replay-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        crate::corpus::record(&dir, "always_fails", 0x42).unwrap();
        std::env::set_var("MPIC_CORPUS_DIR", &dir);
        let result = std::panic::catch_unwind(|| {
            proptest!(
                ProptestConfig::with_cases(0).with_corpus("always_fails"),
                |(x in 0usize..10)| {
                    prop_assert!(x > 100, "x was {}", x);
                }
            );
        });
        std::env::remove_var("MPIC_CORPUS_DIR");
        let _ = std::fs::remove_dir_all(&dir);
        if let Err(p) = result {
            std::panic::resume_unwind(p);
        }
    }
}
