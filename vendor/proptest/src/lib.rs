//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering the subset of its API this workspace's property tests
//! use: the [`proptest!`] macro with `|(binding in strategy, ...)| { .. }`
//! syntax, [`ProptestConfig::with_cases`], range and tuple strategies,
//! `prop::collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberate for an offline build:
//!
//! * **No shrinking.** A failing case reports the concrete generated
//!   inputs so it can be replayed by hand, but is not minimised.
//! * **Deterministic seeding.** Every `proptest!` run derives its RNG
//!   stream from a fixed seed plus the case index, so CI failures
//!   reproduce locally without a persistence file.
//! * **Fuzz-lite mutation stage.** When a property has a corpus, every
//!   committed seed is replayed *and* a deterministic set of byte-level
//!   mutants of each seed runs before the random cases (see
//!   [`corpus::mutants`]) — regressions get their input neighbourhood
//!   probed on every run, not just the exact recorded seed.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Error carried out of a failing property body by the `prop_assert*`
/// macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Subset of `proptest::test_runner::Config`, plus the corpus hook
/// (the stand-in's replacement for real proptest's failure
/// persistence).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// When set, the runner replays every seed committed under
    /// `<corpus dir>/<name>.seeds` before the random cases, and appends
    /// the seed of any failing non-corpus case to that file. The corpus
    /// directory is `$MPIC_CORPUS_DIR`, defaulting to `tests/corpus/`
    /// under the invoking crate's manifest.
    pub corpus_name: Option<&'static str>,
    /// Fuzz-lite mutation stage: how many deterministic byte-level
    /// mutants of each corpus seed to run between the corpus replay and
    /// the random cases (see [`corpus::mutants`]). `None` derives the
    /// count from `cases` via [`default_mutants`], so a
    /// `MPIC_FUZZ_ITERS`-inflated case budget widens the mutation
    /// neighbourhood too.
    pub mutants_per_seed: Option<u32>,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            corpus_name: None,
            mutants_per_seed: None,
        }
    }

    /// Enables seed persistence/replay for this property under `name`.
    pub fn with_corpus(mut self, name: &'static str) -> Self {
        self.corpus_name = Some(name);
        self
    }

    /// Overrides the per-corpus-seed mutant count (default: scaled from
    /// `cases` by [`default_mutants`]).
    pub fn with_mutants(mut self, k: u32) -> Self {
        self.mutants_per_seed = Some(k);
        self
    }
}

/// Mutants derived per corpus seed when [`ProptestConfig::mutants_per_seed`]
/// is unset: scales with the case budget (and therefore with
/// `MPIC_FUZZ_ITERS` in the fuzz-lite harnesses, which feed that env var
/// into `cases`) but stays bounded so a large sweep never turns the
/// replay stage into the dominant cost.
pub fn default_mutants(cases: u32) -> u32 {
    (cases / 16).clamp(2, 64)
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; keep parity so un-configured
        // properties get comparable coverage.
        ProptestConfig::with_cases(256)
    }
}

/// The RNG handed to strategies. Wraps the vendored `rand` shim so the
/// whole workspace shares one generator implementation.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic stream for a given property (identified by its
    /// source location salt) and case index.
    pub fn for_case(salt: u64, case: u64) -> Self {
        TestRng::from_seed_value(case_seed(salt, case))
    }

    /// Stream for an explicit seed — the replay path for corpus entries,
    /// which must keep generating the same inputs even when the
    /// property's source location (and thus its salt) moves.
    pub fn from_seed_value(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

/// The seed a property's `case`-th random input stream is derived from.
/// Golden-ratio spacing decorrelates per-case streams; the salt
/// decorrelates distinct properties so two tests with the same strategy
/// shape do not replay identical inputs.
pub fn case_seed(salt: u64, case: u64) -> u64 {
    salt ^ 0xC0FF_EE00_D15E_A5E5 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Seed-file persistence: the offline stand-in for real proptest's
/// failure persistence. A corpus file (`<name>.seeds`) holds one hex
/// seed per line (`#` comments allowed); committed files are replayed at
/// the start of every run of the property, then [`mutants`] of each
/// committed seed probe the neighbourhood of the regression, and newly
/// failing seeds are appended so a CI failure becomes a permanent
/// regression input.
pub mod corpus {
    use std::fs;
    use std::io::Write;
    use std::path::{Path, PathBuf};

    /// Path of the seed file for property `name` under `dir`.
    pub fn seed_file(dir: &Path, name: &str) -> PathBuf {
        dir.join(format!("{name}.seeds"))
    }

    /// Loads the committed seeds for `name`; a missing file is an empty
    /// corpus, a malformed line is skipped (a corrupt corpus must never
    /// turn the replay pass itself into the failure).
    pub fn load(dir: &Path, name: &str) -> Vec<u64> {
        let Ok(text) = fs::read_to_string(seed_file(dir, name)) else {
            return Vec::new();
        };
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|l| {
                let l = l.strip_prefix("0x").unwrap_or(l);
                u64::from_str_radix(l, 16).ok()
            })
            .collect()
    }

    /// Appends a failing seed to `name`'s corpus file (creating the
    /// directory and file as needed); returns the path written, or
    /// `None` if persistence failed — best-effort, the panic that
    /// reports the failure carries the seed either way.
    pub fn record(dir: &Path, name: &str, seed: u64) -> Option<PathBuf> {
        fs::create_dir_all(dir).ok()?;
        let path = seed_file(dir, name);
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .ok()?;
        writeln!(f, "0x{seed:016x}").ok()?;
        Some(path)
    }

    /// One step of the splitmix64 generator — the small, dependency-free
    /// stream the mutation stage draws its perturbations from.
    pub fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// `k` deterministic byte-level mutants of a corpus `seed`: each
    /// mutant xors exactly one byte of the seed with a nonzero
    /// splitmix64-derived value, exploring the neighbourhood of a known
    /// regression input. The stream is seeded from the corpus seed
    /// itself, so the mutant set is a pure function of `(seed, k)` and
    /// replays identically run to run — a failing mutant is as
    /// reproducible as the corpus entry it came from.
    pub fn mutants(seed: u64, k: usize) -> Vec<u64> {
        let mut state = seed ^ 0xA076_1D64_78BD_642F;
        (0..k)
            .map(|_| {
                let r = splitmix64(&mut state);
                let byte = (r % 8) as u32;
                // Force the low bit so the xor byte is nonzero: every
                // mutant genuinely differs from its base seed.
                let xor = ((r >> 8) & 0xFF) | 1;
                seed ^ (xor << (byte * 8))
            })
            .collect()
    }
}

/// FNV-1a hash of a property's source location, used to give every
/// `proptest!` call site its own input stream (still fully deterministic
/// across runs — failures replay without a persistence file).
#[doc(hidden)]
pub fn location_salt(file: &str, line: u32, column: u32) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in file.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    for b in line.to_le_bytes().iter().chain(column.to_le_bytes().iter()) {
        h = (h ^ *b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy` minus
/// shrinking: `generate` produces one random value.
pub trait Strategy {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// `proptest::collection` subset.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` path used inside `proptest!` bodies
/// (`prop::collection::vec(..)` etc.).
pub mod prop {
    pub use crate::collection;
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Fail the current property case unless `cond` holds. Usable only
/// inside a `proptest!` body (expands to an early `return Err(..)`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current property case unless the two operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fail the current property case if the two operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Run a property: `proptest!(|(x in 0usize..10, v in vec(..))| { .. })`,
/// optionally with a leading [`ProptestConfig`] argument.
///
/// Binding names must be plain identifiers (all uses in this workspace
/// are). Strategies may be arbitrary expressions; a comma at paren
/// nesting depth 0 separates bindings, exactly like real proptest.
#[macro_export]
macro_rules! proptest {
    // The closure-only arm must come first: a leading `$config:expr`
    // fragment would otherwise abort while trying to parse
    // `|(x in ..)| {..}` as an expression instead of falling through.
    (|($($bindings:tt)*)| $body:block) => {
        $crate::__proptest_parse!(@parse ($crate::ProptestConfig::default()); $body; []; $($bindings)*)
    };
    ($config:expr, |($($bindings:tt)*)| $body:block) => {
        $crate::__proptest_parse!(@parse ($config); $body; []; $($bindings)*)
    };
}

/// Internal tt-muncher for [`proptest!`]: splits `name in strategy` pairs
/// on top-level commas, then expands the runner loop.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_parse {
    // All bindings consumed -> expand the runner.
    (@parse $cfg:tt; $body:block; [$($done:tt)*];) => {
        $crate::__proptest_parse!(@run $cfg; $body; [$($done)*])
    };
    // Start of one binding: `name in ...`.
    (@parse $cfg:tt; $body:block; [$($done:tt)*]; $name:ident in $($rest:tt)*) => {
        $crate::__proptest_parse!(@strat $cfg; $body; [$($done)*]; $name; []; $($rest)*)
    };
    // Top-level comma ends the strategy expression for `$name`.
    (@strat $cfg:tt; $body:block; [$($done:tt)*]; $name:ident; [$($acc:tt)*]; , $($rest:tt)*) => {
        $crate::__proptest_parse!(@parse $cfg; $body; [$($done)* ($name; $($acc)*)]; $($rest)*)
    };
    // End of input also ends the strategy expression.
    (@strat $cfg:tt; $body:block; [$($done:tt)*]; $name:ident; [$($acc:tt)*];) => {
        $crate::__proptest_parse!(@parse $cfg; $body; [$($done)* ($name; $($acc)*)];)
    };
    // Any other token belongs to the strategy expression.
    (@strat $cfg:tt; $body:block; [$($done:tt)*]; $name:ident; [$($acc:tt)*]; $tok:tt $($rest:tt)*) => {
        $crate::__proptest_parse!(@strat $cfg; $body; [$($done)*]; $name; [$($acc)* $tok]; $($rest)*)
    };
    // Runner: committed corpus seeds first, then the fuzz-lite mutation
    // stage (deterministic byte-level mutants of each corpus seed), then
    // N random cases — a fresh deterministic RNG per case; the body runs
    // in a Result-returning closure so `prop_assert*` can early-return.
    // A failing mutant or random case is appended to the corpus (when
    // one is configured) so it replays on every future run; corpus
    // replays are never re-recorded.
    (@run ($cfg:expr); $body:block; [$(($name:ident; $($strat:tt)*))*]) => {{
        let __cfg: $crate::ProptestConfig = $cfg;
        let __salt = $crate::location_salt(file!(), line!(), column!());
        // `env!` expands in the invoking crate, so the default corpus
        // lives beside that crate's own tests.
        let __corpus_dir = ::std::path::PathBuf::from(
            ::std::env::var("MPIC_CORPUS_DIR")
                .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus").into()),
        );
        let __replay: ::std::vec::Vec<u64> = match __cfg.corpus_name {
            ::core::option::Option::Some(__n) => $crate::corpus::load(&__corpus_dir, __n),
            ::core::option::Option::None => ::std::vec::Vec::new(),
        };
        let __n_replay = __replay.len();
        let __k_mut = __cfg
            .mutants_per_seed
            .unwrap_or_else(|| $crate::default_mutants(__cfg.cases))
            as usize;
        let __mutants: ::std::vec::Vec<u64> = __replay
            .iter()
            .flat_map(|&s| $crate::corpus::mutants(s, __k_mut))
            .collect();
        let __n_total = __n_replay + __mutants.len() + __cfg.cases as usize;
        // Origin tag: 0 = corpus replay, 1 = mutant, 2 = random.
        let __seeds = __replay
            .into_iter()
            .map(|s| (s, 0u8))
            .chain(__mutants.into_iter().map(|s| (s, 1u8)))
            .chain((0..__cfg.cases).map(|c| ($crate::case_seed(__salt, c as u64), 2u8)));
        for (__i, (__seed, __origin)) in __seeds.enumerate() {
            let mut __rng = $crate::TestRng::from_seed_value(__seed);
            $(let $name = $crate::Strategy::generate(&($($strat)*), &mut __rng);)*
            // The closure gives `prop_assert*` an early-return target;
            // a body without one makes the immediate call look
            // redundant to clippy, but the shape must stay uniform.
            #[allow(clippy::redundant_closure_call)]
            let __result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                $body
                ::core::result::Result::Ok(())
            })();
            if let ::core::result::Result::Err(__err) = __result {
                let __saved = match (__origin, __cfg.corpus_name) {
                    (0u8, _) => ::core::option::Option::None,
                    (_, ::core::option::Option::Some(__n)) => {
                        $crate::corpus::record(&__corpus_dir, __n, __seed)
                    }
                    _ => ::core::option::Option::None,
                };
                panic!(
                    "proptest {} case {}/{} (seed 0x{:016x}) failed: {}\n  inputs:{}{}",
                    match __origin {
                        0u8 => "corpus",
                        1u8 => "mutant",
                        _ => "random",
                    },
                    __i + 1,
                    __n_total,
                    __seed,
                    __err,
                    String::new() $(+ &format!("\n    {} = {:?}", stringify!($name), $name))*,
                    match __saved {
                        ::core::option::Option::Some(p) =>
                            format!("\n  seed persisted to {}", p.display()),
                        ::core::option::Option::None => String::new(),
                    },
                );
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::{Mutex, MutexGuard};

    /// Serialises the tests that set `MPIC_CORPUS_DIR` — the env var is
    /// process-global and the default test runner is parallel.
    fn env_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        proptest!(ProptestConfig::with_cases(64), |(
            x in 1usize..10,
            y in 0.0f64..1.0,
            pair in (0u8..3, 5usize..=7),
            v in prop::collection::vec(0usize..4, 0..20),
        )| {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!(pair.0 < 3);
            prop_assert!((5..=7).contains(&pair.1));
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 4));
        });
    }

    #[test]
    fn no_trailing_comma_single_binding_parses() {
        proptest!(|(keys in prop::collection::vec(0usize..32, 0..50))| {
            prop_assert!(keys.len() < 50);
        });
    }

    #[test]
    #[should_panic(expected = "proptest random case")]
    fn failing_property_panics_with_inputs() {
        proptest!(ProptestConfig::with_cases(8), |(x in 0usize..10)| {
            prop_assert!(x > 100, "x was {}", x);
        });
    }

    #[test]
    fn prop_assert_eq_reports_both_sides() {
        proptest!(ProptestConfig::with_cases(4), |(x in 3usize..4)| {
            prop_assert_eq!(x, 3);
            prop_assert_ne!(x, 4);
        });
    }

    #[test]
    fn corpus_record_then_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("mpic-corpus-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(crate::corpus::load(&dir, "missing").is_empty());
        let p1 = crate::corpus::record(&dir, "prop", 0xdead_beef).expect("record");
        let p2 = crate::corpus::record(&dir, "prop", 0x1234).expect("record");
        assert_eq!(p1, p2);
        assert_eq!(crate::corpus::load(&dir, "prop"), vec![0xdead_beef, 0x1234]);
        // Comments and malformed lines are skipped, bare hex accepted.
        std::fs::write(
            crate::corpus::seed_file(&dir, "hand"),
            "# regression seeds\n0x10\n\nnot-a-seed\n20\n",
        )
        .unwrap();
        assert_eq!(crate::corpus::load(&dir, "hand"), vec![0x10, 0x20]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_seeds_replay_before_random_cases() {
        // Same seed -> same generated inputs, whether it arrives via the
        // corpus replay path or the random case derivation.
        let seed = crate::case_seed(crate::location_salt("x.rs", 1, 1), 3);
        let gen = |mut rng: crate::TestRng| {
            crate::Strategy::generate(&crate::collection::vec(0usize..100, 1..40), &mut rng)
        };
        let a = gen(crate::TestRng::from_seed_value(seed));
        let b = gen(crate::TestRng::for_case(
            crate::location_salt("x.rs", 1, 1),
            3,
        ));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest corpus case")]
    fn failing_corpus_seed_is_reported_as_corpus_replay() {
        let _env = env_lock();
        let dir = std::env::temp_dir().join(format!("mpic-corpus-replay-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        crate::corpus::record(&dir, "always_fails", 0x42).unwrap();
        std::env::set_var("MPIC_CORPUS_DIR", &dir);
        let result = std::panic::catch_unwind(|| {
            proptest!(
                // Zero mutants so the corpus replay itself is the first
                // (and only) failing case.
                ProptestConfig::with_cases(0)
                    .with_corpus("always_fails")
                    .with_mutants(0),
                |(x in 0usize..10)| {
                    prop_assert!(x > 100, "x was {}", x);
                }
            );
        });
        std::env::remove_var("MPIC_CORPUS_DIR");
        let _ = std::fs::remove_dir_all(&dir);
        if let Err(p) = result {
            std::panic::resume_unwind(p);
        }
    }

    /// Mutant derivation is a pure function of `(seed, k)`, every mutant
    /// differs from its base in exactly one byte, and distinct bases get
    /// distinct neighbourhoods.
    #[test]
    fn conf_fuzz_mutant_derivation_is_deterministic() {
        let base = 0xDEAD_BEEF_1234_5678u64;
        let a = crate::corpus::mutants(base, 8);
        let b = crate::corpus::mutants(base, 8);
        assert_eq!(a, b, "mutant set must replay identically");
        assert_eq!(a.len(), 8);
        for &m in &a {
            let diff = m ^ base;
            assert_ne!(diff, 0, "mutant equals its base seed");
            assert_eq!(
                diff.to_le_bytes().iter().filter(|&&x| x != 0).count(),
                1,
                "mutation must flip exactly one byte (diff 0x{diff:016x})"
            );
        }
        assert_ne!(
            crate::corpus::mutants(0x1, 8),
            crate::corpus::mutants(0x2, 8)
        );
        assert!(crate::corpus::mutants(base, 0).is_empty());
    }

    /// The derived mutant count follows the case budget (and hence
    /// `MPIC_FUZZ_ITERS`, which the fuzz harnesses feed into `cases`)
    /// between the floor of 2 and the cap of 64.
    #[test]
    fn default_mutant_count_scales_with_case_budget() {
        assert_eq!(crate::default_mutants(0), 2);
        assert_eq!(crate::default_mutants(48), 3);
        assert_eq!(crate::default_mutants(1024), 64);
        assert_eq!(crate::default_mutants(u32::MAX), 64);
    }

    /// End-to-end case accounting: with a 2-seed corpus, K mutants per
    /// seed and N random cases, the body runs exactly 2 + 2K + N times.
    #[test]
    fn mutation_stage_runs_between_corpus_and_random() {
        let _env = env_lock();
        let dir = std::env::temp_dir().join(format!("mpic-corpus-count-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        crate::corpus::record(&dir, "count_prop", 0x7).unwrap();
        crate::corpus::record(&dir, "count_prop", 0x8).unwrap();
        std::env::set_var("MPIC_CORPUS_DIR", &dir);
        let hits = std::cell::Cell::new(0usize);
        proptest!(
            ProptestConfig::with_cases(4)
                .with_corpus("count_prop")
                .with_mutants(5),
            |(x in 0usize..10)| {
                let _ = x;
                hits.set(hits.get() + 1);
            }
        );
        std::env::remove_var("MPIC_CORPUS_DIR");
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(hits.get(), 2 + 2 * 5 + 4);
    }

    /// A failing mutant is labelled as such and its seed is persisted to
    /// the corpus — a corpus replay, by contrast, is never re-recorded.
    #[test]
    fn failing_mutant_is_reported_and_recorded() {
        let _env = env_lock();
        let dir = std::env::temp_dir().join(format!("mpic-corpus-mutant-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        crate::corpus::record(&dir, "mutant_prop", 0x42).unwrap();
        // The value the committed seed generates: the property accepts
        // exactly that value, so the corpus replay passes and the first
        // mutant (a different seed, hence a different draw) fails.
        let base_draw = {
            let mut rng = crate::TestRng::from_seed_value(0x42);
            crate::Strategy::generate(&(0usize..1_000_000), &mut rng)
        };
        std::env::set_var("MPIC_CORPUS_DIR", &dir);
        let result = std::panic::catch_unwind(|| {
            proptest!(
                ProptestConfig::with_cases(0)
                    .with_corpus("mutant_prop")
                    .with_mutants(3),
                |(x in 0usize..1_000_000)| {
                    prop_assert_eq!(x, base_draw);
                }
            );
        });
        std::env::remove_var("MPIC_CORPUS_DIR");
        let msg = match &result {
            Err(p) => p
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "<non-string panic>".into()),
            Ok(()) => String::new(),
        };
        let recorded = crate::corpus::load(&dir, "mutant_prop");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(result.is_err(), "a mutant draw should have failed");
        assert!(
            msg.contains("proptest mutant case"),
            "failure not attributed to the mutation stage: {msg}"
        );
        assert_eq!(
            recorded,
            vec![0x42, crate::corpus::mutants(0x42, 3)[0]],
            "the failing mutant seed must be appended to the corpus"
        );
    }
}
