//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness. The build environment has no crates.io access, so
//! this shim implements the API subset `benches/kernels.rs` uses —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! wall-clock sampler: per sample, run the routine in a timed batch and
//! report min/mean/max of the per-iteration time.
//!
//! No statistical analysis, plotting, or baseline storage: numbers print
//! to stdout and the cycle-model harness bins remain the source of truth
//! for paper figures.

use std::fmt;
use std::time::{Duration, Instant};

/// Number of timed samples per benchmark unless overridden by
/// [`BenchmarkGroup::sample_size`].
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Target wall-clock time per sample; iteration count per batch adapts
/// to hit it.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(50);

/// Quick mode (`cargo bench -- --quick`, mirroring real criterion's
/// flag, or `CRITERION_QUICK=1`): caps samples at 2 and shrinks the
/// per-sample target so a full bench sweep finishes in seconds. CI uses
/// this as a smoke pass that still prints comparable numbers.
fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("CRITERION_QUICK").is_some()
}

/// Effective sample count and per-sample target for the current mode.
fn sampling_params(sample_size: usize) -> (usize, Duration) {
    if quick_mode() {
        (sample_size.min(2), Duration::from_millis(5))
    } else {
        (sample_size, TARGET_SAMPLE_TIME)
    }
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// Identifier for one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named group of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, adapting the batch size so each sample spans
    /// roughly [`TARGET_SAMPLE_TIME`].
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let (samples, target) = sampling_params(self.sample_size);
        // Calibrate: run once to estimate per-iteration cost.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        self.samples.clear();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples: benchmark closure never called iter)");
        return;
    }
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{name:<40} time: [{} {} {}]",
        format_duration(*min),
        format_duration(mean),
        format_duration(*max),
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Collect benchmark functions into a single runner fn, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running each group, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn quick_mode_caps_samples() {
        // Not in quick mode by default (no --quick arg in the test
        // runner); params pass through untouched.
        if !quick_mode() {
            assert_eq!(sampling_params(20), (20, TARGET_SAMPLE_TIME));
            assert_eq!(sampling_params(1), (1, TARGET_SAMPLE_TIME));
        }
    }

    #[test]
    fn group_with_input_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter("p"), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
