//! Fuzz-lite harnesses: the property tests that are worth running far
//! past the default case budget.
//!
//! Each harness reads its case count from the `MPIC_FUZZ_ITERS`
//! environment variable, so a plain `cargo test` stays fast while a
//! dedicated fuzz sweep (`MPIC_FUZZ_ITERS=2000 cargo test --test
//! fuzz_lite`) hammers the same properties with three orders of
//! magnitude more inputs. The targets are the three structures whose
//! corruption would silently break the determinism contract rather than
//! crash: the run decomposition, the sharded counting sort, and the
//! GPMA's incremental maintenance.

use matrix_pic::deposit::ShapeOrder;
use matrix_pic::machine::vect::W;
use matrix_pic::machine::{SchedulerPolicy, WorkerPool, INLINE_ITEM_THRESHOLD};
use matrix_pic::particles::{
    cell_runs, counting_sort_keys, counting_sort_keys_sharded, Gpma, SortScratch,
    INVALID_PARTICLE_ID,
};
use matrix_pic::push::gather::{
    gather_from_block, gather_from_block_lanes, gather_from_block_lanes_masked, NodeBlock,
};
use proptest::prelude::*;

/// Case budget: `MPIC_FUZZ_ITERS` if set and parseable, else `default`.
fn fuzz_cases(default: u32) -> u32 {
    std::env::var("MPIC_FUZZ_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Reference grouping: linear scan tracking the previous key.
fn naive_runs(keys: &[usize]) -> Vec<(usize, usize, usize)> {
    let mut out: Vec<(usize, usize, usize)> = Vec::new();
    for (i, &k) in keys.iter().enumerate() {
        match out.last_mut() {
            Some((cell, _, end)) if *cell == k && *end == i => *end = i + 1,
            _ => out.push((k, i, i + 1)),
        }
    }
    out
}

/// `cell_runs` must agree with the naive reference grouping, tile the
/// index space exactly, and yield maximal runs — for sorted, unsorted
/// and degenerate key sequences alike.
#[test]
fn fuzz_cell_runs_match_reference_and_tile_exactly() {
    proptest!(ProptestConfig::with_cases(fuzz_cases(128)).with_corpus("cell_runs"), |(
        keys in prop::collection::vec(0usize..6, 0..400),
        sort_it in 0u8..2,
    )| {
        // The macro re-borrows the inputs for its failure report, so
        // shadow with a clone rather than moving.
        let mut keys = keys.clone();
        if sort_it == 1 {
            keys.sort_unstable();
        }
        let got: Vec<(usize, usize, usize)> =
            cell_runs(&keys).map(|r| (r.cell, r.start, r.end)).collect();
        prop_assert_eq!(&got, &naive_runs(&keys));
        // Runs tile 0..len exactly, in order.
        let mut cursor = 0;
        for &(_, start, end) in &got {
            prop_assert_eq!(start, cursor);
            prop_assert!(end > start, "empty run yielded");
            cursor = end;
        }
        prop_assert_eq!(cursor, keys.len());
        // Maximality: neighbouring runs never share a key.
        for w in got.windows(2) {
            prop_assert!(w[0].0 != w[1].0, "adjacent runs share key {}", w[0].0);
        }
    });
}

/// The sharded counting sort must produce the byte-identical permutation
/// of the sequential stable sort for every worker count (ragged 1..9,
/// far from powers of two) and both scheduler policies, on inputs sized
/// to cross the inline threshold so the parallel merge path really runs.
#[test]
fn fuzz_sharded_sort_matches_sequential_for_all_workers_and_policies() {
    let pools: Vec<WorkerPool> = (1..9).map(WorkerPool::new).collect();
    proptest!(ProptestConfig::with_cases(fuzz_cases(12)).with_corpus("sharded_sort"), |(
        n_buckets in 1usize..48,
        // Size reaches ~1.5 chunks past the inline threshold so worker
        // counts >= 2 take the sharded path; small sizes cover inline.
        len_frac in 0.0f64..1.5,
        seed in 0usize..1_000_000,
    )| {
        let len = (len_frac * INLINE_ITEM_THRESHOLD as f64) as usize * 4;
        // Deterministic splitmix-style key stream (the vendored proptest
        // vec strategy at this length would dominate runtime).
        let mut state = seed as u64 ^ 0x9E37_79B9_7F4A_7C15;
        let keys: Vec<usize> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as usize % n_buckets
            })
            .collect();
        let (expect, _) = counting_sort_keys(&keys, n_buckets);
        for pool in &pools {
            for policy in [SchedulerPolicy::Static, SchedulerPolicy::Stealing] {
                let mut perm = Vec::new();
                let mut scratch = SortScratch::default();
                let _ = counting_sort_keys_sharded(
                    &keys,
                    n_buckets,
                    pool.exec(policy),
                    &mut perm,
                    &mut scratch,
                );
                prop_assert_eq!(
                    &perm,
                    &expect,
                    "divergence at workers={} policy={:?} len={}",
                    pool.workers(),
                    policy,
                    len
                );
            }
        }
    });
}

/// The SIMD gather's lane-pack decomposition must be bit-identical to
/// the per-particle block gather for every run length — empty, 1,
/// `W-1`, `W`, `W+1` and ragged multi-run tiles — across shape orders
/// and arbitrary field values, under BOTH decompositions the hot path
/// has used: full `W`-wide packs with a scalar remainder (masked off,
/// the pre-masked-tail flush) and masked packs of `min(W, remaining)`
/// through `gather_from_block_lanes_masked` (masked on, the current
/// flush). The lane-boundary lengths `kW-1`, `kW`, `kW+1` run on every
/// case in addition to the randomly drawn tiles, and masked tail packs
/// must additionally leave every inactive lane at exactly 0.0 bits.
#[test]
fn fuzz_lane_remainder_gather_matches_scalar_bitwise() {
    proptest!(ProptestConfig::with_cases(fuzz_cases(64)).with_corpus("lane_remainder"), |(
        run_lens in prop::collection::vec(0usize..(2 * W + 2), 1..6),
        order_pick in 0usize..3,
        masked in 0u8..2,
        seed in 0u64..1_000_000,
    )| {
        let order = [ShapeOrder::Cic, ShapeOrder::Tsc, ShapeOrder::Qsp][order_pick];
        let s = order.support();
        let masked = masked == 1;
        // Lane-boundary lengths kW-1 / kW / kW+1 ride along on every
        // case: they are exactly where a masked-tail bug would hide.
        let boundary = [W - 1, W, W + 1, 2 * W - 1, 2 * W, 2 * W + 1];
        let run_lens: Vec<usize> = run_lens.iter().copied().chain(boundary).collect();
        let mut state = seed ^ 0x243F_6A88_85A3_08D3;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for &len in &run_lens {
            // A fresh pseudo-random node block per run (a ragged tile's
            // runs sit in different cells, so each sees its own stencil).
            let mut block = NodeBlock::new();
            block.nodes = s * s * s;
            for comp in 0..6 {
                for nd in 0..block.nodes {
                    block.vals[comp][nd] = next() * 3.0;
                }
            }
            let fracs: Vec<[f64; 3]> = (0..len)
                .map(|_| [next() + 0.5, next() + 0.5, next() + 0.5])
                .collect();
            let mut got_e = vec![[0.0; 3]; len];
            let mut got_b = vec![[0.0; 3]; len];
            if masked {
                // Decompose exactly as the current run flush does:
                // masked packs of min(W, remaining) lanes.
                let mut i = 0;
                while i < len {
                    let n = (len - i).min(W);
                    let (e, b) = gather_from_block_lanes_masked(order, &block, &fracs[i..i + n]);
                    for l in 0..n {
                        for d in 0..3 {
                            got_e[i + l][d] = e[d].lane(l);
                            got_b[i + l][d] = b[d].lane(l);
                        }
                    }
                    // Inactive lanes of a tail pack must be exactly
                    // zero: a masked accumulator that leaks a partial
                    // product would show up here.
                    for l in n..W {
                        for d in 0..3 {
                            prop_assert_eq!(e[d].lane(l).to_bits(), 0, "tail lane {} E[{}]", l, d);
                            prop_assert_eq!(b[d].lane(l).to_bits(), 0, "tail lane {} B[{}]", l, d);
                        }
                    }
                    i += n;
                }
            } else {
                // The pre-masked-tail decomposition: full W-wide packs,
                // then the scalar remainder.
                let mut i = 0;
                while i + W <= len {
                    gather_from_block_lanes(
                        order,
                        &block,
                        &fracs[i..i + W],
                        &mut got_e[i..i + W],
                        &mut got_b[i..i + W],
                    );
                    i += W;
                }
                for l in i..len {
                    let (e, b) = gather_from_block(order, &block, fracs[l]);
                    got_e[l] = e;
                    got_b[l] = b;
                }
            }
            for (l, frac) in fracs.iter().enumerate() {
                let (e_want, b_want) = gather_from_block(order, &block, *frac);
                for d in 0..3 {
                    prop_assert_eq!(
                        got_e[l][d].to_bits(),
                        e_want[d].to_bits(),
                        "{:?} len={} lane={} E[{}]",
                        order, len, l, d
                    );
                    prop_assert_eq!(
                        got_b[l][d].to_bits(),
                        b_want[d].to_bits(),
                        "{:?} len={} lane={} B[{}]",
                        order, len, l, d
                    );
                }
            }
        }
    });
}

/// GPMA insert/remove/move churn with randomized build sizes (empty
/// included), bin counts, gap ratios and duplicate-heavy bins: the
/// structure must keep every invariant and agree with the shadow
/// `cells` array after every applied batch.
#[test]
fn fuzz_gpma_churn_randomized_shapes() {
    proptest!(ProptestConfig::with_cases(fuzz_cases(48)).with_corpus("gpma_churn"), |(
        n_bins in 1usize..24,
        gap_pick in 0usize..3,
        initial_len in 0usize..120,
        dup_bin in 0usize..24,
        ops in prop::collection::vec((0u8..3, 0usize..256, 0usize..24), 0..200),
    )| {
        let gap_ratio = [0.1, 0.3, 0.7][gap_pick];
        // Half the initial particles pile into one bin to stress the
        // shift path with long equal runs.
        let mut cells: Vec<usize> = (0..initial_len)
            .map(|i| if i % 2 == 0 { dup_bin % n_bins } else { i % n_bins })
            .collect();
        let mut g = Gpma::build(&cells, n_bins, gap_ratio);
        g.check_invariants(&cells);
        for chunk in ops.chunks(16) {
            let mut touched = vec![false; cells.len() + chunk.len()];
            for &(op, pick, bin) in chunk {
                let bin = bin % n_bins;
                match op {
                    0 => {
                        let p = cells.len();
                        cells.push(bin);
                        g.queue_insert(p, bin);
                        if p < touched.len() {
                            touched[p] = true;
                        }
                    }
                    1 => {
                        let live: Vec<usize> = (0..cells.len())
                            .filter(|&p| cells[p] != INVALID_PARTICLE_ID
                                && !touched.get(p).copied().unwrap_or(true))
                            .collect();
                        if live.is_empty() {
                            continue;
                        }
                        let p = live[pick % live.len()];
                        g.queue_remove(p, cells[p]);
                        cells[p] = INVALID_PARTICLE_ID;
                        touched[p] = true;
                    }
                    _ => {
                        let live: Vec<usize> = (0..cells.len())
                            .filter(|&p| cells[p] != INVALID_PARTICLE_ID
                                && !touched.get(p).copied().unwrap_or(true))
                            .collect();
                        if live.is_empty() {
                            continue;
                        }
                        let p = live[pick % live.len()];
                        if cells[p] == bin {
                            continue;
                        }
                        g.queue_move(p, cells[p], bin);
                        cells[p] = bin;
                        touched[p] = true;
                    }
                }
            }
            let _ = g.apply_pending_moves(&cells);
            g.check_invariants(&cells);
        }
        let live = cells.iter().filter(|&&c| c != INVALID_PARTICLE_ID).count();
        prop_assert_eq!(g.num_particles(), live);
    });
}
