//! Cross-crate integration tests: full PIC loops through the public API.

use matrix_pic::core::workloads;
use matrix_pic::deposit::{KernelConfig, ShapeOrder};
use matrix_pic::machine::Phase;

/// The physics must be identical no matter which deposition kernel runs:
/// after several steps the field state of a FullOpt run matches the
/// baseline run bit-for-bit within accumulation tolerance.
#[test]
fn kernels_produce_identical_physics() {
    let mut fields_by_kernel = Vec::new();
    for kernel in [
        KernelConfig::Baseline,
        KernelConfig::RhocellIncrSortVpu,
        KernelConfig::FullOpt,
    ] {
        let mut sim = workloads::uniform_plasma_sim([8, 8, 8], 4, ShapeOrder::Cic, kernel, 31);
        sim.run(4);
        fields_by_kernel.push((kernel.label(), sim.fields.clone()));
    }
    let (_, reference) = &fields_by_kernel[0];
    let scale = reference.ez.max_abs().max(1e-300);
    for (label, f) in &fields_by_kernel[1..] {
        for (a, b) in reference.ez.as_slice().iter().zip(f.ez.as_slice()) {
            assert!(
                (a - b).abs() / scale < 1e-9,
                "{label}: field state diverged: {a} vs {b}"
            );
        }
    }
}

/// Periodic uniform plasma conserves particle count and total charge.
#[test]
fn conservation_laws_hold() {
    let mut sim =
        workloads::uniform_plasma_sim([8, 8, 8], 8, ShapeOrder::Cic, KernelConfig::FullOpt, 5);
    let n0 = sim.num_particles();
    let q0 = sim.total_charge();
    sim.run(6);
    assert_eq!(sim.num_particles(), n0);
    assert!(((sim.total_charge() - q0) / q0).abs() < 1e-12);
    sim.electrons.check_invariants();
}

/// Total energy (field + kinetic) stays bounded over plasma oscillations
/// when the Debye length is resolved. (The paper's benchmark density of
/// 1e25 m^-3 under-resolves lambda_D by ~60x — standard for a
/// short-horizon performance study, but it grid-heats; physics tests use
/// a resolved density instead.)
#[test]
fn energy_stays_bounded() {
    use matrix_pic::core::Simulation;
    use matrix_pic::grid::{GridGeometry, TileLayout};

    let cfg =
        workloads::uniform_plasma_config([8, 8, 8], ShapeOrder::Cic, KernelConfig::FullOpt, 11);
    let geom = GridGeometry::new(cfg.n_cells, [0.0; 3], cfg.dx, cfg.guard);
    let layout = TileLayout::new(&geom, cfg.tile_size);
    // lambda_D ~ dx at u_th = 0.01: n ~ 2.5e21 m^-3.
    let electrons = workloads::load_uniform_plasma(&geom, &layout, 2.5e21, 8, 0.01, 11);
    let mut sim = Simulation::from_parts(cfg, geom, layout, electrons, None);
    sim.run(2);
    let e_early = sim.field_energy() + sim.kinetic_energy();
    sim.run(30);
    let e_late = sim.field_energy() + sim.kinetic_energy();
    assert!(e_late.is_finite());
    assert!(
        e_late < 2.0 * e_early.max(1e-300),
        "energy drifted: {e_early} -> {e_late}"
    );
}

/// QSP runs end-to-end, including through the MPU kernel.
#[test]
fn qsp_full_loop_runs() {
    let mut sim =
        workloads::uniform_plasma_sim([8, 8, 8], 2, ShapeOrder::Qsp, KernelConfig::FullOpt, 3);
    let t = sim.step();
    assert!(t.phase(Phase::Compute) > 0.0);
    assert!(sim.machine.counters().mopa_ops > 0, "MPU must be used");
    sim.electrons.check_invariants();
}

/// LWFA: moving window, laser injection, absorbing boundaries and
/// front-plane plasma injection all run; particle count stays sane.
#[test]
fn lwfa_window_cycles_particles() {
    let mut sim = workloads::lwfa_sim([8, 8, 32], 2, ShapeOrder::Cic, KernelConfig::FullOpt, 13);
    let n0 = sim.num_particles();
    sim.run(12);
    let n1 = sim.num_particles();
    assert!(n1 > 0, "all particles lost");
    // The window recycles particles: count stays within a factor of 2.
    assert!(n1 > n0 / 2 && n1 < n0 * 2, "{n0} -> {n1}");
    assert!(sim.field_energy() > 0.0, "laser must inject energy");
    sim.electrons.check_invariants();
}

/// The adaptive sort policy eventually triggers a global re-sort in a
/// long-enough FullOpt run (fixed interval trigger at the default 50).
#[test]
fn sort_policy_triggers_on_interval() {
    let mut sim =
        workloads::uniform_plasma_sim([8, 8, 8], 2, ShapeOrder::Cic, KernelConfig::FullOpt, 17);
    // Cheaper than 50 full steps: tighten the interval via config is not
    // exposed post-construction, so just run and watch sort cycles; the
    // incremental sweep must charge Sort cycles every step.
    sim.run(3);
    let rep = sim.report();
    for s in &rep.steps {
        assert!(s.phase(Phase::Sort) > 0.0, "incremental sort must run");
    }
}

/// Throughput metric is self-consistent: particles/s x deposition time
/// equals particles processed.
#[test]
fn throughput_metric_consistency() {
    let mut sim =
        workloads::uniform_plasma_sim([8, 8, 8], 4, ShapeOrder::Cic, KernelConfig::FullOpt, 23);
    sim.run(3);
    let clock = sim.cfg.machine.clone();
    let rep = sim.report();
    let pps = rep.particles_per_second(&clock);
    let t = rep.deposition_seconds(&clock);
    let processed: usize = rep.steps.iter().map(|s| s.particles).sum();
    assert!((pps * t / processed as f64 - 1.0).abs() < 1e-9);
}

/// Ablation configurations all complete a multi-step run and agree on
/// the deposited current (the physics is kernel-independent).
#[test]
fn ablation_configs_agree() {
    let mut sums = Vec::new();
    for kernel in KernelConfig::ABLATION {
        let mut sim = workloads::uniform_plasma_sim([8, 8, 8], 2, ShapeOrder::Cic, kernel, 77);
        sim.run(3);
        sums.push((kernel.label(), sim.fields.jz.sum()));
    }
    let (_, want) = sums[0];
    for (label, got) in &sums[1..] {
        assert!(
            (got - want).abs() <= 1e-9 * want.abs().max(1e-300),
            "{label}: {got} vs {want}"
        );
    }
}
