//! Smoke test pinning the facade's public quickstart path: the exact
//! sequence from the `src/lib.rs` doctest and `examples/quickstart.rs`
//! must keep building a sim, running steps, and producing a nonzero
//! cycle-model report. Guards the crate-level re-exports as much as the
//! behaviour: if a workspace refactor drops a re-export this stops
//! compiling.

use matrix_pic::core::workloads;
use matrix_pic::deposit::{KernelConfig, ShapeOrder};

#[test]
fn quickstart_path_runs_three_steps_and_reports_cycles() {
    let mut sim =
        workloads::uniform_plasma_sim([8, 8, 8], 4, ShapeOrder::Cic, KernelConfig::FullOpt, 42);
    sim.run(3);

    assert_eq!(sim.step_index(), 3, "run(3) must advance exactly 3 steps");

    let report = sim.report();
    assert_eq!(report.len(), 3, "one StepTimings entry per step");
    assert!(
        report.deposition_cycles() > 0.0,
        "deposition must consume cycles on a populated plasma"
    );
    assert!(
        report.total_cycles() >= report.deposition_cycles(),
        "deposition is a subset of the whole step"
    );

    let cfg = sim.cfg.machine.clone();
    let pps = report.particles_per_second(&cfg);
    assert!(
        pps.is_finite() && pps > 0.0,
        "throughput must be positive and finite, got {pps}"
    );
    assert!(report.deposition_seconds(&cfg) > 0.0);
    assert!(report.wall_seconds_per_step(&cfg) > 0.0);
}

#[test]
fn quickstart_path_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut sim = workloads::uniform_plasma_sim(
            [8, 8, 8],
            2,
            ShapeOrder::Cic,
            KernelConfig::FullOpt,
            seed,
        );
        sim.run(2);
        sim.report().total_cycles()
    };
    assert_eq!(
        run(7),
        run(7),
        "same seed must reproduce the same cycle count"
    );
}
