//! Fault-injected recovery tests: a worker panic or thread death in the
//! middle of a step must roll back to the last checkpoint and replay,
//! yielding a final state **bitwise identical** to a crash-free run.

use matrix_pic::core::{workloads, DriverError, ResilientDriver, Simulation};
use matrix_pic::deposit::{KernelConfig, ShapeOrder};
use matrix_pic::machine::{FaultKind, FaultPlan, SchedulerPolicy};

const DIMS: [usize; 3] = [8, 8, 8];
const PPC: usize = 2;
const SEED: u64 = 57;

fn sim(workers: usize, policy: SchedulerPolicy) -> Simulation {
    let mut s =
        workloads::uniform_plasma_sim(DIMS, PPC, ShapeOrder::Cic, KernelConfig::FullOpt, SEED);
    s.cfg.num_workers = workers;
    s.cfg.scheduler = policy;
    s.cfg.batching = true;
    s
}

/// Drives `total` steps with a fault injected a few dispatches into the
/// post-warmup stepping, and asserts the final state equals the
/// crash-free reference bit for bit (via total-state snapshot bytes).
fn assert_recovery_is_bitwise(kind: FaultKind, workers: usize, policy: SchedulerPolicy) {
    let warmup = 2u64;
    let total = 6u64;

    let mut reference = sim(workers, policy);
    reference.run(total as usize);
    let expected = reference.snapshot();

    let mut faulted = sim(workers, policy);
    // Warm up under the final worker count so the pool (and any fault
    // armed on it) survives: the pool is rebuilt when cfg changes.
    faulted.run(warmup as usize);
    faulted.pool().inject_fault(FaultPlan {
        // Worker 1 exists for every pool with >= 2 workers and, unlike
        // worker 0, exercises the background-thread failure paths.
        worker: 1,
        dispatch: faulted.pool().dispatch_count() + 2,
        kind,
    });
    let mut driver = ResilientDriver::new(2, 3);
    let stats = driver
        .run(&mut faulted, (total - warmup) as usize)
        .expect("recovery should succeed within the retry budget");

    assert!(stats.failures >= 1, "the injected fault never fired");
    assert!(stats.checkpoints_taken >= 1);
    if kind == FaultKind::Die {
        assert_eq!(
            stats.workers_respawned, 1,
            "a killed worker thread must be respawned exactly once"
        );
        assert!(faulted.pool().dead_workers().is_empty());
    }
    assert_eq!(faulted.step_index(), total);
    assert!(
        faulted.snapshot() == expected,
        "{kind:?} w={workers} {policy:?}: recovered state diverged from crash-free run"
    );
}

/// A mid-step worker panic rolls back, replays, and lands bitwise equal
/// to the uninterrupted run — across worker counts and both schedulers.
#[test]
fn conf_fault_injected_worker_panic_recovers_bitwise() {
    for &workers in &[2usize, 4, 7] {
        for &policy in &[SchedulerPolicy::Static, SchedulerPolicy::Stealing] {
            assert_recovery_is_bitwise(FaultKind::Panic, workers, policy);
        }
    }
}

/// A worker thread *death* mid-step is detected, the thread respawned,
/// and the run still converges to the bitwise-identical final state.
#[test]
fn conf_fault_injected_worker_death_recovers_bitwise() {
    assert_recovery_is_bitwise(FaultKind::Die, 4, SchedulerPolicy::Static);
    assert_recovery_is_bitwise(FaultKind::Die, 4, SchedulerPolicy::Stealing);
}

/// A dispatcher-thread (worker 0) fault is also caught and rolled back.
#[test]
fn conf_fault_on_dispatching_thread_recovers_bitwise() {
    let total = 6u64;
    let mut reference = sim(4, SchedulerPolicy::Static);
    reference.run(total as usize);
    let expected = reference.snapshot();

    let mut faulted = sim(4, SchedulerPolicy::Static);
    faulted.run(2);
    faulted.pool().inject_fault(FaultPlan {
        worker: 0,
        dispatch: faulted.pool().dispatch_count() + 3,
        kind: FaultKind::Panic,
    });
    let mut driver = ResilientDriver::new(1, 2);
    let stats = driver
        .run(&mut faulted, (total - 2) as usize)
        .expect("recovery");
    assert!(stats.failures >= 1);
    assert!(faulted.snapshot() == expected);
}

/// Without faults the driver is a pure pass-through: same final state as
/// `Simulation::run`, zero failures, checkpoints on the configured
/// cadence.
#[test]
fn driver_without_faults_is_transparent() {
    let mut plain = sim(2, SchedulerPolicy::Static);
    plain.run(5);

    let mut driven = sim(2, SchedulerPolicy::Static);
    let mut driver = ResilientDriver::new(2, 1);
    let stats = driver.run(&mut driven, 5).expect("clean run");
    assert_eq!(stats.failures, 0);
    assert_eq!(stats.steps_replayed, 0);
    assert_eq!(stats.workers_respawned, 0);
    // Checkpoints at steps 0, 2 and 4.
    assert_eq!(stats.checkpoints_taken, 3);
    assert_eq!(driver.last_checkpoint().map(|(s, _)| s), Some(4));
    assert!(driven.snapshot() == plain.snapshot());
}

/// A step that keeps failing past the retry budget surfaces a structured
/// terminal error naming the stuck step — no abort, no hang.
#[test]
fn retry_budget_exhaustion_is_a_structured_error() {
    let mut faulted = sim(4, SchedulerPolicy::Static);
    faulted.run(1);
    faulted.pool().inject_fault(FaultPlan {
        worker: 1,
        dispatch: faulted.pool().dispatch_count() + 1,
        kind: FaultKind::Panic,
    });
    let mut driver = ResilientDriver::new(1, 0);
    match driver.run(&mut faulted, 2) {
        Err(DriverError::RetryBudgetExhausted { step, attempts, .. }) => {
            assert_eq!(step, 1);
            assert_eq!(attempts, 1);
        }
        other => panic!("expected retry exhaustion, got {other:?}"),
    }
    // The simulation is still usable after the driver gave up: the
    // plan was consumed, so plain stepping proceeds.
    faulted.run(1);
}
