//! Checkpoint/restore tests: deterministic snapshot round-trips and the
//! per-section corruption matrix.
//!
//! The `conf_` tests pin the crash-resilience contract: a simulation that is
//! snapshotted mid-run and restored into a *fresh* `Simulation` (built from
//! the same config) must continue bit-identically to the uninterrupted run —
//! fields, currents, particles, RNG, per-phase counters and cache behavioural
//! state included — across every worker count, scheduler policy and batching
//! mode. Corrupted snapshot bytes must produce structured [`SnapshotError`]s,
//! never panics.

use matrix_pic::core::snapshot::{section, SnapshotError};
use matrix_pic::core::{workloads, Simulation};
use matrix_pic::deposit::{KernelConfig, ShapeOrder};
use matrix_pic::machine::SchedulerPolicy;

const UNIFORM_DIMS: [usize; 3] = [8, 8, 8];
const UNIFORM_PPC: usize = 2;
const UNIFORM_SEED: u64 = 97;
const LWFA_DIMS: [usize; 3] = [8, 8, 32];
const LWFA_PPC: usize = 2;
const LWFA_SEED: u64 = 13;

fn uniform_sim(workers: usize, policy: SchedulerPolicy, batching: bool) -> Simulation {
    let mut sim = workloads::uniform_plasma_sim(
        UNIFORM_DIMS,
        UNIFORM_PPC,
        ShapeOrder::Cic,
        KernelConfig::FullOpt,
        UNIFORM_SEED,
    );
    sim.cfg.num_workers = workers;
    sim.cfg.scheduler = policy;
    sim.cfg.batching = batching;
    sim
}

fn lwfa_sim(workers: usize, policy: SchedulerPolicy, batching: bool) -> Simulation {
    let mut sim = workloads::lwfa_sim(
        LWFA_DIMS,
        LWFA_PPC,
        ShapeOrder::Cic,
        KernelConfig::FullOpt,
        LWFA_SEED,
    );
    sim.cfg.num_workers = workers;
    sim.cfg.scheduler = policy;
    sim.cfg.batching = batching;
    sim
}

/// Run `total` steps uninterrupted; separately run `pre` steps, snapshot,
/// restore into a fresh sim and run the remaining steps there. Both final
/// states are compared through `Simulation::snapshot`, which captures every
/// piece of stepping state (fields, particles, RNG, counters, cache tags,
/// report), so byte equality is total-state equality.
fn assert_restore_continues_bit_identical(
    make: &dyn Fn() -> Simulation,
    pre: usize,
    total: usize,
    label: &str,
) {
    assert!(pre < total);
    let mut reference = make();
    reference.run(total);
    let expected = reference.snapshot();

    let mut interrupted = make();
    interrupted.run(pre);
    let checkpoint = interrupted.snapshot();
    drop(interrupted);

    let mut resumed = make();
    resumed
        .restore(&checkpoint)
        .unwrap_or_else(|e| panic!("{label}: restore failed: {e}"));
    resumed.run(total - pre);
    let actual = resumed.snapshot();

    assert_eq!(
        expected.len(),
        actual.len(),
        "{label}: snapshot size diverged after restore"
    );
    assert!(
        expected == actual,
        "{label}: state diverged after snapshot/restore"
    );
}

/// Snapshot -> restore -> N steps is bit-identical to the uninterrupted run
/// for every worker count x scheduler policy x batching mode in the paper's
/// determinism matrix (uniform plasma workload).
#[test]
fn conf_snapshot_restore_bit_identical_across_exec_matrix() {
    for &workers in &[1usize, 2, 4, 7] {
        for &policy in &[SchedulerPolicy::Static, SchedulerPolicy::Stealing] {
            for &batching in &[false, true] {
                let label = format!("uniform w={workers} {policy:?} batching={batching}");
                assert_restore_continues_bit_identical(
                    &|| uniform_sim(workers, policy, batching),
                    2,
                    4,
                    &label,
                );
            }
        }
    }
}

/// The LWFA workload exercises the moving window, the laser antenna, the
/// absorbing boundaries and the RNG-driven fresh-plasma injection — all of
/// which must survive a checkpoint bit-exactly.
#[test]
fn conf_snapshot_restore_bit_identical_lwfa_moving_window() {
    for &workers in &[1usize, 4] {
        for &policy in &[SchedulerPolicy::Static, SchedulerPolicy::Stealing] {
            let label = format!("lwfa w={workers} {policy:?}");
            assert_restore_continues_bit_identical(
                &|| lwfa_sim(workers, policy, true),
                3,
                6,
                &label,
            );
        }
    }
}

fn uniform_simd_sim(workers: usize, policy: SchedulerPolicy) -> Simulation {
    let mut sim = uniform_sim(workers, policy, true);
    sim.cfg.simd = true;
    sim
}

/// Snapshot -> restore -> N steps under the lane-parallel mode
/// (`SimConfig::simd`) is bit-identical to the uninterrupted SIMD run —
/// total state, counters included, across worker counts and policies.
#[test]
fn conf_snapshot_restore_bit_identical_with_simd() {
    for &workers in &[1usize, 4] {
        for &policy in &[SchedulerPolicy::Static, SchedulerPolicy::Stealing] {
            let label = format!("uniform simd w={workers} {policy:?}");
            assert_restore_continues_bit_identical(
                &|| uniform_simd_sim(workers, policy),
                2,
                4,
                &label,
            );
        }
    }
}

/// A checkpoint is simd-agnostic for *state*: a snapshot written under the
/// batched-scalar mode restores into a simd-on simulation and continues
/// with bit-identical field values. The writer's two scalar-mode steps
/// charge the cache-walking prices in the memory-bound phases the SIMD
/// mode re-prices through the state-free streaming model, so the resumed
/// run carries a strictly higher Preprocess/Compute/Reduce/Gather/Sort
/// history than the uninterrupted simd-on run. (Gather joined the
/// strictly-cheaper set with the roofline crossover: this 8^3 grid's
/// guarded field arrays fit in L1, so the streamed block loads now pay the
/// resident line price instead of being overcharged at the flat DRAM
/// stream rate — previously the mostly-L1-hit cache walk undercut the
/// stream here. Sort joined when the incremental sweep's position scan
/// was re-priced through the same streaming model.) Every other phase
/// matches bitwise.
#[test]
fn conf_snapshot_written_scalar_restores_into_simd() {
    use matrix_pic::machine::Phase;

    let mut writer = uniform_sim(1, SchedulerPolicy::Static, true);
    writer.run(2);
    let checkpoint = writer.snapshot();

    let mut reference = uniform_simd_sim(1, SchedulerPolicy::Static);
    reference.run(4);

    let mut resumed = uniform_simd_sim(1, SchedulerPolicy::Static);
    resumed.restore(&checkpoint).expect("cross-simd restore");
    resumed.run(2);

    let fields = |s: &Simulation| {
        [
            s.fields.jx.clone(),
            s.fields.jy.clone(),
            s.fields.jz.clone(),
            s.fields.ex.clone(),
            s.fields.ey.clone(),
            s.fields.ez.clone(),
            s.fields.bx.clone(),
            s.fields.by.clone(),
            s.fields.bz.clone(),
        ]
    };
    for (i, (a, b)) in fields(&reference).iter().zip(fields(&resumed)).enumerate() {
        let same = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(u, v)| u.to_bits() == v.to_bits());
        assert!(same, "field {i} diverged after scalar->simd restore");
    }
    for p in Phase::ALL {
        let want = reference.machine.counters().cycles(p);
        let got = resumed.machine.counters().cycles(p);
        if matches!(
            p,
            Phase::Preprocess | Phase::Compute | Phase::Reduce | Phase::Gather | Phase::Sort
        ) {
            assert!(
                got > want,
                "writer's scalar steps must leave a higher {p:?} history \
                 ({got} vs {want})"
            );
        } else {
            assert_eq!(
                want.to_bits(),
                got.to_bits(),
                "{p:?} cycles diverged after scalar->simd restore"
            );
        }
    }
}

/// A checkpoint is worker/scheduler agnostic: state written under one worker
/// count and policy may be restored under another, and the continuation is
/// still bit-identical to an uninterrupted run under the *target* config
/// (the determinism contract says workers and scheduling never change
/// results). Batching must match, because batching changes the emulated
/// cost-model charges the counters and report accumulate.
#[test]
fn conf_snapshot_restores_across_worker_counts() {
    let mut writer = uniform_sim(1, SchedulerPolicy::Static, true);
    writer.run(2);
    let checkpoint = writer.snapshot();

    let mut reference = uniform_sim(7, SchedulerPolicy::Stealing, true);
    reference.run(4);
    let expected = reference.snapshot();

    let mut resumed = uniform_sim(7, SchedulerPolicy::Stealing, true);
    resumed.restore(&checkpoint).expect("cross-config restore");
    resumed.run(2);
    assert!(
        resumed.snapshot() == expected,
        "restoring a w=1/static checkpoint into w=7/stealing diverged"
    );
}

/// Restore is idempotent at the byte level: restoring a snapshot and
/// immediately re-snapshotting reproduces the original bytes exactly.
#[test]
fn conf_snapshot_round_trip_is_byte_lossless() {
    let mut sim = lwfa_sim(2, SchedulerPolicy::Stealing, true);
    sim.run(3);
    let first = sim.snapshot();

    let mut fresh = lwfa_sim(2, SchedulerPolicy::Stealing, true);
    fresh.restore(&first).expect("round-trip restore");
    let second = fresh.snapshot();
    assert!(
        first == second,
        "snapshot -> restore -> snapshot changed bytes"
    );
}

// ---------------------------------------------------------------------------
// Corruption matrix: every malformed input is a structured error, never a
// panic, and a failed restore leaves the target simulation untouched.
// ---------------------------------------------------------------------------

/// Parse the section table of a snapshot: (id, payload offset, payload len).
fn section_table(bytes: &[u8]) -> Vec<(u32, usize, usize)> {
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    (0..count)
        .map(|i| {
            let e = 16 + i * 28;
            let id = u32::from_le_bytes(bytes[e..e + 4].try_into().unwrap());
            let off = u64::from_le_bytes(bytes[e + 4..e + 12].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[e + 12..e + 20].try_into().unwrap()) as usize;
            (id, off, len)
        })
        .collect()
}

fn snapshot_for_corruption() -> (Vec<u8>, Simulation) {
    let mut sim = uniform_sim(2, SchedulerPolicy::Static, false);
    sim.run(2);
    let bytes = sim.snapshot();
    (bytes, sim)
}

#[test]
fn corrupted_snapshot_truncation_is_structured() {
    let (bytes, mut sim) = snapshot_for_corruption();
    // Every truncation length must fail cleanly: header-short inputs report
    // TooShort, table/payload-short inputs report a table or checksum error.
    for keep in [0usize, 7, 15, 16, 40, bytes.len() / 2, bytes.len() - 1] {
        let err = sim
            .restore(&bytes[..keep.min(bytes.len())])
            .expect_err("truncated snapshot must not restore");
        match err {
            SnapshotError::TooShort
            | SnapshotError::BadSectionTable
            | SnapshotError::ChecksumMismatch { .. } => {}
            other => panic!("truncation at {keep} gave unexpected error: {other}"),
        }
    }
}

#[test]
fn corrupted_snapshot_bad_magic_and_version() {
    let (bytes, mut sim) = snapshot_for_corruption();

    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xff;
    assert!(matches!(
        sim.restore(&bad_magic),
        Err(SnapshotError::BadMagic)
    ));

    let mut bad_version = bytes.clone();
    bad_version[8] = 0xfe;
    assert!(matches!(
        sim.restore(&bad_version),
        Err(SnapshotError::BadVersion(_))
    ));
}

/// Flipping one payload byte in *each* section is caught by that section's
/// checksum — corruption is localised and reported per section.
#[test]
fn corrupted_snapshot_every_section_checksum_detected() {
    let (bytes, mut sim) = snapshot_for_corruption();
    let table = section_table(&bytes);
    let all = [
        section::META,
        section::FIELDS,
        section::PARTICLES,
        section::RNG,
        section::DRIVER,
        section::COUNTERS,
        section::CACHE,
        section::ADDRS,
        section::REPORT,
    ];
    for &id in &all {
        let &(_, off, len) = table
            .iter()
            .find(|&&(sid, _, _)| sid == id)
            .unwrap_or_else(|| panic!("snapshot missing section {id}"));
        assert!(len > 0, "section {id} has empty payload");
        let mut corrupt = bytes.clone();
        corrupt[off + len / 2] ^= 0x01;
        match sim.restore(&corrupt) {
            Err(SnapshotError::ChecksumMismatch { section: s }) => {
                assert_eq!(s, id, "corruption attributed to the wrong section")
            }
            other => panic!("section {id} corruption gave {other:?}"),
        }
    }
}

/// A snapshot from an incompatible simulation shape is rejected with
/// `Incompatible` and leaves the target fully untouched.
#[test]
fn incompatible_snapshot_rejected_and_target_untouched() {
    let mut small = uniform_sim(2, SchedulerPolicy::Static, false);
    small.run(2);
    let checkpoint = small.snapshot();

    let mut other = workloads::uniform_plasma_sim(
        [8, 8, 16],
        UNIFORM_PPC,
        ShapeOrder::Cic,
        KernelConfig::FullOpt,
        UNIFORM_SEED,
    );
    other.run(1);
    let before = other.snapshot();
    assert!(matches!(
        other.restore(&checkpoint),
        Err(SnapshotError::Incompatible { .. })
    ));
    // Failed restores are all-or-nothing: the target state is unchanged.
    assert!(
        other.snapshot() == before,
        "failed restore mutated the target"
    );
}

/// Corrupt restores (checksum failures) are also all-or-nothing.
#[test]
fn failed_checksum_restore_leaves_target_untouched() {
    let (bytes, mut sim) = snapshot_for_corruption();
    let before = sim.snapshot();
    let table = section_table(&bytes);
    let &(_, off, len) = table
        .iter()
        .find(|&&(sid, _, _)| sid == section::PARTICLES)
        .expect("particles section present");
    let mut corrupt = bytes.clone();
    corrupt[off + len / 3] ^= 0x80;
    assert!(sim.restore(&corrupt).is_err());
    assert!(
        sim.snapshot() == before,
        "failed restore mutated the target"
    );
}
