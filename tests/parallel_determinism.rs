//! Worker-count and scheduler-policy invariance: the unified execution
//! layer must produce bit-identical physics *and* bit-identical emulated
//! cycle accounting for any `num_workers` x `SchedulerPolicy`, on both
//! evaluation workloads.
//!
//! This pins the deterministic fixed-order reductions of the pipeline:
//! per-worker rhocell and direct-scatter outputs are applied to the grid
//! in tile order, per-tile counter deltas are merged in tile order, the
//! sharded counting sort reproduces the sequential permutation exactly,
//! and the Z-slab field solve writes disjoint planes — so neither the
//! fields nor the per-phase cycle totals can depend on how work was
//! distributed across the persistent worker pool, whether by static
//! chunks or by work-stealing claims.

use matrix_pic::core::{workloads, Simulation};
use matrix_pic::deposit::{KernelConfig, ShapeOrder};
use matrix_pic::grid::{FieldArrays, GridGeometry, TileLayout};
use matrix_pic::machine::{Phase, SchedulerPolicy};
use matrix_pic::solver::LaserAntenna;

/// Runs `steps` and returns the final fields plus per-phase cycle totals.
fn run_sched(
    mut sim: Simulation,
    workers: usize,
    policy: SchedulerPolicy,
    steps: usize,
) -> (FieldArrays, [f64; 8], usize) {
    sim.cfg.num_workers = workers;
    sim.cfg.scheduler = policy;
    sim.run(steps);
    let mut cycles = [0.0; 8];
    for (i, p) in Phase::ALL.iter().enumerate() {
        cycles[i] = sim.machine.counters().cycles(*p);
    }
    (sim.fields.clone(), cycles, sim.num_particles())
}

/// [`run_sched`] with the default static scheduler.
fn run(sim: Simulation, workers: usize, steps: usize) -> (FieldArrays, [f64; 8], usize) {
    run_sched(sim, workers, SchedulerPolicy::Static, steps)
}

fn assert_bit_identical(
    label: &str,
    a: &(FieldArrays, [f64; 8], usize),
    b: &(FieldArrays, [f64; 8], usize),
) {
    assert_eq!(a.2, b.2, "{label}: particle counts diverged");
    for (name, x, y) in [
        ("jx", &a.0.jx, &b.0.jx),
        ("jy", &a.0.jy, &b.0.jy),
        ("jz", &a.0.jz, &b.0.jz),
        ("ex", &a.0.ex, &b.0.ex),
        ("ey", &a.0.ey, &b.0.ey),
        ("ez", &a.0.ez, &b.0.ez),
        ("bx", &a.0.bx, &b.0.bx),
        ("by", &a.0.by, &b.0.by),
        ("bz", &a.0.bz, &b.0.bz),
    ] {
        for (i, (u, v)) in x
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .collect::<Vec<_>>()
            .into_iter()
            .enumerate()
        {
            assert!(
                u.to_bits() == v.to_bits(),
                "{label}: {name}[{i}] differs across worker counts: {u:e} vs {v:e}"
            );
        }
    }
    for (i, p) in Phase::ALL.iter().enumerate() {
        assert!(
            a.1[i].to_bits() == b.1[i].to_bits(),
            "{label}: {p:?} cycles differ across worker counts: {} vs {}",
            a.1[i],
            b.1[i]
        );
    }
}

#[test]
fn conf_uniform_plasma_fullopt_is_worker_count_invariant() {
    let build = || {
        workloads::uniform_plasma_sim([16, 16, 16], 4, ShapeOrder::Cic, KernelConfig::FullOpt, 42)
    };
    let one = run(build(), 1, 3);
    let four = run(build(), 4, 3);
    assert_bit_identical("uniform/FullOpt 1v4", &one, &four);
    let seven = run(build(), 7, 3); // Ragged shard sizes.
    assert_bit_identical("uniform/FullOpt 1v7", &one, &seven);
}

#[test]
fn conf_uniform_plasma_qsp_vpu_is_worker_count_invariant() {
    let build = || {
        workloads::uniform_plasma_sim(
            [8, 8, 16],
            2,
            ShapeOrder::Qsp,
            KernelConfig::RhocellIncrSortVpu,
            7,
        )
    };
    let one = run(build(), 1, 2);
    let four = run(build(), 4, 2);
    assert_bit_identical("uniform/QSP-VPU 1v4", &one, &four);
}

#[test]
fn conf_lwfa_fullopt_is_worker_count_invariant() {
    // Moving window, laser injection, absorbing boundaries: exercises
    // particle removal and injection alongside the parallel sweeps.
    let build = || workloads::lwfa_sim([8, 8, 32], 2, ShapeOrder::Cic, KernelConfig::FullOpt, 13);
    let one = run(build(), 1, 4);
    let four = run(build(), 4, 4);
    assert_bit_identical("lwfa/FullOpt 1v4", &one, &four);
    let seven = run(build(), 7, 4); // Ragged shards on the removal path.
    assert_bit_identical("lwfa/FullOpt 1v7", &one, &seven);
}

#[test]
fn conf_baseline_direct_scatter_is_worker_count_invariant() {
    // The direct-scatter (WarpX baseline) kernel is sharded via per-tile
    // sparse current outputs applied in tile order; both the fields and
    // the per-tile counter drains must be invariant to the worker count.
    let build =
        || workloads::uniform_plasma_sim([8, 8, 8], 4, ShapeOrder::Cic, KernelConfig::Baseline, 3);
    let one = run(build(), 1, 2);
    let four = run(build(), 4, 2);
    assert_bit_identical("uniform/Baseline 1v4", &one, &four);
    let three = run(build(), 3, 2); // Ragged shard sizes.
    assert_bit_identical("uniform/Baseline 1v3", &one, &three);
}

#[test]
fn conf_global_sort_every_step_is_worker_count_invariant() {
    // Hybrid-GlobalSort runs the sharded counting sort every timestep:
    // histogram split + deterministic prefix merge must reproduce the
    // sequential particle order (and Sort-phase cycles) exactly.
    let build = || {
        workloads::uniform_plasma_sim(
            [8, 8, 16],
            3,
            ShapeOrder::Cic,
            KernelConfig::HybridGlobalSort,
            21,
        )
    };
    let one = run(build(), 1, 3);
    let four = run(build(), 4, 3);
    assert_bit_identical("uniform/GlobalSort 1v4", &one, &four);
    let seven = run(build(), 7, 3); // Ragged key chunks.
    assert_bit_identical("uniform/GlobalSort 1v7", &one, &seven);
}

/// Periodic boundaries + laser injection: the Z-slab field solve with a
/// fixed-order source pass must pin E, B and `FieldSolve` cycles across
/// 1/2/4/7 workers (satellite coverage for the sharded Maxwell step).
#[test]
fn conf_periodic_laser_field_solve_is_worker_count_invariant() {
    let build = || {
        let mut cfg = workloads::uniform_plasma_config(
            [12, 12, 24],
            ShapeOrder::Cic,
            KernelConfig::FullOpt,
            17,
        );
        cfg.laser = Some(LaserAntenna {
            lambda: 0.8e-6,
            a0: 2.0,
            tau: 6e-15,
            t_peak: 9e-15,
            waist: 3.0e-6,
            z_plane: 4,
        });
        let geom = GridGeometry::new(cfg.n_cells, [0.0; 3], cfg.dx, cfg.guard);
        let layout = TileLayout::new(&geom, cfg.tile_size);
        let electrons = workloads::load_uniform_plasma(
            &geom,
            &layout,
            workloads::UNIFORM_DENSITY,
            2,
            workloads::UNIFORM_UTH,
            17,
        );
        Simulation::from_parts(cfg, geom, layout, electrons, None)
    };
    let one = run(build(), 1, 4);
    for workers in [2usize, 4, 7] {
        let w = run(build(), workers, 4);
        assert_bit_identical(&format!("periodic-laser/FullOpt 1v{workers}"), &one, &w);
        // The laser must actually be driving fields, or the pin is vacuous.
        assert!(w.0.ex.max_abs() > 0.0, "laser injected no Ex");
    }
}

/// Static-vs-Stealing bit-identity on an adversarially imbalanced LWFA
/// workload: every particle lives in one hot tile while the other tiles
/// are empty, so under static chunks one worker carries the entire
/// particle workload while stealing redistributes claim-by-claim — the
/// maximal divergence in execution schedules. Fields, currents and
/// per-phase cycles must nonetheless agree bit for bit, because per-tile
/// outputs and counters merge in tile order regardless of who ran what.
#[test]
fn conf_static_vs_stealing_bit_identical_on_imbalanced_lwfa() {
    let build = || workloads::imbalanced_lwfa_sim([16, 16, 32], 4, 29);
    {
        // The imbalance must actually be adversarial, or this test
        // pins nothing: exactly one non-empty tile among several.
        let sim = build();
        let occupied = sim.electrons.tiles.iter().filter(|t| !t.is_empty()).count();
        assert_eq!(occupied, 1, "workload must concentrate in one hot tile");
        assert!(sim.electrons.tiles.len() >= 8, "need empty tiles around it");
        assert!(sim.num_particles() > 0);
    }
    let base = run_sched(build(), 1, SchedulerPolicy::Static, 3);
    for workers in [2usize, 4, 7] {
        for policy in [SchedulerPolicy::Static, SchedulerPolicy::Stealing] {
            let r = run_sched(build(), workers, policy, 3);
            assert_bit_identical(
                &format!("imbalanced-lwfa 1/static v {workers}/{policy:?}"),
                &base,
                &r,
            );
        }
    }
}

/// Moving-window injection through the pool: an empty-start LWFA whose
/// front plane injects `16x16x16 = 4096` particles per window advance —
/// at or above `INLINE_ITEM_THRESHOLD`, so multi-worker runs take the
/// *parallel* bucketed-insertion path (sequential RNG generation,
/// per-tile pool insertion) while the 1-worker reference runs inline.
/// Fields, cycles and particle counts must agree bit for bit.
#[test]
fn conf_parallel_window_injection_is_worker_count_invariant() {
    use matrix_pic::core::PlasmaSpec;
    use matrix_pic::grid::constants::{M_E, Q_E};
    use matrix_pic::particles::ParticleContainer;

    let build = || {
        let cfg = workloads::lwfa_config([16, 16, 8], ShapeOrder::Cic, KernelConfig::FullOpt, 5);
        let geom = GridGeometry::new(cfg.n_cells, [0.0; 3], cfg.dx, cfg.guard);
        let layout = TileLayout::new(&geom, cfg.tile_size);
        let electrons = ParticleContainer::new(&layout, -Q_E, M_E);
        let spec = PlasmaSpec {
            density: workloads::LWFA_DENSITY,
            ppc: 16,
            u_th: 0.01,
        };
        Simulation::from_parts(cfg, geom, layout, electrons, Some(spec))
    };
    let one = run(build(), 1, 3);
    assert!(one.2 > 0, "window must have injected particles");
    for policy in [SchedulerPolicy::Static, SchedulerPolicy::Stealing] {
        let w = run_sched(build(), 4, policy, 3);
        assert_bit_identical(&format!("window-injection 1v4 {policy:?}"), &one, &w);
    }
}

/// Pool-reuse determinism: one `Simulation` keeps its persistent
/// `WorkerPool` across steps (threads parked between phases and steps),
/// so this pins that *every* intermediate step — not just the final
/// state — is bit-identical across worker counts 1/2/4/7, and that a
/// run flipping the scheduler policy between steps still matches (the
/// policy is a pure execution knob, switchable mid-run).
#[test]
fn conf_pool_reuse_across_consecutive_steps_is_deterministic() {
    let build = || {
        workloads::uniform_plasma_sim([12, 12, 12], 2, ShapeOrder::Cic, KernelConfig::FullOpt, 11)
    };
    let snapshots = |workers: usize, flip_policy: bool| -> Vec<(FieldArrays, [f64; 8], usize)> {
        let mut sim = build();
        sim.cfg.num_workers = workers;
        (0..3)
            .map(|step| {
                if flip_policy {
                    sim.cfg.scheduler = if step % 2 == 0 {
                        SchedulerPolicy::Stealing
                    } else {
                        SchedulerPolicy::Static
                    };
                }
                sim.step();
                let mut cycles = [0.0; 8];
                for (i, p) in Phase::ALL.iter().enumerate() {
                    cycles[i] = sim.machine.counters().cycles(*p);
                }
                (sim.fields.clone(), cycles, sim.num_particles())
            })
            .collect()
    };
    let reference = snapshots(1, false);
    for workers in [1usize, 2, 4, 7] {
        for flip in [false, true] {
            if workers == 1 && !flip {
                continue; // That is the reference itself.
            }
            let got = snapshots(workers, flip);
            for (step, (want, have)) in reference.iter().zip(&got).enumerate() {
                assert_bit_identical(
                    &format!("pool-reuse step {step}, {workers} workers, flip {flip}"),
                    want,
                    have,
                );
            }
        }
    }
}
