//! Worker-count invariance: the parallel tile pipeline must produce
//! bit-identical physics *and* bit-identical emulated cycle accounting
//! for any `num_workers`, on both evaluation workloads.
//!
//! This pins the deterministic fixed-order reductions of the pipeline:
//! per-worker rhocell and direct-scatter outputs are applied to the grid
//! in tile order, per-tile counter deltas are merged in tile order, the
//! sharded counting sort reproduces the sequential permutation exactly,
//! and the Z-slab field solve writes disjoint planes — so neither the
//! fields nor the per-phase cycle totals can depend on how work was
//! sharded across threads.

use matrix_pic::core::{workloads, Simulation};
use matrix_pic::deposit::{KernelConfig, ShapeOrder};
use matrix_pic::grid::{FieldArrays, GridGeometry, TileLayout};
use matrix_pic::machine::Phase;
use matrix_pic::solver::LaserAntenna;

/// Runs `steps` and returns the final fields plus per-phase cycle totals.
fn run(mut sim: Simulation, workers: usize, steps: usize) -> (FieldArrays, [f64; 8], usize) {
    sim.cfg.num_workers = workers;
    sim.run(steps);
    let mut cycles = [0.0; 8];
    for (i, p) in Phase::ALL.iter().enumerate() {
        cycles[i] = sim.machine.counters().cycles(*p);
    }
    (sim.fields.clone(), cycles, sim.num_particles())
}

fn assert_bit_identical(
    label: &str,
    a: &(FieldArrays, [f64; 8], usize),
    b: &(FieldArrays, [f64; 8], usize),
) {
    assert_eq!(a.2, b.2, "{label}: particle counts diverged");
    for (name, x, y) in [
        ("jx", &a.0.jx, &b.0.jx),
        ("jy", &a.0.jy, &b.0.jy),
        ("jz", &a.0.jz, &b.0.jz),
        ("ex", &a.0.ex, &b.0.ex),
        ("ey", &a.0.ey, &b.0.ey),
        ("ez", &a.0.ez, &b.0.ez),
        ("bx", &a.0.bx, &b.0.bx),
        ("by", &a.0.by, &b.0.by),
        ("bz", &a.0.bz, &b.0.bz),
    ] {
        for (i, (u, v)) in x
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .collect::<Vec<_>>()
            .into_iter()
            .enumerate()
        {
            assert!(
                u.to_bits() == v.to_bits(),
                "{label}: {name}[{i}] differs across worker counts: {u:e} vs {v:e}"
            );
        }
    }
    for (i, p) in Phase::ALL.iter().enumerate() {
        assert!(
            a.1[i].to_bits() == b.1[i].to_bits(),
            "{label}: {p:?} cycles differ across worker counts: {} vs {}",
            a.1[i],
            b.1[i]
        );
    }
}

#[test]
fn uniform_plasma_fullopt_is_worker_count_invariant() {
    let build = || {
        workloads::uniform_plasma_sim([16, 16, 16], 4, ShapeOrder::Cic, KernelConfig::FullOpt, 42)
    };
    let one = run(build(), 1, 3);
    let four = run(build(), 4, 3);
    assert_bit_identical("uniform/FullOpt 1v4", &one, &four);
    let seven = run(build(), 7, 3); // Ragged shard sizes.
    assert_bit_identical("uniform/FullOpt 1v7", &one, &seven);
}

#[test]
fn uniform_plasma_qsp_vpu_is_worker_count_invariant() {
    let build = || {
        workloads::uniform_plasma_sim(
            [8, 8, 16],
            2,
            ShapeOrder::Qsp,
            KernelConfig::RhocellIncrSortVpu,
            7,
        )
    };
    let one = run(build(), 1, 2);
    let four = run(build(), 4, 2);
    assert_bit_identical("uniform/QSP-VPU 1v4", &one, &four);
}

#[test]
fn lwfa_fullopt_is_worker_count_invariant() {
    // Moving window, laser injection, absorbing boundaries: exercises
    // particle removal and injection alongside the parallel sweeps.
    let build = || workloads::lwfa_sim([8, 8, 32], 2, ShapeOrder::Cic, KernelConfig::FullOpt, 13);
    let one = run(build(), 1, 4);
    let four = run(build(), 4, 4);
    assert_bit_identical("lwfa/FullOpt 1v4", &one, &four);
    let seven = run(build(), 7, 4); // Ragged shards on the removal path.
    assert_bit_identical("lwfa/FullOpt 1v7", &one, &seven);
}

#[test]
fn baseline_direct_scatter_is_worker_count_invariant() {
    // The direct-scatter (WarpX baseline) kernel is sharded via per-tile
    // sparse current outputs applied in tile order; both the fields and
    // the per-tile counter drains must be invariant to the worker count.
    let build =
        || workloads::uniform_plasma_sim([8, 8, 8], 4, ShapeOrder::Cic, KernelConfig::Baseline, 3);
    let one = run(build(), 1, 2);
    let four = run(build(), 4, 2);
    assert_bit_identical("uniform/Baseline 1v4", &one, &four);
    let three = run(build(), 3, 2); // Ragged shard sizes.
    assert_bit_identical("uniform/Baseline 1v3", &one, &three);
}

#[test]
fn global_sort_every_step_is_worker_count_invariant() {
    // Hybrid-GlobalSort runs the sharded counting sort every timestep:
    // histogram split + deterministic prefix merge must reproduce the
    // sequential particle order (and Sort-phase cycles) exactly.
    let build = || {
        workloads::uniform_plasma_sim(
            [8, 8, 16],
            3,
            ShapeOrder::Cic,
            KernelConfig::HybridGlobalSort,
            21,
        )
    };
    let one = run(build(), 1, 3);
    let four = run(build(), 4, 3);
    assert_bit_identical("uniform/GlobalSort 1v4", &one, &four);
    let seven = run(build(), 7, 3); // Ragged key chunks.
    assert_bit_identical("uniform/GlobalSort 1v7", &one, &seven);
}

/// Periodic boundaries + laser injection: the Z-slab field solve with a
/// fixed-order source pass must pin E, B and `FieldSolve` cycles across
/// 1/2/4/7 workers (satellite coverage for the sharded Maxwell step).
#[test]
fn periodic_laser_field_solve_is_worker_count_invariant() {
    let build = || {
        let mut cfg = workloads::uniform_plasma_config(
            [12, 12, 24],
            ShapeOrder::Cic,
            KernelConfig::FullOpt,
            17,
        );
        cfg.laser = Some(LaserAntenna {
            lambda: 0.8e-6,
            a0: 2.0,
            tau: 6e-15,
            t_peak: 9e-15,
            waist: 3.0e-6,
            z_plane: 4,
        });
        let geom = GridGeometry::new(cfg.n_cells, [0.0; 3], cfg.dx, cfg.guard);
        let layout = TileLayout::new(&geom, cfg.tile_size);
        let electrons = workloads::load_uniform_plasma(
            &geom,
            &layout,
            workloads::UNIFORM_DENSITY,
            2,
            workloads::UNIFORM_UTH,
            17,
        );
        Simulation::from_parts(cfg, geom, layout, electrons, None)
    };
    let one = run(build(), 1, 4);
    for workers in [2usize, 4, 7] {
        let w = run(build(), workers, 4);
        assert_bit_identical(&format!("periodic-laser/FullOpt 1v{workers}"), &one, &w);
        // The laser must actually be driving fields, or the pin is vacuous.
        assert!(w.0.ex.max_abs() > 0.0, "laser injected no Ex");
    }
}
