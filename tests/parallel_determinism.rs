//! Worker-count invariance: the parallel tile pipeline must produce
//! bit-identical physics *and* bit-identical emulated cycle accounting
//! for any `num_workers`, on both evaluation workloads.
//!
//! This pins the two deterministic fixed-order reductions of the
//! pipeline: per-worker rhocell outputs are applied to the grid in tile
//! order, and per-tile counter deltas are merged in tile order — so
//! neither field currents nor per-phase cycle totals can depend on how
//! tiles were sharded across threads.

use matrix_pic::core::{workloads, Simulation};
use matrix_pic::deposit::{KernelConfig, ShapeOrder};
use matrix_pic::grid::FieldArrays;
use matrix_pic::machine::Phase;

/// Runs `steps` and returns the final fields plus per-phase cycle totals.
fn run(mut sim: Simulation, workers: usize, steps: usize) -> (FieldArrays, [f64; 8], usize) {
    sim.cfg.num_workers = workers;
    sim.run(steps);
    let mut cycles = [0.0; 8];
    for (i, p) in Phase::ALL.iter().enumerate() {
        cycles[i] = sim.machine.counters().cycles(*p);
    }
    (sim.fields.clone(), cycles, sim.num_particles())
}

fn assert_bit_identical(
    label: &str,
    a: &(FieldArrays, [f64; 8], usize),
    b: &(FieldArrays, [f64; 8], usize),
) {
    assert_eq!(a.2, b.2, "{label}: particle counts diverged");
    for (name, x, y) in [
        ("jx", &a.0.jx, &b.0.jx),
        ("jy", &a.0.jy, &b.0.jy),
        ("jz", &a.0.jz, &b.0.jz),
        ("ex", &a.0.ex, &b.0.ex),
        ("bz", &a.0.bz, &b.0.bz),
    ] {
        for (i, (u, v)) in x
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .collect::<Vec<_>>()
            .into_iter()
            .enumerate()
        {
            assert!(
                u.to_bits() == v.to_bits(),
                "{label}: {name}[{i}] differs across worker counts: {u:e} vs {v:e}"
            );
        }
    }
    for (i, p) in Phase::ALL.iter().enumerate() {
        assert!(
            a.1[i].to_bits() == b.1[i].to_bits(),
            "{label}: {p:?} cycles differ across worker counts: {} vs {}",
            a.1[i],
            b.1[i]
        );
    }
}

#[test]
fn uniform_plasma_fullopt_is_worker_count_invariant() {
    let build = || {
        workloads::uniform_plasma_sim([16, 16, 16], 4, ShapeOrder::Cic, KernelConfig::FullOpt, 42)
    };
    let one = run(build(), 1, 3);
    let four = run(build(), 4, 3);
    assert_bit_identical("uniform/FullOpt 1v4", &one, &four);
    let seven = run(build(), 7, 3); // Ragged shard sizes.
    assert_bit_identical("uniform/FullOpt 1v7", &one, &seven);
}

#[test]
fn uniform_plasma_qsp_vpu_is_worker_count_invariant() {
    let build = || {
        workloads::uniform_plasma_sim(
            [8, 8, 16],
            2,
            ShapeOrder::Qsp,
            KernelConfig::RhocellIncrSortVpu,
            7,
        )
    };
    let one = run(build(), 1, 2);
    let four = run(build(), 4, 2);
    assert_bit_identical("uniform/QSP-VPU 1v4", &one, &four);
}

#[test]
fn lwfa_fullopt_is_worker_count_invariant() {
    // Moving window, laser injection, absorbing boundaries: exercises
    // particle removal and injection alongside the parallel sweeps.
    let build = || workloads::lwfa_sim([8, 8, 32], 2, ShapeOrder::Cic, KernelConfig::FullOpt, 13);
    let one = run(build(), 1, 4);
    let four = run(build(), 4, 4);
    assert_bit_identical("lwfa/FullOpt 1v4", &one, &four);
    let seven = run(build(), 7, 4); // Ragged shards on the removal path.
    assert_bit_identical("lwfa/FullOpt 1v7", &one, &seven);
}

#[test]
fn baseline_direct_scatter_is_worker_count_invariant() {
    // The direct-scatter path runs sequentially regardless of the worker
    // knob; its results must still be invariant to the setting.
    let build =
        || workloads::uniform_plasma_sim([8, 8, 8], 4, ShapeOrder::Cic, KernelConfig::Baseline, 3);
    let one = run(build(), 1, 2);
    let four = run(build(), 4, 2);
    assert_bit_identical("uniform/Baseline 1v4", &one, &four);
}
