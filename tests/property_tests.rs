//! Property-based tests over the core data structures and invariants.

use matrix_pic::deposit::{reference_deposit, ShapeOrder};
use matrix_pic::grid::GridGeometry;
use matrix_pic::particles::{counting_sort_keys, Gpma, INVALID_PARTICLE_ID};
use proptest::prelude::*;

/// Arbitrary move sequences never lose or duplicate particles and keep
/// every GPMA invariant — the structure's central safety property.
#[test]
fn gpma_survives_arbitrary_move_sequences() {
    proptest!(ProptestConfig::with_cases(64), |(
        initial in prop::collection::vec(0usize..16, 1..200),
        moves in prop::collection::vec((0usize..200, 0usize..16), 0..300),
    )| {
        let n_bins = 16;
        let mut cells = initial.clone();
        let mut g = Gpma::build(&cells, n_bins, 0.3);
        g.check_invariants(&cells);
        // Apply moves in batches (one per "step"), deduplicating by
        // particle within a batch (the sweep visits each particle once).
        for batch in moves.chunks(20) {
            let mut seen = std::collections::HashSet::new();
            for &(p, new_bin) in batch {
                let p = p % cells.len();
                if !seen.insert(p) || cells[p] == new_bin {
                    continue;
                }
                g.queue_move(p, cells[p], new_bin);
                cells[p] = new_bin;
            }
            let _ = g.apply_pending_moves(&cells);
            g.check_invariants(&cells);
        }
        prop_assert_eq!(g.num_particles(), cells.len());
    });
}

/// Mixed insert/remove workloads keep the GPMA consistent.
#[test]
fn gpma_survives_insert_remove_churn() {
    proptest!(ProptestConfig::with_cases(48), |(
        ops in prop::collection::vec((0u8..3, 0usize..64, 0usize..8), 1..150),
    )| {
        let n_bins = 8;
        let mut cells: Vec<usize> = vec![0, 1, 2, 3];
        let mut g = Gpma::build(&cells, n_bins, 0.5);
        for chunk in ops.chunks(10) {
            let mut touched = std::collections::HashSet::new();
            for &(op, pick, bin) in chunk {
                match op {
                    // Insert a brand-new particle.
                    0 => {
                        let p = cells.len();
                        cells.push(bin);
                        g.queue_insert(p, bin);
                        touched.insert(p);
                    }
                    // Remove an existing live particle.
                    1 => {
                        let live: Vec<usize> = (0..cells.len())
                            .filter(|&p| cells[p] != INVALID_PARTICLE_ID
                                && !touched.contains(&p))
                            .collect();
                        if live.is_empty() { continue; }
                        let p = live[pick % live.len()];
                        g.queue_remove(p, cells[p]);
                        cells[p] = INVALID_PARTICLE_ID;
                        touched.insert(p);
                    }
                    // Move an existing live particle.
                    _ => {
                        let live: Vec<usize> = (0..cells.len())
                            .filter(|&p| cells[p] != INVALID_PARTICLE_ID
                                && !touched.contains(&p))
                            .collect();
                        if live.is_empty() { continue; }
                        let p = live[pick % live.len()];
                        if cells[p] == bin { continue; }
                        g.queue_move(p, cells[p], bin);
                        cells[p] = bin;
                        touched.insert(p);
                    }
                }
            }
            let _ = g.apply_pending_moves(&cells);
            g.check_invariants(&cells);
        }
    });
}

/// Counting sort always produces a stable permutation that sorts.
#[test]
fn counting_sort_is_stable_bijection() {
    proptest!(|(keys in prop::collection::vec(0usize..32, 0..500))| {
        let (perm, _) = counting_sort_keys(&keys, 32);
        prop_assert_eq!(perm.len(), keys.len());
        // Bijection.
        let mut seen = vec![false; keys.len()];
        for &p in &perm {
            prop_assert!(!seen[p]);
            seen[p] = true;
        }
        // Sorted and stable.
        for w in perm.windows(2) {
            let (a, b) = (keys[w[0]], keys[w[1]]);
            prop_assert!(a <= b);
            if a == b {
                prop_assert!(w[0] < w[1], "stability violated");
            }
        }
    });
}

/// 1-D shape weights are a partition of unity for every order and any
/// intra-cell offset — the discrete charge-conservation property.
#[test]
fn shape_weights_partition_unity() {
    proptest!(|(d in 0.0f64..1.0, order in 1usize..=3)| {
        let order = ShapeOrder::from_order(order);
        let mut w = [0.0; 4];
        order.weights(d, &mut w);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-13);
        prop_assert!(w.iter().all(|&x| x >= -1e-15));
    });
}

/// Total deposited current equals the analytic sum q*w*v/V for any
/// particle set (shape functions conserve the zeroth moment).
#[test]
fn deposition_conserves_total_current() {
    proptest!(ProptestConfig::with_cases(24), |(
        parts in prop::collection::vec(
            (0.0f64..8.0, 0.0f64..8.0, 0.0f64..8.0,
             -0.5f64..0.5, -0.5f64..0.5, -0.5f64..0.5),
            1..40),
        order in 1usize..=3,
    )| {
        use matrix_pic::grid::TileLayout;
        use matrix_pic::particles::{Departure, ParticleContainer};
        let geom = GridGeometry::new([8, 8, 8], [0.0; 3], [1.0; 3], 2);
        let layout = TileLayout::new(&geom, [8, 8, 8]);
        let mut c = ParticleContainer::new(&layout, -2.0, 1.0);
        let mut expect = 0.0;
        for &(x, y, z, ux, uy, uz) in &parts {
            let _ = c.inject(&layout, &geom, Departure { x, y, z, ux, uy, uz, w: 1.5 });
            let (vx, _, _) = matrix_pic::deposit::velocity_from_u(ux, uy, uz);
            expect += -2.0 * 1.5 * vx / geom.cell_volume();
        }
        let order = ShapeOrder::from_order(order);
        let (jx, _, _) = reference_deposit(&geom, order, &c);
        let scale = expect.abs().max(1e-6);
        prop_assert!((jx.sum() - expect).abs() / scale < 1e-10);
    });
}

/// Position wrap + cell id: every position maps to a cell inside the
/// domain, and wrap is idempotent.
#[test]
fn wrap_is_idempotent_and_in_range() {
    proptest!(|(x in -100.0f64..100.0, y in -100.0f64..100.0, z in -100.0f64..100.0)| {
        let geom = GridGeometry::new([8, 4, 2], [0.0; 3], [1.0; 3], 1);
        let w1 = geom.wrap_position([x, y, z]);
        let w2 = geom.wrap_position(w1);
        for d in 0..3 {
            prop_assert!(w1[d] >= geom.lo[d] && w1[d] < geom.hi()[d] + 1e-9);
            prop_assert!((w1[d] - w2[d]).abs() < 1e-9);
        }
        let (cell, _) = geom.locate(w1[0], w1[1], w1[2]);
        let c = geom.wrap_cell(cell);
        prop_assert!(c[0] < 8 && c[1] < 4 && c[2] < 2);
    });
}
