//! The cell-run batched hot path versus the per-particle reference
//! paths, end to end through `Simulation::step`.
//!
//! Contract under test (the PR 2-4 determinism contract extended to the
//! batched path, plus the batched-vs-reference value claims):
//!
//! * batched runs are bit-identical across worker counts AND scheduler
//!   policies — fields, currents, particle counts and per-phase
//!   `MachineCounters`;
//! * gather/push values are bit-identical between the batched and
//!   per-particle paths (gathers are read-only, so caching a run's node
//!   block is value-exact), and for rhocell/matrix kernels the currents
//!   are bit-identical too;
//! * the direct-scatter kernel's run-block regrouping reorders FP adds
//!   on stencil nodes shared between cells, so its currents are pinned
//!   to a tight relative bound instead;
//! * unsorted configurations ignore the knob entirely (fallback to the
//!   reference sweep, bitwise).

use matrix_pic::core::{workloads, Simulation};
use matrix_pic::deposit::{KernelConfig, ShapeOrder};
use matrix_pic::grid::FieldArrays;
use matrix_pic::machine::{Phase, SchedulerPolicy};

fn uniform(kernel: KernelConfig, batching: bool) -> Simulation {
    let mut sim = workloads::uniform_plasma_sim([16, 16, 16], 4, ShapeOrder::Cic, kernel, 9);
    sim.cfg.batching = batching;
    sim
}

/// Runs `steps` and snapshots fields + per-phase cycles + N.
fn run(
    mut sim: Simulation,
    workers: usize,
    policy: SchedulerPolicy,
    steps: usize,
) -> (FieldArrays, [f64; 8], usize) {
    sim.cfg.num_workers = workers;
    sim.cfg.scheduler = policy;
    sim.run(steps);
    let mut cycles = [0.0; 8];
    for (i, p) in Phase::ALL.iter().enumerate() {
        cycles[i] = sim.machine.counters().cycles(*p);
    }
    (sim.fields.clone(), cycles, sim.num_particles())
}

fn field_list(f: &FieldArrays) -> [(&'static str, &matrix_pic::grid::Array3); 9] {
    [
        ("jx", &f.jx),
        ("jy", &f.jy),
        ("jz", &f.jz),
        ("ex", &f.ex),
        ("ey", &f.ey),
        ("ez", &f.ez),
        ("bx", &f.bx),
        ("by", &f.by),
        ("bz", &f.bz),
    ]
}

fn assert_bitwise(
    label: &str,
    a: &(FieldArrays, [f64; 8], usize),
    b: &(FieldArrays, [f64; 8], usize),
) {
    assert_eq!(a.2, b.2, "{label}: particle counts diverged");
    for ((name, x), (_, y)) in field_list(&a.0).into_iter().zip(field_list(&b.0)) {
        let diverged = x
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .position(|(u, v)| u.to_bits() != v.to_bits());
        assert!(
            diverged.is_none(),
            "{label}: {name} diverged at {diverged:?}"
        );
    }
    for (i, p) in Phase::ALL.iter().enumerate() {
        assert_eq!(
            a.1[i].to_bits(),
            b.1[i].to_bits(),
            "{label}: {p:?} cycles diverged ({} vs {})",
            a.1[i],
            b.1[i]
        );
    }
}

/// Bitwise comparison of values only (fields/currents), cycles ignored —
/// the batched cost model intentionally charges fewer cycles.
fn assert_values_bitwise(label: &str, a: &FieldArrays, b: &FieldArrays) {
    for ((name, x), (_, y)) in field_list(a).into_iter().zip(field_list(b)) {
        let diverged = x
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .position(|(u, v)| u.to_bits() != v.to_bits());
        assert!(
            diverged.is_none(),
            "{label}: {name} diverged at {diverged:?}"
        );
    }
}

#[test]
fn conf_batched_fullopt_values_match_per_particle_bitwise() {
    // Gather batching is value-exact and the matrix kernel is run-based
    // either way: three FullOpt steps must agree bit for bit in every
    // field array, while the batched run charges strictly fewer
    // gather-phase cycles (the modelled saving).
    let (ref_f, ref_cy, n0) = run(
        uniform(KernelConfig::FullOpt, false),
        1,
        SchedulerPolicy::Static,
        3,
    );
    let (bat_f, bat_cy, n1) = run(
        uniform(KernelConfig::FullOpt, true),
        1,
        SchedulerPolicy::Static,
        3,
    );
    assert_eq!(n0, n1);
    assert_values_bitwise("FullOpt batched vs per-particle", &ref_f, &bat_f);
    let gather = Phase::ALL.iter().position(|p| *p == Phase::Gather).unwrap();
    assert!(
        bat_cy[gather] < ref_cy[gather],
        "batched gather must charge fewer cycles: {} vs {}",
        bat_cy[gather],
        ref_cy[gather]
    );
}

#[test]
fn conf_batched_rhocell_values_match_per_particle_bitwise() {
    let (ref_f, _, _) = run(
        uniform(KernelConfig::RhocellIncrSortVpu, false),
        1,
        SchedulerPolicy::Static,
        2,
    );
    let (bat_f, _, _) = run(
        uniform(KernelConfig::RhocellIncrSortVpu, true),
        1,
        SchedulerPolicy::Static,
        2,
    );
    assert_values_bitwise("RhocellVPU batched vs per-particle", &ref_f, &bat_f);
}

#[test]
fn batched_baseline_values_match_within_tight_bound() {
    // Direct scatter regroups cross-run FP adds: currents agree to a
    // tight relative bound (not bitwise); E/B evolve from currents, so
    // they inherit the same bound.
    let (ref_f, _, _) = run(
        uniform(KernelConfig::BaselineIncrSort, false),
        1,
        SchedulerPolicy::Static,
        2,
    );
    let (bat_f, _, _) = run(
        uniform(KernelConfig::BaselineIncrSort, true),
        1,
        SchedulerPolicy::Static,
        2,
    );
    for ((name, x), (_, y)) in field_list(&ref_f).into_iter().zip(field_list(&bat_f)) {
        let scale = x
            .as_slice()
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(1e-300);
        let worst = x
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(u, v)| (u - v).abs() / scale)
            .fold(0.0, f64::max);
        assert!(
            worst < 1e-12,
            "{name}: rel deviation {worst} exceeds ULP bound"
        );
    }
}

#[test]
fn conf_batched_path_is_bit_identical_across_workers_and_policies() {
    // The acceptance gate of the tentpole: batching preserves the PR 2-4
    // contract — any worker count, either scheduler, same bits
    // everywhere including per-phase counters.
    let reference = run(
        uniform(KernelConfig::FullOpt, true),
        1,
        SchedulerPolicy::Static,
        3,
    );
    for workers in [2usize, 4, 7] {
        for policy in [SchedulerPolicy::Static, SchedulerPolicy::Stealing] {
            let got = run(uniform(KernelConfig::FullOpt, true), workers, policy, 3);
            assert_bitwise(
                &format!("batched FullOpt {workers}w {}", policy.label()),
                &reference,
                &got,
            );
        }
    }
}

#[test]
fn conf_batched_unsorted_fallback_is_bitwise_noop() {
    // HybridNoSort provides no cell-grouped order: the knob must change
    // nothing at all — values AND cycles.
    let a = run(
        uniform(KernelConfig::HybridNoSort, false),
        1,
        SchedulerPolicy::Static,
        2,
    );
    let b = run(
        uniform(KernelConfig::HybridNoSort, true),
        1,
        SchedulerPolicy::Static,
        2,
    );
    assert_bitwise("HybridNoSort fallback", &a, &b);
}

#[test]
fn conf_batched_imbalanced_lwfa_with_empty_tiles_stays_deterministic() {
    // One hot tile, the rest empty, moving window + absorbing walls:
    // empty tiles must charge nothing and the batched path must stay
    // bit-identical across workers and policies on the skewed input.
    let build = || {
        let mut sim = workloads::imbalanced_lwfa_sim([16, 16, 32], 2, 33);
        sim.cfg.batching = true;
        sim
    };
    let occupied = build()
        .electrons
        .tiles
        .iter()
        .filter(|t| !t.is_empty())
        .count();
    assert!(
        occupied < build().electrons.tiles.len(),
        "workload must actually contain empty tiles"
    );
    let reference = run(build(), 1, SchedulerPolicy::Static, 2);
    for workers in [3usize, 7] {
        for policy in [SchedulerPolicy::Static, SchedulerPolicy::Stealing] {
            let got = run(build(), workers, policy, 2);
            assert_bitwise(
                &format!("batched LWFA {workers}w {}", policy.label()),
                &reference,
                &got,
            );
        }
    }
}

fn uniform_simd(kernel: KernelConfig, batching: bool, simd: bool) -> Simulation {
    let mut sim = uniform(kernel, batching);
    sim.cfg.simd = simd;
    sim
}

/// The SIMD-on equivalence contract: deposited values are bitwise; the
/// memory-bound phases the lane-parallel mode re-prices through the
/// state-free streaming model — Preprocess (streamed staging loads),
/// Compute (streamed rhocell accumulates / a prefetcher left clean for
/// the scatter sweep), Sort (the incremental sweep's three unit-stride
/// position streams), Gather (register-reuse block gathers) and, for
/// rhocell-based kernels, Reduce (the fused rhocell→grid traversal) —
/// charge strictly fewer cycles; every remaining phase (Push,
/// FieldSolve, Other) is bitwise.
fn assert_simd_streaming_contract(
    label: &str,
    scalar: &(FieldArrays, [f64; 8], usize),
    simd: &(FieldArrays, [f64; 8], usize),
    reduce_cheaper: bool,
) {
    assert_eq!(scalar.2, simd.2, "{label}: particle counts diverged");
    assert_values_bitwise(label, &scalar.0, &simd.0);
    for (i, p) in Phase::ALL.iter().enumerate() {
        let cheaper = matches!(
            p,
            Phase::Preprocess | Phase::Compute | Phase::Sort | Phase::Gather
        ) || (reduce_cheaper && *p == Phase::Reduce);
        if cheaper {
            assert!(
                simd.1[i] < scalar.1[i],
                "{label}: {p:?} must charge fewer cycles under the \
                 streaming prices ({} vs {})",
                simd.1[i],
                scalar.1[i]
            );
        } else {
            assert_eq!(
                scalar.1[i].to_bits(),
                simd.1[i].to_bits(),
                "{label}: {p:?} cycles diverged ({} vs {})",
                scalar.1[i],
                simd.1[i]
            );
        }
    }
}

#[test]
fn conf_simd_fullopt_values_bitwise_memory_phases_cheaper() {
    // The tentpole's SIMD contract, single-step and multi-step: the
    // lane-parallel mode reproduces every batched-scalar value bit for
    // bit (lane packs preserve per-particle/per-node association and add
    // order) while the four memory-bound phases charge strictly fewer
    // cycles under the state-free streaming prices.
    for steps in [1usize, 3] {
        let scalar = run(
            uniform_simd(KernelConfig::FullOpt, true, false),
            1,
            SchedulerPolicy::Static,
            steps,
        );
        let simd = run(
            uniform_simd(KernelConfig::FullOpt, true, true),
            1,
            SchedulerPolicy::Static,
            steps,
        );
        assert_simd_streaming_contract(
            &format!("FullOpt simd vs scalar ({steps} steps)"),
            &scalar,
            &simd,
            true,
        );
    }
}

#[test]
fn conf_simd_rhocell_values_bitwise_memory_phases_cheaper() {
    let scalar = run(
        uniform_simd(KernelConfig::RhocellIncrSortVpu, true, false),
        1,
        SchedulerPolicy::Static,
        2,
    );
    let simd = run(
        uniform_simd(KernelConfig::RhocellIncrSortVpu, true, true),
        1,
        SchedulerPolicy::Static,
        2,
    );
    assert_simd_streaming_contract("RhocellVPU simd vs scalar", &scalar, &simd, true);
}

#[test]
fn conf_simd_direct_scatter_values_bitwise_memory_phases_cheaper() {
    // The baseline kernel deposits straight to the grid — no rhocell, no
    // Reduce phase (bitwise zero both ways) — but its staging and the
    // shared push gather still take the streamed prices, and the scatter
    // sweep starts from a prefetcher the staging no longer contaminated,
    // so Preprocess/Compute/Gather are strictly cheaper here too.
    let scalar = run(
        uniform_simd(KernelConfig::BaselineIncrSort, true, false),
        1,
        SchedulerPolicy::Static,
        2,
    );
    let simd = run(
        uniform_simd(KernelConfig::BaselineIncrSort, true, true),
        1,
        SchedulerPolicy::Static,
        2,
    );
    assert_simd_streaming_contract("BaselineIncrSort simd vs scalar", &scalar, &simd, false);
}

#[test]
fn conf_simd_path_is_bit_identical_across_workers_and_policies() {
    // The full knob matrix on the SIMD path: any worker count, either
    // scheduler — same bits everywhere including per-phase counters.
    let reference = run(
        uniform_simd(KernelConfig::FullOpt, true, true),
        1,
        SchedulerPolicy::Static,
        3,
    );
    for workers in [2usize, 4, 7] {
        for policy in [SchedulerPolicy::Static, SchedulerPolicy::Stealing] {
            let got = run(
                uniform_simd(KernelConfig::FullOpt, true, true),
                workers,
                policy,
                3,
            );
            assert_bitwise(
                &format!("simd FullOpt {workers}w {}", policy.label()),
                &reference,
                &got,
            );
        }
    }
}

#[test]
fn conf_simd_without_batching_is_a_bitwise_noop() {
    // simd is ANDed with batching: without the batched path there are no
    // runs to chunk, so the knob must change nothing — values AND
    // cycles, on both a sorted and an unsorted kernel config.
    for kernel in [KernelConfig::FullOpt, KernelConfig::HybridNoSort] {
        let off = run(
            uniform_simd(kernel, false, false),
            1,
            SchedulerPolicy::Static,
            2,
        );
        let on = run(
            uniform_simd(kernel, false, true),
            1,
            SchedulerPolicy::Static,
            2,
        );
        assert_bitwise(&format!("{kernel:?} simd-no-batching noop"), &off, &on);
    }
}

#[test]
fn conf_batched_deposit_survives_stealing_chunk_boundaries() {
    // Drive the batched deposit directly with pinned stealing chunk
    // sizes so tile claims split at every batch boundary — including K
    // that does not divide the tile count and K larger than it. The
    // fixed-order apply/absorb must keep currents AND deposition cycles
    // bit-identical to the sequential run regardless of chunking.
    use matrix_pic::grid::{GridGeometry, TileLayout};
    use matrix_pic::machine::{Machine, MachineConfig, WorkerPool};

    let geom = GridGeometry::new([8, 8, 8], [0.0; 3], [1.0e-6; 3], 2);
    let layout = TileLayout::new(&geom, [4, 4, 4]); // 8 tiles to split.
    let deposit_once = |exec_chunk: Option<(usize, usize)>| {
        let mut container = workloads::load_uniform_plasma(
            &geom,
            &layout,
            workloads::UNIFORM_DENSITY,
            4,
            workloads::UNIFORM_UTH,
            7,
        );
        let mut m = Machine::new(MachineConfig::lx2());
        let mut fields = matrix_pic::grid::FieldArrays::new(&geom);
        let mut dep = KernelConfig::FullOpt.build(ShapeOrder::Cic);
        dep.set_batching(true);
        dep.prepare(&mut m, &geom, &layout, &mut container);
        dep.sort_step(&mut m, &geom, &layout, &mut container, false);
        match exec_chunk {
            None => dep.deposit_step(&mut m, &geom, &layout, &container, &mut fields),
            Some((workers, k)) => {
                let pool = WorkerPool::new(workers);
                let exec = pool.exec(SchedulerPolicy::Stealing).with_steal_chunk(k);
                dep.deposit_step_parallel(&mut m, &geom, &layout, &container, &mut fields, exec);
            }
        }
        (fields, m.counters().deposition_cycles())
    };
    let (want_f, want_cy) = deposit_once(None);
    for k in [1usize, 3, 7, 13] {
        for workers in [2usize, 4] {
            let (got_f, got_cy) = deposit_once(Some((workers, k)));
            for (name, x, y) in [
                ("jx", &want_f.jx, &got_f.jx),
                ("jy", &want_f.jy, &got_f.jy),
                ("jz", &want_f.jz, &got_f.jz),
            ] {
                let same = x
                    .as_slice()
                    .iter()
                    .zip(y.as_slice())
                    .all(|(u, v)| u.to_bits() == v.to_bits());
                assert!(same, "workers {workers} chunk {k}: {name} diverged");
            }
            assert_eq!(
                want_cy.to_bits(),
                got_cy.to_bits(),
                "workers {workers} chunk {k}: deposition cycles diverged"
            );
        }
    }
}
