//! Figure 10 — Ablation study: Baseline, Matrix-only, Hybrid-noSort,
//! Hybrid-GlobalSort and the full MatrixPIC across PPC densities.
//!
//! Paper observations at PPC 128: Matrix-only has the best intermediate
//! wall time; Hybrid-noSort degrades (VPU-MPU interaction overheads with
//! unsorted data); Hybrid-GlobalSort is bottlenecked by the full
//! per-step sort; FullOpt "consistently delivers the best overall wall
//! time and highest throughput".

use mpic_bench::{measure_uniform, MEASURE_STEPS, PPC_SWEEP, UNIFORM_CELLS};
use mpic_deposit::{KernelConfig, ShapeOrder};

fn main() {
    println!("== Figure 10: ablation study across PPC ==");
    println!(
        "{:>5} {:>24} {:>12} {:>12} {:>13}",
        "PPC", "config", "wall ms/st", "dep ms/st", "particles/s"
    );
    for &ppc in &PPC_SWEEP {
        let mut best = f64::INFINITY;
        let mut best_label = "";
        for kernel in KernelConfig::ABLATION {
            eprintln!("running PPC {ppc} {} ...", kernel.label());
            let m = measure_uniform(UNIFORM_CELLS, ppc, ShapeOrder::Cic, kernel, MEASURE_STEPS);
            println!(
                "{:>5} {:>24} {:>12.3} {:>12.3} {:>13.3e}",
                ppc, m.label, m.wall_ms, m.dep_ms, m.pps
            );
            if m.wall_ms < best {
                best = m.wall_ms;
                best_label = kernel.label();
            }
        }
        println!("      -> best wall time: {best_label}\n");
    }
}
