//! Figure 1 — Runtime breakdown of the uniform plasma PIC simulation
//! with the unmodified baseline.
//!
//! The paper's measurement (WarpX v24.07, 30M cells, 4.3B particles, 32
//! processes) shows particle deposition + gather at over 80% of total
//! execution time, with deposition alone above 40%. This harness prints
//! the same normalized breakdown for the emulated baseline run.

use mpic_bench::{measure_uniform, MEASURE_STEPS, UNIFORM_CELLS};
use mpic_deposit::{KernelConfig, ShapeOrder};

fn main() {
    let ppc: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let m = measure_uniform(
        UNIFORM_CELLS,
        ppc,
        ShapeOrder::Cic,
        KernelConfig::Baseline,
        MEASURE_STEPS,
    );
    let labels = [
        "deposition (preproc+compute)",
        "",
        "sort",
        "reduce",
        "gather",
        "push",
        "field solve",
        "other",
    ];
    println!("== Figure 1: runtime breakdown, uniform plasma baseline (PPC {ppc}) ==");
    let total: f64 = m.phases_ms.iter().sum();
    let deposition = m.phases_ms[0] + m.phases_ms[1] + m.phases_ms[2] + m.phases_ms[3];
    let gather = m.phases_ms[4];
    for (i, l) in labels.iter().enumerate() {
        if l.is_empty() {
            continue;
        }
        let v = if i == 0 {
            m.phases_ms[0] + m.phases_ms[1]
        } else {
            m.phases_ms[i]
        };
        println!(
            "{:>30}: {:>8.3} ms/step ({:>5.1}%)",
            l,
            v,
            100.0 * v / total
        );
    }
    println!(
        "\ndeposition fraction: {:.1}% (paper: >40%) | deposition+gather: {:.1}% (paper: >80%)",
        100.0 * deposition / total,
        100.0 * (deposition + gather) / total
    );
}
