//! Host-performance probe for the unified execution layer: runs the
//! uniform-plasma FullOpt workload at several worker counts under each
//! scheduler policy, verifies that fields and emulated cycle totals are
//! bit-identical across all of them, and records host wall-clock numbers
//! in `BENCH_step.json` so the perf trajectory of the step loop is
//! tracked in-repo.
//!
//! A second, smaller sweep runs the WarpX-baseline (direct-scatter)
//! kernel and asserts the same parity — the counter-parity gate for the
//! sharded direct-scatter path, whose per-tile `MachineCounters` drains
//! must charge identically whether tiles run on one worker or many.
//!
//! The probe also measures the dispatch overhead the persistent
//! `WorkerPool` saves over the per-phase thread-spawn scheme it
//! replaced: one spawn/join cycle per phase (~6 per step) versus one
//! condvar wake of already-parked threads.
//!
//! Exit code is nonzero if any determinism check fails, making this bin
//! usable as a CI gate.
//!
//! Usage: `probe_parallel [ppc] [steps] [workers-csv] [--scheduler
//! static|stealing]` (defaults: 8, 3, `1,2,4,7`, both policies).
//! Passing an explicit worker list (e.g. `3,7` to exercise ragged
//! shards) or restricting the policy skips the `BENCH_step.json` write
//! so auxiliary runs never clobber the tracked record.

use std::time::Instant;

use mpic_core::workloads;
use mpic_deposit::{KernelConfig, ShapeOrder};
use mpic_machine::{Phase, SchedulerPolicy, WorkerPool};

/// Grid of the probe workload (matches `mpic_bench::UNIFORM_CELLS`).
const CELLS: [usize; 3] = [32, 32, 32];

/// Grid of the baseline-kernel parity sweep (smaller: the unsorted
/// direct-scatter kernel is the slowest configuration per particle).
const BASELINE_CELLS: [usize; 3] = [16, 16, 16];

/// Sequential host ms/step of this workload measured at the commit
/// before the parallel pipeline landed (PR 1 tree, same container
/// class). Kept as the fixed reference point for the
/// `single_thread_vs_pre_pr` ratio below.
const PRE_PR_SEQUENTIAL_MS_PER_STEP: f64 = 286.4;

/// Spawn/join cycles per default-configuration step that the pre-pool
/// scheme paid (and the pool replaces with condvar wakes): gather+push,
/// deposit, and the field solve's three slab sweeps. The guard fills
/// and window shift were sequential before the pool existed, and the
/// per-tile sort runs inline below the small-input threshold, so none
/// of those count towards the *saving*. Used to convert the measured
/// per-dispatch delta into an estimated ms/step saving.
const PHASE_DISPATCHES_PER_STEP: f64 = 5.0;

struct ProbeResult {
    workers: usize,
    policy: SchedulerPolicy,
    host_ms_per_step: f64,
    emulated_ms_per_step: f64,
    /// Bit patterns of jx, jy, jz (worker-count invariance gate).
    currents: [Vec<u64>; 3],
    /// Bit patterns of ex, ey, ez, bx, by, bz (sharded-solve gate).
    fields: [Vec<u64>; 6],
    cycles: [f64; 8],
    particles: usize,
}

fn run_probe(
    cells: [usize; 3],
    kernel: KernelConfig,
    workers: usize,
    policy: SchedulerPolicy,
    ppc: usize,
    steps: usize,
) -> ProbeResult {
    let mut sim = workloads::uniform_plasma_sim(cells, ppc, ShapeOrder::Cic, kernel, 42);
    sim.cfg.num_workers = workers;
    sim.cfg.scheduler = policy;
    sim.step(); // Warm-up: first-touch, pool growth, cold host caches.
    let skip = sim.report().len();
    let t0 = Instant::now();
    sim.run(steps);
    let host_ms_per_step = t0.elapsed().as_secs_f64() * 1e3 / steps as f64;
    let measured: f64 = sim
        .report()
        .steps
        .iter()
        .skip(skip)
        .map(|s| s.total())
        .sum();
    let emulated_ms_per_step = 1e3 * sim.cfg.machine.cycles_to_seconds(measured) / steps as f64;
    let mut cycles = [0.0; 8];
    for (i, p) in Phase::ALL.iter().enumerate() {
        cycles[i] = sim.machine.counters().cycles(*p);
    }
    ProbeResult {
        workers,
        policy,
        host_ms_per_step,
        emulated_ms_per_step,
        currents: [&sim.fields.jx, &sim.fields.jy, &sim.fields.jz]
            .map(|a| a.as_slice().iter().map(|v| v.to_bits()).collect()),
        fields: [
            &sim.fields.ex,
            &sim.fields.ey,
            &sim.fields.ez,
            &sim.fields.bx,
            &sim.fields.by,
            &sim.fields.bz,
        ]
        .map(|a| a.as_slice().iter().map(|v| v.to_bits()).collect()),
        cycles,
        particles: sim.num_particles(),
    }
}

/// Compares every run against the first: currents, fields and per-phase
/// cycles must be bit-identical across worker counts *and* scheduler
/// policies. Returns whether the whole set is clean.
fn check_parity(label: &str, results: &[ProbeResult]) -> bool {
    let base = &results[0];
    let mut ok = true;
    for r in &results[1..] {
        let what = format!(
            "{}w/{} and {}w/{}",
            base.workers,
            base.policy.label(),
            r.workers,
            r.policy.label()
        );
        for (name, i) in [("jx", 0), ("jy", 1), ("jz", 2)] {
            if r.currents[i] != base.currents[i] {
                eprintln!("FAIL [{label}]: {name} differs between {what}");
                ok = false;
            }
        }
        for (name, i) in [
            ("ex", 0),
            ("ey", 1),
            ("ez", 2),
            ("bx", 3),
            ("by", 4),
            ("bz", 5),
        ] {
            if r.fields[i] != base.fields[i] {
                eprintln!("FAIL [{label}]: {name} differs between {what}");
                ok = false;
            }
        }
        for (i, p) in Phase::ALL.iter().enumerate() {
            if r.cycles[i].to_bits() != base.cycles[i].to_bits() {
                eprintln!(
                    "FAIL [{label}]: {p:?} cycles differ between {what}: {} vs {}",
                    base.cycles[i], r.cycles[i]
                );
                ok = false;
            }
        }
    }
    ok
}

/// Measures the per-dispatch cost of (a) the pre-pool scheme — spawning
/// and joining `workers - 1` fresh threads, which is what one
/// `thread::scope` phase paid — and (b) waking the persistent pool.
/// Returns `(spawn_us, pool_us)` per dispatch.
fn measure_dispatch_overhead(workers: usize) -> (f64, f64) {
    const REPS: u32 = 100;
    let spawn_us = {
        let t0 = Instant::now();
        for _ in 0..REPS {
            let handles: Vec<_> = (1..workers).map(|_| std::thread::spawn(|| {})).collect();
            for h in handles {
                let _ = h.join();
            }
        }
        t0.elapsed().as_secs_f64() * 1e6 / REPS as f64
    };
    let pool_us = {
        let pool = WorkerPool::new(workers);
        for _ in 0..10 {
            pool.broadcast(&|_| {}); // Warm the parked threads.
        }
        let t0 = Instant::now();
        for _ in 0..REPS {
            pool.broadcast(&|_| {});
        }
        t0.elapsed().as_secs_f64() * 1e6 / REPS as f64
    };
    (spawn_us, pool_us)
}

fn main() {
    let mut policy_flag: Option<SchedulerPolicy> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--scheduler" {
            let v = args.next().expect("--scheduler needs static|stealing");
            policy_flag =
                Some(SchedulerPolicy::parse(&v).unwrap_or_else(|| {
                    panic!("unknown scheduler {v:?} (expected static|stealing)")
                }));
        } else {
            positional.push(a);
        }
    }
    let mut positional = positional.into_iter();
    let ppc: usize = positional.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let steps: usize = positional.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let custom_workers: Option<Vec<usize>> = positional.next().map(|a| {
        a.split(',')
            .map(|w| {
                w.parse()
                    .expect("workers-csv must be comma-separated integers")
            })
            .collect()
    });
    let write_bench = custom_workers.is_none() && policy_flag.is_none();
    let policies: Vec<SchedulerPolicy> = match policy_flag {
        Some(p) => vec![p],
        None => vec![SchedulerPolicy::Static, SchedulerPolicy::Stealing],
    };
    let mut worker_counts = custom_workers.unwrap_or_else(|| vec![1, 2, 4, 7]);
    // Always carry the sequential reference: parity against a 1-worker
    // run is the point of the gate (a bug shared by every multi-worker
    // path would otherwise slip through a custom list like `3,7`).
    if !worker_counts.contains(&1) {
        worker_counts.insert(0, 1);
    }
    // Read once; every scaling decision below derives from this value.
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let policy_labels: Vec<&str> = policies.iter().map(|p| p.label()).collect();
    println!(
        "== probe_parallel: uniform {CELLS:?} ppc {ppc}, FullOpt/CIC, {steps} steps, workers {worker_counts:?}, schedulers {policy_labels:?} =="
    );
    println!("host CPUs available: {host_cpus}");
    println!(
        "{:>8} {:>10} {:>14} {:>16} {:>12}",
        "workers", "scheduler", "host ms/step", "emulated ms/step", "particles"
    );

    // The 1-worker run is policy-independent (inline dispatch), so run
    // it once; multi-worker counts sweep every policy.
    let mut results: Vec<ProbeResult> = Vec::new();
    for &w in &worker_counts {
        let run_policies: &[SchedulerPolicy] = if w == 1 { &policies[..1] } else { &policies };
        for &policy in run_policies {
            let r = run_probe(CELLS, KernelConfig::FullOpt, w, policy, ppc, steps);
            println!(
                "{:>8} {:>10} {:>14.1} {:>16.3} {:>12}",
                r.workers,
                r.policy.label(),
                r.host_ms_per_step,
                r.emulated_ms_per_step,
                r.particles
            );
            results.push(r);
        }
    }

    // Determinism gate: every (worker count, policy) combination must
    // reproduce the first run bit for bit, in fields and per-phase
    // cycle totals.
    let deterministic = check_parity("FullOpt", &results);
    println!(
        "determinism (fields + per-phase cycles, workers {worker_counts:?} x {policy_labels:?}): {}",
        if deterministic {
            "BIT-IDENTICAL"
        } else {
            "FAILED"
        }
    );

    // Direct-scatter counter-parity gate: the WarpX-baseline kernel runs
    // through the same pooled per-tile drain scheme; its currents AND
    // MachineCounters must match the sequential run exactly. The sweep
    // follows the invocation's worker list and policies (plus a
    // 1-worker reference), so the ragged CI run adds coverage instead
    // of repeating the default sweep.
    let mut baseline_results: Vec<ProbeResult> = Vec::new();
    for &w in &worker_counts {
        let run_policies: &[SchedulerPolicy] = if w == 1 { &policies[..1] } else { &policies };
        for &policy in run_policies {
            baseline_results.push(run_probe(
                BASELINE_CELLS,
                KernelConfig::Baseline,
                w,
                policy,
                ppc.min(4),
                2,
            ));
        }
    }
    let baseline_parity = check_parity("Baseline", &baseline_results);
    println!(
        "baseline direct-scatter counter parity (workers {worker_counts:?} x {policy_labels:?}): {}",
        if baseline_parity {
            "BIT-IDENTICAL"
        } else {
            "FAILED"
        }
    );

    let base = &results[0];
    let max_workers = worker_counts.iter().copied().max().unwrap_or(1);
    let s1 = base.host_ms_per_step;
    let best_at = |w: usize| -> f64 {
        results
            .iter()
            .filter(|r| r.workers == w)
            .map(|r| r.host_ms_per_step)
            .fold(f64::INFINITY, f64::min)
    };
    let s_max = best_at(max_workers);
    let speedup_max = s1 / s_max;
    let vs_pre_pr = PRE_PR_SEQUENTIAL_MS_PER_STEP / s1;
    println!(
        "{max_workers}-worker speedup over {}-worker (this host, best policy): {speedup_max:.2}x",
        base.workers
    );
    println!(
        "{}-worker speedup over pre-PR sequential baseline ({PRE_PR_SEQUENTIAL_MS_PER_STEP} ms/step): {vs_pre_pr:.2}x",
        base.workers
    );

    // Dispatch-overhead saving of the persistent pool vs the per-phase
    // spawn scheme it replaced (measured at the largest swept worker
    // count; a 1-worker pool dispatches inline, nothing to save).
    let overhead_workers = max_workers.max(2);
    let (spawn_us, pool_us) = measure_dispatch_overhead(overhead_workers);
    let saved_ms_per_step = (spawn_us - pool_us) * PHASE_DISPATCHES_PER_STEP / 1e3;
    println!(
        "dispatch overhead at {overhead_workers} workers: spawn/join {spawn_us:.1} us vs pool wake {pool_us:.1} us \
         => ~{saved_ms_per_step:.2} ms/step saved at {PHASE_DISPATCHES_PER_STEP} phase dispatches/step"
    );

    // Serialization canary: assess the *largest measured worker count
    // the host can actually run in parallel* (workers <= CPUs), so a
    // 4-core host still checks its 4-worker run even when the sweep
    // goes to 7. When no measured count fits (single-CPU CI), the
    // canary is *skipped* outright — no warning, no noise — because
    // thread-level speedup there is bounded by the host, not by the
    // pipeline. On capable hosts it reports loudly (warn-only until
    // calibrated on a multi-core runner) if the sharded phases look
    // re-serialized.
    let canary = results
        .iter()
        .filter(|r| r.workers > base.workers && r.workers <= host_cpus)
        .max_by_key(|r| r.workers)
        .map(|r| r.workers);
    let scaling_ok = match canary {
        None => {
            println!(
                "thread-scaling canary: skipped ({host_cpus} host CPU(s), smallest parallel run needs more)"
            );
            true
        }
        Some(w) => {
            let speedup = s1 / best_at(w);
            if speedup < 1.3 {
                eprintln!(
                    "WARN: {host_cpus}-CPU host but {w}-worker speedup is only {speedup:.2}x (<1.3x): the tile pipeline may be serialized"
                );
                false
            } else {
                true
            }
        }
    };
    let canary_assessable = canary.is_some();

    // BENCH_step.json: the tracked perf record for this step loop
    // (default worker list + both policies only; auxiliary runs don't
    // clobber it).
    if write_bench {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"probe_parallel\",\n");
        json.push_str(&format!(
            "  \"workload\": {{\"cells\": [{}, {}, {}], \"ppc\": {ppc}, \"kernel\": \"FullOpt\", \"shape\": \"CIC\", \"measured_steps\": {steps}, \"particles\": {}}},\n",
            CELLS[0], CELLS[1], CELLS[2], base.particles
        ));
        json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
        json.push_str(&format!(
            "  \"pre_pr_sequential_ms_per_step\": {PRE_PR_SEQUENTIAL_MS_PER_STEP},\n"
        ));
        json.push_str("  \"results\": [\n");
        for (i, r) in results.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"workers\": {}, \"scheduler\": \"{}\", \"host_ms_per_step\": {:.2}, \"emulated_ms_per_step\": {:.4}}}{}\n",
                r.workers,
                r.policy.label(),
                r.host_ms_per_step,
                r.emulated_ms_per_step,
                if i + 1 < results.len() { "," } else { "" }
            ));
        }
        json.push_str("  ],\n");
        json.push_str(&format!(
            "  \"spawn_overhead\": {{\"workers\": {overhead_workers}, \"spawn_us_per_dispatch\": {spawn_us:.1}, \"pool_us_per_dispatch\": {pool_us:.1}, \"phase_dispatches_per_step\": {PHASE_DISPATCHES_PER_STEP}, \"est_saved_ms_per_step\": {saved_ms_per_step:.3}}},\n"
        ));
        json.push_str(&format!(
            "  \"speedup_{max_workers}_workers_vs_1\": {speedup_max:.3},\n  \"speedup_1_worker_vs_pre_pr\": {vs_pre_pr:.3},\n"
        ));
        json.push_str(&format!(
            "  \"determinism\": \"{}\",\n  \"baseline_counter_parity\": \"{}\",\n  \"thread_scaling\": \"{}\"\n}}\n",
            if deterministic {
                "bit-identical"
            } else {
                "FAILED"
            },
            if baseline_parity {
                "bit-identical"
            } else {
                "FAILED"
            },
            if !canary_assessable {
                "skipped-insufficient-cores"
            } else if scaling_ok {
                "ok"
            } else {
                "below-threshold"
            }
        ));
        let path = "BENCH_step.json";
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    } else {
        println!("custom worker list / scheduler restriction: skipping BENCH_step.json write");
    }

    if !deterministic || !baseline_parity {
        std::process::exit(1);
    }
}
