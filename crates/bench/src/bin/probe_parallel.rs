//! Host-performance probe for the parallel tile pipeline: runs the
//! uniform-plasma FullOpt workload at several worker counts, verifies
//! that fields and emulated cycle totals are bit-identical across them,
//! and records host wall-clock numbers in `BENCH_step.json` so the perf
//! trajectory of the step loop is tracked in-repo.
//!
//! Exit code is nonzero if the determinism check fails, making this bin
//! usable as a CI gate.
//!
//! Usage: `probe_parallel [ppc] [steps]` (defaults: 8, 3).

use std::time::Instant;

use mpic_core::workloads;
use mpic_deposit::{KernelConfig, ShapeOrder};
use mpic_machine::Phase;

/// Grid of the probe workload (matches `mpic_bench::UNIFORM_CELLS`).
const CELLS: [usize; 3] = [32, 32, 32];

/// Sequential host ms/step of this workload measured at the commit
/// before the parallel pipeline landed (PR 1 tree, same container
/// class). Kept as the fixed reference point for the
/// `single_thread_vs_pre_pr` ratio below.
const PRE_PR_SEQUENTIAL_MS_PER_STEP: f64 = 286.4;

struct ProbeResult {
    workers: usize,
    host_ms_per_step: f64,
    emulated_ms_per_step: f64,
    /// Bit patterns of jx, jy, jz (worker-count invariance gate).
    currents: [Vec<u64>; 3],
    cycles: [f64; 8],
    particles: usize,
}

fn run_probe(workers: usize, ppc: usize, steps: usize) -> ProbeResult {
    let mut sim =
        workloads::uniform_plasma_sim(CELLS, ppc, ShapeOrder::Cic, KernelConfig::FullOpt, 42);
    sim.cfg.num_workers = workers;
    sim.step(); // Warm-up: first-touch, pool growth, cold host caches.
    let skip = sim.report().len();
    let t0 = Instant::now();
    sim.run(steps);
    let host_ms_per_step = t0.elapsed().as_secs_f64() * 1e3 / steps as f64;
    let measured: f64 = sim
        .report()
        .steps
        .iter()
        .skip(skip)
        .map(|s| s.total())
        .sum();
    let emulated_ms_per_step = 1e3 * sim.cfg.machine.cycles_to_seconds(measured) / steps as f64;
    let mut cycles = [0.0; 8];
    for (i, p) in Phase::ALL.iter().enumerate() {
        cycles[i] = sim.machine.counters().cycles(*p);
    }
    ProbeResult {
        workers,
        host_ms_per_step,
        emulated_ms_per_step,
        currents: [&sim.fields.jx, &sim.fields.jy, &sim.fields.jz]
            .map(|a| a.as_slice().iter().map(|v| v.to_bits()).collect()),
        cycles,
        particles: sim.num_particles(),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let ppc: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let steps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("== probe_parallel: uniform {CELLS:?} ppc {ppc}, FullOpt/CIC, {steps} steps ==");
    println!("host CPUs available: {host_cpus}");
    println!(
        "{:>8} {:>14} {:>16} {:>12}",
        "workers", "host ms/step", "emulated ms/step", "particles"
    );

    let worker_counts = [1usize, 2, 4];
    let results: Vec<ProbeResult> = worker_counts
        .iter()
        .map(|&w| {
            let r = run_probe(w, ppc, steps);
            println!(
                "{:>8} {:>14.1} {:>16.3} {:>12}",
                r.workers, r.host_ms_per_step, r.emulated_ms_per_step, r.particles
            );
            r
        })
        .collect();

    // Determinism gate: every worker count must reproduce the 1-worker
    // run bit for bit, in both fields and per-phase cycle totals.
    let base = &results[0];
    let mut deterministic = true;
    for r in &results[1..] {
        for (name, i) in [("jx", 0), ("jy", 1), ("jz", 2)] {
            if r.currents[i] != base.currents[i] {
                eprintln!("FAIL: {name} differs between 1 and {} workers", r.workers);
                deterministic = false;
            }
        }
        for (i, p) in Phase::ALL.iter().enumerate() {
            if r.cycles[i].to_bits() != base.cycles[i].to_bits() {
                eprintln!(
                    "FAIL: {p:?} cycles differ between 1 and {} workers: {} vs {}",
                    r.workers, base.cycles[i], r.cycles[i]
                );
                deterministic = false;
            }
        }
    }
    println!(
        "determinism (fields + per-phase cycles, 1 vs 2 vs 4 workers): {}",
        if deterministic {
            "BIT-IDENTICAL"
        } else {
            "FAILED"
        }
    );

    let s1 = base.host_ms_per_step;
    let s4 = results.last().unwrap().host_ms_per_step;
    let speedup_4w = s1 / s4;
    let vs_pre_pr = PRE_PR_SEQUENTIAL_MS_PER_STEP / s1;
    println!("4-worker speedup over 1 worker (this host): {speedup_4w:.2}x");
    println!(
        "1-worker speedup over pre-PR sequential baseline ({PRE_PR_SEQUENTIAL_MS_PER_STEP} ms/step): {vs_pre_pr:.2}x"
    );
    // Serialization check: on a host with >=4 CPUs the sharded phases
    // (~90% of step time) should show real thread-level speedup; a
    // 4-worker run at <1.3x suggests something re-serialized the
    // pipeline (a shared lock, a degenerate chunk size, ...). The
    // threshold sits well below the multi-core target (>=2x) to
    // tolerate noisy shared runners. Warn-only for now: it has not yet
    // been calibrated on a multi-core host (the dev container exposes
    // one CPU), so it reports loudly without going red — flip to a hard
    // gate once CI has a multi-core baseline. On smaller hosts it is
    // informational only.
    let scaling_ok = host_cpus < 4 || speedup_4w >= 1.3;
    if host_cpus < 4 {
        println!(
            "note: only {host_cpus} host CPU(s) visible; thread-level speedup is bounded by the host, not the pipeline"
        );
    } else if !scaling_ok {
        eprintln!(
            "WARN: {host_cpus}-CPU host but 4-worker speedup is only {speedup_4w:.2}x (<1.3x): the tile pipeline may be serialized"
        );
    }

    // BENCH_step.json: the tracked perf record for this step loop.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"probe_parallel\",\n");
    json.push_str(&format!(
        "  \"workload\": {{\"cells\": [{}, {}, {}], \"ppc\": {ppc}, \"kernel\": \"FullOpt\", \"shape\": \"CIC\", \"measured_steps\": {steps}, \"particles\": {}}},\n",
        CELLS[0], CELLS[1], CELLS[2], base.particles
    ));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!(
        "  \"pre_pr_sequential_ms_per_step\": {PRE_PR_SEQUENTIAL_MS_PER_STEP},\n"
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"host_ms_per_step\": {:.2}, \"emulated_ms_per_step\": {:.4}}}{}\n",
            r.workers,
            r.host_ms_per_step,
            r.emulated_ms_per_step,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_4_workers_vs_1\": {speedup_4w:.3},\n  \"speedup_1_worker_vs_pre_pr\": {vs_pre_pr:.3},\n"
    ));
    json.push_str(&format!(
        "  \"determinism\": \"{}\",\n  \"thread_scaling\": \"{}\"\n}}\n",
        if deterministic {
            "bit-identical"
        } else {
            "FAILED"
        },
        if host_cpus < 4 {
            "not-assessable-on-this-host"
        } else if scaling_ok {
            "ok"
        } else {
            "below-threshold"
        }
    ));
    let path = "BENCH_step.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if !deterministic {
        std::process::exit(1);
    }
}
