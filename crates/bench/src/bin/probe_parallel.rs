//! Host-performance probe for the unified execution layer and the
//! cell-run batched hot path: runs the uniform-plasma FullOpt workload
//! at several worker counts under each scheduler policy — across the
//! execution modes per-particle, batched-scalar and batched-SIMD —
//! verifies the determinism contract, and records host wall-clock
//! numbers in `BENCH_step.json` so the perf trajectory of the step
//! loop is tracked in-repo.
//!
//! Gates enforced (exit code nonzero on any failure, so every
//! invocation doubles as a CI gate):
//!
//! * **Determinism** — within each execution mode, every (worker count,
//!   scheduler) combination must reproduce the mode's first run bit for
//!   bit: all nine field arrays AND per-phase emulated cycles.
//! * **Cross-mode value parity** — FullOpt's batched path is value-exact
//!   (the gather caches read-only node blocks; the matrix kernel is
//!   run-based either way), and the lane-parallel SIMD path preserves
//!   every add order bitwise — so currents and fields must match the
//!   per-particle path bitwise across ALL modes. Cycles are excluded:
//!   charging fewer of them is the point.
//! * **Baseline counter parity** — the WarpX direct-scatter kernel runs
//!   the same within-mode sweep (its batched currents regroup FP adds,
//!   so no cross-mode bit check there).
//! * **Perf regression** — before overwriting `BENCH_step.json`, the
//!   committed record is read back: if the host CPU count matches the
//!   recorded run, a fresh single-thread ms/step more than 25% above
//!   the committed value (per execution mode) fails the probe. A
//!   differing CPU count skips the gate (numbers from a different host
//!   class are not comparable).
//! * **SIMD floor** — the single-thread lane-parallel mode must beat
//!   batched-scalar by at least [`SIMD_HOST_SPEEDUP_FLOOR`] on the
//!   host clock. A silent fallback to the scalar loop would pass every
//!   bit gate (identity is the contract), so only a speed floor
//!   catches it.
//!
//! When the host has too few CPUs to run the largest worker count in
//! parallel, `thread_scaling` records `skipped-insufficient-cores` and
//! the multi-worker speedup is written as JSON `null`: an
//! oversubscribed measurement is scheduler noise, not data.
//!
//! Usage: `probe_parallel [ppc] [steps] [workers-csv] [--scheduler
//! static|stealing] [--batching on|off] [--simd on|off]` (defaults: 8,
//! 3, `1,2,4,7`, both policies, modes per-particle + batched-scalar +
//! batched-SIMD). Passing an explicit worker list or restricting the
//! policy/batching/simd skips the `BENCH_step.json` write and the
//! regression gate, so auxiliary runs never clobber the tracked
//! record. `--simd on` implies the batched sweep: SIMD is a mode *of*
//! the batched hot path, so the `(batching off, simd on)` combination
//! is never run (it is a configuration no-op by contract).

use std::time::Instant;

use mpic_core::workloads;
use mpic_deposit::{KernelConfig, ShapeOrder};
use mpic_machine::{Phase, SchedulerPolicy, WorkerPool};

/// Grid of the probe workload (matches `mpic_bench::UNIFORM_CELLS`).
const CELLS: [usize; 3] = [32, 32, 32];

/// Grid of the baseline-kernel parity sweep (smaller: the unsorted
/// direct-scatter kernel is the slowest configuration per particle).
const BASELINE_CELLS: [usize; 3] = [16, 16, 16];

/// Sequential host ms/step of this workload: the unbatched 1-worker
/// configuration, whose arithmetic has been bit-identical since the
/// PR 1 tree. Re-baselined (286.4 -> 235.0) when `target-cpu=native`
/// became the committed codegen default: the old number was measured
/// without hardware FMA and had already drifted ~5% against the same
/// container class, so it no longer priced the code actually built.
/// Median of three 3-step runs; container noise is +/-10%, which the
/// perf gate's tolerance below absorbs.
const PRE_PR_SEQUENTIAL_MS_PER_STEP: f64 = 235.0;

/// Spawn/join cycles per default-configuration step that the pre-pool
/// scheme paid (and the pool replaces with condvar wakes): gather+push,
/// deposit, and the field solve's three slab sweeps.
const PHASE_DISPATCHES_PER_STEP: f64 = 5.0;

/// Single-thread regression tolerance of the perf gate: a fresh
/// ms/step more than this factor above the committed record fails.
const GATE_TOLERANCE: f64 = 1.25;

/// Host-speedup floor of the lane-parallel SIMD mode over batched
/// scalar, single thread: the lane Boris push plus masked vector
/// tails must buy at least this much on the canonical workload.
/// Deliberately below the committed ~2.3x so container noise does not
/// trip it, but high enough that losing the lane push (falling back to
/// a scalar loop) fails the probe.
const SIMD_HOST_SPEEDUP_FLOOR: f64 = 1.8;

fn batching_label(on: bool) -> &'static str {
    if on {
        "on"
    } else {
        "off"
    }
}

/// Human/JSON label of an execution mode: `off` (per-particle), `on`
/// (batched scalar), `on+simd` (batched lane-parallel).
fn mode_label(batching: bool, simd: bool) -> &'static str {
    match (batching, simd) {
        (false, _) => "off",
        (true, false) => "on",
        (true, true) => "on+simd",
    }
}

struct ProbeResult {
    workers: usize,
    policy: SchedulerPolicy,
    batching: bool,
    simd: bool,
    host_ms_per_step: f64,
    emulated_ms_per_step: f64,
    /// Bit patterns of jx, jy, jz (worker-count invariance gate).
    currents: [Vec<u64>; 3],
    /// Bit patterns of ex, ey, ez, bx, by, bz (sharded-solve gate).
    fields: [Vec<u64>; 6],
    cycles: [f64; 8],
    particles: usize,
}

fn run_probe(
    cells: [usize; 3],
    kernel: KernelConfig,
    workers: usize,
    policy: SchedulerPolicy,
    batching: bool,
    simd: bool,
    ppc: usize,
    steps: usize,
) -> ProbeResult {
    let mut sim = workloads::uniform_plasma_sim(cells, ppc, ShapeOrder::Cic, kernel, 42);
    sim.cfg.num_workers = workers;
    sim.cfg.scheduler = policy;
    sim.cfg.batching = batching;
    sim.cfg.simd = simd;
    sim.step(); // Warm-up: first-touch, pool growth, cold host caches.
    let skip = sim.report().len();
    let t0 = Instant::now();
    sim.run(steps);
    let host_ms_per_step = t0.elapsed().as_secs_f64() * 1e3 / steps as f64;
    let measured: f64 = sim
        .report()
        .steps
        .iter()
        .skip(skip)
        .map(|s| s.total())
        .sum();
    let emulated_ms_per_step = 1e3 * sim.cfg.machine.cycles_to_seconds(measured) / steps as f64;
    let mut cycles = [0.0; 8];
    for (i, p) in Phase::ALL.iter().enumerate() {
        cycles[i] = sim.machine.counters().cycles(*p);
    }
    ProbeResult {
        workers,
        policy,
        batching,
        simd,
        host_ms_per_step,
        emulated_ms_per_step,
        currents: [&sim.fields.jx, &sim.fields.jy, &sim.fields.jz]
            .map(|a| a.as_slice().iter().map(|v| v.to_bits()).collect()),
        fields: [
            &sim.fields.ex,
            &sim.fields.ey,
            &sim.fields.ez,
            &sim.fields.bx,
            &sim.fields.by,
            &sim.fields.bz,
        ]
        .map(|a| a.as_slice().iter().map(|v| v.to_bits()).collect()),
        cycles,
        particles: sim.num_particles(),
    }
}

/// Compares every run against the first **of its execution mode**
/// (per-particle, batched-scalar or batched-SIMD): currents, fields
/// and per-phase cycles must be bit-identical across worker counts and
/// scheduler policies. Returns whether the whole set is clean.
fn check_parity(label: &str, results: &[ProbeResult]) -> bool {
    let mut ok = true;
    for (batching, simd) in [(false, false), (true, false), (true, true)] {
        let group: Vec<&ProbeResult> = results
            .iter()
            .filter(|r| r.batching == batching && r.simd == simd)
            .collect();
        let Some(base) = group.first() else {
            continue;
        };
        for r in &group[1..] {
            let what = format!(
                "{}w/{} and {}w/{} (mode {})",
                base.workers,
                base.policy.label(),
                r.workers,
                r.policy.label(),
                mode_label(batching, simd),
            );
            for (name, i) in [("jx", 0), ("jy", 1), ("jz", 2)] {
                if r.currents[i] != base.currents[i] {
                    eprintln!("FAIL [{label}]: {name} differs between {what}");
                    ok = false;
                }
            }
            for (name, i) in [
                ("ex", 0),
                ("ey", 1),
                ("ez", 2),
                ("bx", 3),
                ("by", 4),
                ("bz", 5),
            ] {
                if r.fields[i] != base.fields[i] {
                    eprintln!("FAIL [{label}]: {name} differs between {what}");
                    ok = false;
                }
            }
            for (i, p) in Phase::ALL.iter().enumerate() {
                if r.cycles[i].to_bits() != base.cycles[i].to_bits() {
                    eprintln!(
                        "FAIL [{label}]: {p:?} cycles differ between {what}: {} vs {}",
                        base.cycles[i], r.cycles[i]
                    );
                    ok = false;
                }
            }
        }
    }
    ok
}

/// Whether the cross-mode bit gate is sound for a run of `steps`
/// measured steps (plus one warm-up): the adaptive sort policy's
/// perf trigger consumes *emulated deposition cycles*, which the
/// batched cost model intentionally lowers — so once the policy can
/// fire (`min_sort_interval` steps in), the two modes may global-sort
/// on different steps, reorder particles within cells and legitimately
/// diverge bitwise even though each mode is individually correct. The
/// gate therefore only applies while no trigger can possibly have
/// fired in either mode.
fn cross_mode_gate_sound(steps: usize) -> bool {
    let min_interval = mpic_particles::SortPolicy::default().min_sort_interval as usize;
    1 + steps < min_interval
}

/// Cross-mode value parity: batched-scalar AND batched-SIMD FullOpt
/// must agree bitwise with the per-particle path in currents AND
/// fields (cycles excluded by design). Each mode present in the sweep
/// is compared against the first mode's representative; with fewer
/// than two modes there is nothing to compare.
fn check_cross_mode_values(label: &str, results: &[ProbeResult]) -> bool {
    let Some(base) = results.first() else {
        return true;
    };
    let mut ok = true;
    for (batching, simd) in [(false, false), (true, false), (true, true)] {
        if (batching, simd) == (base.batching, base.simd) {
            continue;
        }
        let Some(r) = results
            .iter()
            .find(|r| r.batching == batching && r.simd == simd)
        else {
            continue;
        };
        let what = format!(
            "mode {} and mode {}",
            mode_label(base.batching, base.simd),
            mode_label(batching, simd)
        );
        for (name, i) in [("jx", 0), ("jy", 1), ("jz", 2)] {
            if base.currents[i] != r.currents[i] {
                eprintln!("FAIL [{label}]: {name} differs between {what}");
                ok = false;
            }
        }
        for (name, i) in [
            ("ex", 0),
            ("ey", 1),
            ("ez", 2),
            ("bx", 3),
            ("by", 4),
            ("bz", 5),
        ] {
            if base.fields[i] != r.fields[i] {
                eprintln!("FAIL [{label}]: {name} differs between {what}");
                ok = false;
            }
        }
    }
    ok
}

/// Measures the per-dispatch cost of (a) the pre-pool scheme — spawning
/// and joining `workers - 1` fresh threads — and (b) waking the
/// persistent pool. Returns `(spawn_us, pool_us)` per dispatch.
fn measure_dispatch_overhead(workers: usize) -> (f64, f64) {
    const REPS: u32 = 100;
    let spawn_us = {
        let t0 = Instant::now();
        for _ in 0..REPS {
            let handles: Vec<_> = (1..workers).map(|_| std::thread::spawn(|| {})).collect();
            for h in handles {
                let _ = h.join();
            }
        }
        t0.elapsed().as_secs_f64() * 1e6 / REPS as f64
    };
    let pool_us = {
        let pool = WorkerPool::new(workers);
        for _ in 0..10 {
            pool.broadcast(&|_| {}); // Warm the parked threads.
        }
        let t0 = Instant::now();
        for _ in 0..REPS {
            pool.broadcast(&|_| {});
        }
        t0.elapsed().as_secs_f64() * 1e6 / REPS as f64
    };
    (spawn_us, pool_us)
}

/// First number following `"key":` in a JSON text (no string escapes —
/// adequate for the file this bin writes itself).
fn json_number_after(text: &str, key: &str) -> Option<f64> {
    let pos = text.find(key)?;
    let rest = text[pos + key.len()..].trim_start_matches([':', ' ']);
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Reads the committed BENCH_step.json and extracts the gate inputs:
/// the recorded host CPU count plus each single-thread (workers == 1)
/// result as `(mode_label, host_ms_per_step)`. Records written before
/// the batching sweep existed carry no `batching` field and are
/// treated as per-particle ("off"); records written before the SIMD
/// sweep carry no `simd` field and are treated as scalar.
fn read_committed_gate(path: &str) -> Option<(usize, Vec<(String, f64)>)> {
    let text = std::fs::read_to_string(path).ok()?;
    let cpus = json_number_after(&text, "\"host_cpus\"")? as usize;
    let mut entries = Vec::new();
    for line in text.lines() {
        // The trailing comma pins exactly 1 (not 10, 16, ...).
        if line.contains("\"workers\": 1,") && line.contains("\"host_ms_per_step\"") {
            let mode = mode_label(
                line.contains("\"batching\": \"on\""),
                line.contains("\"simd\": \"on\""),
            );
            if let Some(ms) = json_number_after(line, "\"host_ms_per_step\"") {
                entries.push((mode.to_string(), ms));
            }
        }
    }
    if entries.is_empty() {
        return None;
    }
    Some((cpus, entries))
}

fn main() {
    let mut policy_flag: Option<SchedulerPolicy> = None;
    let mut batching_flag: Option<bool> = None;
    let mut simd_flag: Option<bool> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--scheduler" {
            let v = args.next().expect("--scheduler needs static|stealing");
            policy_flag =
                Some(SchedulerPolicy::parse(&v).unwrap_or_else(|| {
                    panic!("unknown scheduler {v:?} (expected static|stealing)")
                }));
        } else if a == "--batching" {
            let v = args.next().expect("--batching needs on|off");
            batching_flag = Some(match v.as_str() {
                "on" => true,
                "off" => false,
                other => panic!("unknown batching {other:?} (expected on|off)"),
            });
        } else if a == "--simd" {
            let v = args.next().expect("--simd needs on|off");
            simd_flag = Some(match v.as_str() {
                "on" => true,
                "off" => false,
                other => panic!("unknown simd {other:?} (expected on|off)"),
            });
        } else {
            positional.push(a);
        }
    }
    let mut positional = positional.into_iter();
    let ppc: usize = positional.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let steps: usize = positional.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let custom_workers: Option<Vec<usize>> = positional.next().map(|a| {
        a.split(',')
            .map(|w| {
                w.parse()
                    .expect("workers-csv must be comma-separated integers")
            })
            .collect()
    });
    let write_bench = custom_workers.is_none()
        && policy_flag.is_none()
        && batching_flag.is_none()
        && simd_flag.is_none();
    let policies: Vec<SchedulerPolicy> = match policy_flag {
        Some(p) => vec![p],
        None => vec![SchedulerPolicy::Static, SchedulerPolicy::Stealing],
    };
    let batching_modes: Vec<bool> = match batching_flag {
        Some(b) => vec![b],
        None => vec![false, true],
    };
    let simd_modes: Vec<bool> = match simd_flag {
        Some(s) => vec![s],
        None => vec![false, true],
    };
    // Execution modes: the cross product minus `(batching off, simd
    // on)` — SIMD is a mode of the batched sweep, and that combination
    // is a configuration no-op by contract. Canonical sweep: off, on,
    // on+simd.
    let modes: Vec<(bool, bool)> = batching_modes
        .iter()
        .flat_map(|&b| simd_modes.iter().map(move |&s| (b, s)))
        .filter(|&(b, s)| b || !s)
        .collect();
    if modes.is_empty() {
        eprintln!("--batching off --simd on selects no execution mode (SIMD requires batching)");
        std::process::exit(1);
    }
    let mut worker_counts = custom_workers.unwrap_or_else(|| vec![1, 2, 4, 7]);
    // Always carry the sequential reference: parity against a 1-worker
    // run is the point of the gate.
    if !worker_counts.contains(&1) {
        worker_counts.insert(0, 1);
    }
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Read the committed record BEFORE measurements overwrite it: the
    // regression gate compares fresh numbers against it at the end.
    let committed = read_committed_gate("BENCH_step.json");

    let policy_labels: Vec<&str> = policies.iter().map(|p| p.label()).collect();
    let mode_labels: Vec<&str> = modes.iter().map(|&(b, s)| mode_label(b, s)).collect();
    println!(
        "== probe_parallel: uniform {CELLS:?} ppc {ppc}, FullOpt/CIC, {steps} steps, workers {worker_counts:?}, schedulers {policy_labels:?}, modes {mode_labels:?} =="
    );
    println!("host CPUs available: {host_cpus}");
    println!(
        "{:>8} {:>10} {:>9} {:>14} {:>16} {:>12}",
        "workers", "scheduler", "mode", "host ms/step", "emulated ms/step", "particles"
    );

    // The 1-worker run is policy-independent (inline dispatch), so run
    // it once per execution mode; multi-worker counts sweep every
    // policy.
    let mut results: Vec<ProbeResult> = Vec::new();
    for &(batching, simd) in &modes {
        for &w in &worker_counts {
            let run_policies: &[SchedulerPolicy] = if w == 1 { &policies[..1] } else { &policies };
            for &policy in run_policies {
                let r = run_probe(
                    CELLS,
                    KernelConfig::FullOpt,
                    w,
                    policy,
                    batching,
                    simd,
                    ppc,
                    steps,
                );
                println!(
                    "{:>8} {:>10} {:>9} {:>14.1} {:>16.3} {:>12}",
                    r.workers,
                    r.policy.label(),
                    mode_label(r.batching, r.simd),
                    r.host_ms_per_step,
                    r.emulated_ms_per_step,
                    r.particles
                );
                results.push(r);
            }
        }
    }

    // Determinism gate, per execution mode.
    let deterministic = check_parity("FullOpt", &results);
    println!(
        "determinism (fields + per-phase cycles, workers {worker_counts:?} x {policy_labels:?} x modes {mode_labels:?}): {}",
        if deterministic {
            "BIT-IDENTICAL"
        } else {
            "FAILED"
        }
    );

    // Cross-mode value parity: FullOpt batched (scalar and SIMD) is
    // value-exact — as long as all modes took the same global-sort
    // schedule, which is only guaranteed while the adaptive policy
    // cannot have fired.
    let cross_mode = if cross_mode_gate_sound(steps) {
        let ok = check_cross_mode_values("FullOpt", &results);
        if modes.len() > 1 {
            println!(
                "cross-mode values (currents + fields, modes {mode_labels:?}): {}",
                if ok { "BIT-IDENTICAL" } else { "FAILED" }
            );
        }
        ok
    } else {
        println!(
            "batched vs per-particle values: skipped ({steps} steps reaches the adaptive \
             sort policy's min interval — sort schedules may legitimately diverge across \
             cost models)"
        );
        true
    };

    // Direct-scatter counter-parity gate (within each execution mode).
    let mut baseline_results: Vec<ProbeResult> = Vec::new();
    for &(batching, simd) in &modes {
        for &w in &worker_counts {
            let run_policies: &[SchedulerPolicy] = if w == 1 { &policies[..1] } else { &policies };
            for &policy in run_policies {
                baseline_results.push(run_probe(
                    BASELINE_CELLS,
                    KernelConfig::Baseline,
                    w,
                    policy,
                    batching,
                    simd,
                    ppc.min(4),
                    2,
                ));
            }
        }
    }
    let baseline_parity = check_parity("Baseline", &baseline_results);
    println!(
        "baseline direct-scatter counter parity (workers {worker_counts:?} x {policy_labels:?} x modes {mode_labels:?}): {}",
        if baseline_parity {
            "BIT-IDENTICAL"
        } else {
            "FAILED"
        }
    );

    let base = &results[0];
    let max_workers = worker_counts.iter().copied().max().unwrap_or(1);
    let single_thread = |batching: bool, simd: bool| -> Option<&ProbeResult> {
        results
            .iter()
            .find(|r| r.workers == 1 && r.batching == batching && r.simd == simd)
    };
    let s1 = base.host_ms_per_step;
    let best_at = |w: usize, batching: bool, simd: bool| -> f64 {
        results
            .iter()
            .filter(|r| r.workers == w && r.batching == batching && r.simd == simd)
            .map(|r| r.host_ms_per_step)
            .fold(f64::INFINITY, f64::min)
    };
    let s_max = best_at(max_workers, base.batching, base.simd);
    let speedup_max = s1 / s_max;
    let vs_pre_pr = PRE_PR_SEQUENTIAL_MS_PER_STEP / s1;
    println!(
        "{max_workers}-worker speedup over 1-worker (mode {}, best policy): {speedup_max:.2}x",
        mode_label(base.batching, base.simd)
    );
    println!(
        "1-worker speedup over pre-PR sequential baseline ({PRE_PR_SEQUENTIAL_MS_PER_STEP} ms/step): {vs_pre_pr:.2}x"
    );

    // The headline of the batching sweep: single-thread batched vs
    // per-particle, host and emulated.
    let mut batched_host_speedup = None;
    let mut batched_emulated_speedup = None;
    if let (Some(off), Some(on)) = (single_thread(false, false), single_thread(true, false)) {
        let host = off.host_ms_per_step / on.host_ms_per_step;
        let emulated = off.emulated_ms_per_step / on.emulated_ms_per_step;
        println!(
            "single-thread batched vs per-particle: host {host:.2}x, emulated {emulated:.2}x \
             ({:.1} -> {:.1} host ms/step, {:.3} -> {:.3} emulated ms/step)",
            off.host_ms_per_step,
            on.host_ms_per_step,
            off.emulated_ms_per_step,
            on.emulated_ms_per_step
        );
        batched_host_speedup = Some(host);
        batched_emulated_speedup = Some(emulated);
    }

    // The headline of the SIMD sweep: single-thread batched-SIMD vs
    // batched-scalar, host and emulated.
    let mut simd_host_speedup = None;
    let mut simd_emulated_speedup = None;
    if let (Some(scalar), Some(simd)) = (single_thread(true, false), single_thread(true, true)) {
        let host = scalar.host_ms_per_step / simd.host_ms_per_step;
        let emulated = scalar.emulated_ms_per_step / simd.emulated_ms_per_step;
        println!(
            "single-thread batched-SIMD vs batched-scalar: host {host:.2}x, emulated {emulated:.2}x \
             ({:.1} -> {:.1} host ms/step, {:.3} -> {:.3} emulated ms/step)",
            scalar.host_ms_per_step,
            simd.host_ms_per_step,
            scalar.emulated_ms_per_step,
            simd.emulated_ms_per_step
        );
        simd_host_speedup = Some(host);
        simd_emulated_speedup = Some(emulated);
    }

    // Dispatch-overhead saving of the persistent pool vs the per-phase
    // spawn scheme it replaced.
    let overhead_workers = max_workers.max(2);
    let (spawn_us, pool_us) = measure_dispatch_overhead(overhead_workers);
    let saved_ms_per_step = (spawn_us - pool_us) * PHASE_DISPATCHES_PER_STEP / 1e3;
    println!(
        "dispatch overhead at {overhead_workers} workers: spawn/join {spawn_us:.1} us vs pool wake {pool_us:.1} us \
         => ~{saved_ms_per_step:.2} ms/step saved at {PHASE_DISPATCHES_PER_STEP} phase dispatches/step"
    );

    // Serialization canary (unchanged from PR 4): skipped outright when
    // the host cannot run any measured worker count in parallel.
    let canary = results
        .iter()
        .filter(|r| {
            r.batching == base.batching
                && r.simd == base.simd
                && r.workers > base.workers
                && r.workers <= host_cpus
        })
        .max_by_key(|r| r.workers)
        .map(|r| r.workers);
    let scaling_ok = match canary {
        None => {
            println!(
                "thread-scaling canary: skipped ({host_cpus} host CPU(s), smallest parallel run needs more)"
            );
            true
        }
        Some(w) => {
            let speedup = s1 / best_at(w, base.batching, base.simd);
            if speedup < 1.3 {
                eprintln!(
                    "WARN: {host_cpus}-CPU host but {w}-worker speedup is only {speedup:.2}x (<1.3x): the tile pipeline may be serialized"
                );
                false
            } else {
                true
            }
        }
    };
    let canary_assessable = canary.is_some();

    // Perf-regression gate against the committed record (only for the
    // canonical invocation, which is about to overwrite it).
    let mut gate_failed = false;
    if write_bench {
        match &committed {
            None => println!("perf gate: no committed BENCH_step.json single-thread record — skipped"),
            Some((cpus, _)) if *cpus != host_cpus => println!(
                "perf gate: skipped (committed host_cpus {cpus} != current {host_cpus}; numbers not comparable)"
            ),
            Some((_, entries)) => {
                for (mode, old_ms) in entries {
                    let fresh = results
                        .iter()
                        .find(|r| r.workers == 1 && mode_label(r.batching, r.simd) == mode)
                        .map(|r| r.host_ms_per_step);
                    let Some(fresh) = fresh else { continue };
                    if fresh > old_ms * GATE_TOLERANCE {
                        eprintln!(
                            "FAIL [perf gate]: single-thread mode={mode} regressed >{:.0}%: {fresh:.1} ms/step vs committed {old_ms:.1}",
                            (GATE_TOLERANCE - 1.0) * 100.0
                        );
                        gate_failed = true;
                    } else {
                        println!(
                            "perf gate: single-thread mode={mode} ok ({fresh:.1} ms/step vs committed {old_ms:.1}, tolerance {:.0}%)",
                            (GATE_TOLERANCE - 1.0) * 100.0
                        );
                    }
                }
            }
        }
        // SIMD floor: the lane-parallel mode must actually be lane
        // parallel. A silent fallback to the scalar loop would still
        // pass every bit gate (the contract is bitwise identity), so
        // only a host-speed floor catches it.
        if let Some(h) = simd_host_speedup {
            if h < SIMD_HOST_SPEEDUP_FLOOR {
                eprintln!(
                    "FAIL [perf gate]: single-thread SIMD host speedup {h:.2}x is below the {SIMD_HOST_SPEEDUP_FLOOR}x floor"
                );
                gate_failed = true;
            } else {
                println!(
                    "perf gate: single-thread SIMD host speedup {h:.2}x meets the {SIMD_HOST_SPEEDUP_FLOOR}x floor"
                );
            }
        }
    }

    // BENCH_step.json: the tracked perf record for this step loop.
    if write_bench {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"probe_parallel\",\n");
        json.push_str(&format!(
            "  \"workload\": {{\"cells\": [{}, {}, {}], \"ppc\": {ppc}, \"kernel\": \"FullOpt\", \"shape\": \"CIC\", \"measured_steps\": {steps}, \"particles\": {}}},\n",
            CELLS[0], CELLS[1], CELLS[2], base.particles
        ));
        json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
        json.push_str(&format!(
            "  \"pre_pr_sequential_ms_per_step\": {PRE_PR_SEQUENTIAL_MS_PER_STEP},\n"
        ));
        json.push_str("  \"results\": [\n");
        for (i, r) in results.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"workers\": {}, \"scheduler\": \"{}\", \"batching\": \"{}\", \"simd\": \"{}\", \"host_ms_per_step\": {:.2}, \"emulated_ms_per_step\": {:.4}}}{}\n",
                r.workers,
                r.policy.label(),
                batching_label(r.batching),
                batching_label(r.simd),
                r.host_ms_per_step,
                r.emulated_ms_per_step,
                if i + 1 < results.len() { "," } else { "" }
            ));
        }
        json.push_str("  ],\n");
        // Per-phase emulated cycle breakdown of each execution mode's
        // single-thread run: mode-level totals hide where a PR moved
        // the cycles (e.g. the roofline crossover lowers Gather
        // specifically while Push stays bitwise pinned).
        let mode_runs: Vec<&ProbeResult> = modes
            .iter()
            .filter_map(|&(b, s)| single_thread(b, s))
            .collect();
        json.push_str("  \"phase_cycles_1w\": {\n");
        for (i, r) in mode_runs.iter().enumerate() {
            let cy = |p: Phase| r.cycles[Phase::ALL.iter().position(|q| *q == p).unwrap()];
            json.push_str(&format!(
                "    \"{}\": {{\"push\": {:.1}, \"gather\": {:.1}, \"compute\": {:.1}, \"reduce\": {:.1}}}{}\n",
                mode_label(r.batching, r.simd),
                cy(Phase::Push),
                cy(Phase::Gather),
                cy(Phase::Compute),
                cy(Phase::Reduce),
                if i + 1 < mode_runs.len() { "," } else { "" }
            ));
        }
        json.push_str("  },\n");
        json.push_str(&format!(
            "  \"spawn_overhead\": {{\"workers\": {overhead_workers}, \"spawn_us_per_dispatch\": {spawn_us:.1}, \"pool_us_per_dispatch\": {pool_us:.1}, \"phase_dispatches_per_step\": {PHASE_DISPATCHES_PER_STEP}, \"est_saved_ms_per_step\": {saved_ms_per_step:.3}}},\n"
        ));
        if let (Some(h), Some(e)) = (batched_host_speedup, batched_emulated_speedup) {
            json.push_str(&format!(
                "  \"speedup_batched_vs_per_particle_1w\": {{\"host\": {h:.3}, \"emulated\": {e:.3}}},\n"
            ));
        }
        if let (Some(h), Some(e)) = (simd_host_speedup, simd_emulated_speedup) {
            json.push_str(&format!(
                "  \"speedup_simd_vs_scalar_1w\": {{\"host\": {h:.3}, \"emulated\": {e:.3}}},\n"
            ));
        }
        // A host too small to run the largest worker count in
        // parallel oversubscribes cores: the measured ratio is
        // scheduler noise (~1.0x), not a property of the code, so
        // record null rather than a number downstream tooling could
        // mistake for a regression or a win.
        if canary_assessable {
            json.push_str(&format!(
                "  \"speedup_{max_workers}_workers_vs_1\": {speedup_max:.3},\n"
            ));
        } else {
            json.push_str(&format!(
                "  \"speedup_{max_workers}_workers_vs_1\": null,\n"
            ));
        }
        json.push_str(&format!(
            "  \"speedup_1_worker_vs_pre_pr\": {vs_pre_pr:.3},\n"
        ));
        json.push_str(&format!(
            "  \"determinism\": \"{}\",\n  \"cross_mode_value_parity\": \"{}\",\n  \"baseline_counter_parity\": \"{}\",\n  \"perf_gate\": \"{}\",\n  \"thread_scaling\": \"{}\"\n}}\n",
            if deterministic {
                "bit-identical"
            } else {
                "FAILED"
            },
            if !cross_mode_gate_sound(steps) {
                "skipped-sort-schedule"
            } else if cross_mode {
                "bit-identical"
            } else {
                "FAILED"
            },
            if baseline_parity {
                "bit-identical"
            } else {
                "FAILED"
            },
            if gate_failed {
                "FAILED"
            } else if committed.as_ref().is_some_and(|(c, _)| *c == host_cpus) {
                "ok"
            } else {
                "skipped"
            },
            if !canary_assessable {
                "skipped-insufficient-cores"
            } else if scaling_ok {
                "ok"
            } else {
                "below-threshold"
            }
        ));
        let path = "BENCH_step.json";
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    } else {
        println!(
            "custom worker list / scheduler / batching / simd restriction: skipping BENCH_step.json write and perf gate"
        );
    }

    if !deterministic || !cross_mode || !baseline_parity || gate_failed {
        std::process::exit(1);
    }
}
