//! Table 3 — Cross-platform kernel efficiency (% of theoretical FP64
//! peak) on the third-order QSP kernel at saturating density.
//!
//! Paper reference values:
//!
//! | System | Config | Peak efficiency |
//! |---|---|---|
//! | LX2 CPU | MatrixPIC | 83.08% |
//! | LX2 CPU | Rhocell+IncrSort (VPU) | 54.58% |
//! | LX2 CPU | Baseline | 9.84% |
//! | NVIDIA A800 | Baseline (CUDA) | 29.76% |
//!
//! CPU configurations are measured against the peak of the unit their
//! inner loop runs on (MPU for MatrixPIC, VPU otherwise); the A800 value
//! comes from the SIMT cost model replaying the *same particle stream*
//! (atomic conflicts and coalescing measured from real addresses). The
//! reproduced claim is the ranking — MatrixPIC saturates its unit far
//! better than the CUDA scatter-add saturates a GPU — and the rough
//! CPU-vs-GPU utilisation factor.

use mpic_bench::{measure_uniform, MEASURE_STEPS};
use mpic_core::workloads;
use mpic_deposit::{canonical_flops_per_particle, stage_particle, KernelConfig, ShapeOrder};
use mpic_machine::{GpuConfig, GpuModel};

/// Saturating density (paper: PPC 512; scaled for emulation).
const PPC: usize = 64;
const CELLS: [usize; 3] = [16, 16, 16];

fn main() {
    println!("== Table 3: cross-platform kernel efficiency, QSP, PPC {PPC} ==");
    println!(
        "{:>14} {:>26} {:>16} {:>16}",
        "System", "Config.", "Peak Eff. (%)", "vs MatrixPIC"
    );

    let mut fractions = Vec::new();
    for kernel in [
        KernelConfig::FullOpt,
        KernelConfig::RhocellIncrSortVpu,
        KernelConfig::Baseline,
    ] {
        eprintln!("running {} ...", kernel.label());
        let m = measure_uniform(CELLS, PPC, ShapeOrder::Qsp, kernel, MEASURE_STEPS);
        fractions.push(m.peak_fraction);
        println!(
            "{:>14} {:>26} {:>15.2}% {:>15.2}x",
            "LX2 CPU (emu)",
            m.label,
            100.0 * m.peak_fraction,
            fractions[0] / m.peak_fraction,
        );
    }
    let matrixpic = fractions[0];

    // GPU model: replay the same particle population's node addresses.
    eprintln!("running A800 SIMT model ...");
    let mut sim =
        workloads::uniform_plasma_sim(CELLS, PPC, ShapeOrder::Qsp, KernelConfig::Baseline, 42);
    // The CUDA baseline processes particles in their steady-state
    // (unsorted) order, as on the CPU side.
    {
        let (geom, layout) = (sim.geom.clone(), sim.layout.clone());
        workloads::shuffle_particles(&mut sim.electrons, &geom, &layout, 7);
    }
    let geom = &sim.geom;
    let dims = geom.dims_with_guard();
    let grid_len = (dims[0] * dims[1] * dims[2]) as u64;
    let order = ShapeOrder::Qsp;
    let s = order.support();
    let mut addrs: Vec<Vec<u64>> = Vec::new();
    for tile in &sim.electrons.tiles {
        for p in tile.soa.live_indices() {
            let st = stage_particle(
                geom,
                order,
                -1.0,
                tile.soa.x[p],
                tile.soa.y[p],
                tile.soa.z[p],
                tile.soa.ux[p],
                tile.soa.uy[p],
                tile.soa.uz[p],
                tile.soa.w[p],
            );
            let mut list = Vec::with_capacity(3 * s * s * s);
            for comp in 0..3u64 {
                for c in 0..s {
                    for b in 0..s {
                        for a in 0..s {
                            let n = mpic_deposit::common::node_index(geom, &st, order, a, b, c);
                            let lin = ((n[2] * dims[1] + n[1]) * dims[0] + n[0]) as u64;
                            list.push((comp * grid_len + lin) * 8);
                        }
                    }
                }
            }
            addrs.push(list);
        }
    }
    let model = GpuModel::new(GpuConfig::a800());
    let flops = canonical_flops_per_particle(order);
    let rep = model.deposit(&addrs, flops, flops * 1.1);
    println!(
        "{:>14} {:>26} {:>15.2}% {:>15.2}x",
        "NVIDIA A800",
        "Baseline (CUDA model)",
        100.0 * rep.peak_fraction(model.cfg()),
        matrixpic / rep.peak_fraction(model.cfg()),
    );
    println!("\npaper ratios: MatrixPIC/VPU 1.52x, MatrixPIC/CUDA 2.79x, CUDA/Baseline 3.0x");
    println!(
        "  (A800 model: {:.0} atomic transactions, {:.0} replays, {:.2e} cycles)",
        rep.atomic_transactions as f64, rep.atomic_replays as f64, rep.cycles
    );
}
