//! Fault-injection recovery probe: drives the crash-resilience stack
//! (checkpoint/restore + worker fault recovery + step transactions)
//! across the full execution matrix, as a CI gate.
//!
//! Gates enforced (any failure panics, so the exit code is the gate):
//!
//! * **Recovery matrix** — for workers ∈ {1,2,4,7} × both scheduler
//!   policies × injected dispatch offsets {2, 5} × fault kinds
//!   {panic, die}: a mid-step fault on the last worker must be caught,
//!   rolled back to the last checkpoint and replayed, and the final
//!   state must be **bitwise identical** (total snapshot bytes) to a
//!   single crash-free reference — which, because checkpoints are
//!   worker- and scheduler-agnostic, also re-verifies the determinism
//!   contract across the whole matrix in one comparison.
//! * **Snapshot round-trips** — the uniform-plasma and LWFA
//!   moving-window workloads are checkpointed mid-run, restored into
//!   fresh simulations, and continued: the resumed run must land on the
//!   interrupted run's exact bytes, and a same-state round-trip must be
//!   byte-lossless.
//! * **Env plumbing** (`--env-fault [workers]`) — reads the fault from
//!   `MPIC_FAULT_WORKER` / `MPIC_FAULT_DISPATCH` / `MPIC_FAULT_KIND`
//!   (armed automatically on every pool construction), recovers through
//!   it, and checks the result against a crash-free reference — the
//!   end-to-end test of the env-driven `FaultPlan` path.
//!
//! CI runs this in the **debug** profile: `debug_assertions` keeps the
//! Partition claim bitmap live, so every replayed phase's shard grants
//! stay aliasing-audited while faults bounce the step loop around.
//!
//! Usage: `probe_resilience [--env-fault [workers]]`.

use mpic_core::{workloads, ResilientDriver, Simulation};
use mpic_deposit::{KernelConfig, ShapeOrder};
use mpic_machine::{FaultKind, FaultPlan, SchedulerPolicy};

/// Grid of the uniform recovery/round-trip workload (small on purpose:
/// CI runs the whole matrix in the debug profile).
const UNIFORM_CELLS: [usize; 3] = [8, 8, 8];

/// Grid of the LWFA moving-window round-trip workload.
const LWFA_CELLS: [usize; 3] = [8, 8, 32];

const PPC: usize = 2;
const SEED: u64 = 4242;

/// Steps every recovery run covers (2 warm-up + 4 driven).
const WARMUP: usize = 2;
const TOTAL: usize = 6;

fn uniform(workers: usize, policy: SchedulerPolicy) -> Simulation {
    let mut s = workloads::uniform_plasma_sim(
        UNIFORM_CELLS,
        PPC,
        ShapeOrder::Cic,
        KernelConfig::FullOpt,
        SEED,
    );
    s.cfg.num_workers = workers;
    s.cfg.scheduler = policy;
    s.cfg.batching = true;
    s
}

fn lwfa(workers: usize, policy: SchedulerPolicy) -> Simulation {
    let mut s = workloads::lwfa_sim(
        LWFA_CELLS,
        PPC,
        ShapeOrder::Cic,
        KernelConfig::FullOpt,
        SEED,
    );
    s.cfg.num_workers = workers;
    s.cfg.scheduler = policy;
    s.cfg.batching = true;
    s
}

/// A plan that can never fire: used to disarm an env-armed pool so the
/// crash-free reference of `--env-fault` mode stays crash-free.
fn never_fires() -> FaultPlan {
    FaultPlan {
        worker: 0,
        dispatch: u64::MAX,
        kind: FaultKind::Panic,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--env-fault") {
        let workers = args
            .get(1)
            .map(|w| w.parse().expect("workers must be a number"))
            .unwrap_or(4);
        env_fault_gate(workers);
        return;
    }

    recovery_matrix();
    round_trip(
        "uniform",
        &|| uniform(4, SchedulerPolicy::Stealing),
        &|| uniform(7, SchedulerPolicy::Static),
    );
    round_trip("lwfa", &|| lwfa(4, SchedulerPolicy::Stealing), &|| {
        lwfa(7, SchedulerPolicy::Static)
    });
    println!("probe_resilience: all gates passed");
}

/// The fault matrix: every combination must recover to the one
/// crash-free reference's exact bytes.
fn recovery_matrix() {
    // Checkpoints are worker/scheduler agnostic (batching held
    // constant), so one crash-free run references the whole matrix.
    let mut reference = uniform(1, SchedulerPolicy::Static);
    reference.run(TOTAL);
    let expected = reference.snapshot();

    let mut runs = 0usize;
    for &workers in &[1usize, 2, 4, 7] {
        for &policy in &[SchedulerPolicy::Static, SchedulerPolicy::Stealing] {
            for &offset in &[2u64, 5] {
                for &kind in &[FaultKind::Panic, FaultKind::Die] {
                    let mut faulted = uniform(workers, policy);
                    // Warm up under the final worker count: the pool
                    // (and any plan armed on it) is rebuilt when the
                    // configured count changes.
                    faulted.run(WARMUP);
                    let worker = workers - 1;
                    faulted.pool().inject_fault(FaultPlan {
                        worker,
                        dispatch: faulted.pool().dispatch_count() + offset,
                        kind,
                    });
                    let mut driver = ResilientDriver::new(2, 3);
                    let stats = driver
                        .run(&mut faulted, TOTAL - WARMUP)
                        .unwrap_or_else(|e| {
                            panic!("w={workers} {policy:?} +{offset} {kind:?}: {e}")
                        });
                    assert!(
                        stats.failures >= 1,
                        "w={workers} {policy:?} +{offset} {kind:?}: fault never fired"
                    );
                    // Worker 0 is the dispatching thread: `Die` on it
                    // degrades to a caught panic, nothing to respawn.
                    if kind == FaultKind::Die && worker != 0 {
                        assert_eq!(stats.workers_respawned, 1);
                        assert!(faulted.pool().dead_workers().is_empty());
                    }
                    assert!(
                        faulted.snapshot() == expected,
                        "w={workers} {policy:?} +{offset} {kind:?}: \
                         recovered state diverged from the crash-free run"
                    );
                    runs += 1;
                }
            }
        }
    }
    println!("recovery matrix: {runs} faulted runs, all bitwise-equal to the reference");
}

/// Checkpoint mid-run, restore into a (differently configured) fresh
/// simulation, continue: the resumed run must land on the interrupted
/// run's bytes, and a same-state round-trip must be byte-lossless.
fn round_trip(label: &str, make_a: &dyn Fn() -> Simulation, make_b: &dyn Fn() -> Simulation) {
    let (pre, post) = (3usize, 3usize);

    let mut interrupted = make_a();
    interrupted.run(pre);
    let checkpoint = interrupted.snapshot();
    interrupted.run(post);
    let expected = interrupted.snapshot();

    let mut resumed = make_b();
    resumed
        .restore(&checkpoint)
        .unwrap_or_else(|e| panic!("{label}: restore failed: {e}"));
    assert!(
        resumed.snapshot() == checkpoint,
        "{label}: round-trip is not byte-lossless"
    );
    resumed.run(post);
    assert!(
        resumed.snapshot() == expected,
        "{label}: resumed run diverged from the interrupted one"
    );
    println!("snapshot round-trip ({label}): lossless, resume bitwise-equal");
}

/// End-to-end check of the env-driven fault path: the plan parsed from
/// `MPIC_FAULT_*` must fire through pool-construction arming and be
/// recovered from, bitwise.
fn env_fault_gate(workers: usize) {
    let plan = FaultPlan::from_env()
        .expect("--env-fault requires MPIC_FAULT_WORKER (and friends) to be set");
    assert!(
        plan.worker < workers,
        "MPIC_FAULT_WORKER={} targets no worker of a {}-wide pool",
        plan.worker,
        workers
    );

    // The reference keeps the construction pool (default 1 worker), so
    // disarming that one pool is enough to run crash-free.
    let mut reference = workloads::uniform_plasma_sim(
        UNIFORM_CELLS,
        PPC,
        ShapeOrder::Cic,
        KernelConfig::FullOpt,
        SEED,
    );
    reference.pool().inject_fault(never_fires());
    reference.run(TOTAL);
    let expected = reference.snapshot();

    // The faulted run retargets the pool: the rebuild at the top of the
    // first step re-arms from the (still set) env vars, with the
    // dispatch counter starting at zero — so MPIC_FAULT_DISPATCH counts
    // dispatches of the actual driven run.
    let mut faulted = workloads::uniform_plasma_sim(
        UNIFORM_CELLS,
        PPC,
        ShapeOrder::Cic,
        KernelConfig::FullOpt,
        SEED,
    );
    faulted.cfg.num_workers = workers;
    let mut driver = ResilientDriver::new(2, 3);
    let stats = driver
        .run(&mut faulted, TOTAL)
        .unwrap_or_else(|e| panic!("env-fault run failed terminally: {e}"));
    assert!(
        stats.failures >= 1,
        "the env-armed fault never fired (dispatch index too high for {TOTAL} steps?)"
    );
    if plan.kind == FaultKind::Die && plan.worker != 0 {
        assert_eq!(stats.workers_respawned, 1);
        assert!(faulted.pool().dead_workers().is_empty());
    }
    assert!(
        faulted.snapshot() == expected,
        "env-fault recovery diverged from the crash-free reference"
    );
    println!(
        "env fault gate: {:?} on worker {} at dispatch {} recovered bitwise \
         ({} failure(s), {} respawn(s))",
        plan.kind, plan.worker, plan.dispatch, stats.failures, stats.workers_respawned
    );
}
