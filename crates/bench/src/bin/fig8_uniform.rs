//! Figure 8 — Overall performance on the uniform plasma workload across
//! PPC densities: stacked wall time, deposition kernel time, throughput
//! and the normalized breakdown, for the baseline and MatrixPIC.
//!
//! Paper headlines at the dense end: 16.2% total wall-time speedup and
//! +22% particles/s at PPC 128; up to 36.4% kernel speedup at PPC 32;
//! *negative* at PPC 1 (overheads not amortised — "up to 17.2% lower").

use mpic_bench::{measure_uniform, Measurement, MEASURE_STEPS, PPC_SWEEP, UNIFORM_CELLS};
use mpic_deposit::{KernelConfig, ShapeOrder};

fn main() {
    println!("== Figure 8: uniform plasma across PPC (baseline vs MatrixPIC) ==");
    println!(
        "{:>5} {:>24} {:>12} {:>12} {:>13} {:>10} {:>10}",
        "PPC", "config", "wall ms/st", "dep ms/st", "particles/s", "dep frac", "speedup"
    );
    for &ppc in &PPC_SWEEP {
        let mut pair: Vec<Measurement> = Vec::new();
        for kernel in [KernelConfig::Baseline, KernelConfig::FullOpt] {
            eprintln!("running PPC {ppc} {} ...", kernel.label());
            pair.push(measure_uniform(
                UNIFORM_CELLS,
                ppc,
                ShapeOrder::Cic,
                kernel,
                MEASURE_STEPS,
            ));
        }
        for m in &pair {
            let total: f64 = m.phases_ms.iter().sum();
            let dep: f64 = m.phases_ms[..4].iter().sum();
            println!(
                "{:>5} {:>24} {:>12.3} {:>12.3} {:>13.3e} {:>9.1}% {:>9.2}x",
                m.ppc,
                m.label,
                m.wall_ms,
                m.dep_ms,
                m.pps,
                100.0 * dep / total,
                pair[0].wall_ms / m.wall_ms,
            );
        }
        println!(
            "      -> kernel speedup {:.2}x, throughput gain {:+.1}%",
            pair[0].dep_ms / pair[1].dep_ms,
            100.0 * (pair[1].pps / pair[0].pps - 1.0)
        );
    }
}
