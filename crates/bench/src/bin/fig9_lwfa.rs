//! Figure 9 — LWFA total wall time across PPC, baseline vs MatrixPIC.
//!
//! Paper headline: up to 2.62x total-simulation speedup; below ~8 PPC
//! MatrixPIC can fall under the baseline (sparse regions cannot amortise
//! the framework overheads).

use mpic_bench::{measure_lwfa, LWFA_CELLS, MEASURE_STEPS, PPC_SWEEP};
use mpic_deposit::KernelConfig;

fn main() {
    println!("== Figure 9: LWFA total wall time across PPC ==");
    println!(
        "{:>5} {:>16} {:>16} {:>10}",
        "PPC", "baseline ms/st", "matrixpic ms/st", "speedup"
    );
    for &ppc in &PPC_SWEEP {
        eprintln!("running LWFA PPC {ppc} ...");
        let base = measure_lwfa(LWFA_CELLS, ppc, KernelConfig::Baseline, MEASURE_STEPS);
        let full = measure_lwfa(LWFA_CELLS, ppc, KernelConfig::FullOpt, MEASURE_STEPS);
        println!(
            "{:>5} {:>16.3} {:>16.3} {:>9.2}x",
            ppc,
            base.wall_ms,
            full.wall_ms,
            base.wall_ms / full.wall_ms
        );
    }
}
