//! Developer probe: staging cost, sorted vs unsorted iteration, with
//! contiguity and cache statistics. Not part of the paper's experiment
//! set; used to calibrate the cost model.

use mpic_core::workloads;
use mpic_deposit::KernelConfig;
use mpic_deposit::ShapeOrder;
use mpic_machine::Phase;

fn main() {
    for kernel in [KernelConfig::Baseline, KernelConfig::RhocellIncrSortVpu] {
        let mut sim = workloads::uniform_plasma_sim([32, 16, 16], 32, ShapeOrder::Cic, kernel, 42);
        if kernel == KernelConfig::Baseline {
            workloads::shuffle_particles(&mut sim.electrons, &sim.geom, &sim.layout, 7);
        }
        sim.run(4);
        // Contiguity of the iteration streams at the final state.
        let mut chunks = 0usize;
        let mut contiguous = 0usize;
        for t in &sim.electrons.tiles {
            let iter: Vec<usize> = if kernel == KernelConfig::Baseline {
                t.soa.live_indices().collect()
            } else {
                t.gpma.iter_sorted().map(|(_, p)| p).collect()
            };
            for ch in iter.chunks(8) {
                chunks += 1;
                if ch.windows(2).all(|w| w[1] == w[0] + 1) {
                    contiguous += 1;
                }
            }
        }
        let ctr = sim.machine.counters();
        println!(
            "{:>24}: preproc {:>12.0} cy, compute {:>12.0} cy, contiguous {:.1}%, L1 hit {:.1}%, L2 hit {:.1}%",
            kernel.label(),
            ctr.cycles(Phase::Preprocess),
            ctr.cycles(Phase::Compute),
            100.0 * contiguous as f64 / chunks as f64,
            100.0 * sim.machine.mem().l1_stats().hit_rate(),
            100.0 * sim.machine.mem().l2_stats().hit_rate(),
        );
        let (st, rnd) = sim.machine.mem().miss_split();
        println!("  dram misses: {st} streamed, {rnd} random");
    }
}
