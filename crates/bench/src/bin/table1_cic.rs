//! Table 1 — Performance breakdown of the first-order (CIC) deposition
//! kernel at PPC 128 for all six comparison configurations.
//!
//! Paper reference values (seconds on a 256-core LX2 node, 100 steps):
//!
//! | Configuration | Total | Preproc. | Compute | Sort |
//! |---|---|---|---|---|
//! | Baseline (WarpX)         | 74.13 | 17.39 | 56.74 | -    |
//! | Baseline+IncrSort        | 45.64 | 20.74 | 19.71 | 5.19 |
//! | Rhocell (auto-vec)       | 54.89 | 19.89 | 34.75 | -    |
//! | Rhocell+IncrSort         | 44.81 | 20.49 | 23.38 | 4.63 |
//! | Rhocell+IncrSort (VPU)   | 34.13 |  7.66 | 21.04 | 5.11 |
//! | MatrixPIC (FullOpt)      | 24.90 |  5.33 | 15.10 | 4.31 |
//!
//! Absolute numbers are not comparable (emulated single core vs 256-core
//! node); the reproduced quantity is the *relative ordering and rough
//! factors* — headline: FullOpt ~3x over the baseline, ~1.4x over the
//! hand-tuned VPU kernel.

use mpic_bench::{measure_uniform, print_kernel_table, MEASURE_STEPS, UNIFORM_CELLS};
use mpic_deposit::{KernelConfig, ShapeOrder};

fn main() {
    let ppc: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let rows: Vec<_> = KernelConfig::VPU_COMPARISON
        .iter()
        .map(|&k| {
            eprintln!("running {} ...", k.label());
            measure_uniform(UNIFORM_CELLS, ppc, ShapeOrder::Cic, k, MEASURE_STEPS)
        })
        .collect();
    print_kernel_table(
        &format!("Table 1: CIC deposition kernel breakdown (PPC {ppc})"),
        &rows,
    );
    let baseline = rows[0].dep_ms;
    let vpu = rows[4].dep_ms;
    let full = rows[5].dep_ms;
    println!(
        "\nheadline: FullOpt {:.2}x vs Baseline (paper: 2.98x), {:.2}x vs best VPU (paper: 1.37x)",
        baseline / full,
        vpu / full
    );
}
