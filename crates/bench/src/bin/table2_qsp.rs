//! Table 2 — Performance breakdown of the third-order (QSP) deposition
//! kernel.
//!
//! Paper reference values (seconds, single core, 100 steps):
//!
//! | Configuration | Total | Preproc. | Compute | Sort |
//! |---|---|---|---|---|
//! | Baseline (WarpX)       | 12.19 | 0.38 | 11.82 | -    |
//! | Baseline+IncrSort      |  3.44 | 0.39 |  3.02 | 0.03 |
//! | Rhocell+IncrSort (VPU) |  2.81 | 0.13 |  2.63 | 0.04 |
//! | MatrixPIC (FullOpt)    |  1.39 | 0.13 |  1.22 | 0.03 |
//!
//! Headlines: 8.7x over the baseline and 2.0x over the best hand-tuned
//! VPU kernel; sort cost drops to ~2% of kernel time (the higher
//! arithmetic intensity amortises all staging overheads).

use mpic_bench::{measure_uniform, print_kernel_table, MEASURE_STEPS, UNIFORM_CELLS};
use mpic_deposit::{KernelConfig, ShapeOrder};

fn main() {
    let ppc: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let configs = [
        KernelConfig::Baseline,
        KernelConfig::BaselineIncrSort,
        KernelConfig::RhocellIncrSortVpu,
        KernelConfig::FullOpt,
    ];
    let rows: Vec<_> = configs
        .iter()
        .map(|&k| {
            eprintln!("running {} ...", k.label());
            measure_uniform(UNIFORM_CELLS, ppc, ShapeOrder::Qsp, k, MEASURE_STEPS)
        })
        .collect();
    print_kernel_table(
        &format!("Table 2: QSP (3rd order) deposition kernel breakdown (PPC {ppc})"),
        &rows,
    );
    println!(
        "\nheadline: FullOpt {:.2}x vs Baseline (paper: 8.7x), {:.2}x vs best VPU (paper: 2.0x)",
        rows[0].dep_ms / rows[3].dep_ms,
        rows[2].dep_ms / rows[3].dep_ms
    );
    println!(
        "sort share of kernel: {:.1}% (paper: 2.2%)",
        100.0 * rows[3].phases_ms[2] / rows[3].dep_ms
    );
}
