//! GPMA design-space ablation (beyond the paper's figures): how the gap
//! headroom ratio trades sorting cost against rebuild frequency. Small
//! gaps save memory but force frequent O(N_tile) rebuilds; large gaps
//! make every insertion O(1) at the cost of sparser traversal.

use mpic_core::{workloads, Simulation};
use mpic_deposit::{KernelConfig, ShapeOrder};
use mpic_grid::{GridGeometry, TileLayout};
use mpic_machine::Phase;

fn main() {
    let ppc = 16;
    let steps = 6;
    println!("== GPMA ablation: gap ratio vs sort cost (PPC {ppc}, {steps} steps) ==");
    println!(
        "{:>10} {:>12} {:>10} {:>12} {:>12}",
        "gap ratio", "sort ms/st", "rebuilds", "empty ratio", "wall ms/st"
    );
    for gap in [0.05, 0.15, 0.3, 0.5, 1.0] {
        let cfg = workloads::uniform_plasma_config(
            [16, 16, 16],
            ShapeOrder::Cic,
            KernelConfig::FullOpt,
            42,
        );
        let geom = GridGeometry::new(cfg.n_cells, [0.0; 3], cfg.dx, cfg.guard);
        let layout = TileLayout::new(&geom, cfg.tile_size);
        let mut electrons = workloads::load_uniform_plasma(
            &geom,
            &layout,
            workloads::UNIFORM_DENSITY,
            ppc,
            workloads::UNIFORM_UTH,
            42,
        );
        electrons.set_gap_ratio(gap);
        let mut sim = Simulation::from_parts(cfg, geom, layout, electrons, None);
        sim.run(steps);
        let clock = sim.cfg.machine.clone();
        let rep = sim.report();
        println!(
            "{:>10.2} {:>12.4} {:>10} {:>12.3} {:>12.3}",
            gap,
            1e3 * clock.cycles_to_seconds(rep.phase_cycles(Phase::Sort)) / steps as f64,
            sim.electrons.rebuilds_accum(),
            sim.electrons.empty_ratio(),
            1e3 * clock.cycles_to_seconds(rep.total_cycles()) / steps as f64,
        );
    }
}
