//! Shared harness utilities for regenerating every table and figure of
//! the paper's evaluation section.
//!
//! Each experiment is a binary in `src/bin/` printing the same rows or
//! series the paper reports:
//!
//! | binary | artefact |
//! |---|---|
//! | `fig1_breakdown` | Figure 1 — runtime breakdown of uniform plasma |
//! | `fig8_uniform` | Figure 8 — uniform plasma across PPC |
//! | `fig9_lwfa` | Figure 9 — LWFA wall time across PPC |
//! | `fig10_ablation` | Figure 10 — ablation study |
//! | `table1_cic` | Table 1 — CIC kernel breakdown |
//! | `table2_qsp` | Table 2 — QSP kernel breakdown |
//! | `table3_efficiency` | Table 3 — cross-platform peak efficiency |
//!
//! Criterion micro-benchmarks over the underlying kernels live in
//! `benches/`.

use mpic_core::{workloads, RunReport, Simulation};
use mpic_deposit::{KernelConfig, ShapeOrder};
use mpic_machine::{MachineConfig, Phase};

/// Standard grid for scaled-down uniform-plasma experiments. The paper
/// uses 256x128x128 on a 256-core node; one emulated core gets a
/// proportional slice whose footprint exceeds the (scaled) cache
/// hierarchy, keeping deposition memory-bound as on the real machine.
pub const UNIFORM_CELLS: [usize; 3] = [32, 32, 32];

/// Standard scaled LWFA grid (paper: 64x64x512).
pub const LWFA_CELLS: [usize; 3] = [16, 16, 128];

/// PPC sweep of the paper's Figure 8/9/10 (Table 4:
/// `num_particles_per_cell_each_dim` 1..128; we keep the emulation
/// tractable by capping the densest point).
pub const PPC_SWEEP: [usize; 3] = [1, 8, 64];

/// Steps per measurement (after a warm-up step).
pub const MEASURE_STEPS: usize = 3;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Configuration label (paper row name).
    pub label: String,
    /// Particles per cell.
    pub ppc: usize,
    /// Average wall ms per step.
    pub wall_ms: f64,
    /// Average deposition-kernel ms per step.
    pub dep_ms: f64,
    /// Phase breakdown, ms/step: preproc, compute, sort, reduce, gather,
    /// push, solve, other.
    pub phases_ms: [f64; 8],
    /// Kernel throughput, particles/s.
    pub pps: f64,
    /// Fraction of the configuration's unit peak achieved.
    pub peak_fraction: f64,
}

/// Runs a uniform-plasma configuration and measures it.
pub fn measure_uniform(
    cells: [usize; 3],
    ppc: usize,
    order: ShapeOrder,
    kernel: KernelConfig,
    steps: usize,
) -> Measurement {
    let mut sim = workloads::uniform_plasma_sim(cells, ppc, order, kernel, 42);
    if !sorted_config(kernel) {
        // Unsorted configs are measured in their steady state: a long
        // production run has scrambled any initial ordering.
        workloads::shuffle_particles(&mut sim.electrons, &sim.geom, &sim.layout, 7);
    }
    run_and_measure(&mut sim, kernel, ppc, steps)
}

/// Runs an LWFA configuration and measures it.
pub fn measure_lwfa(
    cells: [usize; 3],
    ppc: usize,
    kernel: KernelConfig,
    steps: usize,
) -> Measurement {
    let mut sim = workloads::lwfa_sim(cells, ppc, ShapeOrder::Cic, kernel, 42);
    if !sorted_config(kernel) {
        workloads::shuffle_particles(&mut sim.electrons, &sim.geom, &sim.layout, 7);
    }
    run_and_measure(&mut sim, kernel, ppc, steps)
}

fn sorted_config(kernel: KernelConfig) -> bool {
    !matches!(
        kernel,
        KernelConfig::Baseline
            | KernelConfig::Rhocell
            | KernelConfig::MatrixOnly
            | KernelConfig::HybridNoSort
    )
}

fn run_and_measure(
    sim: &mut Simulation,
    kernel: KernelConfig,
    ppc: usize,
    steps: usize,
) -> Measurement {
    // Warm-up step excluded from measurement (cold caches, first-touch).
    sim.step();
    let skip = sim.report().len();
    sim.run(steps);
    let clock = sim.cfg.machine.clone();
    let rep = tail_report(sim.report(), skip);
    let useful = sim.machine.counters().useful_flops;
    let peak_fraction = compute_peak_fraction(sim, kernel, &rep, useful);
    Measurement {
        label: kernel.label().to_string(),
        ppc,
        wall_ms: 1e3 * clock.cycles_to_seconds(rep.total_cycles()) / steps as f64,
        dep_ms: 1e3 * rep.deposition_seconds(&clock) / steps as f64,
        phases_ms: phase_ms(&rep, &clock, steps),
        pps: rep.particles_per_second(&clock),
        peak_fraction,
    }
}

fn tail_report(rep: &RunReport, skip: usize) -> RunReport {
    let mut out = RunReport::default();
    for s in rep.steps.iter().skip(skip) {
        out.push(*s);
    }
    out
}

fn phase_ms(rep: &RunReport, clock: &MachineConfig, steps: usize) -> [f64; 8] {
    let mut out = [0.0; 8];
    for (i, p) in Phase::ALL.iter().enumerate() {
        out[i] = 1e3 * clock.cycles_to_seconds(rep.phase_cycles(*p)) / steps as f64;
    }
    out
}

fn compute_peak_fraction(
    sim: &Simulation,
    kernel: KernelConfig,
    rep: &RunReport,
    _total_useful: f64,
) -> f64 {
    // Useful work of the measured steps: canonical FLOPs x particles.
    let per_particle = mpic_deposit::canonical_flops_per_particle(sim.cfg.shape);
    let processed: usize = rep.steps.iter().map(|s| s.particles).sum();
    let useful = per_particle * processed as f64;
    let cy = rep.deposition_cycles();
    if cy == 0.0 {
        return 0.0;
    }
    useful / (cy * kernel.unit_peak_flops_per_cycle(&sim.cfg.machine))
}

/// Pretty-prints a table of measurements with phase columns.
pub fn print_kernel_table(title: &str, rows: &[Measurement]) {
    println!("\n== {title} ==");
    println!(
        "{:>26} {:>9} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "Configuration", "Total", "Preproc.", "Compute", "Sort", "Reduce", "Speedup"
    );
    println!(
        "{:>26} {:>9} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "", "(ms)", "(ms)", "(ms)", "(ms)", "(ms)", "vs row 1"
    );
    let base = rows.first().map(|r| r.dep_ms).unwrap_or(1.0);
    for r in rows {
        println!(
            "{:>26} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>11.3} {:>8.2}x",
            r.label,
            r.dep_ms,
            r.phases_ms[0],
            r.phases_ms[1],
            r.phases_ms[2],
            r.phases_ms[3],
            base / r.dep_ms,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_uniform_smoke() {
        let m = measure_uniform([8, 8, 8], 2, ShapeOrder::Cic, KernelConfig::FullOpt, 1);
        assert!(m.wall_ms > 0.0);
        assert!(m.dep_ms > 0.0);
        assert!(m.pps > 0.0);
        assert!(m.peak_fraction > 0.0 && m.peak_fraction < 1.0);
    }

    #[test]
    fn sorted_config_classification() {
        assert!(sorted_config(KernelConfig::FullOpt));
        assert!(!sorted_config(KernelConfig::Baseline));
        assert!(sorted_config(KernelConfig::HybridGlobalSort));
    }
}
