//! Criterion micro-benchmarks over the deposition kernels and their
//! substrates. These measure *host* execution time of the emulated
//! kernels (useful for tracking the emulator's own performance); the
//! paper-figure regeneration uses the cycle-model harness bins instead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpic_core::workloads;
use mpic_deposit::{KernelConfig, ShapeOrder};
use mpic_grid::{FieldArrays, GridGeometry, TileLayout};
use mpic_machine::{Machine, MachineConfig};
use mpic_particles::Gpma;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_deposition_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("deposit_cic_ppc8");
    group.sample_size(10);
    for kernel in [
        KernelConfig::Baseline,
        KernelConfig::RhocellIncrSortVpu,
        KernelConfig::FullOpt,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.label()),
            &kernel,
            |b, &kernel| {
                let geom = GridGeometry::new([8, 8, 8], [0.0; 3], [1e-6; 3], 2);
                let layout = TileLayout::new(&geom, [8, 8, 8]);
                let mut container = workloads::load_uniform_plasma(
                    &geom,
                    &layout,
                    workloads::UNIFORM_DENSITY,
                    8,
                    0.01,
                    1,
                );
                let mut m = Machine::new(MachineConfig::lx2());
                let mut dep = kernel.build(ShapeOrder::Cic);
                dep.prepare(&mut m, &geom, &layout, &mut container);
                let mut fields = FieldArrays::new(&geom);
                b.iter(|| {
                    dep.sort_step(&mut m, &geom, &layout, &mut container, false);
                    dep.deposit_step(&mut m, &geom, &layout, &container, &mut fields);
                    std::hint::black_box(fields.jx.sum())
                });
            },
        );
    }
    group.finish();
}

fn bench_gpma_maintenance(c: &mut Criterion) {
    c.bench_function("gpma_apply_moves_5pct", |b| {
        let n_bins = 512;
        let n = 512 * 16;
        b.iter(|| {
            let mut cells: Vec<usize> = (0..n).map(|p| p % n_bins).collect();
            let mut g = Gpma::build(&cells, n_bins, 0.5);
            for step in 0..5 {
                for p in (step..n).step_by(20) {
                    let old = cells[p];
                    let new = if old + 1 < n_bins { old + 1 } else { old - 1 };
                    g.queue_move(p, old, new);
                    cells[p] = new;
                }
                let _ = g.apply_pending_moves(&cells);
            }
            std::hint::black_box(g.num_particles())
        });
    });
}

fn bench_counting_sort(c: &mut Criterion) {
    c.bench_function("counting_sort_64k", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let keys: Vec<usize> = (0..65536).map(|_| rng.gen_range(0..512)).collect();
        b.iter(|| {
            let (perm, _) = mpic_particles::counting_sort_keys(&keys, 512);
            std::hint::black_box(perm.len())
        });
    });
}

fn bench_full_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_pic_step");
    group.sample_size(10);
    for (name, kernel) in [
        ("baseline", KernelConfig::Baseline),
        ("matrixpic", KernelConfig::FullOpt),
    ] {
        group.bench_function(name, |b| {
            let mut sim = workloads::uniform_plasma_sim([8, 8, 8], 4, ShapeOrder::Cic, kernel, 9);
            b.iter(|| {
                sim.step();
                std::hint::black_box(sim.step_index())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_deposition_kernels,
    bench_gpma_maintenance,
    bench_counting_sort,
    bench_full_step
);
criterion_main!(benches);
