//! Adaptive global re-sort policy (paper section 4.4, Table 4 defaults).
//!
//! The GPMA keeps the index sorted but never moves particle data, so
//! memory coherence degrades over time. `SortPolicy` decides, once per
//! step, whether to run the counting-sort global reorder, using five
//! prioritised, user-configurable triggers evaluated against
//! [`RankSortStats`].

/// Why a global sort was triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortReason {
    /// Trigger 2: the fixed sort interval elapsed.
    FixedInterval,
    /// Trigger 3: cumulative GPMA local rebuilds exceeded the limit.
    RebuildCount,
    /// Trigger 4: the tile-wide empty-slot ratio left its band.
    EmptyRatio,
    /// Trigger 5: step throughput degraded below the baseline fraction.
    PerfDegradation,
}

/// Per-rank counters the policy evaluates (the paper's `RankSortStats`).
#[derive(Debug, Clone, Default)]
#[must_use]
pub struct RankSortStats {
    /// Steps since the last global sort.
    pub steps_since_sort: u64,
    /// Cumulative GPMA local rebuilds across all tiles since last sort.
    pub rebuilds_accum: u64,
    /// Global empty-slot ratio across all tiles (free / capacity).
    pub empty_ratio: f64,
    /// Most recent step throughput (particles/s); 0 disables trigger 5.
    pub perf_metric: f64,
    /// Baseline throughput recorded right after the last global sort.
    pub baseline_perf: f64,
}

impl RankSortStats {
    /// Resets after a global sort (the paper's `ResetRankSortCounters`):
    /// the current throughput becomes the new baseline.
    pub fn reset(&mut self) {
        self.steps_since_sort = 0;
        self.rebuilds_accum = 0;
        self.baseline_perf = self.perf_metric;
    }
}

/// User-configurable policy parameters; defaults mirror Appendix A
/// Table 4 of the paper.
#[derive(Debug, Clone)]
pub struct SortPolicy {
    /// `warpx.min_sort_interval`: never sort more often than this.
    pub min_sort_interval: u64,
    /// `warpx.sort_interval`: always sort at least this often.
    pub sort_interval: u64,
    /// `warpx.sort_trigger_rebuild_count`.
    pub trigger_rebuild_count: u64,
    /// `warpx.sort_trigger_empty_ratio`: sort when free slots drop below.
    pub trigger_empty_ratio: f64,
    /// `warpx.sort_trigger_full_ratio`: sort when free slots exceed
    /// (tile mostly holes => memory wasted and traversal sparse).
    pub trigger_full_ratio: f64,
    /// `warpx.sort_trigger_perf_enable`.
    pub perf_enable: bool,
    /// `warpx.sort_trigger_perf_degrad`: sort when throughput falls below
    /// this fraction of the post-sort baseline.
    pub perf_degrad: f64,
}

impl Default for SortPolicy {
    fn default() -> Self {
        Self {
            min_sort_interval: 10,
            sort_interval: 50,
            trigger_rebuild_count: 100,
            trigger_empty_ratio: 0.15,
            trigger_full_ratio: 0.85,
            perf_enable: true,
            perf_degrad: 0.80,
        }
    }
}

impl SortPolicy {
    /// A policy that never triggers (the `Hybrid-noSort` ablation).
    pub fn never() -> Self {
        Self {
            min_sort_interval: u64::MAX,
            sort_interval: u64::MAX,
            trigger_rebuild_count: u64::MAX,
            trigger_empty_ratio: -1.0,
            trigger_full_ratio: 2.0,
            perf_enable: false,
            perf_degrad: 0.0,
        }
    }

    /// A policy that triggers every step (the `Hybrid-GlobalSort`
    /// ablation: non-incremental full sort each timestep).
    pub fn every_step() -> Self {
        Self {
            min_sort_interval: 0,
            sort_interval: 1,
            trigger_rebuild_count: u64::MAX,
            trigger_empty_ratio: -1.0,
            trigger_full_ratio: 2.0,
            perf_enable: false,
            perf_degrad: 0.0,
        }
    }

    /// Evaluates the five prioritised triggers
    /// (the paper's `ShouldPerformGlobalSort`).
    pub fn should_sort(&self, stats: &RankSortStats) -> Option<SortReason> {
        // Trigger 1 (highest priority): minimum interval gate.
        if stats.steps_since_sort < self.min_sort_interval {
            return None;
        }
        // Trigger 2: fixed interval.
        if self.sort_interval != u64::MAX && stats.steps_since_sort >= self.sort_interval {
            return Some(SortReason::FixedInterval);
        }
        // Trigger 3: accumulated local rebuilds.
        if stats.rebuilds_accum > self.trigger_rebuild_count {
            return Some(SortReason::RebuildCount);
        }
        // Trigger 4: empty-slot ratio out of band.
        if stats.empty_ratio < self.trigger_empty_ratio
            || stats.empty_ratio > self.trigger_full_ratio
        {
            return Some(SortReason::EmptyRatio);
        }
        // Trigger 5: performance degradation (optional).
        if self.perf_enable
            && stats.baseline_perf > 0.0
            && stats.perf_metric > 0.0
            && stats.perf_metric < self.perf_degrad * stats.baseline_perf
        {
            return Some(SortReason::PerfDegradation);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy_stats(steps: u64) -> RankSortStats {
        RankSortStats {
            steps_since_sort: steps,
            rebuilds_accum: 0,
            empty_ratio: 0.5,
            perf_metric: 100.0,
            baseline_perf: 100.0,
        }
    }

    #[test]
    fn min_interval_gates_everything() {
        let p = SortPolicy::default();
        let mut s = healthy_stats(5);
        s.rebuilds_accum = 10_000; // Would otherwise trigger.
        s.empty_ratio = 0.0;
        assert_eq!(p.should_sort(&s), None);
    }

    #[test]
    fn fixed_interval_fires() {
        let p = SortPolicy::default();
        assert_eq!(p.should_sort(&healthy_stats(49)), None);
        assert_eq!(
            p.should_sort(&healthy_stats(50)),
            Some(SortReason::FixedInterval)
        );
    }

    #[test]
    fn rebuild_count_fires() {
        let p = SortPolicy::default();
        let mut s = healthy_stats(20);
        s.rebuilds_accum = 101;
        assert_eq!(p.should_sort(&s), Some(SortReason::RebuildCount));
    }

    #[test]
    fn empty_ratio_band() {
        let p = SortPolicy::default();
        let mut s = healthy_stats(20);
        s.empty_ratio = 0.10;
        assert_eq!(p.should_sort(&s), Some(SortReason::EmptyRatio));
        s.empty_ratio = 0.90;
        assert_eq!(p.should_sort(&s), Some(SortReason::EmptyRatio));
        s.empty_ratio = 0.5;
        assert_eq!(p.should_sort(&s), None);
    }

    #[test]
    fn perf_degradation_fires_when_enabled() {
        let p = SortPolicy::default();
        let mut s = healthy_stats(20);
        s.perf_metric = 70.0; // 70% of baseline < 80% threshold.
        assert_eq!(p.should_sort(&s), Some(SortReason::PerfDegradation));
        let mut p2 = p.clone();
        p2.perf_enable = false;
        assert_eq!(p2.should_sort(&s), None);
    }

    #[test]
    fn reset_rebaselines_perf() {
        let mut s = healthy_stats(60);
        s.perf_metric = 42.0;
        s.rebuilds_accum = 7;
        s.reset();
        assert_eq!(s.steps_since_sort, 0);
        assert_eq!(s.rebuilds_accum, 0);
        assert_eq!(s.baseline_perf, 42.0);
    }

    #[test]
    fn never_policy_never_fires() {
        let p = SortPolicy::never();
        let mut s = healthy_stats(1_000_000);
        s.rebuilds_accum = u64::MAX - 1;
        s.empty_ratio = 0.0;
        s.perf_metric = 1.0;
        s.baseline_perf = 100.0;
        assert_eq!(p.should_sort(&s), None);
    }

    #[test]
    fn every_step_policy_fires_immediately() {
        let p = SortPolicy::every_step();
        assert_eq!(
            p.should_sort(&healthy_stats(1)),
            Some(SortReason::FixedInterval)
        );
    }
}
