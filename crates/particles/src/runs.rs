//! Iterator over maximal same-cell runs of a cell-key sequence.
//!
//! The counting sort (global) and the GPMA maintenance (incremental)
//! both guarantee that a tile's particles are visited grouped by cell.
//! The batched hot path exploits that: the gather loads each cell's
//! stencil node block once per run, and the deposition kernels
//! accumulate a run into a stack-resident stencil block before touching
//! the tile accumulator — amortising per-cell work over every particle
//! of the run. This module is the one definition of what a "run" is, so
//! the push, deposit and cost-model layers can never disagree about run
//! boundaries.
//!
//! Runs are *maximal*: consecutive equal keys are merged greedily, so an
//! unsorted key sequence simply degenerates to short (length-1) runs —
//! batched kernels stay correct, they just stop amortising.

use std::ops::Range;

/// One maximal run of identical cell keys: `keys[start..end]` all equal
/// `cell` and the neighbours (if any) differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRun {
    /// The shared cell key of the run.
    pub cell: usize,
    /// First index of the run (inclusive).
    pub start: usize,
    /// One past the last index of the run.
    pub end: usize,
}

impl CellRun {
    /// Number of particles in the run.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the run is empty (never yielded by [`cell_runs`]).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// The run's index range, for slicing particle buffers.
    pub fn range(&self) -> Range<usize> {
        self.start..self.end
    }
}

/// Iterator yielded by [`cell_runs`].
#[derive(Debug, Clone)]
pub struct CellRuns<'a> {
    keys: &'a [usize],
    pos: usize,
}

impl Iterator for CellRuns<'_> {
    type Item = CellRun;

    fn next(&mut self) -> Option<CellRun> {
        let start = self.pos;
        let cell = *self.keys.get(start)?;
        let mut end = start + 1;
        while self.keys.get(end) == Some(&cell) {
            end += 1;
        }
        self.pos = end;
        Some(CellRun { cell, start, end })
    }
}

/// Decomposes `keys` into maximal same-key runs, in order. Empty input
/// yields no runs; runs tile `0..keys.len()` exactly.
pub fn cell_runs(keys: &[usize]) -> CellRuns<'_> {
    CellRuns { keys, pos: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(keys: &[usize]) -> Vec<(usize, usize, usize)> {
        cell_runs(keys).map(|r| (r.cell, r.start, r.end)).collect()
    }

    #[test]
    fn empty_input_yields_no_runs() {
        assert!(collect(&[]).is_empty());
    }

    #[test]
    fn single_key_is_one_run() {
        assert_eq!(collect(&[7]), vec![(7, 0, 1)]);
    }

    #[test]
    fn sorted_keys_group_into_maximal_runs() {
        assert_eq!(
            collect(&[2, 2, 2, 5, 5, 9]),
            vec![(2, 0, 3), (5, 3, 5), (9, 5, 6)]
        );
    }

    #[test]
    fn unsorted_keys_degenerate_to_short_runs() {
        // Alternating keys: every run has length 1 — the fallback regime
        // of a batched kernel fed unsorted input.
        assert_eq!(
            collect(&[1, 0, 1, 0]),
            vec![(1, 0, 1), (0, 1, 2), (1, 2, 3), (0, 3, 4)]
        );
    }

    #[test]
    fn revisited_key_starts_a_new_run() {
        // Non-adjacent repeats of a key are distinct runs (runs are
        // maximal, not global groups).
        assert_eq!(
            collect(&[3, 3, 1, 3]),
            vec![(3, 0, 2), (1, 2, 3), (3, 3, 4)]
        );
    }

    #[test]
    fn runs_tile_the_index_space() {
        let keys: Vec<usize> = (0..257).map(|i| i / 3).collect();
        let mut next = 0;
        for r in cell_runs(&keys) {
            assert_eq!(r.start, next, "gap or overlap at {next}");
            assert!(!r.is_empty());
            assert_eq!(r.len(), r.end - r.start);
            assert!(keys[r.range()].iter().all(|&k| k == r.cell));
            next = r.end;
        }
        assert_eq!(next, keys.len());
    }
}
