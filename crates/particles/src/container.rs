//! Species-level particle container: one SoA + GPMA per tile, plus the
//! operations Algorithm 1 performs on them (global counting sort,
//! per-step incremental sweep, cross-tile migration).

use crate::gpma::{Gpma, MoveStats, INVALID_PARTICLE_ID};
use crate::soa::ParticleSoA;
use crate::sort::{counting_sort_keys_sharded, SortScratch, SortStats};
use mpic_grid::{GridGeometry, Tile, TileLayout};
use mpic_machine::{Exec, SchedulerPolicy, WorkerPool};

/// Default fractional gap headroom used when (re)building tile GPMAs.
pub const DEFAULT_GAP_RATIO: f64 = 0.5;

/// One tile's particles: SoA data plus the GPMA index over it.
#[derive(Debug, Clone)]
pub struct ParticleTile {
    /// Particle data (slots may be dead between global sorts).
    pub soa: ParticleSoA,
    /// The gapped index keeping slots binned by tile-local cell.
    pub gpma: Gpma,
    /// Authoritative bin per SoA slot (`INVALID_PARTICLE_ID` for dead).
    pub cells: Vec<usize>,
}

/// A particle that left its tile during the incremental sweep and must be
/// re-homed (the paper treats these as remove + insert pairs).
#[derive(Debug, Clone, Copy)]
pub struct Departure {
    /// Position (m).
    pub x: f64,
    /// Position (m).
    pub y: f64,
    /// Position (m).
    pub z: f64,
    /// Normalised momentum.
    pub ux: f64,
    /// Normalised momentum.
    pub uy: f64,
    /// Normalised momentum.
    pub uz: f64,
    /// Macro-particle weight.
    pub w: f64,
}

impl ParticleTile {
    /// Creates an empty tile with `n_bins` cells.
    pub fn empty(n_bins: usize, gap_ratio: f64) -> Self {
        Self {
            soa: ParticleSoA::new(),
            gpma: Gpma::build(&[], n_bins, gap_ratio),
            cells: Vec::new(),
        }
    }

    /// Number of live particles in the tile.
    pub fn len(&self) -> usize {
        self.gpma.num_particles()
    }

    /// Whether the tile holds no live particles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Recomputes every live particle's bin from its position and rebuilds
    /// both the SoA (compacted, cell-ordered) and the GPMA — the paper's
    /// `GlobalSortParticlesByCell` restricted to one tile. All gather and
    /// histogram buffers come from `scratch`, so a warm scratch makes the
    /// sort itself allocation-free (the GPMA rebuild still allocates, but
    /// global sorts are rare policy events rather than per-step work).
    ///
    /// `exec` shards the counting-sort histogram and the attribute
    /// permutation across the persistent worker pool; the resulting SoA
    /// order, bin map and [`SortStats`] are identical for any worker
    /// count or scheduler policy (see `counting_sort_keys_sharded`).
    pub fn global_sort(
        &mut self,
        tile: &Tile,
        geom: &GridGeometry,
        gap_ratio: f64,
        scratch: &mut SortScratch,
        exec: Exec<'_>,
    ) -> SortStats {
        let n_bins = tile.num_cells();
        // Gather live slots and their bins.
        scratch.live.clear();
        scratch.keys.clear();
        for i in self.soa.live_indices() {
            let (cell, _) = geom.locate(self.soa.x[i], self.soa.y[i], self.soa.z[i]);
            let cell = geom.wrap_cell(cell);
            debug_assert!(tile.contains(cell), "particle escaped its tile");
            scratch.live.push(i);
            scratch.keys.push(tile.local_cell_id(cell));
        }
        let keys = std::mem::take(&mut scratch.keys);
        let mut perm = std::mem::take(&mut scratch.perm);
        let stats = counting_sort_keys_sharded(&keys, n_bins, exec, &mut perm, scratch);
        scratch.keys = keys;
        scratch.perm = perm;
        // Compose: new slot s holds old slot live[perm[s]].
        scratch.gathered.clear();
        scratch
            .gathered
            .extend(scratch.perm.iter().map(|&p| scratch.live[p]));
        self.soa
            .permute_sharded(&scratch.gathered, &mut scratch.attr_bufs, exec);
        self.cells.clear();
        self.cells
            .extend(scratch.perm.iter().map(|&p| scratch.keys[p]));
        self.gpma = Gpma::build(&self.cells, n_bins, gap_ratio);
        stats
    }

    /// Phase 1 of Algorithm 1: scans particles in sorted order, queues
    /// moved particles, extracts tile-leavers, then applies pending moves.
    /// The scan snapshot comes from `scratch.scan` and tile-leavers are
    /// appended to `scratch.departures`, so a warm scratch keeps the
    /// per-step sweep allocation-free.
    ///
    /// Returns the GPMA operation stats and the number of particles
    /// scanned.
    pub fn incremental_sort_sweep(
        &mut self,
        tile: &Tile,
        geom: &GridGeometry,
        scratch: &mut SortScratch,
    ) -> (MoveStats, usize) {
        scratch.scan.clear();
        scratch.scan.extend(self.gpma.iter_sorted());
        let scanned = scratch.scan.len();
        for &(old_bin, p) in &scratch.scan {
            let (cell, _) = geom.locate(self.soa.x[p], self.soa.y[p], self.soa.z[p]);
            let cell = geom.wrap_cell(cell);
            if tile.contains(cell) {
                let new_bin = tile.local_cell_id(cell);
                if new_bin != old_bin {
                    self.gpma.queue_move(p, old_bin, new_bin);
                    self.cells[p] = new_bin;
                }
            } else {
                let (x, y, z, ux, uy, uz, w) = self.soa.get(p);
                scratch.departures.push(Departure {
                    x,
                    y,
                    z,
                    ux,
                    uy,
                    uz,
                    w,
                });
                self.gpma.queue_remove(p, old_bin);
                self.cells[p] = INVALID_PARTICLE_ID;
                self.soa.remove(p);
            }
        }
        let stats = self.gpma.apply_pending_moves(&self.cells);
        (stats, scanned)
    }

    /// Inserts one particle (injection or cross-tile arrival).
    pub fn insert(&mut self, d: Departure, tile: &Tile, geom: &GridGeometry) -> MoveStats {
        let (cell, _) = geom.locate(d.x, d.y, d.z);
        let cell = geom.wrap_cell(cell);
        debug_assert!(tile.contains(cell), "insert routed to wrong tile");
        let bin = tile.local_cell_id(cell);
        let p = self.soa.push(d.x, d.y, d.z, d.ux, d.uy, d.uz, d.w);
        if p >= self.cells.len() {
            self.cells.resize(p + 1, INVALID_PARTICLE_ID);
        }
        self.cells[p] = bin;
        self.gpma.queue_insert(p, bin);
        self.gpma.apply_pending_moves(&self.cells)
    }

    /// Validates GPMA invariants against the authoritative bins.
    pub fn check_invariants(&self) {
        self.gpma.check_invariants(&self.cells);
    }
}

/// All tiles of one species plus its charge/mass.
#[derive(Debug, Clone)]
pub struct ParticleContainer {
    /// Species charge (C); negative for electrons.
    pub charge: f64,
    /// Species mass (kg).
    pub mass: f64,
    /// Per-tile storage, indexed like `TileLayout`.
    pub tiles: Vec<ParticleTile>,
    gap_ratio: f64,
    /// Pooled buffers for the sequential sort paths (sweep snapshots,
    /// counting-sort histograms, permutation gathers).
    scratch: SortScratch,
}

impl ParticleContainer {
    /// Creates an empty container matching `layout`.
    pub fn new(layout: &TileLayout, charge: f64, mass: f64) -> Self {
        let tiles = layout
            .iter()
            .map(|t| ParticleTile::empty(t.num_cells(), DEFAULT_GAP_RATIO))
            .collect();
        Self {
            charge,
            mass,
            tiles,
            gap_ratio: DEFAULT_GAP_RATIO,
            scratch: SortScratch::default(),
        }
    }

    /// Gap headroom used on rebuilds.
    pub fn gap_ratio(&self) -> f64 {
        self.gap_ratio
    }

    /// Overrides the gap headroom (GPMA ablation benches).
    pub fn set_gap_ratio(&mut self, r: f64) {
        assert!(r >= 0.0);
        self.gap_ratio = r;
    }

    /// Total live particles.
    pub fn total_particles(&self) -> usize {
        self.tiles.iter().map(|t| t.len()).sum()
    }

    /// Injects a particle, routing it to the owning tile.
    pub fn inject(&mut self, layout: &TileLayout, geom: &GridGeometry, d: Departure) -> MoveStats {
        let (cell, _) = geom.locate(d.x, d.y, d.z);
        let cell = geom.wrap_cell(cell);
        let t = layout.tile_of_cell(cell);
        self.tiles[t].insert(d, layout.tile(t), geom)
    }

    /// Global sort of every tile; returns merged stats. Single-worker
    /// convenience wrapper around
    /// [`ParticleContainer::global_sort_parallel`].
    pub fn global_sort(&mut self, layout: &TileLayout, geom: &GridGeometry) -> SortStats {
        let pool = WorkerPool::sequential();
        self.global_sort_parallel(layout, geom, pool.exec(SchedulerPolicy::Static))
    }

    /// Global sort of every tile with the per-tile counting sort and
    /// attribute permutation sharded across the persistent worker pool;
    /// the resulting particle order and merged stats are identical for
    /// any worker count or scheduler policy (tiles are visited in tile
    /// order, and the sharded sort reproduces the sequential permutation
    /// exactly).
    ///
    /// Particles that crossed a tile boundary since the last maintenance
    /// pass are re-homed first (tile-local counting sort requires every
    /// particle to be inside its tile).
    pub fn global_sort_parallel(
        &mut self,
        layout: &TileLayout,
        geom: &GridGeometry,
        exec: Exec<'_>,
    ) -> SortStats {
        let _ = self.incremental_sort(layout, geom);
        let mut total = SortStats::default();
        let gap_ratio = self.gap_ratio;
        let Self { tiles, scratch, .. } = self;
        for (t, tile) in tiles.iter_mut().enumerate() {
            let s = tile.global_sort(layout.tile(t), geom, gap_ratio, scratch, exec);
            total.n += s.n;
            total.buckets += s.buckets;
            total.moves += s.moves;
        }
        total
    }

    /// Incremental sweep of every tile followed by re-homing of
    /// departures. Returns merged GPMA stats and particles scanned.
    pub fn incremental_sort(
        &mut self,
        layout: &TileLayout,
        geom: &GridGeometry,
    ) -> (MoveStats, usize) {
        let mut stats = MoveStats::default();
        let mut scanned = 0;
        self.scratch.departures.clear();
        for (t, tile) in self.tiles.iter_mut().enumerate() {
            let (s, n) = tile.incremental_sort_sweep(layout.tile(t), geom, &mut self.scratch);
            stats.merge(&s);
            scanned += n;
        }
        // Re-home tile-leavers; take the buffer so `inject` can borrow
        // `self` (its capacity is restored afterwards).
        let mut departures = std::mem::take(&mut self.scratch.departures);
        for d in departures.drain(..) {
            let s = self.inject(layout, geom, d);
            stats.merge(&s);
        }
        self.scratch.departures = departures;
        (stats, scanned)
    }

    /// Aggregate empty-slot ratio across tiles (policy trigger 4).
    pub fn empty_ratio(&self) -> f64 {
        let cap: usize = self.tiles.iter().map(|t| t.gpma.capacity()).sum();
        if cap == 0 {
            return 0.0;
        }
        let free: usize = self.tiles.iter().map(|t| t.gpma.num_empty_slots()).sum();
        free as f64 / cap as f64
    }

    /// Aggregate local-rebuild count since the last reset (trigger 3).
    pub fn rebuilds_accum(&self) -> u64 {
        self.tiles.iter().map(|t| t.gpma.rebuild_count()).sum()
    }

    /// Resets per-tile rebuild counters (after a global sort).
    pub fn reset_counters(&mut self) {
        for t in &mut self.tiles {
            t.gpma.reset_counters();
        }
    }

    /// Validates all tile invariants (test helper).
    pub fn check_invariants(&self) {
        for t in &self.tiles {
            t.check_invariants();
        }
    }

    /// Total charge carried (sum of weights x species charge).
    pub fn total_charge(&self) -> f64 {
        self.charge * self.tiles.iter().map(|t| t.soa.total_weight()).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GridGeometry, TileLayout, ParticleContainer) {
        let geom = GridGeometry::new([8, 8, 8], [0.0; 3], [1.0; 3], 1);
        let layout = TileLayout::new(&geom, [4, 4, 4]);
        let c = ParticleContainer::new(&layout, -1.0, 1.0);
        (geom, layout, c)
    }

    fn particle_at(x: f64, y: f64, z: f64) -> Departure {
        Departure {
            x,
            y,
            z,
            ux: 0.0,
            uy: 0.0,
            uz: 0.0,
            w: 1.0,
        }
    }

    #[test]
    fn inject_routes_to_owning_tile() {
        let (geom, layout, mut c) = setup();
        let _ = c.inject(&layout, &geom, particle_at(0.5, 0.5, 0.5));
        let _ = c.inject(&layout, &geom, particle_at(6.5, 6.5, 6.5));
        assert_eq!(c.tiles[0].len(), 1);
        assert_eq!(c.tiles[7].len(), 1);
        assert_eq!(c.total_particles(), 2);
        c.check_invariants();
    }

    #[test]
    fn global_sort_orders_by_cell() {
        let (geom, layout, mut c) = setup();
        // Insert in reverse cell order within tile 0.
        let _ = c.inject(&layout, &geom, particle_at(3.5, 3.5, 3.5));
        let _ = c.inject(&layout, &geom, particle_at(0.5, 0.5, 0.5));
        let _ = c.global_sort(&layout, &geom);
        c.check_invariants();
        let t = &c.tiles[0];
        // After sorting, SoA slot 0 must be the cell-(0,0,0) particle.
        assert_eq!(t.soa.x[0], 0.5);
        assert_eq!(t.soa.x[1], 3.5);
    }

    #[test]
    fn incremental_sort_moves_within_tile() {
        let (geom, layout, mut c) = setup();
        let _ = c.inject(&layout, &geom, particle_at(0.5, 0.5, 0.5));
        // Move particle into neighbouring cell (1,0,0), same tile.
        c.tiles[0].soa.x[0] = 1.5;
        let (stats, scanned) = c.incremental_sort(&layout, &geom);
        assert_eq!(scanned, 1);
        assert_eq!(stats.moves_applied, 1);
        c.check_invariants();
        assert_eq!(c.tiles[0].gpma.bin_len(0), 0);
        assert_eq!(c.tiles[0].gpma.bin_len(1), 1);
    }

    #[test]
    fn incremental_sort_migrates_across_tiles() {
        let (geom, layout, mut c) = setup();
        let _ = c.inject(&layout, &geom, particle_at(3.5, 0.5, 0.5));
        // Cross the tile boundary in x.
        c.tiles[0].soa.x[0] = 4.5;
        let (_, _) = c.incremental_sort(&layout, &geom);
        c.check_invariants();
        assert_eq!(c.tiles[0].len(), 0);
        assert_eq!(c.tiles[1].len(), 1);
        assert_eq!(c.total_particles(), 1);
    }

    #[test]
    fn stationary_particles_cost_nothing_to_move() {
        let (geom, layout, mut c) = setup();
        for i in 0..10 {
            let _ = c.inject(&layout, &geom, particle_at(0.1 + 0.05 * i as f64, 0.5, 0.5));
        }
        let (stats, scanned) = c.incremental_sort(&layout, &geom);
        assert_eq!(scanned, 10);
        assert_eq!(stats.moves_applied, 0, "no particle changed cell");
        assert_eq!(stats.deletions, 0);
        c.check_invariants();
    }

    #[test]
    fn global_sort_parallel_is_worker_count_invariant() {
        let build = || {
            let (geom, layout, mut c) = setup();
            // Scatter particles over cells in a worst-case reverse order.
            for i in 0..40 {
                let f = 7.5 - (i as f64) * 0.19;
                let _ = c.inject(
                    &layout,
                    &geom,
                    particle_at(f, 7.9 - f, 0.5 + 0.17 * i as f64),
                );
            }
            (geom, layout, c)
        };
        let (geom, layout, mut want) = build();
        let _ = want.global_sort(&layout, &geom);
        for workers in [2usize, 3, 7] {
            let pool = WorkerPool::new(workers);
            for policy in [SchedulerPolicy::Static, SchedulerPolicy::Stealing] {
                let (geom2, layout2, mut got) = build();
                let s = got.global_sort_parallel(&layout2, &geom2, pool.exec(policy));
                assert_eq!(s.n, 40);
                got.check_invariants();
                for (tw, tg) in want.tiles.iter().zip(&got.tiles) {
                    assert_eq!(tw.soa.x, tg.soa.x, "workers {workers} {policy:?}");
                    assert_eq!(tw.soa.w, tg.soa.w, "workers {workers} {policy:?}");
                    assert_eq!(tw.cells, tg.cells, "workers {workers} {policy:?}");
                }
            }
        }
    }

    #[test]
    fn total_charge_scales_with_weights() {
        let (geom, layout, mut c) = setup();
        let mut p = particle_at(0.5, 0.5, 0.5);
        p.w = 3.0;
        let _ = c.inject(&layout, &geom, p);
        assert_eq!(c.total_charge(), -3.0);
    }

    #[test]
    fn periodic_wrap_keeps_particles_homed() {
        let (geom, layout, mut c) = setup();
        let _ = c.inject(&layout, &geom, particle_at(0.5, 0.5, 0.5));
        // Move past the periodic boundary: x = -0.5 wraps to 7.5 (tile 1).
        c.tiles[0].soa.x[0] = -0.5;
        let _ = c.incremental_sort(&layout, &geom);
        c.check_invariants();
        assert_eq!(c.total_particles(), 1);
        assert_eq!(c.tiles[1].len(), 1, "wrapped into the high-x tile");
    }
}
