//! Global counting sort by cell key.
//!
//! The paper's `GlobalSortParticlesByCell` uses a counting sort to reorder
//! particle *data* into cell order (restoring memory coherence that the
//! index-only GPMA maintenance cannot provide), then rebuilds the GPMA.
//! This module provides the permutation computation plus operation counts
//! for the cost model.

/// Operation counts of one counting sort.
#[derive(Debug, Clone, Copy, Default)]
pub struct SortStats {
    /// Number of keys sorted.
    pub n: usize,
    /// Number of distinct buckets.
    pub buckets: usize,
    /// Data elements moved (n per gathered attribute array).
    pub moves: usize,
}

/// Reusable buffers for the global counting sort and the incremental
/// sweep, pooled so the per-step and per-sort hot paths perform no heap
/// allocation in steady state. One instance per worker (or per
/// container when sorting is sequential).
#[derive(Debug, Clone, Default)]
pub struct SortScratch {
    /// Live SoA slot indices gathered before keying.
    pub live: Vec<usize>,
    /// Tile-local cell keys parallel to `live`.
    pub keys: Vec<usize>,
    /// Counting-sort permutation output.
    pub perm: Vec<usize>,
    /// Counting-sort histogram / cursor buffer.
    pub counts: Vec<usize>,
    /// Composed gather permutation over SoA slots.
    pub gathered: Vec<usize>,
    /// Attribute gather buffer for [`crate::ParticleSoA::permute_with`].
    pub attr: Vec<f64>,
    /// Snapshot of the GPMA iteration order for the incremental sweep.
    pub scan: Vec<(usize, usize)>,
    /// Departures accumulated across tiles during a sweep.
    pub departures: Vec<crate::container::Departure>,
}

/// Computes the stable counting-sort permutation of `keys` over
/// `n_buckets` buckets.
///
/// Returns `perm` such that `keys[perm[0]] <= keys[perm[1]] <= ...`;
/// applying `perm` as a gather (`new[i] = old[perm[i]]`) sorts the data.
///
/// # Panics
///
/// Panics if any key is `>= n_buckets`.
pub fn counting_sort_keys(keys: &[usize], n_buckets: usize) -> (Vec<usize>, SortStats) {
    let mut perm = Vec::new();
    let mut counts = Vec::new();
    let stats = counting_sort_keys_into(keys, n_buckets, &mut perm, &mut counts);
    (perm, stats)
}

/// Allocation-reusing variant of [`counting_sort_keys`]: writes the
/// permutation into `perm` and uses `counts` as histogram scratch, both
/// resized as needed (no allocation once warm).
///
/// # Panics
///
/// Panics if any key is `>= n_buckets`.
pub fn counting_sort_keys_into(
    keys: &[usize],
    n_buckets: usize,
    perm: &mut Vec<usize>,
    counts: &mut Vec<usize>,
) -> SortStats {
    counts.clear();
    counts.resize(n_buckets + 1, 0);
    for &k in keys {
        assert!(k < n_buckets, "key {k} out of range");
        counts[k + 1] += 1;
    }
    for b in 0..n_buckets {
        counts[b + 1] += counts[b];
    }
    perm.clear();
    perm.resize(keys.len(), 0);
    for (i, &k) in keys.iter().enumerate() {
        perm[counts[k]] = i;
        counts[k] += 1;
    }
    SortStats {
        n: keys.len(),
        buckets: n_buckets,
        moves: keys.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_keys() {
        let keys = vec![3, 1, 0, 2, 1];
        let (perm, stats) = counting_sort_keys(&keys, 4);
        let sorted: Vec<usize> = perm.iter().map(|&p| keys[p]).collect();
        assert_eq!(sorted, vec![0, 1, 1, 2, 3]);
        assert_eq!(stats.n, 5);
    }

    #[test]
    fn stable_for_equal_keys() {
        let keys = vec![1, 1, 0, 1];
        let (perm, _) = counting_sort_keys(&keys, 2);
        // The three key-1 entries must preserve original order 0, 1, 3.
        assert_eq!(perm, vec![2, 0, 1, 3]);
    }

    #[test]
    fn empty_input() {
        let (perm, stats) = counting_sort_keys(&[], 8);
        assert!(perm.is_empty());
        assert_eq!(stats.moves, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_key() {
        let _ = counting_sort_keys(&[5], 4);
    }

    #[test]
    fn into_variant_matches_allocating_variant() {
        let keys: Vec<usize> = (0..257).map(|i| (i * 13 + 5) % 32).collect();
        let (perm, stats) = counting_sort_keys(&keys, 32);
        let mut perm2 = vec![99; 3]; // Stale contents must be overwritten.
        let mut counts = Vec::new();
        let stats2 = counting_sort_keys_into(&keys, 32, &mut perm2, &mut counts);
        assert_eq!(perm, perm2);
        assert_eq!(stats.n, stats2.n);
        assert_eq!(stats.moves, stats2.moves);
    }

    #[test]
    fn permutation_is_bijection() {
        let keys: Vec<usize> = (0..100).map(|i| (i * 7 + 3) % 10).collect();
        let (perm, _) = counting_sort_keys(&keys, 10);
        let mut seen = [false; 100];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
