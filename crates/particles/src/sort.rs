//! Global counting sort by cell key.
//!
//! The paper's `GlobalSortParticlesByCell` uses a counting sort to reorder
//! particle *data* into cell order (restoring memory coherence that the
//! index-only GPMA maintenance cannot provide), then rebuilds the GPMA.
//! This module provides the permutation computation plus operation counts
//! for the cost model.
//!
//! [`counting_sort_keys_sharded`] is the host-parallel variant: the
//! key-count histogram is split across workers on the shared
//! [`mpic_machine::shard_bounds`] chunk scheme and the per-worker prefix
//! sums are merged in fixed worker order, so the resulting permutation is
//! *identical* (not merely equivalent) to the sequential stable sort for
//! any worker count — the emulated cost model sees the same
//! [`SortStats`] either way. Threading goes through the persistent
//! [`mpic_machine::exec`] worker pool; chunk *ownership* stays pinned to
//! [`shard_bounds`] regardless of the scheduler policy, because the
//! deterministic prefix merge is defined over those chunks.

use mpic_machine::exec::{Exec, INLINE_ITEM_THRESHOLD};
use mpic_machine::shard_bounds;

/// Operation counts of one counting sort.
#[derive(Debug, Clone, Copy, Default)]
#[must_use]
pub struct SortStats {
    /// Number of keys sorted.
    pub n: usize,
    /// Number of distinct buckets.
    pub buckets: usize,
    /// Data elements moved (n per gathered attribute array).
    pub moves: usize,
}

/// Reusable buffers for the global counting sort and the incremental
/// sweep, pooled so the per-step and per-sort hot paths perform no heap
/// allocation in steady state. One instance per worker (or per
/// container when sorting is sequential).
#[derive(Debug, Clone, Default)]
pub struct SortScratch {
    /// Live SoA slot indices gathered before keying.
    pub live: Vec<usize>,
    /// Tile-local cell keys parallel to `live`.
    pub keys: Vec<usize>,
    /// Counting-sort permutation output.
    pub perm: Vec<usize>,
    /// Counting-sort histogram / cursor buffer.
    pub counts: Vec<usize>,
    /// Composed gather permutation over SoA slots.
    pub gathered: Vec<usize>,
    /// Per-worker key histograms / placement cursors for the sharded
    /// counting sort.
    pub worker_counts: Vec<Vec<usize>>,
    /// Destination slot per input key (`dest[i]` = sorted position of
    /// key `i`), the shard-local half of the sharded placement pass.
    pub dest: Vec<usize>,
    /// Per-attribute gather buffers for
    /// [`crate::ParticleSoA::permute_sharded`] (up to one per attribute).
    pub attr_bufs: Vec<Vec<f64>>,
    /// Snapshot of the GPMA iteration order for the incremental sweep.
    pub scan: Vec<(usize, usize)>,
    /// Departures accumulated across tiles during a sweep.
    pub departures: Vec<crate::container::Departure>,
}

/// Computes the stable counting-sort permutation of `keys` over
/// `n_buckets` buckets.
///
/// Returns `perm` such that `keys[perm[0]] <= keys[perm[1]] <= ...`;
/// applying `perm` as a gather (`new[i] = old[perm[i]]`) sorts the data.
///
/// # Panics
///
/// Panics if any key is `>= n_buckets`.
pub fn counting_sort_keys(keys: &[usize], n_buckets: usize) -> (Vec<usize>, SortStats) {
    let mut perm = Vec::new();
    let mut counts = Vec::new();
    let stats = counting_sort_keys_into(keys, n_buckets, &mut perm, &mut counts);
    (perm, stats)
}

/// Allocation-reusing variant of [`counting_sort_keys`]: writes the
/// permutation into `perm` and uses `counts` as histogram scratch, both
/// resized as needed (no allocation once warm).
///
/// # Panics
///
/// Panics if any key is `>= n_buckets`.
pub fn counting_sort_keys_into(
    keys: &[usize],
    n_buckets: usize,
    perm: &mut Vec<usize>,
    counts: &mut Vec<usize>,
) -> SortStats {
    counts.clear();
    counts.resize(n_buckets + 1, 0);
    for &k in keys {
        assert!(k < n_buckets, "key {k} out of range");
        counts[k + 1] += 1;
    }
    for b in 0..n_buckets {
        counts[b + 1] += counts[b];
    }
    perm.clear();
    perm.resize(keys.len(), 0);
    for (i, &k) in keys.iter().enumerate() {
        perm[counts[k]] = i;
        counts[k] += 1;
    }
    SortStats {
        n: keys.len(),
        buckets: n_buckets,
        moves: keys.len(),
    }
}

/// Host-parallel stable counting sort producing the *same* permutation as
/// [`counting_sort_keys_into`] for any worker count or scheduler policy.
///
/// The algorithm shards `keys` into contiguous chunks
/// ([`shard_bounds`]), counts a private histogram per chunk in
/// parallel, then merges the prefix sums deterministically: bucket `k`'s
/// region is subdivided among chunks in ascending chunk order, which —
/// because chunks are contiguous and each is scanned in ascending index
/// order — reproduces the sequential stable placement exactly. The
/// scatter positions land in `dest` (chunk-disjoint, so the placement
/// pass is parallel too); a final O(n) inversion yields the gather-form
/// `perm`. Chunk ownership is fixed by `shard_bounds` even under the
/// stealing scheduler — the policy only decides which pool worker
/// processes a chunk, never how the prefix sums merge.
///
/// Inputs below [`INLINE_ITEM_THRESHOLD`] keys per potential worker run
/// inline (per-tile sorts of a few thousand keys are cheaper sequential
/// than a pool wake); the permutation is identical either way.
///
/// All buffers come from `scratch` and are resized in place, so a warm
/// scratch makes the sort allocation-free.
///
/// # Panics
///
/// Panics if any key is `>= n_buckets`.
pub fn counting_sort_keys_sharded(
    keys: &[usize],
    n_buckets: usize,
    exec: Exec<'_>,
    perm: &mut Vec<usize>,
    scratch: &mut SortScratch,
) -> SortStats {
    let workers = exec.workers().min(keys.len() / INLINE_ITEM_THRESHOLD + 1);
    let bounds = shard_bounds(keys.len(), workers);
    if bounds.len() <= 1 {
        // Single chunk: the sequential sort is the same permutation
        // without pool-dispatch or inversion overhead.
        return counting_sort_keys_into(keys, n_buckets, perm, &mut scratch.counts);
    }
    if scratch.worker_counts.len() < bounds.len() {
        scratch.worker_counts.resize_with(bounds.len(), Vec::new);
    }
    // Parallel per-chunk histograms.
    let mut hist_items: Vec<((usize, usize), &mut Vec<usize>)> = bounds
        .iter()
        .copied()
        .zip(scratch.worker_counts.iter_mut())
        .collect();
    exec.for_each(&mut hist_items, |_, ((lo, hi), counts)| {
        counts.clear();
        counts.resize(n_buckets, 0);
        for &k in &keys[*lo..*hi] {
            assert!(k < n_buckets, "key {k} out of range");
            counts[k] += 1;
        }
    });
    // Deterministic merge: exclusive global prefix, then per-(worker,
    // bucket) start cursors in ascending worker order.
    scratch.counts.clear();
    scratch.counts.resize(n_buckets + 1, 0);
    for w in 0..bounds.len() {
        for b in 0..n_buckets {
            scratch.counts[b + 1] += scratch.worker_counts[w][b];
        }
    }
    for b in 0..n_buckets {
        scratch.counts[b + 1] += scratch.counts[b];
    }
    for b in 0..n_buckets {
        let mut cursor = scratch.counts[b];
        for counts in scratch.worker_counts.iter_mut().take(bounds.len()) {
            let own = counts[b];
            counts[b] = cursor;
            cursor += own;
        }
    }
    // Parallel placement into chunk-disjoint `dest` slices.
    scratch.dest.clear();
    scratch.dest.resize(keys.len(), 0);
    let mut rest = scratch.dest.as_mut_slice();
    let mut place_items: Vec<(&[usize], &mut [usize], &mut Vec<usize>)> =
        Vec::with_capacity(bounds.len());
    for (&(lo, hi), cursors) in bounds.iter().zip(scratch.worker_counts.iter_mut()) {
        let (dest_chunk, tail) = rest.split_at_mut(hi - lo);
        rest = tail;
        place_items.push((&keys[lo..hi], dest_chunk, cursors));
    }
    exec.for_each(&mut place_items, |_, (chunk, dest_chunk, cursors)| {
        for (d, &k) in dest_chunk.iter_mut().zip(chunk.iter()) {
            *d = cursors[k];
            cursors[k] += 1;
        }
    });
    // Invert scatter positions into the gather permutation.
    perm.clear();
    perm.resize(keys.len(), 0);
    for (i, &d) in scratch.dest.iter().enumerate() {
        perm[d] = i;
    }
    SortStats {
        n: keys.len(),
        buckets: n_buckets,
        moves: keys.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpic_machine::exec::{SchedulerPolicy, WorkerPool};

    #[test]
    fn sorts_keys() {
        let keys = vec![3, 1, 0, 2, 1];
        let (perm, stats) = counting_sort_keys(&keys, 4);
        let sorted: Vec<usize> = perm.iter().map(|&p| keys[p]).collect();
        assert_eq!(sorted, vec![0, 1, 1, 2, 3]);
        assert_eq!(stats.n, 5);
    }

    #[test]
    fn stable_for_equal_keys() {
        let keys = vec![1, 1, 0, 1];
        let (perm, _) = counting_sort_keys(&keys, 2);
        // The three key-1 entries must preserve original order 0, 1, 3.
        assert_eq!(perm, vec![2, 0, 1, 3]);
    }

    #[test]
    fn empty_input() {
        let (perm, stats) = counting_sort_keys(&[], 8);
        assert!(perm.is_empty());
        assert_eq!(stats.moves, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_key() {
        let _ = counting_sort_keys(&[5], 4);
    }

    #[test]
    fn into_variant_matches_allocating_variant() {
        let keys: Vec<usize> = (0..257).map(|i| (i * 13 + 5) % 32).collect();
        let (perm, stats) = counting_sort_keys(&keys, 32);
        let mut perm2 = vec![99; 3]; // Stale contents must be overwritten.
        let mut counts = Vec::new();
        let stats2 = counting_sort_keys_into(&keys, 32, &mut perm2, &mut counts);
        assert_eq!(perm, perm2);
        assert_eq!(stats.n, stats2.n);
        assert_eq!(stats.moves, stats2.moves);
    }

    #[test]
    fn sharded_matches_sequential_for_any_worker_count_and_policy() {
        // Large enough that several worker counts clear the
        // INLINE_ITEM_THRESHOLD and genuinely go parallel.
        let keys: Vec<usize> = (0..30_011).map(|i| (i * 131 + 17) % 97).collect();
        let (perm, stats) = counting_sort_keys(&keys, 97);
        let mut scratch = SortScratch::default();
        for workers in [1usize, 2, 3, 4, 7, 16, 2000] {
            let pool = WorkerPool::new(workers);
            for policy in [SchedulerPolicy::Static, SchedulerPolicy::Stealing] {
                let mut perm2 = vec![5; 7]; // Stale contents must be overwritten.
                let stats2 = counting_sort_keys_sharded(
                    &keys,
                    97,
                    pool.exec(policy),
                    &mut perm2,
                    &mut scratch,
                );
                assert_eq!(
                    perm, perm2,
                    "workers {workers} {policy:?}: permutation diverged"
                );
                assert_eq!(stats.n, stats2.n);
                assert_eq!(stats.buckets, stats2.buckets);
                assert_eq!(stats.moves, stats2.moves);
            }
        }
    }

    #[test]
    fn sharded_handles_empty_and_single() {
        let mut scratch = SortScratch::default();
        let mut perm = Vec::new();
        let pool = WorkerPool::new(3);
        let exec = pool.exec(SchedulerPolicy::Static);
        let s = counting_sort_keys_sharded(&[], 4, exec, &mut perm, &mut scratch);
        assert!(perm.is_empty());
        assert_eq!(s.n, 0);
        let s = counting_sort_keys_sharded(&[2], 4, exec, &mut perm, &mut scratch);
        assert_eq!(perm, vec![0]);
        assert_eq!(s.n, 1);
    }

    #[test]
    fn sharded_is_stable_across_chunk_boundaries() {
        // All-equal keys: stability demands the identity permutation even
        // when the run is split mid-bucket across workers (length clears
        // the parallel threshold so chunks genuinely split the bucket).
        let n = 9_001;
        let keys = vec![3usize; n];
        let mut scratch = SortScratch::default();
        let mut perm = Vec::new();
        let pool = WorkerPool::new(4);
        let _ = counting_sort_keys_sharded(
            &keys,
            5,
            pool.exec(SchedulerPolicy::Stealing),
            &mut perm,
            &mut scratch,
        );
        assert_eq!(perm, (0..n).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sharded_rejects_out_of_range_key() {
        let mut scratch = SortScratch::default();
        let mut perm = Vec::new();
        let pool = WorkerPool::new(2);
        let _ = counting_sort_keys_sharded(
            &[5],
            4,
            pool.exec(SchedulerPolicy::Static),
            &mut perm,
            &mut scratch,
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sharded_rejects_out_of_range_key_in_parallel_histogram() {
        // Enough keys that the histogram pass genuinely runs on the pool:
        // the worker panic must propagate with its original message.
        let mut keys: Vec<usize> = vec![1; 3 * INLINE_ITEM_THRESHOLD];
        keys[2 * INLINE_ITEM_THRESHOLD] = 9; // In a non-zero chunk.
        let mut scratch = SortScratch::default();
        let mut perm = Vec::new();
        let pool = WorkerPool::new(3);
        let _ = counting_sort_keys_sharded(
            &keys,
            4,
            pool.exec(SchedulerPolicy::Static),
            &mut perm,
            &mut scratch,
        );
    }

    #[test]
    fn permutation_is_bijection() {
        let keys: Vec<usize> = (0..100).map(|i| (i * 7 + 3) % 10).collect();
        let (perm, _) = counting_sort_keys(&keys, 10);
        let mut seen = [false; 100];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
