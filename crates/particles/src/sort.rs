//! Global counting sort by cell key.
//!
//! The paper's `GlobalSortParticlesByCell` uses a counting sort to reorder
//! particle *data* into cell order (restoring memory coherence that the
//! index-only GPMA maintenance cannot provide), then rebuilds the GPMA.
//! This module provides the permutation computation plus operation counts
//! for the cost model.

/// Operation counts of one counting sort.
#[derive(Debug, Clone, Copy, Default)]
pub struct SortStats {
    /// Number of keys sorted.
    pub n: usize,
    /// Number of distinct buckets.
    pub buckets: usize,
    /// Data elements moved (n per gathered attribute array).
    pub moves: usize,
}

/// Computes the stable counting-sort permutation of `keys` over
/// `n_buckets` buckets.
///
/// Returns `perm` such that `keys[perm[0]] <= keys[perm[1]] <= ...`;
/// applying `perm` as a gather (`new[i] = old[perm[i]]`) sorts the data.
///
/// # Panics
///
/// Panics if any key is `>= n_buckets`.
pub fn counting_sort_keys(keys: &[usize], n_buckets: usize) -> (Vec<usize>, SortStats) {
    let mut counts = vec![0usize; n_buckets + 1];
    for &k in keys {
        assert!(k < n_buckets, "key {k} out of range");
        counts[k + 1] += 1;
    }
    for b in 0..n_buckets {
        counts[b + 1] += counts[b];
    }
    let mut perm = vec![0usize; keys.len()];
    let mut cursor = counts;
    for (i, &k) in keys.iter().enumerate() {
        perm[cursor[k]] = i;
        cursor[k] += 1;
    }
    let stats = SortStats {
        n: keys.len(),
        buckets: n_buckets,
        moves: keys.len(),
    };
    (perm, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_keys() {
        let keys = vec![3, 1, 0, 2, 1];
        let (perm, stats) = counting_sort_keys(&keys, 4);
        let sorted: Vec<usize> = perm.iter().map(|&p| keys[p]).collect();
        assert_eq!(sorted, vec![0, 1, 1, 2, 3]);
        assert_eq!(stats.n, 5);
    }

    #[test]
    fn stable_for_equal_keys() {
        let keys = vec![1, 1, 0, 1];
        let (perm, _) = counting_sort_keys(&keys, 2);
        // The three key-1 entries must preserve original order 0, 1, 3.
        assert_eq!(perm, vec![2, 0, 1, 3]);
    }

    #[test]
    fn empty_input() {
        let (perm, stats) = counting_sort_keys(&[], 8);
        assert!(perm.is_empty());
        assert_eq!(stats.moves, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_key() {
        let _ = counting_sort_keys(&[5], 4);
    }

    #[test]
    fn permutation_is_bijection() {
        let keys: Vec<usize> = (0..100).map(|i| (i * 7 + 3) % 10).collect();
        let (perm, _) = counting_sort_keys(&keys, 10);
        let mut seen = [false; 100];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
