//! Particle management for Matrix-PIC: Structure-of-Arrays storage, the
//! Gapped Packed Memory Array (GPMA) incremental sorter, counting-sort
//! global reordering, and the adaptive global re-sort policy.
//!
//! This crate implements section 4.3 ("Efficient Incremental Particle
//! Sorting using GPMA") and section 4.4 ("Global Re-sorting Policy") of the
//! paper. It is deliberately free of the machine emulator: all structures
//! report *operation counts* ([`gpma::MoveStats`], [`sort::SortStats`])
//! that the kernel drivers translate into emulated cycles, keeping the
//! data-structure logic pure and directly testable.
//!
//! # Example
//!
//! ```
//! use mpic_particles::gpma::Gpma;
//!
//! // Three particles in bins 0, 0 and 2 of a 4-cell tile.
//! let mut g = Gpma::build(&[0, 0, 2], 4, 0.5);
//! assert_eq!(g.bin_len(0), 2);
//! assert_eq!(g.num_particles(), 3);
//!
//! // Particle 1 moves from cell 0 to cell 3.
//! g.queue_move(1, 0, 3);
//! let stats = g.apply_pending_moves(&[0, 0, 2]);
//! assert_eq!(g.bin_len(0), 1);
//! assert_eq!(g.bin_len(3), 1);
//! assert_eq!(stats.moves_applied, 1);
//! ```

pub mod container;
pub mod gpma;
pub mod policy;
pub mod runs;
pub mod soa;
pub mod sort;

pub use container::{Departure, ParticleContainer, ParticleTile};
pub use gpma::{Gpma, GpmaState, MoveStats, PendingMove, INVALID_PARTICLE_ID};
pub use policy::{RankSortStats, SortPolicy, SortReason};
pub use runs::{cell_runs, CellRun, CellRuns};
pub use soa::ParticleSoA;
pub use sort::{
    counting_sort_keys, counting_sort_keys_into, counting_sort_keys_sharded, SortScratch, SortStats,
};
