//! The Gapped Packed Memory Array (GPMA) of paper section 4.3.
//!
//! A GPMA keeps a tile's particles logically sorted by cell by maintaining
//! an index array (`local_index`) partitioned into per-cell *bin regions*
//! with interspersed gaps (`INVALID_PARTICLE_ID` slots). Because particles
//! rarely cross a cell boundary in one CFL-limited step, the per-timestep
//! maintenance touches only moved particles:
//!
//! * **deletion** marks the slot invalid and pushes it on the bin's
//!   empty-slot stack — O(1);
//! * **insertion** pops an empty slot in the target bin — O(1); if the bin
//!   is full it *borrows* a slot from a neighbouring bin by relocating one
//!   boundary particle per intervening bin (particles within a bin share
//!   the sort key, so relocation does not disturb the sorted order);
//! * when borrowing fails or gaps run dry, a **local rebuild** reallocates
//!   the tile's index with fresh, uniformly distributed gaps — O(N_tile),
//!   amortised away by the gap headroom.
//!
//! The structure never moves particle *data*; it permutes indices only.
//! Actual data movement is deferred to the global re-sort
//! ([`crate::sort::counting_sort_keys`] driven by [`crate::policy`]).
//!
//! All operations tally [`MoveStats`] so kernel drivers can charge the
//! emulated machine for the work performed.

/// Marker stored in empty `local_index` slots.
pub const INVALID_PARTICLE_ID: usize = usize::MAX;

/// Rebuild fires when the free-slot ratio drops below this (paper
/// section 4.3.2's maintenance trigger).
const MIN_EMPTY_RATIO: f64 = 0.02;

/// Ceiling of `count * ratio` as a slot count — the one sanctioned
/// float→integer crossing in this crate. A raw `(x).ceil() as usize`
/// saturates silently on overflow and truncates NaN to zero, which is
/// why mpic-lint rule L5 bans the cast in expression position in
/// result-bearing code; this helper pins the domain with a debug
/// assertion before the conversion so a violated precondition fails a
/// debug build instead of silently clamping a release one.
#[inline]
fn gap_slots(count: usize, ratio: f64) -> usize {
    let slots = (count as f64 * ratio).ceil();
    debug_assert!(
        slots.is_finite() && (0.0..=u32::MAX as f64).contains(&slots),
        "gap slot count {slots} outside the convertible domain"
    );
    slots as usize
}

/// Operation counts returned by [`Gpma::apply_pending_moves`].
///
/// The driver multiplies these by per-operation cycle costs; keeping them
/// here keeps the data structure independent of the machine model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[must_use]
pub struct MoveStats {
    /// Total pending moves processed.
    pub moves_applied: usize,
    /// Slots invalidated (move-outs and departures).
    pub deletions: usize,
    /// Particles placed into bins.
    pub insertions: usize,
    /// Insertions satisfied by an O(1) stack pop in the target bin.
    pub o1_inserts: usize,
    /// Boundary relocations performed while borrowing from neighbours.
    pub borrow_shifts: usize,
    /// Bins scanned while searching for a free slot.
    pub bins_scanned: usize,
    /// Local rebuilds triggered.
    pub rebuilds: usize,
    /// Particles re-laid-out by rebuilds.
    pub rebuild_particles: usize,
}

impl MoveStats {
    /// Accumulates another stats record.
    pub fn merge(&mut self, o: &MoveStats) {
        self.moves_applied += o.moves_applied;
        self.deletions += o.deletions;
        self.insertions += o.insertions;
        self.o1_inserts += o.o1_inserts;
        self.borrow_shifts += o.borrow_shifts;
        self.bins_scanned += o.bins_scanned;
        self.rebuilds += o.rebuilds;
        self.rebuild_particles += o.rebuild_particles;
    }
}

/// A queued particle relocation (the paper's `m_pending_moves` entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingMove {
    /// Particle index into the tile's SoA.
    pub particle: usize,
    /// Bin the particle currently occupies; `None` for newly added
    /// particles.
    pub old_bin: Option<usize>,
    /// Destination bin; `None` when the particle leaves the tile.
    pub new_bin: Option<usize>,
}

/// Complete checkpointable state of a [`Gpma`], mirroring its internal
/// fields one-for-one (the configured `min_empty_ratio` maintenance
/// threshold is a crate constant and therefore not part of the state).
/// Produced by [`Gpma::export_state`]; consumed — with full structural
/// validation — by [`Gpma::from_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct GpmaState {
    /// The index array (particle ids or `INVALID_PARTICLE_ID` gaps).
    pub local_index: Vec<usize>,
    /// Region start per bin, plus the trailing capacity entry.
    pub bin_offsets: Vec<usize>,
    /// Valid particles per bin.
    pub bin_lengths: Vec<usize>,
    /// Per-bin empty-slot stacks, LIFO order preserved.
    pub bin_free: Vec<Vec<usize>>,
    /// Reverse map: particle index -> slot.
    pub slot_of: Vec<usize>,
    /// Live particle count.
    pub num_particles: usize,
    /// Free slot count.
    pub num_empty_slots: usize,
    /// Fractional gap headroom per bin.
    pub gap_ratio: f64,
    /// Queued (not yet applied) relocations.
    pub pending: Vec<PendingMove>,
    /// Whether the last apply cycle rebuilt the tile.
    pub was_rebuilt_this_step: bool,
    /// Cumulative local rebuilds since the last counter reset.
    pub rebuild_count: u64,
}

/// The gapped packed-memory index of one particle tile.
#[derive(Debug, Clone)]
pub struct Gpma {
    /// The index array: particle indices or `INVALID_PARTICLE_ID` gaps.
    local_index: Vec<usize>,
    /// Region start per bin; `bin_offsets[n_bins]` == capacity.
    bin_offsets: Vec<usize>,
    /// Valid particles per bin (the paper's `m_bin_lengths`).
    bin_lengths: Vec<usize>,
    /// Per-bin stacks of empty slot indices (the paper's
    /// `m_empty_slots_stack`, kept per bin so an O(1) pop lands in the
    /// correct region).
    bin_free: Vec<Vec<usize>>,
    /// Reverse map: particle index -> slot (enables O(1) deletion; the
    /// in-kernel equivalent knows the slot from the iteration cursor).
    slot_of: Vec<usize>,
    num_particles: usize,
    num_empty_slots: usize,
    gap_ratio: f64,
    pending: Vec<PendingMove>,
    /// Set when the last `apply_pending_moves` rebuilt the tile
    /// (the paper's `m_was_rebuilt_this_step`).
    pub was_rebuilt_this_step: bool,
    /// Cumulative local rebuilds since the last counter reset (feeds the
    /// global sort policy trigger 3).
    rebuild_count: u64,
    /// Rebuild also fires when the free-slot ratio drops below this.
    min_empty_ratio: f64,
}

impl Gpma {
    /// Builds a GPMA from per-particle bin assignments.
    ///
    /// `cells[p]` is the bin of particle `p`; `n_bins` the number of cells
    /// in the tile; `gap_ratio` the fractional gap headroom per bin (the
    /// paper's uniformly distributed gaps).
    ///
    /// # Panics
    ///
    /// Panics if any bin id is out of range or `gap_ratio < 0`.
    pub fn build(cells: &[usize], n_bins: usize, gap_ratio: f64) -> Self {
        assert!(gap_ratio >= 0.0);
        let mut g = Self {
            local_index: Vec::new(),
            bin_offsets: vec![0; n_bins + 1],
            bin_lengths: vec![0; n_bins],
            bin_free: vec![Vec::new(); n_bins],
            slot_of: Vec::new(),
            num_particles: 0,
            num_empty_slots: 0,
            gap_ratio,
            pending: Vec::new(),
            was_rebuilt_this_step: false,
            rebuild_count: 0,
            min_empty_ratio: MIN_EMPTY_RATIO,
        };
        g.layout(cells, &mut MoveStats::default());
        g.rebuild_count = 0; // The initial layout is not a "rebuild".
        g.was_rebuilt_this_step = false;
        g
    }

    /// Lays the index out from scratch for the given assignments.
    fn layout(&mut self, cells: &[usize], stats: &mut MoveStats) {
        let n_bins = self.bin_lengths.len();
        let mut counts = vec![0usize; n_bins];
        let mut live = 0usize;
        for &c in cells {
            if c == INVALID_PARTICLE_ID {
                continue; // Dead SoA slot.
            }
            assert!(c < n_bins, "bin {c} out of range ({n_bins} bins)");
            counts[c] += 1;
            live += 1;
        }
        // Region per bin: count + gaps (at least one gap per bin so an
        // arriving particle has an O(1) home).
        let mut offsets = vec![0usize; n_bins + 1];
        for c in 0..n_bins {
            let gap = gap_slots(counts[c], self.gap_ratio).max(1);
            offsets[c + 1] = offsets[c] + counts[c] + gap;
        }
        let capacity = offsets[n_bins];
        let mut index = vec![INVALID_PARTICLE_ID; capacity];
        let mut cursor = offsets[..n_bins].to_vec();
        let mut slot_of = vec![INVALID_PARTICLE_ID; cells.len()];
        for (p, &c) in cells.iter().enumerate() {
            if c == INVALID_PARTICLE_ID {
                continue;
            }
            index[cursor[c]] = p;
            slot_of[p] = cursor[c];
            cursor[c] += 1;
        }
        let mut free = vec![Vec::new(); n_bins];
        for (c, f) in free.iter_mut().enumerate() {
            // Push high slots first so pops fill the region front-to-back.
            for s in (cursor[c]..offsets[c + 1]).rev() {
                f.push(s);
            }
        }
        self.num_empty_slots = capacity - live;
        self.local_index = index;
        self.bin_offsets = offsets;
        self.bin_lengths = counts;
        self.bin_free = free;
        self.slot_of = slot_of;
        self.num_particles = live;
        stats.rebuild_particles += live;
    }

    /// Number of live particles indexed.
    pub fn num_particles(&self) -> usize {
        self.num_particles
    }

    /// Total slots (the paper's `m_capacity`).
    pub fn capacity(&self) -> usize {
        self.local_index.len()
    }

    /// Current free-slot count (the paper's `m_num_empty_slots`).
    pub fn num_empty_slots(&self) -> usize {
        self.num_empty_slots
    }

    /// Free-slot fraction of capacity, the policy's empty-ratio metric.
    pub fn empty_ratio(&self) -> f64 {
        if self.capacity() == 0 {
            0.0
        } else {
            self.num_empty_slots as f64 / self.capacity() as f64
        }
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bin_lengths.len()
    }

    /// Valid particles in bin `c`.
    pub fn bin_len(&self, c: usize) -> usize {
        self.bin_lengths[c]
    }

    /// Raw slot view of bin `c` including `INVALID_PARTICLE_ID` gaps —
    /// exactly what the VPU sweep of Algorithm 1 iterates.
    pub fn bin_slots(&self, c: usize) -> &[usize] {
        &self.local_index[self.bin_offsets[c]..self.bin_offsets[c + 1]]
    }

    /// Iterator over valid particle indices in bin `c`.
    pub fn iter_bin(&self, c: usize) -> impl Iterator<Item = usize> + '_ {
        self.bin_slots(c)
            .iter()
            .copied()
            .filter(|&p| p != INVALID_PARTICLE_ID)
    }

    /// Iterator over all valid particle indices in bin order (the sorted
    /// traversal the deposition kernel relies on).
    pub fn iter_sorted(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.num_bins()).flat_map(move |c| self.iter_bin(c).map(move |p| (c, p)))
    }

    /// Cumulative local rebuilds since the last reset.
    pub fn rebuild_count(&self) -> u64 {
        self.rebuild_count
    }

    /// Resets the rebuild counter (after a global sort).
    pub fn reset_counters(&mut self) {
        self.rebuild_count = 0;
        self.was_rebuilt_this_step = false;
    }

    /// Queues a move of `particle` from `old_bin` to `new_bin`
    /// (Algorithm 1's `pending_moves.push`).
    ///
    /// A particle may appear in **at most one** pending move per apply
    /// cycle (the per-step sweep visits each particle once); queueing a
    /// second move for the same particle before
    /// [`Gpma::apply_pending_moves`] is a logic error.
    pub fn queue_move(&mut self, particle: usize, old_bin: usize, new_bin: usize) {
        debug_assert!(
            !self.pending.iter().any(|mv| mv.particle == particle),
            "particle {particle} already has a pending move this cycle"
        );
        self.pending.push(PendingMove {
            particle,
            old_bin: Some(old_bin),
            new_bin: Some(new_bin),
        });
    }

    /// Queues insertion of a newly added particle.
    pub fn queue_insert(&mut self, particle: usize, new_bin: usize) {
        self.pending.push(PendingMove {
            particle,
            old_bin: None,
            new_bin: Some(new_bin),
        });
    }

    /// Queues removal of a particle leaving the tile.
    pub fn queue_remove(&mut self, particle: usize, old_bin: usize) {
        self.pending.push(PendingMove {
            particle,
            old_bin: Some(old_bin),
            new_bin: None,
        });
    }

    /// Number of queued pending moves.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Applies all queued moves (the paper's `ApplyPendingMoves`),
    /// rebuilding the tile index if insertion pressure demands it.
    ///
    /// `cells[p]` must give the *current* (post-move) bin of every live
    /// particle `p`; it is consulted only when a rebuild re-lays-out the
    /// whole tile. Entries for dead SoA slots must be
    /// `INVALID_PARTICLE_ID`.
    pub fn apply_pending_moves(&mut self, cells: &[usize]) -> MoveStats {
        let mut stats = MoveStats::default();
        self.was_rebuilt_this_step = false;
        let pending = std::mem::take(&mut self.pending);
        stats.moves_applied = pending.len();

        // Phase 1: deletions free slots before insertions consume them.
        for mv in &pending {
            if let Some(old) = mv.old_bin {
                self.delete(mv.particle, old, &mut stats);
            }
        }

        // Phase 2: insertions; collect overflow on failure.
        let mut overflow: Vec<(usize, usize)> = Vec::new();
        for mv in &pending {
            if let Some(new) = mv.new_bin {
                if !self.insert(mv.particle, new, &mut stats) {
                    overflow.push((mv.particle, new));
                }
            }
        }

        // Rebuild triggers (section 4.3.2): mandatory when overflow
        // particles exist; optional when free slots are critically low.
        if !overflow.is_empty() || self.empty_ratio() < self.min_empty_ratio {
            self.rebuild(cells, &mut stats);
        }
        stats
    }

    fn grow_slot_map(&mut self, particle: usize) {
        if particle >= self.slot_of.len() {
            self.slot_of.resize(particle + 1, INVALID_PARTICLE_ID);
        }
    }

    fn delete(&mut self, particle: usize, old_bin: usize, stats: &mut MoveStats) {
        let slot = self.slot_of[particle];
        assert_ne!(slot, INVALID_PARTICLE_ID, "particle {particle} not indexed");
        debug_assert_eq!(self.local_index[slot], particle);
        debug_assert!(
            slot >= self.bin_offsets[old_bin] && slot < self.bin_offsets[old_bin + 1],
            "slot {slot} outside bin {old_bin}"
        );
        self.local_index[slot] = INVALID_PARTICLE_ID;
        self.slot_of[particle] = INVALID_PARTICLE_ID;
        self.bin_free[old_bin].push(slot);
        self.bin_lengths[old_bin] -= 1;
        self.num_particles -= 1;
        self.num_empty_slots += 1;
        stats.deletions += 1;
    }

    /// Places `particle` into `new_bin`; returns false if no slot could be
    /// found anywhere (tile full) so the caller rebuilds.
    fn insert(&mut self, particle: usize, new_bin: usize, stats: &mut MoveStats) -> bool {
        self.grow_slot_map(particle);
        stats.insertions += 1;
        // Fast path: a gap inside the target bin.
        if let Some(slot) = self.bin_free[new_bin].pop() {
            self.place(particle, new_bin, slot);
            stats.o1_inserts += 1;
            return true;
        }
        // Borrow: find the nearest bin (right, then left) with a free slot
        // and migrate the boundary slot bin-by-bin towards `new_bin`.
        let n = self.num_bins();
        let mut donor: Option<usize> = None;
        for b in new_bin + 1..n {
            stats.bins_scanned += 1;
            if !self.bin_free[b].is_empty() {
                donor = Some(b);
                break;
            }
        }
        let donor_right = donor.is_some();
        if donor.is_none() {
            for b in (0..new_bin).rev() {
                stats.bins_scanned += 1;
                if !self.bin_free[b].is_empty() {
                    donor = Some(b);
                    break;
                }
            }
        }
        let Some(donor) = donor else {
            return false;
        };
        // Walk the free slot from the donor to the target bin. Moving the
        // boundary by one slot per intervening bin relocates at most one
        // particle per bin (in-bin order is irrelevant: all particles in a
        // bin share the sort key).
        if donor_right {
            let mut b = donor;
            while b > new_bin {
                self.shift_boundary_left(b, stats);
                b -= 1;
            }
        } else {
            let mut b = donor;
            while b < new_bin {
                self.shift_boundary_right(b, stats);
                b += 1;
            }
        }
        let slot = self.bin_free[new_bin]
            .pop()
            .expect("borrow must leave a free slot in the target bin");
        self.place(particle, new_bin, slot);
        true
    }

    fn place(&mut self, particle: usize, bin: usize, slot: usize) {
        debug_assert_eq!(self.local_index[slot], INVALID_PARTICLE_ID);
        self.local_index[slot] = particle;
        self.slot_of[particle] = slot;
        self.bin_lengths[bin] += 1;
        self.num_particles += 1;
        self.num_empty_slots -= 1;
    }

    /// Donates bin `b`'s first slot to bin `b-1`: ensures the slot at
    /// `bin_offsets[b]` is free (relocating its occupant into one of `b`'s
    /// free slots if needed), then moves the boundary so the freed slot
    /// becomes the last slot of bin `b-1`.
    fn shift_boundary_left(&mut self, b: usize, stats: &mut MoveStats) {
        let boundary = self.bin_offsets[b];
        let occupant = self.local_index[boundary];
        if occupant == INVALID_PARTICLE_ID {
            // The boundary slot is already free: remove it from b's stack.
            let pos = self.bin_free[b]
                .iter()
                .position(|&s| s == boundary)
                .expect("free boundary slot must be on the stack");
            self.bin_free[b].swap_remove(pos);
            stats.bins_scanned += 1;
        } else {
            // Relocate the occupant into a free slot of bin b.
            let dst = self.bin_free[b]
                .pop()
                .expect("donor chain guarantees a free slot");
            debug_assert_ne!(dst, boundary);
            self.local_index[dst] = occupant;
            self.slot_of[occupant] = dst;
            self.local_index[boundary] = INVALID_PARTICLE_ID;
            stats.borrow_shifts += 1;
        }
        // Hand the boundary slot to bin b-1.
        self.bin_offsets[b] += 1;
        self.bin_free[b - 1].push(boundary);
    }

    /// Mirror image of [`Gpma::shift_boundary_left`]: donates bin `b`'s
    /// last slot to bin `b+1`.
    fn shift_boundary_right(&mut self, b: usize, stats: &mut MoveStats) {
        let boundary = self.bin_offsets[b + 1] - 1;
        let occupant = self.local_index[boundary];
        if occupant == INVALID_PARTICLE_ID {
            let pos = self.bin_free[b]
                .iter()
                .position(|&s| s == boundary)
                .expect("free boundary slot must be on the stack");
            self.bin_free[b].swap_remove(pos);
            stats.bins_scanned += 1;
        } else {
            let dst = self.bin_free[b]
                .pop()
                .expect("donor chain guarantees a free slot");
            debug_assert_ne!(dst, boundary);
            self.local_index[dst] = occupant;
            self.slot_of[occupant] = dst;
            self.local_index[boundary] = INVALID_PARTICLE_ID;
            stats.borrow_shifts += 1;
        }
        self.bin_offsets[b + 1] -= 1;
        self.bin_free[b + 1].push(boundary);
    }

    /// Local rebuild: re-lays-out the whole tile with fresh gaps
    /// (the paper's `GPMA Local Rebuild`, complexity O(N_tile)).
    fn rebuild(&mut self, cells: &[usize], stats: &mut MoveStats) {
        self.layout(cells, stats);
        stats.rebuilds += 1;
        self.rebuild_count += 1;
        self.was_rebuilt_this_step = true;
    }

    /// Exports the complete internal state for checkpointing. The GPMA
    /// is pure index bookkeeping (it owns no particle data), so the
    /// exported state plus the tile's SoA fully determines every future
    /// operation bit-for-bit.
    pub fn export_state(&self) -> GpmaState {
        GpmaState {
            local_index: self.local_index.clone(),
            bin_offsets: self.bin_offsets.clone(),
            bin_lengths: self.bin_lengths.clone(),
            bin_free: self.bin_free.clone(),
            slot_of: self.slot_of.clone(),
            num_particles: self.num_particles,
            num_empty_slots: self.num_empty_slots,
            gap_ratio: self.gap_ratio,
            pending: self.pending.clone(),
            was_rebuilt_this_step: self.was_rebuilt_this_step,
            rebuild_count: self.rebuild_count,
        }
    }

    /// Rebuilds a GPMA from checkpointed state, validating every
    /// structural invariant instead of trusting the input — a corrupt
    /// snapshot must surface as an error here, never as a panic in a
    /// later `apply_pending_moves`.
    pub fn from_state(s: GpmaState) -> Result<Self, &'static str> {
        let n_bins = s.bin_lengths.len();
        if s.bin_offsets.len() != n_bins + 1 || s.bin_free.len() != n_bins {
            return Err("gpma: bin table lengths disagree");
        }
        if s.bin_offsets.first() != Some(&0)
            || s.bin_offsets.windows(2).any(|w| w[0] > w[1])
            || s.bin_offsets.last() != Some(&s.local_index.len())
        {
            return Err("gpma: bin offsets malformed");
        }
        if !(s.gap_ratio.is_finite() && s.gap_ratio >= 0.0) {
            return Err("gpma: gap ratio out of range");
        }
        let mut live = 0usize;
        for (slot, &p) in s.local_index.iter().enumerate() {
            if p == INVALID_PARTICLE_ID {
                continue;
            }
            if p >= s.slot_of.len() || s.slot_of[p] != slot {
                return Err("gpma: slot map inconsistent with index");
            }
            live += 1;
        }
        if live != s.num_particles {
            return Err("gpma: particle count mismatch");
        }
        if s.local_index.len() - live != s.num_empty_slots {
            return Err("gpma: empty slot count mismatch");
        }
        let mut on_stack = vec![false; s.local_index.len()];
        for c in 0..n_bins {
            let (lo, hi) = (s.bin_offsets[c], s.bin_offsets[c + 1]);
            let valid = s.local_index[lo..hi]
                .iter()
                .filter(|&&p| p != INVALID_PARTICLE_ID)
                .count();
            if valid != s.bin_lengths[c] {
                return Err("gpma: bin length mismatch");
            }
            if s.bin_free[c].len() != (hi - lo) - valid {
                return Err("gpma: free stack size mismatch");
            }
            for &f in &s.bin_free[c] {
                if f < lo || f >= hi || s.local_index[f] != INVALID_PARTICLE_ID || on_stack[f] {
                    return Err("gpma: free stack entry invalid");
                }
                on_stack[f] = true;
            }
        }
        for mv in &s.pending {
            let bin_ok = |b: Option<usize>| b.is_none_or(|b| b < n_bins);
            if !bin_ok(mv.old_bin) || !bin_ok(mv.new_bin) {
                return Err("gpma: pending move references missing bin");
            }
        }
        Ok(Self {
            local_index: s.local_index,
            bin_offsets: s.bin_offsets,
            bin_lengths: s.bin_lengths,
            bin_free: s.bin_free,
            slot_of: s.slot_of,
            num_particles: s.num_particles,
            num_empty_slots: s.num_empty_slots,
            gap_ratio: s.gap_ratio,
            pending: s.pending,
            was_rebuilt_this_step: s.was_rebuilt_this_step,
            rebuild_count: s.rebuild_count,
            min_empty_ratio: MIN_EMPTY_RATIO,
        })
    }

    /// Exhaustively validates internal invariants against the
    /// authoritative per-particle bins. Test/debug helper.
    ///
    /// # Panics
    ///
    /// Panics on any inconsistency.
    pub fn check_invariants(&self, cells: &[usize]) {
        // Plain index bitmap, not a HashSet: the determinism lint (L3)
        // bans hash collections in result-bearing crates outright, and a
        // checker should not carry a nondeterministic structure even for
        // membership-only use.
        let mut seen = vec![false; cells.len()];
        let mut live_expected = 0;
        for &c in cells {
            if c != INVALID_PARTICLE_ID {
                live_expected += 1;
            }
        }
        assert_eq!(self.num_particles, live_expected, "particle count");
        let mut total_free = 0;
        for c in 0..self.num_bins() {
            let mut valid = 0;
            for (off, &p) in self.bin_slots(c).iter().enumerate() {
                let slot = self.bin_offsets[c] + off;
                if p == INVALID_PARTICLE_ID {
                    assert!(
                        self.bin_free[c].contains(&slot),
                        "gap slot {slot} missing from bin {c} stack"
                    );
                    total_free += 1;
                } else {
                    assert!(p < cells.len(), "particle id {p} out of range");
                    assert!(!seen[p], "particle {p} appears twice");
                    seen[p] = true;
                    assert_eq!(cells[p], c, "particle {p} in wrong bin");
                    assert_eq!(self.slot_of[p], slot, "slot map stale for {p}");
                    valid += 1;
                }
            }
            assert_eq!(valid, self.bin_lengths[c], "bin {c} length");
            assert_eq!(
                self.bin_free[c].len(),
                self.bin_slots(c).len() - valid,
                "bin {c} free stack size"
            );
        }
        let seen_count = seen.iter().filter(|&&s| s).count();
        assert_eq!(seen_count, live_expected, "all particles indexed");
        assert_eq!(total_free, self.num_empty_slots, "empty slot count");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_bins_particles() {
        let cells = vec![2, 0, 1, 0, 2];
        let g = Gpma::build(&cells, 3, 0.5);
        g.check_invariants(&cells);
        assert_eq!(g.bin_len(0), 2);
        assert_eq!(g.bin_len(1), 1);
        assert_eq!(g.bin_len(2), 2);
        let b0: Vec<usize> = g.iter_bin(0).collect();
        assert_eq!(b0, vec![1, 3]);
    }

    #[test]
    fn o1_move_uses_gap() {
        let mut cells = vec![0, 0, 1, 1];
        let mut g = Gpma::build(&cells, 2, 1.0);
        g.queue_move(0, 0, 1);
        cells[0] = 1;
        let stats = g.apply_pending_moves(&cells);
        g.check_invariants(&cells);
        assert_eq!(stats.o1_inserts, 1);
        assert_eq!(stats.rebuilds, 0);
        assert_eq!(g.bin_len(0), 1);
        assert_eq!(g.bin_len(1), 3);
    }

    #[test]
    fn removal_shrinks_bin() {
        let cells = vec![0, 0, 1];
        let mut g = Gpma::build(&cells, 2, 0.5);
        g.queue_remove(1, 0);
        // Particle 1 is gone: its cells entry becomes INVALID.
        let after = vec![0, INVALID_PARTICLE_ID, 1];
        let _ = g.apply_pending_moves(&after);
        g.check_invariants(&after);
        assert_eq!(g.bin_len(0), 1);
        assert_eq!(g.num_particles(), 2);
    }

    #[test]
    fn insertion_of_new_particle() {
        let cells = vec![0, 1];
        let g = Gpma::build(&cells, 2, 0.5);
        let extended = vec![0, 1, 1];
        let mut g2 = g.clone();
        g2.queue_insert(2, 1);
        let _ = g2.apply_pending_moves(&extended);
        g2.check_invariants(&extended);
        assert_eq!(g2.bin_len(1), 2);
        // Original untouched.
        g.check_invariants(&cells);
    }

    #[test]
    fn borrow_from_right_neighbour() {
        // Bin 0 packed solid (gap_ratio small => 1 gap), fill it, then
        // force another insert so it must borrow from bin 1.
        let cells = vec![0, 0, 0, 1];
        let mut g = Gpma::build(&cells, 3, 0.0); // 1 gap per bin.
                                                 // Two inserts into bin 0: first takes its gap, second borrows.
        let extended = vec![0, 0, 0, 1, 0, 0];
        g.queue_insert(4, 0);
        g.queue_insert(5, 0);
        let stats = g.apply_pending_moves(&extended);
        g.check_invariants(&extended);
        assert_eq!(g.bin_len(0), 5);
        assert!(
            stats.o1_inserts >= 1,
            "first insert must be O(1): {stats:?}"
        );
        assert_eq!(stats.rebuilds, 0, "borrowing should avoid rebuild");
    }

    #[test]
    fn borrow_from_left_neighbour() {
        // Rightmost bin full; donor must be found to the left.
        let cells = vec![0, 2];
        let mut g = Gpma::build(&cells, 3, 0.0);
        let extended = vec![0, 2, 2, 2];
        g.queue_insert(2, 2);
        g.queue_insert(3, 2);
        let stats = g.apply_pending_moves(&extended);
        g.check_invariants(&extended);
        assert_eq!(g.bin_len(2), 3);
        assert_eq!(stats.rebuilds, 0);
    }

    #[test]
    fn rebuild_when_tile_exhausted() {
        let cells = vec![0];
        let mut g = Gpma::build(&cells, 1, 0.0); // Capacity 2 (1 + 1 gap).
        let extended = vec![0, 0, 0, 0];
        g.queue_insert(1, 0);
        g.queue_insert(2, 0);
        g.queue_insert(3, 0);
        let stats = g.apply_pending_moves(&extended);
        g.check_invariants(&extended);
        assert!(stats.rebuilds >= 1);
        assert!(g.was_rebuilt_this_step);
        assert_eq!(g.rebuild_count(), stats.rebuilds as u64);
        assert_eq!(g.num_particles(), 4);
    }

    #[test]
    fn iter_sorted_visits_bin_order() {
        let cells = vec![2, 0, 1];
        let g = Gpma::build(&cells, 3, 0.5);
        let order: Vec<(usize, usize)> = g.iter_sorted().collect();
        assert_eq!(order, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn empty_ratio_reflects_gaps() {
        let cells = vec![0, 0];
        let g = Gpma::build(&cells, 1, 1.0); // 2 particles + 2 gaps.
        assert!((g.empty_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_counters_clears_rebuilds() {
        let cells = vec![0];
        let mut g = Gpma::build(&cells, 1, 0.0);
        let extended = vec![0, 0, 0];
        g.queue_insert(1, 0);
        g.queue_insert(2, 0);
        let _ = g.apply_pending_moves(&extended);
        assert!(g.rebuild_count() > 0);
        g.reset_counters();
        assert_eq!(g.rebuild_count(), 0);
        assert!(!g.was_rebuilt_this_step);
    }

    #[test]
    fn state_round_trip_preserves_behaviour() {
        let mut cells = vec![0, 0, 1, 2, 2];
        let mut g = Gpma::build(&cells, 3, 0.5);
        g.queue_move(0, 0, 1);
        cells[0] = 1;
        let _ = g.apply_pending_moves(&cells);
        let mut twin = Gpma::from_state(g.export_state()).unwrap();
        twin.check_invariants(&cells);
        assert_eq!(twin.export_state(), g.export_state());
        // Identical future operations must produce identical stats and
        // layout.
        let extended = vec![1, 0, 1, 2, 2, 1];
        g.queue_insert(5, 1);
        twin.queue_insert(5, 1);
        let mut cells2 = cells.clone();
        cells2.push(1);
        let _ = extended;
        let (a, b) = (
            g.apply_pending_moves(&cells2),
            twin.apply_pending_moves(&cells2),
        );
        assert_eq!(a, b);
        assert_eq!(twin.export_state(), g.export_state());
    }

    #[test]
    fn from_state_rejects_corrupt_state() {
        let cells = vec![0, 1, 1];
        let g = Gpma::build(&cells, 2, 0.5);
        let good = g.export_state();
        assert!(Gpma::from_state(good.clone()).is_ok());

        let mut bad = good.clone();
        bad.num_particles += 1;
        assert!(Gpma::from_state(bad).is_err(), "particle count");

        let mut bad = good.clone();
        bad.bin_offsets.pop();
        assert!(Gpma::from_state(bad).is_err(), "offset table");

        let mut bad = good.clone();
        bad.slot_of.clear();
        assert!(Gpma::from_state(bad).is_err(), "slot map");

        let mut bad = good.clone();
        if let Some(f) = bad.bin_free.iter_mut().find(|f| !f.is_empty()) {
            f.push(f[0]); // Duplicate free entry.
        }
        assert!(Gpma::from_state(bad).is_err(), "duplicate free slot");

        let mut bad = good.clone();
        bad.gap_ratio = f64::NAN;
        assert!(Gpma::from_state(bad).is_err(), "NaN gap ratio");

        let mut bad = good;
        bad.pending.push(PendingMove {
            particle: 0,
            old_bin: Some(99),
            new_bin: None,
        });
        assert!(Gpma::from_state(bad).is_err(), "pending bin range");
    }

    #[test]
    fn chain_borrow_across_multiple_bins() {
        // Only the far-right bin has a free slot; inserting into bin 0
        // must chain the boundary shift across bins 1..3.
        let cells = vec![0, 1, 2, 3];
        let mut g = Gpma::build(&cells, 4, 0.0);
        // Fill every gap first.
        let mid = vec![0, 1, 2, 3, 0, 1, 2];
        g.queue_insert(4, 0);
        g.queue_insert(5, 1);
        g.queue_insert(6, 2);
        let s1 = g.apply_pending_moves(&mid);
        assert_eq!(s1.rebuilds, 0);
        g.check_invariants(&mid);
        // Now only bin 3's gap remains; insert into bin 0.
        let fin = vec![0, 1, 2, 3, 0, 1, 2, 0];
        g.queue_insert(7, 0);
        let s2 = g.apply_pending_moves(&fin);
        g.check_invariants(&fin);
        // The insertion itself must be satisfied by chained borrowing (a
        // maintenance rebuild may still fire afterwards because the tile
        // ends up completely full — that is the empty-ratio trigger).
        assert_eq!(s2.borrow_shifts, 3, "one relocation per bin: {s2:?}");
        assert!(s2.bins_scanned > 0);
        assert_eq!(g.bin_len(0), 3);
    }
}
