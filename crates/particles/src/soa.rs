//! Structure-of-Arrays particle storage.
//!
//! The paper's multi-level data-reorganisation strategy preserves an SoA
//! layout so the VPU can stream positions/momenta with unit stride. A
//! tile's SoA is append-mostly: deletions (particles leaving the tile)
//! leave holes that are recycled by subsequent insertions and squeezed out
//! at the next global re-sort, mirroring the paper's "GPMA manipulates
//! indices, deferring data movement until necessary".

/// SoA storage of one particle tile (or one whole species when untiled).
#[derive(Debug, Clone, Default)]
pub struct ParticleSoA {
    /// Position components (m).
    pub x: Vec<f64>,
    /// Position components (m).
    pub y: Vec<f64>,
    /// Position components (m).
    pub z: Vec<f64>,
    /// Normalised momentum u = gamma * v / c (dimensionless).
    pub ux: Vec<f64>,
    /// Normalised momentum u = gamma * v / c (dimensionless).
    pub uy: Vec<f64>,
    /// Normalised momentum u = gamma * v / c (dimensionless).
    pub uz: Vec<f64>,
    /// Macro-particle weight (number of physical particles represented).
    pub w: Vec<f64>,
    /// Liveness flags; dead slots are recycled.
    pub alive: Vec<bool>,
    /// Stack of dead slot indices available for reuse.
    free: Vec<usize>,
}

impl ParticleSoA {
    /// Creates empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates storage with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        let mut s = Self::default();
        s.x.reserve(cap);
        s.y.reserve(cap);
        s.z.reserve(cap);
        s.ux.reserve(cap);
        s.uy.reserve(cap);
        s.uz.reserve(cap);
        s.w.reserve(cap);
        s.alive.reserve(cap);
        s
    }

    /// Number of storage slots (live + dead).
    pub fn slots(&self) -> usize {
        self.x.len()
    }

    /// Number of live particles.
    pub fn len(&self) -> usize {
        self.x.len() - self.free.len()
    }

    /// Whether no live particles exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends or recycles a slot for a particle, returning its index.
    pub fn push(&mut self, x: f64, y: f64, z: f64, ux: f64, uy: f64, uz: f64, w: f64) -> usize {
        if let Some(i) = self.free.pop() {
            self.x[i] = x;
            self.y[i] = y;
            self.z[i] = z;
            self.ux[i] = ux;
            self.uy[i] = uy;
            self.uz[i] = uz;
            self.w[i] = w;
            self.alive[i] = true;
            i
        } else {
            self.x.push(x);
            self.y.push(y);
            self.z.push(z);
            self.ux.push(ux);
            self.uy.push(uy);
            self.uz.push(uz);
            self.w.push(w);
            self.alive.push(true);
            self.x.len() - 1
        }
    }

    /// Marks slot `i` dead and recycles it.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already dead.
    pub fn remove(&mut self, i: usize) {
        assert!(self.alive[i], "double-free of particle slot {i}");
        self.alive[i] = false;
        self.free.push(i);
    }

    /// Copies particle `i` out as a tuple `(x, y, z, ux, uy, uz, w)`.
    pub fn get(&self, i: usize) -> (f64, f64, f64, f64, f64, f64, f64) {
        (
            self.x[i], self.y[i], self.z[i], self.ux[i], self.uy[i], self.uz[i], self.w[i],
        )
    }

    /// Applies a gather permutation: new slot `s` receives old slot
    /// `perm[s]`. All slots in `perm` must be live; the result is fully
    /// compacted (no free slots).
    pub fn permute(&mut self, perm: &[usize]) {
        let mut scratch = Vec::new();
        self.permute_with(perm, &mut scratch);
    }

    /// [`ParticleSoA::permute`] with a caller-provided gather buffer:
    /// each attribute array is gathered into `scratch` and swapped in, so
    /// a warm scratch (capacity >= `perm.len()`) makes the permutation
    /// allocation-free. The buffer cycles through the seven retired
    /// attribute arrays, so their capacity is recycled too.
    pub fn permute_with(&mut self, perm: &[usize], scratch: &mut Vec<f64>) {
        for attr in self.attrs_mut() {
            scratch.clear();
            scratch.extend(perm.iter().map(|&p| attr[p]));
            std::mem::swap(attr, scratch);
        }
        self.compact_alive(perm.len());
    }

    /// The seven attribute arrays, in canonical order — the single source
    /// for every whole-SoA sweep (sequential and sharded permutes).
    fn attrs_mut(&mut self) -> [&mut Vec<f64>; 7] {
        [
            &mut self.x,
            &mut self.y,
            &mut self.z,
            &mut self.ux,
            &mut self.uy,
            &mut self.uz,
            &mut self.w,
        ]
    }

    /// Post-permutation epilogue: every slot live, free list empty.
    fn compact_alive(&mut self, len: usize) {
        self.alive.clear();
        self.alive.resize(len, true);
        self.free.clear();
    }

    /// [`ParticleSoA::permute_with`] with the seven attribute gathers
    /// sharded across the persistent worker pool (each attribute array
    /// is independent, so attribute-parallel gathers produce the
    /// identical result for any worker count or scheduler policy).
    /// `bufs` provides one pooled gather buffer per attribute, resized
    /// in place; a warm set keeps the permutation allocation-free.
    ///
    /// Permutations below
    /// [`INLINE_ITEM_THRESHOLD`](mpic_machine::INLINE_ITEM_THRESHOLD)
    /// run inline — the same small-input constant the sharded counting
    /// sort uses, so the two halves of a global sort can never disagree
    /// about when threads are worth waking.
    pub fn permute_sharded(
        &mut self,
        perm: &[usize],
        bufs: &mut Vec<Vec<f64>>,
        exec: mpic_machine::Exec<'_>,
    ) {
        const ATTRS: usize = 7;
        if perm.len() < mpic_machine::INLINE_ITEM_THRESHOLD || exec.workers() == 1 {
            // Single worker: gather inline, no pool-dispatch overhead
            // (cycling one pooled buffer through the attributes).
            if bufs.is_empty() {
                bufs.push(Vec::new());
            }
            self.permute_with(perm, &mut bufs[0]);
            return;
        }
        if bufs.len() < ATTRS {
            bufs.resize_with(ATTRS, Vec::new);
        }
        let mut pairs: Vec<(&mut Vec<f64>, &mut Vec<f64>)> =
            self.attrs_mut().into_iter().zip(bufs.iter_mut()).collect();
        exec.for_each(&mut pairs, |_, (attr, buf)| {
            buf.clear();
            buf.extend(perm.iter().map(|&p| attr[p]));
            std::mem::swap::<Vec<f64>>(attr, buf);
        });
        self.compact_alive(perm.len());
    }

    /// The dead-slot recycling stack, top last. Checkpointing records it
    /// verbatim: the LIFO order decides which slot the next
    /// [`ParticleSoA::push`] reuses, so a restored SoA must pop the same
    /// indices in the same order to stay bit-identical.
    pub fn free_slots(&self) -> &[usize] {
        &self.free
    }

    /// Rebuilds an SoA from checkpointed parts, validating the storage
    /// invariants instead of trusting the input: all arrays equally long,
    /// every free-stack index a distinct dead slot, and every dead slot
    /// on the stack. Returns a description of the violated invariant on
    /// malformed input (corrupt snapshots must surface as errors, never
    /// as a poisoned container).
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        x: Vec<f64>,
        y: Vec<f64>,
        z: Vec<f64>,
        ux: Vec<f64>,
        uy: Vec<f64>,
        uz: Vec<f64>,
        w: Vec<f64>,
        alive: Vec<bool>,
        free: Vec<usize>,
    ) -> Result<Self, &'static str> {
        let n = x.len();
        if [
            y.len(),
            z.len(),
            ux.len(),
            uy.len(),
            uz.len(),
            w.len(),
            alive.len(),
        ]
        .iter()
        .any(|&l| l != n)
        {
            return Err("attribute arrays disagree in length");
        }
        let mut on_stack = vec![false; n];
        for &i in &free {
            if i >= n {
                return Err("free-stack index out of range");
            }
            if alive[i] {
                return Err("free-stack index refers to a live slot");
            }
            if on_stack[i] {
                return Err("free-stack index duplicated");
            }
            on_stack[i] = true;
        }
        if alive.iter().filter(|&&a| !a).count() != free.len() {
            return Err("dead slot missing from the free stack");
        }
        Ok(Self {
            x,
            y,
            z,
            ux,
            uy,
            uz,
            w,
            alive,
            free,
        })
    }

    /// Iterator over live slot indices.
    pub fn live_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(i))
    }

    /// Sum of weights of live particles (total charge diagnostics).
    pub fn total_weight(&self) -> f64 {
        self.live_indices().map(|i| self.w[i]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut s = ParticleSoA::new();
        let i = s.push(1.0, 2.0, 3.0, 0.1, 0.2, 0.3, 5.0);
        assert_eq!(i, 0);
        assert_eq!(s.get(0), (1.0, 2.0, 3.0, 0.1, 0.2, 0.3, 5.0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_recycles_slot() {
        let mut s = ParticleSoA::new();
        s.push(1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0);
        s.push(2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0);
        s.remove(0);
        assert_eq!(s.len(), 1);
        let i = s.push(3.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0);
        assert_eq!(i, 0, "dead slot must be reused");
        assert_eq!(s.slots(), 2);
    }

    #[test]
    #[should_panic(expected = "double-free")]
    fn double_remove_panics() {
        let mut s = ParticleSoA::new();
        s.push(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0);
        s.remove(0);
        s.remove(0);
    }

    #[test]
    fn permute_compacts() {
        let mut s = ParticleSoA::new();
        for i in 0..4 {
            s.push(i as f64, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0);
        }
        s.remove(1);
        s.permute(&[3, 0, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.x, vec![3.0, 0.0, 2.0]);
        assert!(s.alive.iter().all(|&a| a));
    }

    #[test]
    fn permute_sharded_matches_sequential() {
        use mpic_machine::{SchedulerPolicy, WorkerPool};
        // Above the parallel threshold so the threaded path runs.
        let n = 5_000;
        let build = || {
            let mut s = ParticleSoA::new();
            for i in 0..n + 1 {
                let f = i as f64;
                s.push(f, 10.0 + f, 20.0 + f, 0.1 * f, -0.1 * f, f, 1.0 + f);
            }
            s.remove(4);
            s
        };
        // A scrambled full permutation of the live slots (skip slot 4).
        let perm: Vec<usize> = (0..n + 1)
            .map(|i| (i * 2_741) % (n + 1))
            .filter(|&p| p != 4)
            .collect();
        let mut want = build();
        want.permute(&perm);
        for workers in [1usize, 2, 3, 7, 50] {
            let pool = WorkerPool::new(workers);
            for policy in [SchedulerPolicy::Static, SchedulerPolicy::Stealing] {
                let mut got = build();
                let mut bufs = Vec::new();
                got.permute_sharded(&perm, &mut bufs, pool.exec(policy));
                assert_eq!(got.x, want.x, "workers {workers} {policy:?}");
                assert_eq!(got.w, want.w, "workers {workers} {policy:?}");
                assert_eq!(got.len(), want.len());
                assert!(got.alive.iter().all(|&a| a));
            }
        }
    }

    #[test]
    fn from_parts_round_trips_and_rejects_corruption() {
        let mut s = ParticleSoA::new();
        for i in 0..5 {
            s.push(i as f64, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0);
        }
        s.remove(1);
        s.remove(3);
        let rebuilt = ParticleSoA::from_parts(
            s.x.clone(),
            s.y.clone(),
            s.z.clone(),
            s.ux.clone(),
            s.uy.clone(),
            s.uz.clone(),
            s.w.clone(),
            s.alive.clone(),
            s.free_slots().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt.len(), s.len());
        assert_eq!(rebuilt.free_slots(), s.free_slots());
        // The LIFO order must be preserved: next push reuses slot 3.
        let mut r = rebuilt;
        assert_eq!(r.push(9.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0), 3);

        let bad = |free: Vec<usize>, alive: Vec<bool>| {
            ParticleSoA::from_parts(
                vec![0.0; 3],
                vec![0.0; 3],
                vec![0.0; 3],
                vec![0.0; 3],
                vec![0.0; 3],
                vec![0.0; 3],
                vec![0.0; 3],
                alive,
                free,
            )
        };
        assert!(bad(vec![7], vec![true, false, true]).is_err(), "oob");
        assert!(bad(vec![0], vec![true, false, true]).is_err(), "live slot");
        assert!(
            bad(vec![1, 1], vec![true, false, true]).is_err(),
            "duplicate"
        );
        assert!(bad(vec![], vec![true, false, true]).is_err(), "orphan dead");
        assert!(
            ParticleSoA::from_parts(
                vec![0.0; 2],
                vec![0.0; 3],
                vec![0.0; 3],
                vec![0.0; 3],
                vec![0.0; 3],
                vec![0.0; 3],
                vec![0.0; 3],
                vec![true; 3],
                vec![],
            )
            .is_err(),
            "ragged arrays"
        );
    }

    #[test]
    fn live_indices_skip_dead() {
        let mut s = ParticleSoA::new();
        for i in 0..3 {
            s.push(i as f64, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0);
        }
        s.remove(1);
        let live: Vec<usize> = s.live_indices().collect();
        assert_eq!(live, vec![0, 2]);
        assert_eq!(s.total_weight(), 4.0);
    }
}
