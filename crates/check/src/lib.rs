//! `mpic-check`: a dependency-free, loom-style bounded model checker
//! for the exec layer's epoch/parking/fault protocol.
//!
//! The crate instantiates the *actual* pool protocol —
//! `mpic_machine::exec::PoolCore`, the very code production runs as
//! `WorkerPool` — over the instrumented [`sched::ShimSync`] facade, and
//! explores bounded thread interleavings by depth-first search over
//! scheduling decisions:
//!
//! * each run executes the scenario under a deterministic cooperative
//!   scheduler ([`sched::Controller`]) that records every branch point;
//! * [`explore`] replays prefixes of those decisions, incrementing the
//!   deepest untried alternative each time, until the tree (pruned by
//!   operation-conflict analysis and a preemption budget — see
//!   [`sched`]) is exhausted or a schedule cap is hit.
//!
//! On every explored schedule the scenario asserts the four protocol
//! invariants (no deadlock, no lost wakeup, acks collected exactly
//! once, respawned pool indistinguishable from fresh); any violation —
//! including a deadlock the scheduler itself detects — is reported with
//! the full operation trace of the offending schedule.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

pub mod scenario;
pub mod sched;

use sched::{Controller, Op, RunOutcome};

/// Exploration bounds for one [`explore`] call.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// CHESS-style budget: how many times a schedule may switch away
    /// from a still-runnable thread. Forced switches are free.
    pub max_preemptions: usize,
    /// Hard cap on schedules explored (the run reports `exhausted =
    /// false` when hit).
    pub max_schedules: u64,
    /// Per-schedule operation budget; exceeding it is reported as a
    /// failure (a livelock would otherwise spin forever).
    pub max_steps: usize,
    /// Chaos knob for negative tests: swallow the n-th condvar
    /// broadcast of every schedule, modeling a lost notification.
    pub drop_wake: Option<u64>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            max_preemptions: 2,
            max_schedules: 200_000,
            max_steps: 20_000,
            drop_wake: None,
        }
    }
}

/// A violated invariant, with the schedule that produced it.
#[derive(Debug)]
pub struct Failure {
    /// What went wrong (deadlock report or scenario invariant message).
    pub message: String,
    /// 1-based index of the failing schedule in exploration order.
    pub schedule: u64,
    /// The full `(thread, operation)` trace of the failing schedule.
    pub trace: Vec<(usize, Op)>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "schedule {}: {}", self.schedule, self.message)?;
        for (i, (tid, op)) in self.trace.iter().enumerate() {
            writeln!(f, "  [{i:>3}] t{tid} {op:?}")?;
        }
        Ok(())
    }
}

/// The result of exploring one scenario.
#[derive(Debug)]
pub struct Report {
    /// Schedules executed.
    pub schedules: u64,
    /// Whether the (pruned, budgeted) schedule tree was fully explored.
    pub exhausted: bool,
    /// First invariant violation found, if any (exploration stops at
    /// the first failure so the trace stays minimal-ish).
    pub failure: Option<Failure>,
}

impl Report {
    /// No invariant violated on any explored schedule.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

type Scenario = Arc<dyn Fn() -> Result<(), String> + Send + Sync>;

/// Explorations are serialized process-wide: the controller is wired to
/// controlled threads through a thread-local, and the panic hook is
/// swapped for the duration of a run.
static EXPLORE_GATE: Mutex<()> = Mutex::new(());

/// Runs `scenario` under every schedule of the bounded exploration tree
/// and reports the first invariant violation, if any.
///
/// The scenario returns `Err(message)` to report an invariant violation
/// it detected itself; deadlocks, step-budget overruns and unexpected
/// protocol panics are detected by the scheduler. Scenarios run many
/// times and must be self-contained (fresh pool per call, no external
/// state).
pub fn explore(
    cfg: &CheckConfig,
    scenario: impl Fn() -> Result<(), String> + Send + Sync + 'static,
) -> Report {
    let _gate = EXPLORE_GATE.lock().unwrap_or_else(|e| e.into_inner());
    // Controlled threads panic by design (injected ExecError faults,
    // CheckAbort teardown on failing schedules); silence the default
    // hook so an exploration doesn't spam stderr with expected unwinds.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let scenario: Scenario = Arc::new(scenario);
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0u64;
    let mut failure = None;
    let mut exhausted = false;
    loop {
        let out = run_one(cfg, &prefix, &scenario);
        schedules += 1;
        if let Some(message) = out.failure {
            failure = Some(Failure {
                message,
                schedule: schedules,
                trace: out.trace,
            });
            break;
        }
        if schedules >= cfg.max_schedules {
            break;
        }
        // DFS step: deepest decision with an untried alternative.
        let mut next = None;
        for i in (0..out.decisions.len()).rev() {
            let d = &out.decisions[i];
            if d.chosen_idx + 1 < d.candidates.len() {
                let mut p: Vec<usize> = out.decisions[..i].iter().map(|e| e.chosen_idx).collect();
                p.push(d.chosen_idx + 1);
                next = Some(p);
                break;
            }
        }
        match next {
            Some(p) => prefix = p,
            None => {
                exhausted = true;
                break;
            }
        }
    }
    std::panic::set_hook(prev_hook);
    Report {
        schedules,
        exhausted,
        failure,
    }
}

/// Executes one schedule: a fresh controller replaying `prefix`, the
/// scenario on a controlled root thread, and all its spawned threads.
fn run_one(cfg: &CheckConfig, prefix: &[usize], scenario: &Scenario) -> RunOutcome {
    let ctrl = Controller::new(
        prefix.to_vec(),
        cfg.max_preemptions,
        cfg.max_steps,
        cfg.drop_wake,
    );
    let c2 = Arc::clone(&ctrl);
    let scen = Arc::clone(scenario);
    let root = std::thread::Builder::new()
        .name("mpic-check-root".into())
        .spawn(move || {
            sched::install(&c2, 0);
            if c2.thread_begin(0) {
                match catch_unwind(AssertUnwindSafe(|| scen())) {
                    Ok(Ok(())) => {}
                    Ok(Err(msg)) => c2.record_failure(format!("invariant violated: {msg}")),
                    Err(p) => c2.record_panic(0, p),
                }
            }
            c2.thread_exit(0);
        })
        .expect("failed to spawn scenario root thread");
    ctrl.start();
    ctrl.wait_done();
    let _ = root.join();
    ctrl.take_outcome()
}
