//! The deterministic mock scheduler and the `ShimSync` facade
//! implementation.
//!
//! This is the one file in the checker allowed to touch raw `std` sync
//! primitives (mpic-lint L7 allowlists it): the [`Controller`] uses a
//! real mutex + condition variable to cooperatively serialise the
//! *logical* threads of a run — exactly one logical thread executes user
//! code at any moment; every synchronization operation the protocol
//! performs ([`Op`]) is a yield point where the controller picks, from
//! the set of enabled operations, which executes next.
//!
//! # How a run works
//!
//! Controlled threads are real OS threads, but they only run when the
//! controller resumes them. A thread calling a `ShimSync` primitive
//! parks inside [`Controller::yield_op`] with a *pending* operation;
//! the controller's `advance` loop executes pending operations one at a
//! time, recording a [`Decision`] wherever more than one candidate was
//! schedulable. Replaying a run with a longer `prefix` of decision
//! indices steers execution down a different branch — the DFS in
//! `lib.rs` enumerates the whole bounded tree that way.
//!
//! # Pruning and bounding
//!
//! * **Conflict pruning (DPOR-style):** at a decision, the candidate set
//!   is the closure of the default choice under *conflict* — two pending
//!   operations conflict iff they touch the same lock, the same signal,
//!   or one observes the thread performing the other. Operations
//!   independent of everything in the set commute with it, so exploring
//!   their reorderings is redundant and they are not branched on.
//! * **Preemption budget (CHESS-style):** resuming a thread other than
//!   the one that just yielded, while the yielder is still runnable,
//!   costs one unit of a per-run budget; once spent, the scheduler only
//!   continues the current thread. Forced switches (yielder blocked or
//!   finished) are free. Most concurrency bugs manifest within two
//!   preemptions, which keeps the tree small.
//!
//! # Failure handling
//!
//! A deadlock (no enabled operation while unfinished threads remain —
//! this is also how a *lost wakeup* manifests) or an exceeded step
//! budget aborts the run: every parked thread is woken with a
//! [`CheckAbort`] panic payload so it unwinds, and the shim primitives
//! degrade to plain real-lock semantics so `Drop` implementations run
//! to completion and every real thread can be joined.
//!
//! The model is sequentially consistent and wakeups are never spurious:
//! the protocol under test loops on explicit predicates, so neither
//! weakening adds reachable states for the invariants checked here.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::panic::panic_any;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use mpic_machine::sync::SyncPrims;

/// Panic payload used to unwind controlled threads when an exploration
/// aborts. Never escapes the checker: thread wrappers swallow it.
pub struct CheckAbort;

/// One logical operation at a scheduler yield point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// First scheduling of a registered thread.
    Start,
    /// Take lock `.0` (enabled iff unowned).
    Acquire(usize),
    /// Drop lock `.0`.
    Release(usize),
    /// Atomically release `lock`, park on `sig`, re-acquire when woken.
    Wait { sig: usize, lock: usize },
    /// Broadcast-wake every thread parked on signal `.0`.
    WakeAll(usize),
    /// Observe whether thread `.0` has finished.
    Query(usize),
    /// Block until thread `.0` finishes (enabled iff it has).
    Join(usize),
}

fn lock_of(op: Op) -> Option<usize> {
    match op {
        Op::Acquire(l) | Op::Release(l) => Some(l),
        Op::Wait { lock, .. } => Some(lock),
        _ => None,
    }
}

fn sig_of(op: Op) -> Option<usize> {
    match op {
        Op::Wait { sig, .. } => Some(sig),
        Op::WakeAll(s) => Some(s),
        _ => None,
    }
}

fn observed_thread(op: Op) -> Option<usize> {
    match op {
        Op::Query(t) | Op::Join(t) => Some(t),
        _ => None,
    }
}

/// Whether the order of two pending operations (by threads `ta`, `tb`)
/// can matter. Same lock, same signal, or one thread observing the
/// other's liveness → conflict; everything else commutes.
fn conflicts(ta: usize, a: Op, tb: usize, b: Op) -> bool {
    if lock_of(a).is_some() && lock_of(a) == lock_of(b) {
        return true;
    }
    if sig_of(a).is_some() && sig_of(a) == sig_of(b) {
        return true;
    }
    observed_thread(a) == Some(tb) || observed_thread(b) == Some(ta)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    /// Parked at a yield with a pending op; schedulable once enabled.
    Ready,
    /// Resumed: executing user code between yields.
    Running,
    /// Parked in signal `sig`'s waitset; re-locks `lock` when woken.
    Waiting {
        sig: usize,
        lock: usize,
    },
    Finished,
}

struct Th {
    state: TState,
    pending: Option<Op>,
    /// Result slot for the last executed [`Op::Query`].
    answer: bool,
}

impl Th {
    fn fresh() -> Self {
        Self {
            state: TState::Ready,
            pending: Some(Op::Start),
            answer: false,
        }
    }
}

/// A branch point: which candidate operations were schedulable and
/// which one this run took. The DFS increments `chosen_idx` bottom-up.
#[derive(Debug, Clone)]
pub struct Decision {
    pub candidates: Vec<usize>,
    pub chosen_idx: usize,
}

struct Core {
    threads: Vec<Th>,
    lock_owner: Vec<Option<usize>>,
    n_signals: usize,
    /// The logical thread currently executing user code, if any.
    current: Option<usize>,
    /// Decision indices to replay (DFS steering); past its end, take 0.
    prefix: Vec<usize>,
    decisions: Vec<Decision>,
    preemptions: usize,
    steps: usize,
    wakes_seen: u64,
    trace: Vec<(usize, Op)>,
    failure: Option<String>,
    abort: bool,
    done: bool,
}

/// Everything `lib.rs` needs from a completed run.
pub struct RunOutcome {
    pub decisions: Vec<Decision>,
    pub trace: Vec<(usize, Op)>,
    pub failure: Option<String>,
    pub steps: usize,
}

/// The per-run scheduler. One controller drives exactly one schedule;
/// the DFS creates a fresh one per run.
pub struct Controller {
    core: Mutex<Core>,
    cv: Condvar,
    max_preemptions: usize,
    max_steps: usize,
    /// Chaos knob: swallow the n-th [`Op::WakeAll`] broadcast of the run
    /// (0-based), turning it into a lost notification. Used by the
    /// negative tests to prove lost wakeups are caught on the *real*
    /// protocol code.
    drop_wake: Option<u64>,
}

thread_local! {
    /// The controller (and own logical tid) of the current OS thread,
    /// installed by the run driver / spawn wrapper before user code runs.
    static CTRL: RefCell<Option<(Arc<Controller>, usize)>> = const { RefCell::new(None) };
}

/// Binds this OS thread to `ctrl` as logical thread `tid`.
pub fn install(ctrl: &Arc<Controller>, tid: usize) {
    CTRL.with(|c| *c.borrow_mut() = Some((Arc::clone(ctrl), tid)));
}

fn current() -> (Arc<Controller>, usize) {
    CTRL.with(|c| c.borrow().clone())
        .expect("ShimSync primitive used outside a controlled checker thread")
}

impl Controller {
    /// A controller replaying `prefix`, with logical thread 0 (the
    /// scenario root) pre-registered.
    pub fn new(
        prefix: Vec<usize>,
        max_preemptions: usize,
        max_steps: usize,
        drop_wake: Option<u64>,
    ) -> Arc<Self> {
        Arc::new(Self {
            core: Mutex::new(Core {
                threads: vec![Th::fresh()],
                lock_owner: Vec::new(),
                n_signals: 0,
                current: None,
                prefix,
                decisions: Vec::new(),
                preemptions: 0,
                steps: 0,
                wakes_seen: 0,
                trace: Vec::new(),
                failure: None,
                abort: false,
                done: false,
            }),
            cv: Condvar::new(),
            max_preemptions,
            max_steps,
            drop_wake,
        })
    }

    fn lock_core(&self) -> MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn new_lock(&self) -> usize {
        let mut c = self.lock_core();
        c.lock_owner.push(None);
        c.lock_owner.len() - 1
    }

    fn new_signal(&self) -> usize {
        let mut c = self.lock_core();
        c.n_signals += 1;
        c.n_signals - 1
    }

    fn register_thread(&self) -> usize {
        let mut c = self.lock_core();
        c.threads.push(Th::fresh());
        c.threads.len() - 1
    }

    /// Parks the calling logical thread with `op` pending and blocks
    /// until the scheduler has executed it and resumed this thread.
    /// Returns `None` if the run aborted (callers degrade to real-lock
    /// semantics or unwind with [`CheckAbort`], per primitive).
    fn yield_op(&self, tid: usize, op: Op) -> Option<bool> {
        let mut c = self.lock_core();
        if c.abort {
            return None;
        }
        debug_assert_eq!(c.current, Some(tid), "yield from a non-running thread");
        c.current = None;
        c.threads[tid].state = TState::Ready;
        c.threads[tid].pending = Some(op);
        self.advance(&mut c, Some(tid));
        loop {
            if c.abort {
                return None;
            }
            if c.current == Some(tid) {
                return Some(c.threads[tid].answer);
            }
            c = self.cv.wait(c).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn yield_current(&self, op: Op) -> Option<bool> {
        let (ctrl, tid) = current();
        debug_assert!(std::ptr::eq(&*ctrl, self), "controller mixup across runs");
        self.yield_op(tid, op)
    }

    /// Blocks a freshly spawned thread until its [`Op::Start`] is
    /// scheduled. Returns false if the run aborted before that.
    pub fn thread_begin(&self, tid: usize) -> bool {
        let mut c = self.lock_core();
        loop {
            if c.abort {
                return false;
            }
            if c.current == Some(tid) {
                return true;
            }
            c = self.cv.wait(c).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks the calling logical thread finished and hands control to
    /// the scheduler. Termination is modeled as instantaneous after the
    /// thread's last yield (it performs no shared-memory operations in
    /// between), so it is not a branch point of its own.
    pub fn thread_exit(&self, tid: usize) {
        let mut c = self.lock_core();
        c.threads[tid].state = TState::Finished;
        c.threads[tid].pending = None;
        if c.abort {
            if c.threads.iter().all(|t| t.state == TState::Finished) {
                c.done = true;
            }
            self.cv.notify_all();
            return;
        }
        c.current = None;
        self.advance(&mut c, None);
    }

    /// Records a panic that escaped a controlled thread's user code.
    /// [`CheckAbort`] unwinds are the abort mechanism itself and are
    /// ignored; anything else is a protocol-level failure.
    pub fn record_panic(&self, tid: usize, payload: Box<dyn std::any::Any + Send>) {
        if payload.downcast_ref::<CheckAbort>().is_some() {
            return;
        }
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            format!("{payload:?}")
        };
        let mut c = self.lock_core();
        if c.failure.is_none() {
            c.failure = Some(format!("thread {tid} panicked: {msg}"));
        }
        self.cv.notify_all();
    }

    /// Records an invariant violation reported by the scenario itself
    /// (after its pool has been dropped, so no abort is needed).
    pub fn record_failure(&self, msg: String) {
        let mut c = self.lock_core();
        if c.failure.is_none() {
            c.failure = Some(msg);
        }
        self.cv.notify_all();
    }

    /// Kicks off the run: schedules the root thread's [`Op::Start`].
    pub fn start(&self) {
        let mut c = self.lock_core();
        self.advance(&mut c, None);
    }

    /// Blocks the (uncontrolled) driver thread until every logical
    /// thread has finished — normally or by abort unwinding.
    pub fn wait_done(&self) {
        let mut c = self.lock_core();
        while !c.done {
            c = self.cv.wait(c).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Consumes the run's outcome (call after [`Self::wait_done`]).
    pub fn take_outcome(&self) -> RunOutcome {
        let mut c = self.lock_core();
        RunOutcome {
            decisions: std::mem::take(&mut c.decisions),
            trace: std::mem::take(&mut c.trace),
            failure: c.failure.take(),
            steps: c.steps,
        }
    }

    fn op_enabled(c: &Core, op: Op) -> bool {
        match op {
            Op::Acquire(l) => c.lock_owner[l].is_none(),
            Op::Join(t) => c.threads[t].state == TState::Finished,
            _ => true,
        }
    }

    fn fail(&self, c: &mut Core, msg: String) {
        if c.failure.is_none() {
            c.failure = Some(msg);
        }
        c.abort = true;
        if c.threads.iter().all(|t| t.state == TState::Finished) {
            c.done = true;
        }
        self.cv.notify_all();
    }

    /// The candidate set at a branch: preemption-budget-gated, then the
    /// conflict closure of the default choice (see module docs).
    fn candidates(&self, c: &Core, enabled: &[usize], last: Option<usize>) -> Vec<usize> {
        let last_runnable = last.filter(|l| enabled.contains(l));
        if let Some(l) = last_runnable {
            if c.preemptions >= self.max_preemptions {
                return vec![l];
            }
        }
        let default = last_runnable.unwrap_or(enabled[0]);
        let mut set = vec![default];
        loop {
            let mut grew = false;
            for &t in enabled {
                if set.contains(&t) {
                    continue;
                }
                let opt = c.threads[t]
                    .pending
                    .expect("enabled thread without a pending op");
                let hit = set.iter().any(|&s| {
                    conflicts(
                        s,
                        c.threads[s]
                            .pending
                            .expect("candidate without a pending op"),
                        t,
                        opt,
                    )
                });
                if hit {
                    set.push(t);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        set.sort_unstable();
        set
    }

    /// Executes pending operations until a thread is resumed, the run
    /// completes, or it aborts. `last` is the thread that just yielded
    /// (preemption accounting); `None` marks a forced switch.
    fn advance(&self, c: &mut Core, last: Option<usize>) {
        loop {
            if c.threads.iter().all(|t| t.state == TState::Finished) {
                c.done = true;
                self.cv.notify_all();
                return;
            }
            let enabled: Vec<usize> = (0..c.threads.len())
                .filter(|&t| {
                    c.threads[t].state == TState::Ready
                        && c.threads[t]
                            .pending
                            .is_some_and(|op| Self::op_enabled(c, op))
                })
                .collect();
            if enabled.is_empty() {
                let stuck: Vec<String> = c
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.state != TState::Finished)
                    .map(|(i, t)| format!("t{}:{:?}/{:?}", i, t.state, t.pending))
                    .collect();
                self.fail(
                    c,
                    format!("deadlock: no runnable thread [{}]", stuck.join(", ")),
                );
                return;
            }
            let candidates = self.candidates(c, &enabled, last);
            let chosen = if candidates.len() == 1 {
                candidates[0]
            } else {
                let idx = c
                    .prefix
                    .get(c.decisions.len())
                    .copied()
                    .unwrap_or(0)
                    .min(candidates.len() - 1);
                c.decisions.push(Decision {
                    candidates: candidates.clone(),
                    chosen_idx: idx,
                });
                candidates[idx]
            };
            if let Some(l) = last {
                if l != chosen && enabled.contains(&l) {
                    c.preemptions += 1;
                }
            }
            c.steps += 1;
            if c.steps > self.max_steps {
                let budget = self.max_steps;
                self.fail(c, format!("step budget exceeded ({budget})"));
                return;
            }
            let op = c.threads[chosen].pending.take().expect("chosen without op");
            c.trace.push((chosen, op));
            match op {
                Op::Wait { sig, lock } => {
                    debug_assert_eq!(c.lock_owner[lock], Some(chosen));
                    c.lock_owner[lock] = None;
                    c.threads[chosen].state = TState::Waiting { sig, lock };
                    // The waiter is now blocked: pick again (forced).
                    continue;
                }
                Op::Acquire(l) => c.lock_owner[l] = Some(chosen),
                Op::Release(l) => {
                    debug_assert_eq!(c.lock_owner[l], Some(chosen));
                    c.lock_owner[l] = None;
                }
                Op::WakeAll(s) => {
                    let swallowed = self.drop_wake == Some(c.wakes_seen);
                    c.wakes_seen += 1;
                    if !swallowed {
                        for t in 0..c.threads.len() {
                            if let TState::Waiting { sig, lock } = c.threads[t].state {
                                if sig == s {
                                    // Woken: becomes a normal contender
                                    // for the lock it must re-acquire.
                                    c.threads[t].state = TState::Ready;
                                    c.threads[t].pending = Some(Op::Acquire(lock));
                                }
                            }
                        }
                    }
                }
                Op::Query(t) => {
                    c.threads[chosen].answer = c.threads[t].state == TState::Finished;
                }
                Op::Start | Op::Join(_) => {}
            }
            c.threads[chosen].state = TState::Running;
            c.current = Some(chosen);
            self.cv.notify_all();
            return;
        }
    }

    fn aborted(&self) -> bool {
        self.lock_core().abort
    }
}

/// The instrumented [`SyncPrims`] implementation: every primitive is a
/// yield point into the [`Controller`] of the current run. Real `std`
/// mutexes back the data (always uncontended while the logical
/// discipline holds — only the logical owner ever touches them), which
/// keeps the shim free of `unsafe`.
pub struct ShimSync;

/// Shim lock: a logical lock id plus the real storage mutex.
pub struct ShimLock<T> {
    ctrl: Arc<Controller>,
    id: usize,
    data: Mutex<T>,
}

/// Shim guard: logically owns `lock` until dropped.
pub struct ShimGuard<'a, T: Send + 'static> {
    inner: Option<MutexGuard<'a, T>>,
    lock: &'a ShimLock<T>,
}

impl<T: Send + 'static> Deref for ShimGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard used after wait handoff")
    }
}

impl<T: Send + 'static> DerefMut for ShimGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard used after wait handoff")
    }
}

impl<T: Send + 'static> Drop for ShimGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            // Real unlock strictly before the logical release: no other
            // thread can be granted the logical lock (and try the real
            // one) until the Release op below executes.
            drop(g);
            let _ = self.lock.ctrl.yield_current(Op::Release(self.lock.id));
        }
    }
}

/// Shim signal: a logical waitset id.
pub struct ShimSignal {
    ctrl: Arc<Controller>,
    id: usize,
}

/// Shim thread handle: logical tid plus the real join handle.
pub struct ShimThread {
    ctrl: Arc<Controller>,
    tid: usize,
    real: Option<std::thread::JoinHandle<()>>,
}

fn real_lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl SyncPrims for ShimSync {
    type Lock<T: Send + 'static> = ShimLock<T>;
    type Guard<'a, T: Send + 'static> = ShimGuard<'a, T>;
    type Signal = ShimSignal;
    type Thread = ShimThread;

    fn lock_new<T: Send + 'static>(value: T) -> ShimLock<T> {
        let (ctrl, _) = current();
        let id = ctrl.new_lock();
        ShimLock {
            ctrl,
            id,
            data: Mutex::new(value),
        }
    }

    fn lock<T: Send + 'static>(lock: &ShimLock<T>) -> ShimGuard<'_, T> {
        // On abort the logical grant is skipped and the real mutex alone
        // serialises the free-running unwind/Drop code.
        let _ = lock.ctrl.yield_current(Op::Acquire(lock.id));
        ShimGuard {
            inner: Some(real_lock(&lock.data)),
            lock,
        }
    }

    fn signal_new() -> ShimSignal {
        let (ctrl, _) = current();
        let id = ctrl.new_signal();
        ShimSignal { ctrl, id }
    }

    fn wait<'a, T: Send + 'static>(
        signal: &ShimSignal,
        lock: &'a ShimLock<T>,
        mut guard: ShimGuard<'a, T>,
    ) -> ShimGuard<'a, T> {
        // Drop the real guard first so the next logical owner can take
        // the real mutex while this thread parks; clearing `inner`
        // disarms the guard's Drop-side logical release — the Wait op
        // itself releases the logical lock.
        guard.inner = None;
        drop(guard);
        let granted = signal.ctrl.yield_current(Op::Wait {
            sig: signal.id,
            lock: lock.id,
        });
        if granted.is_none() {
            // Aborted while parked: unwind out of the protocol. Never
            // reached from a Drop (pool Drop shuts down via wake+join,
            // not wait), so this cannot double-panic.
            panic_any(CheckAbort);
        }
        ShimGuard {
            inner: Some(real_lock(&lock.data)),
            lock,
        }
    }

    fn wake_all(signal: &ShimSignal) {
        let _ = signal.ctrl.yield_current(Op::WakeAll(signal.id));
    }

    fn spawn(name: String, f: impl FnOnce() + Send + 'static) -> ShimThread {
        let (ctrl, _) = current();
        let tid = ctrl.register_thread();
        let c2 = Arc::clone(&ctrl);
        let real = std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                install(&c2, tid);
                if c2.thread_begin(tid) {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                    if let Err(p) = r {
                        c2.record_panic(tid, p);
                    }
                }
                c2.thread_exit(tid);
            })
            .expect("failed to spawn controlled thread");
        ShimThread {
            ctrl,
            tid,
            real: Some(real),
        }
    }

    fn is_finished(thread: &ShimThread) -> bool {
        match thread.ctrl.yield_current(Op::Query(thread.tid)) {
            Some(answer) => answer,
            // Abort mode: fall back to the real liveness bit.
            None => thread
                .real
                .as_ref()
                .map(|h| h.is_finished())
                .unwrap_or(true),
        }
    }

    fn join(mut thread: ShimThread) {
        // Logical join first (a yield point, enabled once the target
        // finished); aborted runs skip straight to the real join — the
        // target is guaranteed to unwind and exit.
        let _ = thread.ctrl.yield_current(Op::Join(thread.tid));
        if let Some(h) = thread.real.take() {
            let _ = h.join();
        }
    }
}

/// Whether the current run has aborted (used by scenario helpers that
/// must not keep asserting on a torn-down run).
pub fn run_aborted() -> bool {
    current().0.aborted()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_relation_is_symmetric_on_the_op_matrix() {
        let ops = [
            Op::Start,
            Op::Acquire(0),
            Op::Release(0),
            Op::Wait { sig: 0, lock: 0 },
            Op::WakeAll(0),
            Op::Query(1),
            Op::Join(1),
        ];
        for &a in &ops {
            for &b in &ops {
                assert_eq!(
                    conflicts(1, a, 2, b),
                    conflicts(2, b, 1, a),
                    "asymmetric: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn lock_signal_and_liveness_conflicts() {
        // Same lock conflicts; different locks commute.
        assert!(conflicts(1, Op::Acquire(0), 2, Op::Release(0)));
        assert!(!conflicts(1, Op::Acquire(0), 2, Op::Acquire(1)));
        // Wait touches both its signal and its lock.
        assert!(conflicts(
            1,
            Op::Wait { sig: 3, lock: 9 },
            2,
            Op::WakeAll(3)
        ));
        assert!(conflicts(
            1,
            Op::Wait { sig: 3, lock: 9 },
            2,
            Op::Acquire(9)
        ));
        assert!(!conflicts(
            1,
            Op::Wait { sig: 3, lock: 9 },
            2,
            Op::WakeAll(4)
        ));
        // Observing a thread conflicts with anything that thread does.
        assert!(conflicts(1, Op::Query(2), 2, Op::Start));
        assert!(conflicts(1, Op::Join(2), 2, Op::Release(5)));
        assert!(!conflicts(1, Op::Query(3), 2, Op::Start));
        // Independent starts commute.
        assert!(!conflicts(1, Op::Start, 2, Op::Start));
    }
}
