//! `mpic-check` binary: explores the full worker × fault × dispatch
//! matrix and exits non-zero on the first invariant violation.
//!
//! Per configuration it prints the number of schedules explored and
//! whether the bounded tree was exhausted; on a violation it prints the
//! violated invariant and the complete operation trace of the failing
//! schedule, then exits 1. CI runs the release build of this binary as
//! the `model-check` job.
//!
//! Environment knobs (all optional):
//! * `MPIC_CHECK_PREEMPTIONS` — preemption budget per schedule
//!   (default 2).
//! * `MPIC_CHECK_MAX_SCHEDULES` — per-configuration schedule cap
//!   (default 200000; configurations that hit it report `capped`).
//! * `MPIC_CHECK_DROP_WAKE` — swallow the n-th condvar broadcast of
//!   every schedule (chaos mode; the clean matrix is expected to FAIL
//!   under this knob — that is the point).

use mpic_check::{explore, CheckConfig};

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

fn main() {
    let mut cfg = CheckConfig::default();
    if let Some(p) = env_u64("MPIC_CHECK_PREEMPTIONS") {
        cfg.max_preemptions = p as usize;
    }
    if let Some(m) = env_u64("MPIC_CHECK_MAX_SCHEDULES") {
        cfg.max_schedules = m;
    }
    cfg.drop_wake = env_u64("MPIC_CHECK_DROP_WAKE");

    let matrix = mpic_check::scenario::full_matrix();
    let configs = matrix.len();
    println!(
        "mpic-check: {configs} configurations, preemption budget {}, schedule cap {}",
        cfg.max_preemptions, cfg.max_schedules
    );
    let start = std::time::Instant::now();
    let mut total = 0u64;
    let mut failed = false;
    for sc in matrix {
        let report = explore(&cfg, move || sc.run());
        total += report.schedules;
        let status = if report.failure.is_some() {
            "FAILED"
        } else if report.exhausted {
            "ok (exhausted)"
        } else {
            "ok (capped)"
        };
        println!(
            "  {:<34} {:>7} schedules  {}",
            sc.label(),
            report.schedules,
            status
        );
        if let Some(f) = report.failure {
            println!("{f}");
            failed = true;
            break;
        }
    }
    println!(
        "mpic-check: {total} schedules across {configs} configurations in {:.2?}",
        start.elapsed()
    );
    if failed {
        std::process::exit(1);
    }
}
