//! Checked scenarios: the *real* pool protocol driven under the mock
//! scheduler, with the four protocol invariants asserted per schedule.
//!
//! A [`PoolScenario`] instantiates `PoolCore<ShimSync>` — the same
//! generic code production monomorphises as `WorkerPool` — and walks it
//! through `dispatches` broadcasts with an optional injected
//! [`FaultPlan`]. On every schedule it checks:
//!
//! 1. **No deadlock** — implicit: the scheduler fails any schedule in
//!    which unfinished threads have no enabled operation.
//! 2. **No lost wakeup** — a special case of (1): a worker that misses
//!    the dispatch broadcast strands the ack barrier, and a dispatcher
//!    whose completion signal is lost parks forever.
//! 3. **Acks collected exactly once** — after every dispatch the job ran
//!    on each live worker exactly once and the pool is quiescent
//!    (`active == 0`, no job in flight, dispatch counter advanced by
//!    exactly one).
//! 4. **Post-respawn pool indistinguishable from fresh** — after
//!    [`PoolCore::respawn_dead`] repairs a killed worker, a
//!    full-strength dispatch behaves exactly as on a fresh pool.
//!
//! Scenario assertions are reported as `Err(String)` rather than panics
//! so the pool is dropped (and its threads joined) before the failure is
//! recorded — the scheduler stays in control of teardown.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use mpic_machine::exec::{ExecError, FaultKind, FaultPlan, PoolCore};

use crate::sched::{CheckAbort, ShimSync};

/// One configuration of the checked matrix: pool size, dispatch count,
/// optional injected fault.
#[derive(Debug, Clone, Copy)]
pub struct PoolScenario {
    /// Total workers (worker 0 is the dispatching thread).
    pub workers: usize,
    /// Broadcasts to run before the final verification dispatch.
    pub dispatches: u64,
    /// Fault to arm, if any (`fault.dispatch <= dispatches`).
    pub fault: Option<FaultPlan>,
}

impl PoolScenario {
    /// Stable one-line name for reports.
    pub fn label(&self) -> String {
        match self.fault {
            None => format!("w={} d={} fault=none", self.workers, self.dispatches),
            Some(p) => format!(
                "w={} d={} fault={:?}@{}->w{}",
                self.workers, self.dispatches, p.kind, p.dispatch, p.worker
            ),
        }
    }

    /// Runs the scenario once under the current schedule, returning the
    /// first violated invariant.
    pub fn run(&self) -> Result<(), String> {
        let mut pool = PoolCore::<ShimSync>::new(self.workers);
        if let Some(plan) = self.fault {
            pool.inject_fault(plan);
        }
        // (dispatch id, worker id) for every job-closure invocation; a
        // plain real mutex is fine — it is only held between yields.
        let hits: Mutex<Vec<(u64, usize)>> = Mutex::new(Vec::new());
        for d in 1..=self.dispatches {
            let res = guarded(|| {
                pool.broadcast(&|w| hits.lock().unwrap_or_else(|e| e.into_inner()).push((d, w)));
            });
            let fault_here = self.fault.filter(|p| p.dispatch == d);
            match (res, fault_here) {
                (Ok(()), None) => {
                    let want: Vec<usize> = (0..self.workers).collect();
                    let got = round(&hits, d);
                    if got != want {
                        return Err(format!(
                            "dispatch {d}: job ran on workers {got:?}, want each of \
                             {want:?} exactly once"
                        ));
                    }
                }
                (Ok(()), Some(p)) => {
                    return Err(format!("armed fault {p:?} did not fire at dispatch {d}"));
                }
                (Err(payload), fault) => {
                    let Some(e) = ExecError::from_payload(payload.as_ref()).cloned() else {
                        return Err(format!(
                            "dispatch {d} unwound without a structured ExecError"
                        ));
                    };
                    let Some(plan) = fault else {
                        return Err(format!("unexpected ExecError on clean dispatch {d}: {e}"));
                    };
                    if (e.worker, e.dispatch) != (plan.worker, d) {
                        return Err(format!("misattributed fault: got {e}, plan {plan:?}"));
                    }
                    // Every worker except the faulted one must still have
                    // run its share exactly once (the barrier drains).
                    let want: Vec<usize> =
                        (0..self.workers).filter(|&w| w != plan.worker).collect();
                    let got = round(&hits, d);
                    if got != want {
                        return Err(format!(
                            "faulted dispatch {d}: job ran on {got:?}, want {want:?}"
                        ));
                    }
                    self.check_liveness_bookkeeping(&mut pool, plan)?;
                }
            }
            // Invariant 3: quiescent after every dispatch, acks all
            // collected, dispatch counter advanced by exactly one.
            let (_epoch, dispatch, active, job) = pool.protocol_state();
            if active != 0 || job {
                return Err(format!(
                    "not quiescent after dispatch {d}: active={active} job_in_flight={job}"
                ));
            }
            if dispatch != d {
                return Err(format!(
                    "dispatch counter is {dispatch} after dispatch {d} \
                     (refused attempts must not consume ids)"
                ));
            }
        }
        // Invariant 4: one more full-strength dispatch — on a repaired
        // pool this is indistinguishable from a dispatch on a fresh one.
        let d = self.dispatches + 1;
        guarded(|| {
            pool.broadcast(&|w| hits.lock().unwrap_or_else(|e| e.into_inner()).push((d, w)));
        })
        .map_err(|_| "final verification dispatch unwound".to_string())?;
        let want: Vec<usize> = (0..self.workers).collect();
        let got = round(&hits, d);
        if got != want {
            return Err(format!(
                "final dispatch ran on {got:?}, want {want:?} — repaired pool \
                 distinguishable from fresh"
            ));
        }
        let (_epoch, dispatch, active, job) = pool.protocol_state();
        if active != 0 || job || dispatch != d {
            return Err(format!(
                "pool not quiescent after final dispatch: dispatch={dispatch} \
                 active={active} job_in_flight={job}"
            ));
        }
        // Shutdown is part of the schedule too: Drop must wake and join
        // every worker (a hang here is caught as a deadlock).
        drop(pool);
        Ok(())
    }

    /// Post-fault liveness bookkeeping: `Die` on a background worker
    /// must be visible in `dead_workers()`, block dispatches with a
    /// structured refusal, and be repaired by exactly one respawn;
    /// `Panic` (and `Die` on worker 0, which degrades) must leave no
    /// dead workers behind.
    fn check_liveness_bookkeeping(
        &self,
        pool: &mut PoolCore<ShimSync>,
        plan: FaultPlan,
    ) -> Result<(), String> {
        if plan.kind == FaultKind::Die && plan.worker != 0 {
            let dead = pool.dead_workers();
            if dead != vec![plan.worker] {
                return Err(format!(
                    "dead_workers() == {dead:?} after Die on worker {}",
                    plan.worker
                ));
            }
            match guarded(|| pool.broadcast(&|_| {})) {
                Ok(()) => return Err("dispatch on a dead pool was not refused".into()),
                Err(p) => {
                    if ExecError::from_payload(p.as_ref()).is_none() {
                        return Err("dead-pool refusal was not a structured ExecError".into());
                    }
                }
            }
            if pool.respawn_dead() != 1 {
                return Err("respawn_dead() did not replace exactly one worker".into());
            }
            if !pool.dead_workers().is_empty() {
                return Err("dead workers remain after respawn_dead()".into());
            }
        } else {
            let dead = pool.dead_workers();
            if !dead.is_empty() {
                return Err(format!(
                    "dead_workers() == {dead:?} after a {:?} fault that kills no thread",
                    plan.kind
                ));
            }
        }
        Ok(())
    }
}

/// The full checked matrix: 1–3 workers × 1–3 dispatches × (no fault ∪
/// {Panic, Die} × {dispatching thread, last background worker} × every
/// dispatch index). 69 configurations.
pub fn full_matrix() -> Vec<PoolScenario> {
    let mut out = Vec::new();
    for workers in 1..=3usize {
        for dispatches in 1..=3u64 {
            out.push(PoolScenario {
                workers,
                dispatches,
                fault: None,
            });
            // The two qualitatively distinct victims: the dispatching
            // thread (fires on the caller, cannot die) and the last
            // background worker (thread loss + respawn path).
            let mut targets = vec![0];
            if workers > 1 {
                targets.push(workers - 1);
            }
            for kind in [FaultKind::Panic, FaultKind::Die] {
                for &worker in &targets {
                    for dispatch in 1..=dispatches {
                        out.push(PoolScenario {
                            workers,
                            dispatches,
                            fault: Some(FaultPlan {
                                worker,
                                dispatch,
                                kind,
                            }),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Sorted worker ids recorded for dispatch `d` (duplicates preserved, so
/// "exactly once" shows up as an equality mismatch).
fn round(hits: &Mutex<Vec<(u64, usize)>>, d: u64) -> Vec<usize> {
    let mut ws: Vec<usize> = hits
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .filter(|e| e.0 == d)
        .map(|e| e.1)
        .collect();
    ws.sort_unstable();
    ws
}

/// `catch_unwind` that stays transparent to the scheduler's abort
/// mechanism: a [`CheckAbort`] payload keeps unwinding (the scenario's
/// own fault-handling must never swallow a run teardown).
fn guarded<R>(f: impl FnOnce() -> R) -> Result<R, Box<dyn std::any::Any + Send>> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Err(p) if p.downcast_ref::<CheckAbort>().is_some() => resume_unwind(p),
        r => r,
    }
}
