//! Conformance tests for the model checker itself: positive runs over
//! the real pool protocol, determinism of exploration, and — the part
//! that keeps the checker honest — negative tests proving that seeded
//! concurrency bugs (lost wakeup, dropped ack, double ack) are caught.

use std::sync::Arc;

use mpic_check::sched::ShimSync;
use mpic_check::{explore, CheckConfig};
use mpic_machine::exec::{FaultKind, FaultPlan};
use mpic_machine::sync::SyncPrims;

use mpic_check::scenario::PoolScenario;

fn cfg() -> CheckConfig {
    CheckConfig::default()
}

/// conf: the clean small configurations explore >1 schedule (the tree
/// is real), exhaust their bounded tree, and violate no invariant.
#[test]
fn conf_model_check_clean_configs_exhaust_without_violations() {
    for (workers, dispatches) in [(1, 1), (2, 1), (2, 2), (3, 1)] {
        let sc = PoolScenario {
            workers,
            dispatches,
            fault: None,
        };
        let report = explore(&cfg(), move || sc.run());
        assert!(
            report.ok(),
            "{}: {}",
            sc.label(),
            report.failure.map(|f| f.message).unwrap_or_default()
        );
        assert!(report.exhausted, "{}: tree not exhausted", sc.label());
        if workers > 1 {
            assert!(
                report.schedules > 1,
                "{}: expected real branching, got {} schedule",
                sc.label(),
                report.schedules
            );
        }
    }
}

/// conf: fault injection and the death/respawn path hold their
/// invariants on every schedule of the bounded tree.
#[test]
fn conf_model_check_fault_and_respawn_configs_pass() {
    let scenarios = [
        PoolScenario {
            workers: 2,
            dispatches: 1,
            fault: Some(FaultPlan {
                worker: 0,
                dispatch: 1,
                kind: FaultKind::Panic,
            }),
        },
        PoolScenario {
            workers: 2,
            dispatches: 2,
            fault: Some(FaultPlan {
                worker: 1,
                dispatch: 1,
                kind: FaultKind::Die,
            }),
        },
        PoolScenario {
            workers: 3,
            dispatches: 1,
            fault: Some(FaultPlan {
                worker: 2,
                dispatch: 1,
                kind: FaultKind::Die,
            }),
        },
    ];
    for sc in scenarios {
        let report = explore(&cfg(), move || sc.run());
        assert!(
            report.ok(),
            "{}: {}",
            sc.label(),
            report.failure.map(|f| f.message).unwrap_or_default()
        );
        assert!(report.exhausted, "{}: tree not exhausted", sc.label());
    }
}

/// conf: exploration is deterministic — the same scenario explores the
/// same schedules (count and outcome) every time.
#[test]
fn conf_model_check_exploration_is_deterministic() {
    let sc = PoolScenario {
        workers: 2,
        dispatches: 2,
        fault: Some(FaultPlan {
            worker: 1,
            dispatch: 2,
            kind: FaultKind::Die,
        }),
    };
    let a = explore(&cfg(), move || sc.run());
    let b = explore(&cfg(), move || sc.run());
    assert!(a.ok() && b.ok());
    assert_eq!(a.schedules, b.schedules, "schedule count must be stable");
    assert_eq!(a.exhausted, b.exhausted);
}

/// conf: a lost condvar broadcast on the *real* protocol is caught as a
/// deadlock — the checker's chaos knob swallows the n-th wake of every
/// schedule, and some schedule must then strand a parked thread.
#[test]
fn conf_model_check_lost_wakeup_is_caught_as_deadlock() {
    let caught = (0..3).any(|n| {
        let mut c = cfg();
        c.drop_wake = Some(n);
        let sc = PoolScenario {
            workers: 2,
            dispatches: 1,
            fault: None,
        };
        let report = explore(&c, move || sc.run());
        report
            .failure
            .as_ref()
            .is_some_and(|f| f.message.contains("deadlock"))
    });
    assert!(caught, "no dropped wake produced a detected deadlock");
}

/// Seeded bugs for the miniature ack protocol below.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Bug {
    None,
    /// The worker handles the epoch but never acks.
    DropAck,
    /// The worker acks the same epoch twice.
    DoubleAck,
}

struct Mini {
    epoch: u64,
    active: usize,
    shutdown: bool,
}

struct MiniShared {
    state: <ShimSync as SyncPrims>::Lock<Mini>,
    work: <ShimSync as SyncPrims>::Signal,
    done: <ShimSync as SyncPrims>::Signal,
}

/// A deliberately miniaturised copy of the pool's ack barrier, with an
/// optional seeded bug: dispatcher publishes an epoch and waits for
/// `active` to drain; one worker acks it. Exercises the checker's
/// ability to catch ack-accounting bugs in isolation.
fn mini_ack_scenario(bug: Bug) -> Result<(), String> {
    let sh = Arc::new(MiniShared {
        state: ShimSync::lock_new(Mini {
            epoch: 0,
            active: 0,
            shutdown: false,
        }),
        work: ShimSync::signal_new(),
        done: ShimSync::signal_new(),
    });
    let sh2 = Arc::clone(&sh);
    let worker = ShimSync::spawn("mini-worker".into(), move || {
        let mut seen = 0;
        let mut st = ShimSync::lock(&sh2.state);
        loop {
            if st.shutdown {
                return;
            }
            if st.epoch != seen {
                seen = st.epoch;
                match bug {
                    Bug::None => st.active -= 1,
                    Bug::DropAck => {}
                    // Wrapping keeps the double-ack deterministic in
                    // release too: 1 -> 0 -> usize::MAX, so the barrier
                    // never drains.
                    Bug::DoubleAck => {
                        st.active = st.active.wrapping_sub(1);
                        st.active = st.active.wrapping_sub(1);
                    }
                }
                if st.active == 0 {
                    ShimSync::wake_all(&sh2.done);
                }
                continue;
            }
            st = ShimSync::wait(&sh2.work, &sh2.state, st);
        }
    });
    {
        let mut st = ShimSync::lock(&sh.state);
        st.epoch = 1;
        st.active = 1;
        ShimSync::wake_all(&sh.work);
        while st.active > 0 {
            st = ShimSync::wait(&sh.done, &sh.state, st);
        }
        if st.active != 0 {
            return Err(format!("barrier drained to active={}", st.active));
        }
    }
    {
        let mut st = ShimSync::lock(&sh.state);
        st.shutdown = true;
        ShimSync::wake_all(&sh.work);
        drop(st);
    }
    ShimSync::join(worker);
    Ok(())
}

/// conf: the bug-free miniature protocol passes (the harness is not
/// trivially failing), while a dropped ack strands the barrier on some
/// schedule and the checker reports it.
#[test]
fn conf_model_check_dropped_ack_bug_is_caught() {
    let clean = explore(&cfg(), || mini_ack_scenario(Bug::None));
    assert!(
        clean.ok() && clean.exhausted,
        "bug-free mini protocol must pass: {:?}",
        clean.failure.map(|f| f.message)
    );
    let buggy = explore(&cfg(), || mini_ack_scenario(Bug::DropAck));
    let f = buggy.failure.expect("dropped ack must be caught");
    assert!(
        f.message.contains("deadlock"),
        "dropped ack should strand the barrier, got: {}",
        f.message
    );
    assert!(!f.trace.is_empty(), "failure must carry the schedule trace");
}

/// conf: an ack collected twice (barrier under-count) is caught.
#[test]
fn conf_model_check_double_ack_bug_is_caught() {
    let buggy = explore(&cfg(), || mini_ack_scenario(Bug::DoubleAck));
    assert!(
        buggy.failure.is_some(),
        "double ack must be caught (barrier never drains cleanly)"
    );
}

/// conf: the exhaustive matrix entry point agrees with per-scenario
/// exploration — every matrix configuration is well-formed (fault
/// dispatch within range, single worker never targets a background
/// thread).
#[test]
fn conf_model_check_matrix_configs_are_well_formed() {
    let matrix = mpic_check::scenario::full_matrix();
    assert_eq!(matrix.len(), 69);
    for sc in &matrix {
        assert!((1..=3).contains(&sc.workers));
        assert!((1..=3).contains(&sc.dispatches));
        if let Some(p) = sc.fault {
            assert!(p.dispatch >= 1 && p.dispatch <= sc.dispatches);
            assert!(p.worker < sc.workers);
        }
    }
}

/// conf: scenario invariant failures surface through the report (not
/// just scheduler-detected deadlocks): a scenario that always errors is
/// reported with its message on the first schedule.
#[test]
fn conf_model_check_scenario_invariant_errors_are_reported() {
    let report = explore(&cfg(), || Err("synthetic invariant breach".to_string()));
    let f = report.failure.expect("scenario error must be reported");
    assert!(f.message.contains("synthetic invariant breach"));
    assert_eq!(f.schedule, 1);
}

/// conf: the job closure's shared state is visible across controlled
/// threads exactly as under real primitives (the shim stores data in
/// real mutexes; this guards against a shim that forgets to hand the
/// data over).
#[test]
fn conf_model_check_shim_lock_data_round_trips() {
    let report = explore(&cfg(), || {
        let sc = PoolScenario {
            workers: 2,
            dispatches: 1,
            fault: None,
        };
        sc.run()
    });
    assert!(report.ok());
    // `PoolScenario::run` already checks the hits vector; this test
    // additionally checks a raw shim lock round-trip.
    let report = explore(&cfg(), || {
        let l = ShimSync::lock_new(41u32);
        *ShimSync::lock(&l) += 1;
        let v = *ShimSync::lock(&l);
        if v == 42 {
            Ok(())
        } else {
            Err(format!("lock data corrupted: {v}"))
        }
    });
    assert!(report.ok() && report.exhausted);
}
