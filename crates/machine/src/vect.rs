//! The single definition of the host SIMD lane width, plus a minimal
//! fixed-width lane-pack wrapper for the lane-parallel host loops of
//! the batched hot kernels.
//!
//! Everything here is stable Rust: [`Lanes`] is a plain `[f64; W]`
//! new-type whose operations are straight-line per-lane loops the
//! compiler can autovectorize — no unstable `portable_simd` feature, no
//! `std::arch` intrinsics (mpic-lint rule L9 fences both to this file,
//! along with the definitions of the lane-pack and mask types
//! themselves). Kernels that want a lane-parallel inner loop chunk
//! their particles into [`W`]-wide packs, run the packed loop, and
//! finish the ragged tail as one more pack under a partial [`LaneMask`]
//! — the masked load/store/FMA helpers touch only the active lanes, so
//! no scalar remainder loop exists on the hot paths; the README's
//! hot-path section documents the layout and equivalence contract.
//!
//! The wrapper exists for *host* throughput only. Emulated-cost vector
//! state lives in [`crate::VReg`], whose operations charge the cycle
//! model; `Lanes` arithmetic is cost-free by design, because the SIMD
//! execution mode must replicate the scalar mode's charge stream
//! call-for-call (the bit-identity contract covers counters too).

/// Host SIMD lane width, in `f64` lanes, of every lane-parallel hot
/// loop in the workspace — and the **only** place a lane width may be
/// spelled as a numeric literal (mpic-lint rule L9). The emulated
/// machine's [`crate::VLANES`] derives from this constant, as must any
/// kernel-local chunk width: eight f64 lanes is one 512-bit vector
/// register on the modelled LX2 VPU and two-to-four registers on
/// commodity AVX2/NEON hosts, all of which unroll cleanly from the same
/// fixed-width arrays.
pub const W: usize = 8;

/// Which lanes of a pack are active. Tail handling builds prefix masks
/// ([`LaneMask::prefix`]); the representation is a general per-lane
/// bool set so future strided or compacted kernels can mask arbitrary
/// lanes through the same helpers. Inactive lanes are contractually
/// inert: masked loads read zeros into them, masked FMAs leave them
/// untouched, masked stores never write them — so a masked tail pack
/// is bitwise-equivalent to the scalar remainder loop it replaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneMask([bool; W]);

impl LaneMask {
    /// All [`W`] lanes active (the full-pack mask).
    #[inline]
    pub fn all() -> Self {
        LaneMask([true; W])
    }

    /// The first `n` lanes active — the tail mask of a run with
    /// `n = len % W` leftover particles.
    ///
    /// # Panics
    ///
    /// Panics if `n > W`.
    #[inline]
    pub fn prefix(n: usize) -> Self {
        assert!(n <= W, "mask wider than a lane pack");
        let mut m = [false; W];
        m[..n].fill(true);
        LaneMask(m)
    }

    /// Whether lane `l` is active.
    ///
    /// # Panics
    ///
    /// Panics if `l >= W`.
    #[inline]
    pub fn test(&self, l: usize) -> bool {
        self.0[l]
    }

    /// Number of active lanes.
    #[inline]
    pub fn count(&self) -> usize {
        self.0.iter().filter(|&&b| b).count()
    }

    /// Whether every lane is active (lets helpers take the unmasked
    /// fast path, which the compiler vectorizes without per-lane
    /// branches).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.0 == [true; W]
    }

    /// One past the highest active lane (0 when no lane is active):
    /// the minimum slice length a masked load/store may be given.
    #[inline]
    pub fn required_len(&self) -> usize {
        self.0.iter().rposition(|&b| b).map_or(0, |l| l + 1)
    }
}

/// A pack of [`W`] `f64` lanes processed together by a lane-parallel
/// host loop. Plain data: `Lanes(pub [f64; W])`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lanes(pub [f64; W]);

impl Default for Lanes {
    fn default() -> Self {
        Self::zero()
    }
}

impl Lanes {
    /// All-zero pack.
    #[inline]
    pub fn zero() -> Self {
        Lanes([0.0; W])
    }

    /// Broadcasts `x` to all lanes.
    #[inline]
    pub fn splat(x: f64) -> Self {
        Lanes([x; W])
    }

    /// Builds a pack from a slice, zero-padding missing lanes.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() > W`.
    #[inline]
    pub fn from_slice(s: &[f64]) -> Self {
        assert!(s.len() <= W, "slice wider than a lane pack");
        let mut r = [0.0; W];
        r[..s.len()].copy_from_slice(s);
        Lanes(r)
    }

    /// Lane accessor.
    ///
    /// # Panics
    ///
    /// Panics if `l >= W`.
    #[inline]
    pub fn lane(&self, l: usize) -> f64 {
        self.0[l]
    }

    /// Lane-wise `self + a * b` — written as separate multiply and add
    /// (NOT `f64::mul_add`), so every lane reproduces the scalar
    /// reference's round-to-nearest-per-operation results bit for bit.
    #[inline]
    #[must_use]
    pub fn mul_acc(self, a: Lanes, b: Lanes) -> Lanes {
        let mut r = self.0;
        for (l, slot) in r.iter_mut().enumerate() {
            *slot += a.0[l] * b.0[l];
        }
        Lanes(r)
    }

    /// Writes the first `n` lanes to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `n > W` or `dst.len() < n`.
    #[inline]
    pub fn write_to(&self, dst: &mut [f64], n: usize) {
        assert!(n <= W);
        dst[..n].copy_from_slice(&self.0[..n]);
    }

    /// Masked load: lane `l` reads `src[l]` when active, 0.0 when
    /// masked off. A full mask is the plain contiguous load.
    ///
    /// # Panics
    ///
    /// Panics if `src` is shorter than the mask's
    /// [`LaneMask::required_len`].
    #[inline]
    pub fn load_masked(src: &[f64], mask: LaneMask) -> Self {
        if mask.is_full() {
            let mut r = [0.0; W];
            r.copy_from_slice(&src[..W]);
            return Lanes(r);
        }
        assert!(
            src.len() >= mask.required_len(),
            "masked load past the source slice"
        );
        let mut r = [0.0; W];
        for (l, slot) in r.iter_mut().enumerate() {
            if mask.test(l) {
                *slot = src[l];
            }
        }
        Lanes(r)
    }

    /// Masked store: lane `l` writes `dst[l]` when active; masked-off
    /// lanes leave `dst` untouched. A full mask is the plain
    /// contiguous store.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is shorter than the mask's
    /// [`LaneMask::required_len`].
    #[inline]
    pub fn store_masked(&self, dst: &mut [f64], mask: LaneMask) {
        if mask.is_full() {
            dst[..W].copy_from_slice(&self.0);
            return;
        }
        assert!(
            dst.len() >= mask.required_len(),
            "masked store past the destination slice"
        );
        for (l, &v) in self.0.iter().enumerate() {
            if mask.test(l) {
                dst[l] = v;
            }
        }
    }

    /// Masked lane-wise `self + a * b`: active lanes run the same
    /// unfused multiply-then-add as [`Lanes::mul_acc`] (bitwise equal
    /// to the scalar reference), masked-off lanes pass `self` through
    /// unchanged.
    #[inline]
    #[must_use]
    pub fn mul_acc_masked(self, a: Lanes, b: Lanes, mask: LaneMask) -> Lanes {
        if mask.is_full() {
            return self.mul_acc(a, b);
        }
        let mut r = self.0;
        for (l, slot) in r.iter_mut().enumerate() {
            if mask.test(l) {
                *slot += a.0[l] * b.0[l];
            }
        }
        Lanes(r)
    }

    /// Lane-wise square root. IEEE-754 `sqrt` is correctly rounded, so
    /// each lane is bitwise the scalar `f64::sqrt` of its input — the
    /// lane-parallel Boris push leans on this for its two Lorentz
    /// factors.
    #[inline]
    #[must_use]
    pub fn sqrt(self) -> Lanes {
        let mut r = self.0;
        for v in &mut r {
            *v = v.sqrt();
        }
        Lanes(r)
    }
}

impl std::ops::Add for Lanes {
    type Output = Lanes;

    /// Lane-wise `self + rhs`.
    #[inline]
    fn add(self, rhs: Lanes) -> Lanes {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(rhs.0) {
            *a += b;
        }
        Lanes(r)
    }
}

impl std::ops::Sub for Lanes {
    type Output = Lanes;

    /// Lane-wise `self - rhs`.
    #[inline]
    fn sub(self, rhs: Lanes) -> Lanes {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(rhs.0) {
            *a -= b;
        }
        Lanes(r)
    }
}

impl std::ops::Mul for Lanes {
    type Output = Lanes;

    /// Lane-wise `self * rhs`.
    #[inline]
    fn mul(self, rhs: Lanes) -> Lanes {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(rhs.0) {
            *a *= b;
        }
        Lanes(r)
    }
}

impl std::ops::Div for Lanes {
    type Output = Lanes;

    /// Lane-wise `self / rhs`. IEEE-754 division is correctly rounded,
    /// so each lane is bitwise the scalar quotient of its inputs.
    #[inline]
    fn div(self, rhs: Lanes) -> Lanes {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(rhs.0) {
            *a /= b;
        }
        Lanes(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_width_matches_the_emulated_vpu() {
        // `VLANES` is derived, not duplicated: one definition site.
        assert_eq!(crate::VLANES, W);
    }

    #[test]
    fn from_slice_zero_pads_the_tail() {
        let l = Lanes::from_slice(&[1.0, 2.0]);
        assert_eq!(l.lane(0), 1.0);
        assert_eq!(l.lane(1), 2.0);
        assert_eq!(l.lane(W - 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "wider than a lane pack")]
    fn from_slice_rejects_oversized_input() {
        let wide = vec![0.0; W + 1];
        let _ = Lanes::from_slice(&wide);
    }

    #[test]
    fn arithmetic_is_per_lane_and_unfused() {
        let a = Lanes::splat(0.1);
        let b = Lanes::splat(0.2);
        let s = a + b;
        let p = a * b;
        // Bitwise the same as the scalar expression, lane by lane.
        assert_eq!(s.lane(3), 0.1 + 0.2);
        assert_eq!(p.lane(7), 0.1 * 0.2);
        let acc = Lanes::splat(1.0).mul_acc(a, b);
        assert_eq!(acc.lane(0), 1.0 + 0.1 * 0.2);
    }

    #[test]
    fn write_to_copies_exactly_n_lanes() {
        let l = Lanes::splat(4.0);
        let mut dst = [0.0; 3];
        l.write_to(&mut dst, 3);
        assert_eq!(dst, [4.0; 3]);
    }

    #[test]
    fn sub_div_sqrt_match_scalar_bitwise() {
        let a = Lanes::splat(0.3);
        let b = Lanes::splat(0.7);
        assert_eq!((a - b).lane(2).to_bits(), (0.3f64 - 0.7).to_bits());
        assert_eq!((a / b).lane(5).to_bits(), (0.3f64 / 0.7).to_bits());
        assert_eq!(b.sqrt().lane(0).to_bits(), 0.7f64.sqrt().to_bits());
    }

    #[test]
    fn prefix_mask_shape() {
        let m = LaneMask::prefix(3);
        assert_eq!(m.count(), 3);
        assert_eq!(m.required_len(), 3);
        assert!(m.test(0) && m.test(2) && !m.test(3));
        assert!(!m.is_full());
        assert!(LaneMask::prefix(W).is_full());
        assert_eq!(LaneMask::all(), LaneMask::prefix(W));
        assert_eq!(LaneMask::prefix(0).count(), 0);
        assert_eq!(LaneMask::prefix(0).required_len(), 0);
    }

    #[test]
    #[should_panic(expected = "wider than a lane pack")]
    fn prefix_mask_rejects_oversized_width() {
        let _ = LaneMask::prefix(W + 1);
    }

    #[test]
    fn masked_load_zeroes_inactive_lanes() {
        let src = [1.0, 2.0, 3.0];
        let l = Lanes::load_masked(&src, LaneMask::prefix(3));
        assert_eq!(l.lane(1), 2.0);
        assert_eq!(l.lane(3), 0.0);
        assert_eq!(l.lane(W - 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "masked load past the source slice")]
    fn masked_load_rejects_short_source() {
        let src = [1.0, 2.0];
        let _ = Lanes::load_masked(&src, LaneMask::prefix(3));
    }

    #[test]
    fn masked_store_leaves_inactive_slots_untouched() {
        // The destination may be exactly the tail's length: the masked
        // store must never touch slots past the active lanes.
        let mut dst = [9.0, 9.0, 9.0];
        Lanes::splat(1.5).store_masked(&mut dst, LaneMask::prefix(2));
        assert_eq!(dst, [1.5, 1.5, 9.0]);
    }

    #[test]
    fn masked_mul_acc_matches_unmasked_on_active_lanes() {
        let acc = Lanes::splat(1.0);
        let a = Lanes::splat(0.1);
        let b = Lanes::splat(0.2);
        let full = acc.mul_acc(a, b);
        let masked = acc.mul_acc_masked(a, b, LaneMask::prefix(3));
        for l in 0..W {
            let want = if l < 3 { full.lane(l) } else { 1.0 };
            assert_eq!(masked.lane(l).to_bits(), want.to_bits(), "lane {l}");
        }
        // Full masks take the unmasked path bit-for-bit.
        let via_full_mask = acc.mul_acc_masked(a, b, LaneMask::all());
        assert_eq!(via_full_mask, full);
    }
}
