//! The single definition of the host SIMD lane width, plus a minimal
//! fixed-width lane-pack wrapper for the lane-parallel host loops of
//! the batched hot kernels.
//!
//! Everything here is stable Rust: [`Lanes`] is a plain `[f64; W]`
//! new-type whose operations are straight-line per-lane loops the
//! compiler can autovectorize — no unstable `portable_simd` feature, no
//! `std::arch` intrinsics (mpic-lint rule L9 fences both to this file).
//! Kernels that want a lane-parallel inner loop chunk their particles
//! into [`W`]-wide packs, run the packed loop, and finish with a scalar
//! remainder loop over the ragged tail; the README's hot-path section
//! documents the layout and equivalence contract.
//!
//! The wrapper exists for *host* throughput only. Emulated-cost vector
//! state lives in [`crate::VReg`], whose operations charge the cycle
//! model; `Lanes` arithmetic is cost-free by design, because the SIMD
//! execution mode must replicate the scalar mode's charge stream
//! call-for-call (the bit-identity contract covers counters too).

/// Host SIMD lane width, in `f64` lanes, of every lane-parallel hot
/// loop in the workspace — and the **only** place a lane width may be
/// spelled as a numeric literal (mpic-lint rule L9). The emulated
/// machine's [`crate::VLANES`] derives from this constant, as must any
/// kernel-local chunk width: eight f64 lanes is one 512-bit vector
/// register on the modelled LX2 VPU and two-to-four registers on
/// commodity AVX2/NEON hosts, all of which unroll cleanly from the same
/// fixed-width arrays.
pub const W: usize = 8;

/// A pack of [`W`] `f64` lanes processed together by a lane-parallel
/// host loop. Plain data: `Lanes(pub [f64; W])`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lanes(pub [f64; W]);

impl Default for Lanes {
    fn default() -> Self {
        Self::zero()
    }
}

impl Lanes {
    /// All-zero pack.
    #[inline]
    pub fn zero() -> Self {
        Lanes([0.0; W])
    }

    /// Broadcasts `x` to all lanes.
    #[inline]
    pub fn splat(x: f64) -> Self {
        Lanes([x; W])
    }

    /// Builds a pack from a slice, zero-padding missing lanes.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() > W`.
    #[inline]
    pub fn from_slice(s: &[f64]) -> Self {
        assert!(s.len() <= W, "slice wider than a lane pack");
        let mut r = [0.0; W];
        r[..s.len()].copy_from_slice(s);
        Lanes(r)
    }

    /// Lane accessor.
    ///
    /// # Panics
    ///
    /// Panics if `l >= W`.
    #[inline]
    pub fn lane(&self, l: usize) -> f64 {
        self.0[l]
    }

    /// Lane-wise `self + a * b` — written as separate multiply and add
    /// (NOT `f64::mul_add`), so every lane reproduces the scalar
    /// reference's round-to-nearest-per-operation results bit for bit.
    #[inline]
    #[must_use]
    pub fn mul_acc(self, a: Lanes, b: Lanes) -> Lanes {
        let mut r = self.0;
        for (l, slot) in r.iter_mut().enumerate() {
            *slot += a.0[l] * b.0[l];
        }
        Lanes(r)
    }

    /// Writes the first `n` lanes to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `n > W` or `dst.len() < n`.
    #[inline]
    pub fn write_to(&self, dst: &mut [f64], n: usize) {
        assert!(n <= W);
        dst[..n].copy_from_slice(&self.0[..n]);
    }
}

impl std::ops::Add for Lanes {
    type Output = Lanes;

    /// Lane-wise `self + rhs`.
    #[inline]
    fn add(self, rhs: Lanes) -> Lanes {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(rhs.0) {
            *a += b;
        }
        Lanes(r)
    }
}

impl std::ops::Mul for Lanes {
    type Output = Lanes;

    /// Lane-wise `self * rhs`.
    #[inline]
    fn mul(self, rhs: Lanes) -> Lanes {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(rhs.0) {
            *a *= b;
        }
        Lanes(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_width_matches_the_emulated_vpu() {
        // `VLANES` is derived, not duplicated: one definition site.
        assert_eq!(crate::VLANES, W);
    }

    #[test]
    fn from_slice_zero_pads_the_tail() {
        let l = Lanes::from_slice(&[1.0, 2.0]);
        assert_eq!(l.lane(0), 1.0);
        assert_eq!(l.lane(1), 2.0);
        assert_eq!(l.lane(W - 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "wider than a lane pack")]
    fn from_slice_rejects_oversized_input() {
        let wide = vec![0.0; W + 1];
        let _ = Lanes::from_slice(&wide);
    }

    #[test]
    fn arithmetic_is_per_lane_and_unfused() {
        let a = Lanes::splat(0.1);
        let b = Lanes::splat(0.2);
        let s = a + b;
        let p = a * b;
        // Bitwise the same as the scalar expression, lane by lane.
        assert_eq!(s.lane(3), 0.1 + 0.2);
        assert_eq!(p.lane(7), 0.1 * 0.2);
        let acc = Lanes::splat(1.0).mul_acc(a, b);
        assert_eq!(acc.lane(0), 1.0 + 0.1 * 0.2);
    }

    #[test]
    fn write_to_copies_exactly_n_lanes() {
        let l = Lanes::splat(4.0);
        let mut dst = [0.0; 3];
        l.write_to(&mut dst, 3);
        assert_eq!(dst, [4.0; 3]);
    }
}
