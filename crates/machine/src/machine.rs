//! The emulated LX2 core: scalar pipe, VPU, MPU and memory system behind a
//! single mutable facade.
//!
//! Kernels call instruction-shaped methods (`v_fma`, `v_gather`, `t_mopa`,
//! ...). Each method performs the real arithmetic on host data *and*
//! charges the cost model, so a kernel is simultaneously its own functional
//! implementation and its own performance model. The currently active
//! [`Phase`] determines which counter bucket receives the cycles, matching
//! the per-phase breakdowns of the paper's Tables 1 and 2.

use crate::cost::MachineConfig;
use crate::counters::{MachineCounters, PerfCounters, Phase};
use crate::mem::{MemSystem, VAddr};
use crate::vreg::{VMask, VReg, VLANES};

/// Identifier of an MPU tile register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileId(pub usize);

/// Number of architecturally visible MPU tile registers.
pub const NUM_TILES: usize = 4;

/// The emulated core.
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: MachineConfig,
    ctr: PerfCounters,
    mem: MemSystem,
    phase: Phase,
    /// Multiplier applied to arithmetic-op charges; >1 models code the
    /// compiler auto-vectorises poorly (see
    /// [`MachineConfig::autovec_efficiency`]).
    throughput_penalty: f64,
    tiles: [[[f64; VLANES]; VLANES]; NUM_TILES],
}

impl Machine {
    /// Builds a machine from a configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        assert_eq!(
            cfg.mpu_dim, VLANES,
            "the emulator models an 8x8 MPU tile matching the VPU width"
        );
        let mem = MemSystem::new(cfg.l1, cfg.l2, cfg.l1_hit_cy, cfg.l2_hit_cy, cfg.dram_cy);
        Self {
            cfg,
            ctr: PerfCounters::new(),
            mem,
            phase: Phase::Other,
            throughput_penalty: 1.0,
            tiles: [[[0.0; VLANES]; VLANES]; NUM_TILES],
        }
    }

    /// Forks a worker machine for parallel tile execution: same
    /// configuration and virtual address space (so shared [`VAddr`]s stay
    /// valid), but zeroed counters, a flushed cache and neutral execution
    /// state. Workers charge their private counters and hand them back per
    /// tile via [`Machine::drain_counters`]; the orchestrator merges them
    /// into the main machine with [`Machine::absorb_counters`] in tile
    /// order, keeping totals bit-identical for any worker count.
    pub fn fork_worker(&self) -> Machine {
        let mut w = self.clone();
        w.ctr = PerfCounters::new();
        w.mem.flush_cache();
        let _ = w.mem.take_stats();
        w.phase = Phase::Other;
        w.throughput_penalty = 1.0;
        w.tiles = [[[0.0; VLANES]; VLANES]; NUM_TILES];
        w
    }

    /// Takes (and zeroes) everything this machine has accumulated since
    /// the last drain: per-phase cycles, instruction counts and cache
    /// statistics.
    pub fn drain_counters(&mut self) -> MachineCounters {
        let (l1, l2, streamed_misses, random_misses) = self.mem.take_stats();
        MachineCounters {
            perf: std::mem::take(&mut self.ctr),
            l1,
            l2,
            streamed_misses,
            random_misses,
        }
    }

    /// Merges a drained worker counter set into this machine's totals.
    /// Purely additive: the cache's behavioural state is untouched.
    pub fn absorb_counters(&mut self, c: &MachineCounters) {
        self.ctr.merge(&c.perf);
        self.mem
            .absorb_stats(&c.l1, &c.l2, c.streamed_misses, c.random_misses);
    }

    /// The machine configuration.
    pub fn cfg(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Read access to the counters.
    pub fn counters(&self) -> &PerfCounters {
        &self.ctr
    }

    /// Mutable access to the counters (the harness uses this to credit
    /// canonical useful FLOPs, and tests to reset).
    pub fn counters_mut(&mut self) -> &mut PerfCounters {
        &mut self.ctr
    }

    /// The memory system (for allocation and cache statistics).
    pub fn mem(&mut self) -> &mut MemSystem {
        &mut self.mem
    }

    /// Shared (read-only) view of the memory system, for non-mutating
    /// inspection — checkpointing reads the allocator mark and cache
    /// state through this without perturbing the machine.
    pub fn mem_ref(&self) -> &MemSystem {
        &self.mem
    }

    /// The current arithmetic throughput penalty (see
    /// [`Machine::set_throughput_penalty`]).
    pub fn throughput_penalty(&self) -> f64 {
        self.throughput_penalty
    }

    /// Resets the transient execution state — phase, throughput penalty
    /// and MPU tile registers — to the post-construction values. Used by
    /// snapshot restore: tile registers and the penalty are dead between
    /// steps (kernels run on worker forks and re-establish both), so the
    /// construction values are the canonical step-boundary state.
    pub fn reset_execution_state(&mut self) {
        self.phase = Phase::Other;
        self.throughput_penalty = 1.0;
        self.tiles = [[[0.0; VLANES]; VLANES]; NUM_TILES];
    }

    /// Sets the phase that subsequent charges are attributed to.
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    /// Currently active phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Runs `f` with the given phase active, restoring the previous phase.
    pub fn in_phase<R>(&mut self, phase: Phase, f: impl FnOnce(&mut Machine) -> R) -> R {
        let prev = self.phase;
        self.phase = phase;
        let r = f(self);
        self.phase = prev;
        r
    }

    /// Sets the arithmetic throughput penalty (1.0 = hand-tuned
    /// intrinsics; `1.0 / autovec_efficiency` = compiler auto-vectorised).
    pub fn set_throughput_penalty(&mut self, penalty: f64) {
        assert!(penalty >= 1.0, "penalty is a slowdown multiplier");
        self.throughput_penalty = penalty;
    }

    /// Convenience: applies the configured auto-vectorisation penalty.
    pub fn use_autovec_model(&mut self) {
        self.throughput_penalty = 1.0 / self.cfg.autovec_efficiency;
    }

    /// Restores hand-tuned throughput.
    pub fn use_intrinsics_model(&mut self) {
        self.throughput_penalty = 1.0;
    }

    /// Charges raw cycles to the active phase (used by coarse-grained
    /// instrumentation in the solver and pusher).
    pub fn charge(&mut self, cycles: f64) {
        self.ctr.add_cycles(self.phase, cycles);
    }

    /// Records FLOPs executed without charging cycles (paired with
    /// [`Machine::charge`] by coarse-grained instrumentation).
    pub fn record_flops(&mut self, flops: f64) {
        self.ctr.flops_issued += flops;
    }

    fn charge_arith(&mut self, base_cy: f64, flops: f64) {
        self.ctr
            .add_cycles(self.phase, base_cy * self.throughput_penalty);
        self.ctr.flops_issued += flops;
    }

    // ------------------------------------------------------------------
    // Scalar pipe
    // ------------------------------------------------------------------

    /// Scalar fused multiply-add `a*b + c`.
    pub fn s_fma(&mut self, a: f64, b: f64, c: f64) -> f64 {
        self.ctr.scalar_ops += 1;
        self.charge_arith(self.cfg.scalar_arith_cy, 2.0);
        a.mul_add(b, c)
    }

    /// Scalar multiply.
    pub fn s_mul(&mut self, a: f64, b: f64) -> f64 {
        self.ctr.scalar_ops += 1;
        self.charge_arith(self.cfg.scalar_arith_cy, 1.0);
        a * b
    }

    /// Scalar add.
    pub fn s_add(&mut self, a: f64, b: f64) -> f64 {
        self.ctr.scalar_ops += 1;
        self.charge_arith(self.cfg.scalar_arith_cy, 1.0);
        a + b
    }

    /// Charges `n` generic scalar ALU operations (address math, compares).
    pub fn s_ops(&mut self, n: usize) {
        self.ctr.scalar_ops += n as u64;
        self.ctr.add_cycles(
            self.phase,
            self.cfg.scalar_arith_cy * n as f64 * self.throughput_penalty,
        );
    }

    /// Scalar load of `bytes` at `addr` (data itself lives in host arrays).
    pub fn s_load(&mut self, addr: VAddr, bytes: u64) {
        let cy = self.mem.access(addr, bytes);
        self.ctr.add_cycles(self.phase, cy);
    }

    /// Scalar store of `bytes` at `addr`.
    pub fn s_store(&mut self, addr: VAddr, bytes: u64) {
        let cy = self.mem.access(addr, bytes);
        self.ctr.add_cycles(self.phase, cy);
    }

    // ------------------------------------------------------------------
    // VPU
    // ------------------------------------------------------------------

    /// Broadcasts a scalar to all lanes.
    pub fn v_splat(&mut self, x: f64) -> VReg {
        self.ctr.vector_ops += 1;
        self.charge_arith(self.cfg.vpu_arith_cy, 0.0);
        VReg::splat(x)
    }

    /// Lane-wise addition.
    pub fn v_add(&mut self, a: VReg, b: VReg) -> VReg {
        self.ctr.vector_ops += 1;
        self.charge_arith(self.cfg.vpu_arith_cy, VLANES as f64);
        let mut r = VReg::zero();
        for i in 0..VLANES {
            r.0[i] = a.0[i] + b.0[i];
        }
        r
    }

    /// Lane-wise subtraction.
    pub fn v_sub(&mut self, a: VReg, b: VReg) -> VReg {
        self.ctr.vector_ops += 1;
        self.charge_arith(self.cfg.vpu_arith_cy, VLANES as f64);
        let mut r = VReg::zero();
        for i in 0..VLANES {
            r.0[i] = a.0[i] - b.0[i];
        }
        r
    }

    /// Lane-wise multiplication.
    pub fn v_mul(&mut self, a: VReg, b: VReg) -> VReg {
        self.ctr.vector_ops += 1;
        self.charge_arith(self.cfg.vpu_arith_cy, VLANES as f64);
        let mut r = VReg::zero();
        for i in 0..VLANES {
            r.0[i] = a.0[i] * b.0[i];
        }
        r
    }

    /// Lane-wise fused multiply-add `a*b + c`.
    pub fn v_fma(&mut self, a: VReg, b: VReg, c: VReg) -> VReg {
        self.ctr.vector_ops += 1;
        self.charge_arith(self.cfg.vpu_arith_cy, 2.0 * VLANES as f64);
        let mut r = VReg::zero();
        for i in 0..VLANES {
            r.0[i] = a.0[i].mul_add(b.0[i], c.0[i]);
        }
        r
    }

    /// Lane-wise floor (used for cell-index computation).
    pub fn v_floor(&mut self, a: VReg) -> VReg {
        self.ctr.vector_ops += 1;
        self.charge_arith(self.cfg.vpu_arith_cy, VLANES as f64);
        let mut r = VReg::zero();
        for i in 0..VLANES {
            r.0[i] = a.0[i].floor();
        }
        r
    }

    /// Lane-wise compare `a < b`.
    pub fn v_cmp_lt(&mut self, a: VReg, b: VReg) -> VMask {
        self.ctr.vector_ops += 1;
        self.charge_arith(self.cfg.vpu_arith_cy, 0.0);
        let mut m = VMask::none();
        for i in 0..VLANES {
            m.0[i] = a.0[i] < b.0[i];
        }
        m
    }

    /// Lane-wise compare `a != b`.
    pub fn v_cmp_ne(&mut self, a: VReg, b: VReg) -> VMask {
        self.ctr.vector_ops += 1;
        self.charge_arith(self.cfg.vpu_arith_cy, 0.0);
        let mut m = VMask::none();
        for i in 0..VLANES {
            m.0[i] = a.0[i] != b.0[i];
        }
        m
    }

    /// Lane-wise select: `mask ? a : b`.
    pub fn v_select(&mut self, mask: VMask, a: VReg, b: VReg) -> VReg {
        self.ctr.vector_ops += 1;
        self.charge_arith(self.cfg.vpu_arith_cy, 0.0);
        let mut r = VReg::zero();
        for i in 0..VLANES {
            r.0[i] = if mask.0[i] { a.0[i] } else { b.0[i] };
        }
        r
    }

    /// Horizontal sum of a register (log2(VLANES) shuffle+add steps).
    pub fn v_reduce_add(&mut self, a: VReg) -> f64 {
        // VLANES is a power of two, so this is exactly log2(VLANES).
        let steps = VLANES.trailing_zeros() as u64;
        self.ctr.vector_ops += steps;
        self.charge_arith(self.cfg.vpu_arith_cy * steps as f64, (VLANES - 1) as f64);
        a.sum()
    }

    /// Contiguous vector load of up to [`VLANES`] values from `src`,
    /// zero-padding the tail.
    pub fn v_load(&mut self, addr: VAddr, src: &[f64]) -> VReg {
        let n = src.len().min(VLANES);
        let cy = self.mem.access(addr, (n * 8) as u64);
        self.ctr.add_cycles(self.phase, cy);
        self.ctr.vector_ops += 1;
        VReg::from_slice(&src[..n])
    }

    /// Contiguous vector store of the first `n` lanes into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `n > VLANES` or `dst.len() < n`.
    pub fn v_store(&mut self, addr: VAddr, reg: VReg, dst: &mut [f64], n: usize) {
        assert!(n <= VLANES);
        let cy = self.mem.access(addr, (n * 8) as u64);
        self.ctr.add_cycles(self.phase, cy);
        self.ctr.vector_ops += 1;
        dst[..n].copy_from_slice(&reg.0[..n]);
    }

    // ------------------------------------------------------------------
    // State-free streaming prices (the `SimConfig::simd` hot paths)
    // ------------------------------------------------------------------
    //
    // The lane-parallel mode prices its memory traffic as *streams*, not
    // as individual cache transactions: wide accesses issued back to
    // back overlap their fills like an established prefetch stream, so
    // each spanned line charges its share of sustained bandwidth
    // (`simd_stream_line_cy`, further overlapped by `GATHER_MLP` for
    // read streams) instead of a latency that depends on what happens to
    // be resident. The charge is a pure function of the address stream —
    // no cache-simulator state is read or written — which both prices
    // the mode's deep out-of-order overlap and keeps every SIMD charge
    // bit-reproducible from the tile data alone.

    /// Number of cache lines spanned by `[addr, addr + bytes)` — the
    /// address-only counterpart of a cache access, used by the
    /// state-free streaming prices.
    fn lines_spanned(&self, addr: VAddr, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let shift = self.mem.line_shift();
        ((addr.0 + bytes - 1) >> shift) - (addr.0 >> shift) + 1
    }

    /// Roofline crossover of the state-free streaming price: the
    /// per-line cost of streaming from an operand array whose total byte
    /// span is `footprint`. A sweep over an array that fits in L1
    /// (`footprint <= stream_crossover_bytes`) is bandwidth-bound on the
    /// **L1** side of the roofline — every line it revisits is a hit —
    /// so it pays `resident_line_cy` per line instead of the DRAM stream
    /// price. `footprint == 0` means "unknown" and keeps the
    /// conservative DRAM-stream price. The `min` guarantees the
    /// crossover only ever *lowers* a price (a misdeclared footprint can
    /// never make a phase dearer), and the price stays a pure function
    /// of the call operands — no cache state is consulted.
    fn stream_line_price(&self, footprint: u64) -> f64 {
        if footprint > 0 && footprint <= self.cfg.stream_crossover_bytes {
            self.cfg.simd_stream_line_cy.min(self.cfg.resident_line_cy)
        } else {
            self.cfg.simd_stream_line_cy
        }
    }

    /// Contiguous vector load at the state-free streaming price
    /// (functional twin of [`Machine::v_load`] for the SIMD hot paths).
    /// `footprint` is the byte span of the whole source array for the
    /// roofline crossover ([`Machine::stream_line_price`]); pass 0 when
    /// unknown.
    pub fn v_load_streamed(&mut self, addr: VAddr, src: &[f64], footprint: u64) -> VReg {
        let n = src.len().min(VLANES);
        let cy = Self::GATHER_MLP
            * self.stream_line_price(footprint)
            * self.lines_spanned(addr, (n * 8) as u64) as f64;
        self.ctr.add_cycles(self.phase, cy);
        self.ctr.vector_ops += 1;
        VReg::from_slice(&src[..n])
    }

    /// Contiguous vector store at the state-free streaming price
    /// (functional twin of [`Machine::v_store`]): write-combining
    /// buffers retire back-to-back wide stores at stream bandwidth, so
    /// stores get the same overlap discount as read streams. `footprint`
    /// is the destination array's byte span for the roofline crossover;
    /// pass 0 when unknown.
    ///
    /// # Panics
    ///
    /// Panics if `n > VLANES` or `dst.len() < n`.
    pub fn v_store_streamed(
        &mut self,
        addr: VAddr,
        reg: VReg,
        dst: &mut [f64],
        n: usize,
        footprint: u64,
    ) {
        assert!(n <= VLANES);
        let cy = Self::GATHER_MLP
            * self.stream_line_price(footprint)
            * self.lines_spanned(addr, (n * 8) as u64) as f64;
        self.ctr.add_cycles(self.phase, cy);
        self.ctr.vector_ops += 1;
        dst[..n].copy_from_slice(&reg.0[..n]);
    }

    /// Cost-only contiguous vector load at the state-free streaming
    /// price (twin of [`Machine::v_touch_load`]). `footprint` as in
    /// [`Machine::v_load_streamed`].
    pub fn v_touch_load_streamed(&mut self, addr: VAddr, lanes: usize, footprint: u64) {
        let cy = Self::GATHER_MLP
            * self.stream_line_price(footprint)
            * self.lines_spanned(addr, (lanes.min(VLANES) * 8) as u64) as f64;
        self.ctr.add_cycles(self.phase, cy);
        self.ctr.vector_ops += 1;
    }

    /// Cost-only indexed gather at the state-free streaming price (twin
    /// of [`Machine::v_touch_gather`]): per-lane issue cost plus each
    /// distinct line at the overlapped stream price. `footprint` as in
    /// [`Machine::v_load_streamed`].
    pub fn v_touch_gather_streamed(&mut self, base: VAddr, idx: &[usize], footprint: u64) {
        self.ctr.vector_ops += 1;
        let take = idx.len().min(VLANES);
        let shift = self.mem.line_shift();
        let mut lines = [0u64; VLANES];
        let mut n = 0usize;
        'lanes: for &i in &idx[..take] {
            let l = base.offset_f64(i).0 >> shift;
            for &seen in &lines[..n] {
                if seen == l {
                    continue 'lanes;
                }
            }
            lines[n] = l;
            n += 1;
        }
        let cy = self.cfg.gather_lane_cy * take as f64
            + Self::GATHER_MLP * self.stream_line_price(footprint) * n as f64;
        self.ctr.add_cycles(self.phase, cy);
    }

    /// Memory-level-parallelism factor of the gather unit: the per-line
    /// miss latencies of one gather overlap, so only this fraction of
    /// each line's cost is charged (scatters, being read-modify-write,
    /// get no such discount).
    const GATHER_MLP: f64 = 0.15;

    /// Memory cost of a hardware gather: one cache access per *distinct
    /// line* touched (the gather unit coalesces same-line lanes), with
    /// miss latencies overlapped by [`Self::GATHER_MLP`], plus the
    /// per-lane issue penalty.
    fn gather_mem_cost(&mut self, base: VAddr, idx: &[usize]) -> f64 {
        let line = self.mem.line_bytes();
        let shift = self.mem.line_shift();
        // A gather touches at most VLANES distinct lines: dedup into a
        // stack buffer (no heap traffic on this very hot path), then
        // visit lines in ascending order as the coalescing unit would.
        let mut lines = [0u64; VLANES];
        let mut n = 0usize;
        'lanes: for &i in idx {
            let l = base.offset_f64(i).0 >> shift;
            for &seen in &lines[..n] {
                if seen == l {
                    continue 'lanes;
                }
            }
            lines[n] = l;
            n += 1;
        }
        lines[..n].sort_unstable();
        let mut cy = self.cfg.gather_lane_cy * idx.len() as f64;
        for &l in &lines[..n] {
            cy += Self::GATHER_MLP * self.mem.access(VAddr(l * line), 1);
        }
        cy
    }

    /// Indexed gather: lane `l` reads `src[idx[l]]`. Charges one cache
    /// access per distinct line plus the per-lane gather penalty.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() > VLANES` or any index is out of bounds.
    pub fn v_gather(&mut self, base: VAddr, idx: &[usize], src: &[f64]) -> VReg {
        assert!(idx.len() <= VLANES);
        self.ctr.vector_ops += 1;
        let mut r = VReg::zero();
        for (l, &i) in idx.iter().enumerate() {
            r.0[l] = src[i];
        }
        let cy = self.gather_mem_cost(base, idx);
        self.ctr.add_cycles(self.phase, cy);
        r
    }

    /// Indexed scatter-add: lane `l` performs `dst[idx[l]] += reg[l]`.
    ///
    /// Duplicate indices within the vector are handled correctly (all
    /// contributions land) but charge the conflict-serialisation penalty
    /// of equation 2 in the paper: each lane beyond the first targeting
    /// the same element costs `conflict_lane_cy` extra.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() > VLANES` or any index is out of bounds.
    pub fn v_scatter_add(&mut self, base: VAddr, idx: &[usize], reg: VReg, dst: &mut [f64]) {
        assert!(idx.len() <= VLANES);
        for (l, &i) in idx.iter().enumerate() {
            dst[i] += reg.0[l];
        }
        self.charge_scatter_add(base, idx);
    }

    /// Charges an indexed scatter-add's memory, issue and conflict cost
    /// without writing data (cost-only mirror of
    /// [`Machine::v_scatter_add`]). Used when the functional accumulation
    /// is applied separately — e.g. the parallel rhocell reduction, where
    /// workers price the scatter stream per tile while the actual grid
    /// writes happen in a deterministic fixed-order pass.
    pub fn v_touch_scatter_add(&mut self, base: VAddr, idx: &[usize]) {
        assert!(idx.len() <= VLANES);
        self.charge_scatter_add(base, idx);
    }

    fn charge_scatter_add(&mut self, base: VAddr, idx: &[usize]) {
        self.ctr.vector_ops += 1;
        let mut cy = 0.0;
        for (l, &i) in idx.iter().enumerate() {
            cy += self.mem.access(base.offset_f64(i), 8) + self.cfg.gather_lane_cy;
            // Conflict detection: lanes before `l` hitting the same index.
            let conflicts = idx[..l].iter().filter(|&&j| j == i).count();
            if conflicts > 0 {
                cy += self.cfg.conflict_lane_cy;
            }
        }
        self.ctr.flops_issued += idx.len() as f64;
        self.ctr.add_cycles(self.phase, cy);
    }

    /// Charges a contiguous vector load's issue and memory cost without
    /// returning data. Used when a kernel's functional values are already
    /// staged but the address stream must still be priced (e.g. replaying
    /// the load pattern of a preprocessing loop).
    pub fn v_touch_load(&mut self, addr: VAddr, lanes: usize) {
        let cy = self.mem.access(addr, (lanes.min(VLANES) * 8) as u64);
        self.ctr.add_cycles(self.phase, cy);
        self.ctr.vector_ops += 1;
    }

    /// Charges a contiguous vector store (cost-only mirror of
    /// [`Machine::v_store`]).
    pub fn v_touch_store(&mut self, addr: VAddr, lanes: usize) {
        let cy = self.mem.access(addr, (lanes.min(VLANES) * 8) as u64);
        self.ctr.add_cycles(self.phase, cy);
        self.ctr.vector_ops += 1;
    }

    /// Charges an indexed gather's memory and issue cost (cost-only
    /// mirror of [`Machine::v_gather`]).
    pub fn v_touch_gather(&mut self, base: VAddr, idx: &[usize]) {
        self.ctr.vector_ops += 1;
        let take = idx.len().min(VLANES);
        let cy = self.gather_mem_cost(base, &idx[..take]);
        self.ctr.add_cycles(self.phase, cy);
    }

    /// Maximum elements of one run-scoped block touch (a QSP stencil
    /// block: 4^3 nodes).
    pub const RUN_BLOCK_MAX: usize = 64;

    /// Run-scoped gather touch: charges loading an index block of up to
    /// [`Machine::RUN_BLOCK_MAX`] elements from `base` with **each
    /// distinct cache line charged once** — the memory stream of a
    /// kernel that loads a cell's stencil node block into registers once
    /// per same-cell particle run and reuses it for every particle of
    /// the run. Per-lane gather issue cost is still paid per element;
    /// line misses overlap under the same memory-level parallelism as
    /// [`Machine::v_touch_gather`], whose per-vector semantics this
    /// generalises beyond [`VLANES`] lanes.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() > RUN_BLOCK_MAX`.
    pub fn v_touch_gather_block(&mut self, base: VAddr, idx: &[usize]) {
        assert!(
            idx.len() <= Self::RUN_BLOCK_MAX,
            "block exceeds RUN_BLOCK_MAX"
        );
        if idx.is_empty() {
            return;
        }
        self.ctr.vector_ops += idx.len().div_ceil(VLANES) as u64;
        let line = self.mem.line_bytes();
        let shift = self.mem.line_shift();
        // Stack-resident line dedup: collect, sort, visit distinct lines
        // ascending (the order the coalescing unit would).
        let mut lines = [0u64; Self::RUN_BLOCK_MAX];
        let n = Self::collect_lines(&mut lines, base, idx, shift);
        let mut cy = self.cfg.gather_lane_cy * idx.len() as f64;
        let mut prev = u64::MAX;
        for &l in &lines[..n] {
            if l != prev {
                cy += Self::GATHER_MLP * self.mem.access(VAddr(l * line), 1);
                prev = l;
            }
        }
        self.ctr.add_cycles(self.phase, cy);
    }

    /// Reuse-aware run-scoped gather touch — the SIMD hot path's pricing
    /// of consecutive same-tile runs. Like
    /// [`Machine::v_touch_gather_block`] it charges per distinct cache
    /// line of the block, with two differences that together are what
    /// the lane-parallel mode buys:
    ///
    /// * lines already covered by `prev_idx` (the preceding run's
    ///   stencil block, which the kernel keeps resident in lane
    ///   registers) are priced as register rotations — no memory
    ///   transaction at all. Sorted input visits adjacent cells, whose
    ///   stencils overlap node for node, so most of a run's block load
    ///   collapses;
    /// * each *new* line is charged the state-free streaming price
    ///   (`GATHER_MLP x` the crossover line price,
    ///   [`Machine::stream_line_price`]) instead of a cache walk: the
    ///   block loads of consecutive runs form a dense ascending sweep of
    ///   the tile's field arrays, exactly the access shape the stream
    ///   prefetcher services at bandwidth. `footprint` declares one
    ///   field array's byte span so L1-resident grids cross over to the
    ///   resident line price (0 = unknown, DRAM stream). The charge is a
    ///   pure function of `(base, idx, prev_idx, footprint)`.
    ///
    /// Per-lane gather issue cost is still paid for every element of
    /// `idx` — address generation does not amortise.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len()` or `prev_idx.len()` exceeds
    /// [`Machine::RUN_BLOCK_MAX`].
    pub fn v_touch_gather_block_reuse(
        &mut self,
        base: VAddr,
        idx: &[usize],
        prev_idx: &[usize],
        footprint: u64,
    ) {
        assert!(
            idx.len() <= Self::RUN_BLOCK_MAX && prev_idx.len() <= Self::RUN_BLOCK_MAX,
            "block exceeds RUN_BLOCK_MAX"
        );
        if idx.is_empty() {
            return;
        }
        self.ctr.vector_ops += idx.len().div_ceil(VLANES) as u64;
        let shift = self.mem.line_shift();
        let mut cur = [0u64; Self::RUN_BLOCK_MAX];
        let cur_n = Self::collect_lines(&mut cur, base, idx, shift);
        let mut prev = [0u64; Self::RUN_BLOCK_MAX];
        let prev_n = Self::collect_lines(&mut prev, base, prev_idx, shift);
        let mut cy = self.cfg.gather_lane_cy * idx.len() as f64;
        let new_line_cy = Self::GATHER_MLP * self.stream_line_price(footprint);
        let mut p = 0usize;
        let mut last = u64::MAX;
        for &l in &cur[..cur_n] {
            if l == last {
                continue;
            }
            last = l;
            while p < prev_n && prev[p] < l {
                p += 1;
            }
            if p < prev_n && prev[p] == l {
                continue; // Register-resident from the previous run.
            }
            cy += new_line_cy;
        }
        self.ctr.add_cycles(self.phase, cy);
    }

    /// [`Machine::v_touch_gather_block_reuse`] over several equally
    /// line-aligned arrays sharing one node list — the SIMD run gather's
    /// six field components. When every base is congruent modulo the
    /// line size (the allocator returns line-aligned arrays, so this is
    /// the ubiquitous case), each array's line set is the first array's
    /// shifted by a whole number of lines: the dedup/merge result is
    /// identical, so it is computed once and the per-array charge —
    /// bitwise the same accumulation the per-array calls would make — is
    /// replayed for each base. Incongruent bases fall back to the exact
    /// per-array walk. Host-side fast path only; counters and cycles are
    /// bit-identical to six separate calls either way.
    ///
    /// # Panics
    ///
    /// Same contract as [`Machine::v_touch_gather_block_reuse`].
    pub fn v_touch_gather_block_reuse_multi(
        &mut self,
        bases: &[VAddr],
        idx: &[usize],
        prev_idx: &[usize],
        footprint: u64,
    ) {
        assert!(
            idx.len() <= Self::RUN_BLOCK_MAX && prev_idx.len() <= Self::RUN_BLOCK_MAX,
            "block exceeds RUN_BLOCK_MAX"
        );
        if idx.is_empty() || bases.is_empty() {
            return;
        }
        let line = self.mem.line_bytes();
        if !bases.iter().all(|b| b.0 % line == bases[0].0 % line) {
            for &b in bases {
                self.v_touch_gather_block_reuse(b, idx, prev_idx, footprint);
            }
            return;
        }
        let shift = self.mem.line_shift();
        let mut cur = [0u64; Self::RUN_BLOCK_MAX];
        let cur_n = Self::collect_lines(&mut cur, bases[0], idx, shift);
        let mut prev = [0u64; Self::RUN_BLOCK_MAX];
        let prev_n = Self::collect_lines(&mut prev, bases[0], prev_idx, shift);
        // The same merge walk as the single-array call, accumulating the
        // identical `cy` one new line at a time (a multiply-by-count
        // could round differently).
        let mut cy = self.cfg.gather_lane_cy * idx.len() as f64;
        let new_line_cy = Self::GATHER_MLP * self.stream_line_price(footprint);
        let mut p = 0usize;
        let mut last = u64::MAX;
        for &l in &cur[..cur_n] {
            if l == last {
                continue;
            }
            last = l;
            while p < prev_n && prev[p] < l {
                p += 1;
            }
            if p < prev_n && prev[p] == l {
                continue; // Register-resident from the previous run.
            }
            cy += new_line_cy;
        }
        for _ in bases {
            self.ctr.vector_ops += idx.len().div_ceil(VLANES) as u64;
            self.ctr.add_cycles(self.phase, cy);
        }
    }

    /// Fills `buf` with the (sorted, possibly duplicated) cache-line ids
    /// of `base[idx]`; callers skip duplicates while walking ascending.
    /// Stencil node lists arrive ascending except for cells straddling a
    /// periodic wrap, so the sort is skipped when a single pass confirms
    /// the order (the common case on the hot path). `shift` is
    /// `log2(line_bytes)` ([`MemModel::line_shift`]): the shift is the
    /// exact power-of-two division, minus the per-node hardware divide.
    fn collect_lines(
        buf: &mut [u64; Self::RUN_BLOCK_MAX],
        base: VAddr,
        idx: &[usize],
        shift: u32,
    ) -> usize {
        let mut sorted = true;
        let mut last = 0u64;
        for (slot, &i) in buf.iter_mut().zip(idx) {
            let l = base.offset_f64(i).0 >> shift;
            sorted &= l >= last;
            last = l;
            *slot = l;
        }
        if !sorted {
            buf[..idx.len()].sort_unstable();
        }
        idx.len()
    }

    /// Fused rhocell→grid reduction touch: charges folding one cell's
    /// per-node source vectors into up to three scattered destination
    /// components in a **single traversal** of the node list, instead of
    /// one sweep per component. The fusion is what the SIMD reduction
    /// path buys, and this mirror is how the emulated cost model sees
    /// it:
    ///
    /// * per-lane scatter address generation (`gather_lane_cy`) is paid
    ///   **once** across all components — the node indices are shared,
    ///   so the fused loop computes each address a single time where the
    ///   per-component sweeps recompute it per component;
    /// * each component's contiguous source slice is still streamed in
    ///   [`VLANES`]-wide chunks (the rhocell layout is dense per cell),
    ///   priced per spanned line at the state-free streaming cost with
    ///   read-stream overlap;
    /// * each component's **distinct destination cache lines** are
    ///   charged one full stream-line cost each — read-modify-write
    ///   traffic gets no overlap discount, but a line shared by several
    ///   stencil nodes is touched once instead of once per node.
    ///
    /// Like every SIMD-mode price, the charge is a pure function of the
    /// call's inputs: no cache-simulator state is read or written.
    ///
    /// `srcs[k]`/`dsts[k]` pair component `k`'s contiguous source base
    /// with its scattered destination base; passing fewer than three
    /// pairs prices a partial-component fold. `idx` holds the
    /// destination offsets shared by every component. Empty `idx` is
    /// free.
    ///
    /// # Panics
    ///
    /// Panics if `srcs.len() != dsts.len()`, if no components are given,
    /// or if `idx.len() > RUN_BLOCK_MAX`.
    pub fn v_touch_reduce_block(&mut self, srcs: &[VAddr], dsts: &[VAddr], idx: &[usize]) {
        self.v_touch_reduce_block_reuse(srcs, dsts, idx, &[], 0, 0);
    }

    /// Reuse-aware variant of [`Machine::v_touch_reduce_block`]: the SIMD
    /// reduction sweeps a tile's cells in order, and consecutive cells'
    /// stencils overlap — destination cache lines already folded by the
    /// preceding cell (`prev_idx`, its node list) still sit in the store
    /// buffer, so the lane-parallel kernel merges into them without a
    /// fresh read-modify-write transaction. Those lines charge nothing;
    /// every other line is priced by the state-free streaming model (an
    /// empty `prev_idx` is bitwise identical to the plain fused reduce).
    /// Callers must only pass `prev_idx` when the preceding fold covered
    /// the same components; the contiguous per-cell source streams never
    /// reuse (each cell owns its slice).
    ///
    /// `src_footprint`/`dst_footprint` declare the byte spans of one
    /// source array and one destination array for the roofline crossover
    /// ([`Machine::stream_line_price`]); pass 0 when unknown.
    ///
    /// # Panics
    ///
    /// Same contract as [`Machine::v_touch_reduce_block`], plus
    /// `prev_idx.len() <= RUN_BLOCK_MAX`.
    pub fn v_touch_reduce_block_reuse(
        &mut self,
        srcs: &[VAddr],
        dsts: &[VAddr],
        idx: &[usize],
        prev_idx: &[usize],
        src_footprint: u64,
        dst_footprint: u64,
    ) {
        assert_eq!(
            srcs.len(),
            dsts.len(),
            "source/destination component lists must pair up"
        );
        assert!(!srcs.is_empty(), "reduce needs at least one component");
        assert!(
            idx.len() <= Self::RUN_BLOCK_MAX && prev_idx.len() <= Self::RUN_BLOCK_MAX,
            "block exceeds RUN_BLOCK_MAX"
        );
        if idx.is_empty() {
            return;
        }
        let comps = srcs.len();
        self.ctr.vector_ops += (comps * idx.len().div_ceil(VLANES)) as u64;
        // Shared address generation: one lane penalty per node, not per
        // node per component.
        let mut cy = self.cfg.gather_lane_cy * idx.len() as f64;
        // Contiguous source streams, one per component: the rhocell
        // layout keeps each cell's node slice dense, and the cell sweep
        // walks those slices in ascending order — a textbook stream,
        // charged per spanned line with read-stream overlap.
        let src_line_cy = Self::GATHER_MLP * self.stream_line_price(src_footprint);
        for &src in srcs {
            let mut node = 0;
            while node < idx.len() {
                let n = (idx.len() - node).min(VLANES);
                cy += src_line_cy * self.lines_spanned(src.offset_f64(node), (n * 8) as u64) as f64;
                node += n;
            }
        }
        // Scattered destinations: each distinct new line once per
        // component at the full stream cost — read-modify-write traffic
        // gets no read-overlap discount — unless the preceding cell's
        // fold left the line in the store buffer.
        let line = self.mem.line_bytes();
        let shift = self.mem.line_shift();
        let dst_line_cy = self.stream_line_price(dst_footprint);
        // Component arrays are line-aligned allocations, so their line
        // sets differ by whole lines and every component sees the same
        // number of new lines: walk the merge once and replay the
        // per-line adds per component (the adds must stay one-at-a-time
        // — a multiply could round differently). Incongruent bases take
        // the exact per-component walk.
        let congruent = dsts.iter().all(|d| d.0 % line == dsts[0].0 % line);
        let mut shared_new = 0usize;
        for (k, &dst) in dsts.iter().enumerate() {
            let new = if congruent && k > 0 {
                shared_new
            } else {
                let mut lines = [0u64; Self::RUN_BLOCK_MAX];
                let n = Self::collect_lines(&mut lines, dst, idx, shift);
                let mut prev_lines = [0u64; Self::RUN_BLOCK_MAX];
                let prev_n = Self::collect_lines(&mut prev_lines, dst, prev_idx, shift);
                let mut p = 0usize;
                let mut last = u64::MAX;
                let mut new = 0usize;
                for &l in &lines[..n] {
                    if l == last {
                        continue;
                    }
                    last = l;
                    while p < prev_n && prev_lines[p] < l {
                        p += 1;
                    }
                    if p < prev_n && prev_lines[p] == l {
                        continue; // Store-buffer resident from the last fold.
                    }
                    new += 1;
                }
                shared_new = new;
                new
            };
            for _ in 0..new {
                cy += dst_line_cy;
            }
        }
        self.ctr.flops_issued += (comps * idx.len()) as f64;
        self.ctr.add_cycles(self.phase, cy);
    }

    /// Charges `n` generic vector ALU operations without data (companion
    /// of [`Machine::s_ops`] for modelled vector instruction streams).
    pub fn v_ops(&mut self, n: usize) {
        self.ctr.vector_ops += n as u64;
        self.charge_arith(self.cfg.vpu_arith_cy * n as f64, (n * VLANES) as f64);
    }

    /// Charges the issue cost of `n` vector memory instructions whose
    /// data is cache-blocked scratch (staging buffers processed in
    /// L1-resident blocks): no cache simulation, no FLOPs — just pipeline
    /// occupancy.
    pub fn v_issue(&mut self, n: usize) {
        self.ctr.vector_ops += n as u64;
        self.ctr.add_cycles(
            self.phase,
            self.cfg.vpu_arith_cy * n as f64 * self.throughput_penalty,
        );
    }

    // ------------------------------------------------------------------
    // MPU
    // ------------------------------------------------------------------

    /// Zeroes an MPU tile register.
    pub fn t_zero(&mut self, tile: TileId) {
        self.ctr
            .add_cycles(self.phase, self.cfg.tile_zero_cy * self.throughput_penalty);
        self.tiles[tile.0] = [[0.0; VLANES]; VLANES];
    }

    /// MOPA: `C += a (x) b`, the full 8x8 rank-1 update of equation 3.
    ///
    /// The instruction always charges the full tile (128 FLOPs issued);
    /// utilisation of the tile by *useful* work is exactly what the paper's
    /// CIC (25%) vs QSP (50%) analysis is about.
    pub fn t_mopa(&mut self, tile: TileId, a: VReg, b: VReg) {
        self.ctr.mopa_ops += 1;
        self.charge_arith(self.cfg.mopa_cy, (VLANES * VLANES * 2) as f64);
        let t = &mut self.tiles[tile.0];
        for i in 0..VLANES {
            if a.0[i] == 0.0 {
                continue; // Arithmetic shortcut only; cost already charged.
            }
            for j in 0..VLANES {
                t[i][j] = a.0[i].mul_add(b.0[j], t[i][j]);
            }
        }
    }

    /// Reads one tile row into a VPU register (charged as MPU->VPU
    /// transfer; this is the data-movement cost the paper identifies as
    /// the gap between anticipated and observed speedup).
    pub fn t_read_row(&mut self, tile: TileId, row: usize) -> VReg {
        assert!(row < VLANES);
        self.ctr.tile_transfers += 1;
        self.ctr.add_cycles(
            self.phase,
            self.cfg.tile_row_xfer_cy * self.throughput_penalty,
        );
        VReg(self.tiles[tile.0][row])
    }

    /// Direct tile inspection for tests (cost-free).
    pub fn tile_value(&self, tile: TileId, row: usize, col: usize) -> f64 {
        self.tiles[tile.0][row][col]
    }

    /// Seconds corresponding to the cycles charged so far.
    pub fn elapsed_seconds(&self) -> f64 {
        self.cfg.cycles_to_seconds(self.ctr.total_cycles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(MachineConfig::lx2())
    }

    #[test]
    fn vector_arithmetic_is_exact() {
        let mut m = machine();
        let a = VReg::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = m.v_splat(2.0);
        let c = m.v_fma(a, b, a);
        for i in 0..VLANES {
            assert_eq!(c.lane(i), (i + 1) as f64 * 3.0);
        }
    }

    #[test]
    fn phases_receive_charges() {
        let mut m = machine();
        m.set_phase(Phase::Sort);
        m.s_ops(10);
        assert!(m.counters().cycles(Phase::Sort) > 0.0);
        assert_eq!(m.counters().cycles(Phase::Compute), 0.0);
    }

    #[test]
    fn in_phase_restores_previous() {
        let mut m = machine();
        m.set_phase(Phase::Push);
        m.in_phase(Phase::Reduce, |m| m.s_ops(1));
        assert_eq!(m.phase(), Phase::Push);
        assert!(m.counters().cycles(Phase::Reduce) > 0.0);
    }

    #[test]
    fn mopa_accumulates_outer_product() {
        let mut m = machine();
        let a = VReg::from_slice(&[1.0, 2.0]);
        let b = VReg::from_slice(&[3.0, 4.0, 5.0]);
        m.t_zero(TileId(0));
        m.t_mopa(TileId(0), a, b);
        m.t_mopa(TileId(0), a, b);
        assert_eq!(m.tile_value(TileId(0), 0, 0), 6.0);
        assert_eq!(m.tile_value(TileId(0), 1, 2), 20.0);
        assert_eq!(m.tile_value(TileId(0), 3, 3), 0.0);
        assert_eq!(m.counters().mopa_ops, 2);
    }

    #[test]
    fn mopa_charges_full_tile_flops() {
        let mut m = machine();
        let a = VReg::from_slice(&[1.0]);
        let b = VReg::from_slice(&[1.0]);
        m.t_mopa(TileId(0), a, b);
        // 8x8 FMAs = 128 FLOPs issued regardless of operand sparsity.
        assert_eq!(m.counters().flops_issued, 128.0);
    }

    #[test]
    fn scatter_add_handles_duplicates() {
        let mut m = machine();
        let base = m.mem().alloc_f64(4);
        let mut dst = vec![0.0; 4];
        let r = VReg::from_slice(&[1.0, 2.0, 4.0]);
        m.v_scatter_add(base, &[1, 1, 3], r, &mut dst);
        assert_eq!(dst, vec![0.0, 3.0, 0.0, 4.0]);
    }

    #[test]
    fn scatter_conflicts_cost_more() {
        let cfg = MachineConfig::lx2();
        let mut no_conflict = Machine::new(cfg.clone());
        let mut conflict = Machine::new(cfg);
        let b1 = no_conflict.mem().alloc_f64(8);
        let b2 = conflict.mem().alloc_f64(8);
        let r = VReg::splat(1.0);
        let mut d1 = vec![0.0; 8];
        let mut d2 = vec![0.0; 8];
        no_conflict.v_scatter_add(b1, &[0, 1, 2, 3, 4, 5, 6, 7], r, &mut d1);
        conflict.v_scatter_add(b2, &[0, 0, 0, 0, 0, 0, 0, 0], r, &mut d2);
        assert!(
            conflict.counters().total_cycles() > no_conflict.counters().total_cycles(),
            "full-conflict scatter must be slower"
        );
        assert_eq!(d2[0], 8.0);
    }

    #[test]
    fn gather_reads_indexed_elements() {
        let mut m = machine();
        let base = m.mem().alloc_f64(10);
        let src: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let r = m.v_gather(base, &[9, 0, 5], &src);
        assert_eq!(r.lane(0), 9.0);
        assert_eq!(r.lane(1), 0.0);
        assert_eq!(r.lane(2), 5.0);
        assert_eq!(r.lane(3), 0.0);
    }

    #[test]
    fn autovec_penalty_slows_arith() {
        let cfg = MachineConfig::lx2();
        let mut tuned = Machine::new(cfg.clone());
        let mut autovec = Machine::new(cfg);
        autovec.use_autovec_model();
        let a = VReg::splat(1.0);
        for _ in 0..100 {
            tuned.v_fma(a, a, a);
            autovec.v_fma(a, a, a);
        }
        assert!(autovec.counters().total_cycles() > tuned.counters().total_cycles());
    }

    #[test]
    fn reduce_add_sums_lanes() {
        let mut m = machine();
        let r = VReg::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.v_reduce_add(r), 10.0);
    }

    #[test]
    fn cache_locality_visible_through_loads() {
        let mut m = machine();
        let base = m.mem().alloc_f64(8);
        let src = vec![1.0; 8];
        m.set_phase(Phase::Compute);
        m.v_load(base, &src);
        let cold = m.counters().cycles(Phase::Compute);
        m.v_load(base, &src);
        let warm = m.counters().cycles(Phase::Compute) - cold;
        assert!(warm < cold, "second load must hit cache");
    }

    #[test]
    fn elapsed_seconds_scales_with_clock() {
        let mut m = machine();
        m.charge(1.3e9);
        assert!((m.elapsed_seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fork_worker_starts_clean_and_shares_addresses() {
        let mut m = machine();
        let base = m.mem().alloc_f64(64);
        m.set_phase(Phase::Compute);
        m.s_ops(100);
        let mut w = m.fork_worker();
        assert_eq!(w.counters().total_cycles(), 0.0, "fork has zero cycles");
        assert_eq!(w.phase(), Phase::Other);
        // Allocations continue past the parent's, never aliasing.
        let next = w.mem().alloc_f64(8);
        assert!(next.0 >= base.0 + 64 * 8);
    }

    #[test]
    fn drain_and_absorb_round_trip() {
        let mut m = machine();
        let mut w = m.fork_worker();
        w.set_phase(Phase::Reduce);
        let base = w.mem().alloc_f64(8);
        w.s_load(base, 64);
        w.s_ops(4);
        let c = w.drain_counters();
        assert_eq!(
            w.counters().total_cycles(),
            0.0,
            "drain must zero the worker"
        );
        assert!(c.perf.cycles(Phase::Reduce) > 0.0);
        assert_eq!(c.l1.misses + c.l2.misses + c.random_misses, 3); // cold miss at each level
        let before = m.counters().total_cycles();
        m.absorb_counters(&c);
        assert_eq!(m.counters().total_cycles(), before + c.perf.total_cycles());
        assert!(m.mem().l1_stats().misses > 0, "stats absorbed into main");
    }

    #[test]
    fn touch_scatter_add_matches_real_scatter_cost() {
        let cfg = MachineConfig::lx2();
        let mut real = Machine::new(cfg.clone());
        let mut touch = Machine::new(cfg);
        let b1 = real.mem().alloc_f64(16);
        let b2 = touch.mem().alloc_f64(16);
        let idx = [0usize, 3, 3, 9];
        let mut dst = vec![0.0; 16];
        real.v_scatter_add(b1, &idx, VReg::splat(1.0), &mut dst);
        touch.v_touch_scatter_add(b2, &idx);
        assert_eq!(
            real.counters().total_cycles(),
            touch.counters().total_cycles()
        );
        assert_eq!(real.counters().flops_issued, touch.counters().flops_issued);
        assert_eq!(real.counters().vector_ops, touch.counters().vector_ops);
    }

    #[test]
    fn touch_gather_block_matches_vector_gather_for_one_vector() {
        // For <= VLANES indices the block touch charges the same formula
        // as the per-vector gather (per-lane issue + one MLP-discounted
        // access per distinct line), so the two are interchangeable at
        // vector width.
        let cfg = MachineConfig::lx2();
        let mut vec = Machine::new(cfg.clone());
        let mut block = Machine::new(cfg);
        let b1 = vec.mem().alloc_f64(1024);
        let b2 = block.mem().alloc_f64(1024);
        let idx = [0usize, 1, 9, 64, 65, 200, 201, 3];
        vec.v_touch_gather(b1, &idx);
        block.v_touch_gather_block(b2, &idx);
        assert_eq!(
            vec.counters().total_cycles().to_bits(),
            block.counters().total_cycles().to_bits()
        );
    }

    #[test]
    fn touch_gather_block_charges_each_line_once() {
        // A 64-element block confined to two lines must cost exactly:
        // 64 lane penalties + 2 MLP-discounted line accesses.
        let cfg = MachineConfig::lx2();
        let lane = cfg.gather_lane_cy;
        let mut m = Machine::new(cfg);
        let base = m.mem().alloc_f64(1024);
        let idx: Vec<usize> = (0..64).map(|i| i % 16).collect(); // Lines 0 and 1.
        m.set_phase(Phase::Compute);
        m.v_touch_gather_block(base, &idx);
        let mut expect = Machine::new(MachineConfig::lx2());
        let eb = expect.mem().alloc_f64(1024);
        let line_cost: f64 = (0..2)
            .map(|l| expect.mem().access(eb.offset_f64(l * 8), 1))
            .sum();
        let want = lane * 64.0 + Machine::GATHER_MLP * line_cost;
        assert!(
            (m.counters().cycles(Phase::Compute) - want).abs() < 1e-12,
            "got {} want {want}",
            m.counters().cycles(Phase::Compute)
        );
        // 64 elements = 8 vector loads issued.
        assert_eq!(m.counters().vector_ops, 8);
    }

    #[test]
    fn touch_gather_block_empty_is_free() {
        let mut m = machine();
        let base = m.mem().alloc_f64(8);
        m.v_touch_gather_block(base, &[]);
        assert_eq!(m.counters().total_cycles(), 0.0);
        assert_eq!(m.counters().vector_ops, 0);
    }

    #[test]
    #[should_panic(expected = "RUN_BLOCK_MAX")]
    fn touch_gather_block_rejects_oversized_blocks() {
        let mut m = machine();
        let base = m.mem().alloc_f64(128);
        let idx = vec![0usize; Machine::RUN_BLOCK_MAX + 1];
        m.v_touch_gather_block(base, &idx);
    }

    #[test]
    fn touch_reduce_block_empty_is_free() {
        let mut m = machine();
        let src = m.mem().alloc_f64(64);
        let dst = m.mem().alloc_f64(64);
        m.v_touch_reduce_block(&[src], &[dst], &[]);
        assert_eq!(m.counters().total_cycles(), 0.0);
        assert_eq!(m.counters().vector_ops, 0);
    }

    #[test]
    #[should_panic(expected = "RUN_BLOCK_MAX")]
    fn touch_reduce_block_rejects_oversized_blocks() {
        let mut m = machine();
        let src = m.mem().alloc_f64(128);
        let dst = m.mem().alloc_f64(128);
        let idx = vec![0usize; Machine::RUN_BLOCK_MAX + 1];
        m.v_touch_reduce_block(&[src], &[dst], &idx);
    }

    #[test]
    #[should_panic(expected = "must pair up")]
    fn touch_reduce_block_rejects_mismatched_components() {
        let mut m = machine();
        let src = m.mem().alloc_f64(8);
        let dst = m.mem().alloc_f64(8);
        m.v_touch_reduce_block(&[src, src], &[dst], &[0, 1]);
    }

    #[test]
    fn touch_reduce_block_accounting_scales_with_components() {
        // flops = comps * len; vector_ops = comps * ceil(len / VLANES).
        let mut m = machine();
        let srcs: Vec<VAddr> = (0..3).map(|_| m.mem().alloc_f64(16)).collect();
        let dsts: Vec<VAddr> = (0..3).map(|_| m.mem().alloc_f64(4096)).collect();
        let idx: Vec<usize> = (0..12).collect();
        m.set_phase(Phase::Reduce);
        m.v_touch_reduce_block(&srcs, &dsts, &idx);
        assert_eq!(m.counters().flops_issued, 36.0);
        assert_eq!(m.counters().vector_ops, 3 * 2);
        assert!(m.counters().cycles(Phase::Reduce) > 0.0);
    }

    #[test]
    fn touch_reduce_block_is_cheaper_than_per_component_sweeps() {
        // The fused fold must charge strictly less than the equivalent
        // per-component load + scatter-add sweeps it replaces: address
        // generation is shared and destination lines are touched once
        // per component instead of once per node per component.
        let cfg = MachineConfig::lx2();
        let mut fused = Machine::new(cfg.clone());
        let mut swept = Machine::new(cfg);
        let fsrcs: Vec<VAddr> = (0..3).map(|_| fused.mem().alloc_f64(64)).collect();
        let fdsts: Vec<VAddr> = (0..3).map(|_| fused.mem().alloc_f64(65536)).collect();
        let ssrcs: Vec<VAddr> = (0..3).map(|_| swept.mem().alloc_f64(64)).collect();
        let sdsts: Vec<VAddr> = (0..3).map(|_| swept.mem().alloc_f64(65536)).collect();
        // A CIC stencil's 8 nodes: two x-neighbours per (y, z) corner.
        let idx: Vec<usize> = [0usize, 1, 33, 34, 1089, 1090, 1122, 1123].to_vec();
        fused.set_phase(Phase::Reduce);
        swept.set_phase(Phase::Reduce);
        fused.v_touch_reduce_block(&fsrcs, &fdsts, &idx);
        for comp in 0..3 {
            let mut node = 0;
            while node < idx.len() {
                let n = (idx.len() - node).min(VLANES);
                swept.v_touch_load(ssrcs[comp].offset_f64(node), n);
                swept.v_touch_scatter_add(sdsts[comp], &idx[node..node + n]);
                node += n;
            }
        }
        let f = fused.counters().cycles(Phase::Reduce);
        let s = swept.counters().cycles(Phase::Reduce);
        assert!(f < s, "fused {f} must undercut swept {s}");
        // Same functional FLOP throughput is issued either way.
        assert_eq!(fused.counters().flops_issued, swept.counters().flops_issued);
    }

    #[test]
    fn streamed_reuse_touches_are_state_free_and_undercut_cold_walks() {
        // The SIMD block touches are pure functions of their inputs:
        // the same call charges bit-identical cycles on a cold machine
        // and on one whose cache was warmed over the very same region,
        // and it neither reads nor perturbs cache statistics. The
        // streaming price also undercuts the cache-walking plain gather
        // from a cold (per-tile flushed) cache — the state it would
        // actually start from on the hot path.
        let cfg = MachineConfig::lx2();
        let mut cold = Machine::new(cfg.clone());
        let mut warm = Machine::new(cfg.clone());
        let cb = cold.mem().alloc_f64(4096);
        let wb = warm.mem().alloc_f64(4096);
        for i in 0..512 {
            warm.mem().access(wb.offset_f64(i * 8), 8);
        }
        let warm_l1 = warm.mem().l1_stats();
        let idx = [0usize, 1, 33, 34, 1089, 1090, 1122, 1123, 5, 6];
        cold.set_phase(Phase::Gather);
        warm.set_phase(Phase::Gather);
        cold.v_touch_gather_block_reuse(cb, &idx, &[], 0);
        warm.v_touch_gather_block_reuse(wb, &idx, &[], 0);
        let csrc = cold.mem().alloc_f64(16);
        let wsrc = warm.mem().alloc_f64(16);
        cold.set_phase(Phase::Reduce);
        warm.set_phase(Phase::Reduce);
        cold.v_touch_reduce_block_reuse(&[csrc], &[cb], &idx, &[], 0, 0);
        warm.v_touch_reduce_block_reuse(&[wsrc], &[wb], &idx, &[], 0, 0);
        assert_eq!(
            cold.counters().total_cycles().to_bits(),
            warm.counters().total_cycles().to_bits()
        );
        assert_eq!(cold.counters().vector_ops, warm.counters().vector_ops);
        assert_eq!(cold.counters().flops_issued, warm.counters().flops_issued);
        // No cache transactions were issued by either touch.
        let after = warm.mem().l1_stats();
        assert_eq!(warm_l1.hits + warm_l1.misses, after.hits + after.misses);
        // Plain reduce is defined as reuse with an empty carried block.
        let mut plain = Machine::new(cfg);
        let pb = plain.mem().alloc_f64(4096);
        plain.set_phase(Phase::Gather);
        plain.v_touch_gather_block(pb, &idx);
        let psrc = plain.mem().alloc_f64(16);
        plain.set_phase(Phase::Reduce);
        plain.v_touch_reduce_block(&[psrc], &[pb], &idx);
        assert_eq!(
            plain.counters().cycles(Phase::Reduce).to_bits(),
            cold.counters().cycles(Phase::Reduce).to_bits()
        );
        // The streaming gather price undercuts the cold cache walk.
        assert!(
            cold.counters().cycles(Phase::Gather) < plain.counters().cycles(Phase::Gather),
            "streamed {} must undercut cold walk {}",
            cold.counters().cycles(Phase::Gather),
            plain.counters().cycles(Phase::Gather)
        );
    }

    #[test]
    fn reuse_skips_lines_covered_by_previous_block() {
        // With the previous block covering every line, only the lane
        // issue penalty remains on the gather side; the reduce side
        // keeps its contiguous source streams but drops all destination
        // walks. Partial overlap lands strictly between the extremes.
        let cfg = MachineConfig::lx2();
        let lane = cfg.gather_lane_cy;
        let mut m = Machine::new(cfg.clone());
        let base = m.mem().alloc_f64(4096);
        let idx = [0usize, 1, 33, 34, 1089, 1090, 1122, 1123];
        m.set_phase(Phase::Gather);
        m.v_touch_gather_block_reuse(base, &idx, &idx, 0);
        let full = m.counters().cycles(Phase::Gather);
        assert!(
            (full - lane * idx.len() as f64).abs() < 1e-12,
            "full overlap must leave only lane issue cost, got {full}"
        );
        // Partial overlap: prev covers the low half of the stencil.
        let mut part = Machine::new(cfg.clone());
        let pb = part.mem().alloc_f64(4096);
        part.set_phase(Phase::Gather);
        part.v_touch_gather_block_reuse(pb, &idx, &[0, 1, 33, 34], 0);
        let mut none = Machine::new(cfg);
        let nb = none.mem().alloc_f64(4096);
        none.set_phase(Phase::Gather);
        none.v_touch_gather_block(nb, &idx);
        let p = part.counters().cycles(Phase::Gather);
        let n = none.counters().cycles(Phase::Gather);
        assert!(full < p && p < n, "expected {full} < {p} < {n}");
    }

    #[test]
    fn reduce_reuse_full_prev_drops_destination_walks() {
        let cfg = MachineConfig::lx2();
        let mut fresh = Machine::new(cfg.clone());
        let mut reused = Machine::new(cfg);
        let idx = [0usize, 1, 33, 34, 1089, 1090, 1122, 1123];
        let fs: Vec<VAddr> = (0..3).map(|_| fresh.mem().alloc_f64(16)).collect();
        let fd: Vec<VAddr> = (0..3).map(|_| fresh.mem().alloc_f64(65536)).collect();
        let rs: Vec<VAddr> = (0..3).map(|_| reused.mem().alloc_f64(16)).collect();
        let rd: Vec<VAddr> = (0..3).map(|_| reused.mem().alloc_f64(65536)).collect();
        fresh.set_phase(Phase::Reduce);
        reused.set_phase(Phase::Reduce);
        fresh.v_touch_reduce_block(&fs, &fd, &idx);
        reused.v_touch_reduce_block_reuse(&rs, &rd, &idx, &idx, 0, 0);
        let f = fresh.counters().cycles(Phase::Reduce);
        let r = reused.counters().cycles(Phase::Reduce);
        assert!(r < f, "reused fold {r} must undercut fresh fold {f}");
        // Functional accounting is identical: reuse is a pricing-only
        // distinction, the same vector work is issued.
        assert_eq!(
            fresh.counters().flops_issued,
            reused.counters().flops_issued
        );
        assert_eq!(fresh.counters().vector_ops, reused.counters().vector_ops);
    }

    #[test]
    fn conf_crossover_monotonic_resident_never_exceeds_stream() {
        // Roofline crossover contract: declaring a footprint can only
        // ever LOWER a streamed price, monotonically in the footprint —
        // L1-resident (<= crossover) is strictly cheaper, anything above
        // the crossover (or unknown, 0) charges the bitwise-identical
        // DRAM-stream price. Checked across every streamed entry point.
        let cfg = MachineConfig::lx2();
        let xover = cfg.stream_crossover_bytes;
        let idx = [0usize, 1, 33, 34, 1089, 1090, 1122, 1123];
        let charge = |footprint: u64| -> [f64; 4] {
            let mut m = Machine::new(cfg.clone());
            let base = m.mem().alloc_f64(65536);
            let src = m.mem().alloc_f64(64);
            let mut out = [0.0; 4];
            m.set_phase(Phase::Gather);
            m.v_touch_gather_block_reuse(base, &idx, &[], footprint);
            out[0] = m.counters().cycles(Phase::Gather);
            m.set_phase(Phase::Reduce);
            m.v_touch_reduce_block_reuse(&[src], &[base], &idx, &[], footprint, footprint);
            out[1] = m.counters().cycles(Phase::Reduce);
            m.set_phase(Phase::Preprocess);
            m.v_touch_load_streamed(base, 8, footprint);
            m.v_touch_gather_streamed(base, &idx, footprint);
            out[2] = m.counters().cycles(Phase::Preprocess);
            m.set_phase(Phase::Compute);
            let data = vec![1.5; 8];
            let mut dst = vec![0.0; 8];
            let r = m.v_load_streamed(base, &data, footprint);
            m.v_store_streamed(base, r, &mut dst, 8, footprint);
            out[3] = m.counters().cycles(Phase::Compute);
            out
        };
        let unknown = charge(0);
        let resident = charge(xover);
        let over = charge(xover + 1);
        let tiny = charge(64);
        for p in 0..4 {
            assert!(
                resident[p] < unknown[p],
                "entry {p}: resident {} must undercut stream {}",
                resident[p],
                unknown[p]
            );
            assert_eq!(
                over[p].to_bits(),
                unknown[p].to_bits(),
                "entry {p}: above-crossover footprint must price as a stream"
            );
            assert_eq!(
                tiny[p].to_bits(),
                resident[p].to_bits(),
                "entry {p}: the resident price is flat below the crossover"
            );
        }
    }

    #[test]
    fn conf_crossover_resident_gather_still_undercuts_cold_walk() {
        // The 8^3 case from the scalar->simd conformance snapshot: an
        // L1-resident stencil sweep must never be charged MORE than the
        // scalar cache walk it replaces — the crossover closes the
        // overpricing, and the cheaper-phase contract can't invert.
        let cfg = MachineConfig::lx2();
        let idx = [0usize, 1, 33, 34, 1089, 1090, 1122, 1123];
        let mut streamed = Machine::new(cfg.clone());
        let sb = streamed.mem().alloc_f64(1728); // 12^3 guarded 8^3 grid
        streamed.set_phase(Phase::Gather);
        streamed.v_touch_gather_block_reuse(sb, &idx, &[], 1728 * 8);
        let mut walk = Machine::new(cfg);
        let wb = walk.mem().alloc_f64(1728);
        walk.set_phase(Phase::Gather);
        walk.v_touch_gather_block(wb, &idx);
        let s = streamed.counters().cycles(Phase::Gather);
        let w = walk.counters().cycles(Phase::Gather);
        assert!(
            s <= w,
            "resident stream {s} must not exceed the cold cache walk {w}"
        );
    }

    #[test]
    fn per_tile_flush_makes_charges_order_independent() {
        // The same access sequence after a flush must cost the same no
        // matter what ran before — the invariant behind deterministic
        // parallel tile charging.
        let mut cold = machine();
        let mut warm = machine();
        let a1 = cold.mem().alloc_f64(1024);
        let a2 = warm.mem().alloc_f64(1024);
        warm.set_phase(Phase::Compute);
        for i in 0..1024 {
            warm.s_load(a2.offset_f64(i % 512), 8); // Pollute cache + streams.
        }
        warm.counters_mut().reset();
        warm.mem().flush_cache();
        cold.set_phase(Phase::Compute);
        for i in [0usize, 77, 13, 500, 2, 900] {
            cold.s_load(a1.offset_f64(i), 8);
            warm.s_load(a2.offset_f64(i), 8);
        }
        assert_eq!(
            cold.counters().cycles(Phase::Compute),
            warm.counters().cycles(Phase::Compute)
        );
    }
}
