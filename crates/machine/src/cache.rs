//! Two-level set-associative cache simulation.
//!
//! The deposition kernel is memory-bound (the paper reports 40-70% of PIC
//! runtime spent there, driven by "poor data locality stemming from the
//! unordered nature of particles"). To reproduce that behaviour the
//! emulator routes every memory operation through this cache model:
//! unsorted particle streams touch grid/rhocell lines in a scattered
//! pattern and miss, while the GPMA-sorted order reuses the same lines and
//! hits. This is what makes the incremental sorter's benefit *measured*
//! rather than assumed.
//!
//! The model is a classic inclusive two-level write-allocate hierarchy with
//! true-LRU replacement per set. Only tags are tracked; data lives in the
//! host arrays.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: usize,
}

impl CacheLevelConfig {
    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// Hit/miss statistics for one level.
#[derive(Debug, Clone, Copy, Default)]
#[must_use]
pub struct CacheStats {
    /// Number of accesses that hit this level.
    pub hits: u64,
    /// Number of accesses that missed this level.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero if no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Adds another statistics snapshot into this one (worker merge).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Sentinel slot marking the last-line memo as invalid.
const MEMO_NONE: usize = usize::MAX;

/// One set-associative level, tag-only with true LRU.
#[derive(Debug, Clone)]
struct CacheLevel {
    cfg: CacheLevelConfig,
    line_shift: u32,
    set_mask: u64,
    /// `tags[set * ways + way]`; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// LRU timestamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    stats: CacheStats,
    /// Last accessed line (fast-path key of the memo below).
    memo_line: u64,
    /// Tag slot (`set * ways + way`) holding `memo_line`, or
    /// [`MEMO_NONE`]. A repeat access to the line last touched is a
    /// guaranteed hit in *this* level (the previous access left the line
    /// resident, and nothing can evict it without another access in
    /// between), so the fast path skips the tag search and performs
    /// exactly the slow path's side effects: clock tick, LRU stamp
    /// refresh, hit count. Counters and future behaviour are
    /// bit-identical to the memo-less walk by construction.
    memo_slot: usize,
    /// Disables the fast path (test hook proving the bit-identity claim).
    memo_enabled: bool,
}

impl CacheLevel {
    fn new(cfg: CacheLevelConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be 2^k");
        let sets = cfg.num_sets();
        assert!(sets.is_power_of_two(), "set count must be 2^k");
        assert!(sets > 0 && cfg.ways > 0);
        Self {
            cfg,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            tags: vec![u64::MAX; sets * cfg.ways],
            stamps: vec![0; sets * cfg.ways],
            clock: 0,
            stats: CacheStats::default(),
            memo_line: u64::MAX,
            memo_slot: MEMO_NONE,
            memo_enabled: true,
        }
    }

    /// Looks up (and on miss, fills) the line containing `addr`.
    /// Returns `true` on hit.
    fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr >> self.line_shift;
        // Last-line memo: hot kernels touch the same line many times in a
        // row (stencil node sweeps, staged attribute streams); the repeat
        // is a guaranteed hit whose only effects are the ones applied
        // here, so the way search is skipped entirely.
        if self.memo_enabled && self.memo_slot != MEMO_NONE && line == self.memo_line {
            self.stamps[self.memo_slot] = self.clock;
            self.stats.hits += 1;
            return true;
        }
        let set = (line & self.set_mask) as usize;
        let base = set * self.cfg.ways;
        let ways = &mut self.tags[base..base + self.cfg.ways];

        if let Some(w) = ways.iter().position(|&t| t == line) {
            self.stamps[base + w] = self.clock;
            self.stats.hits += 1;
            self.memo_line = line;
            self.memo_slot = base + w;
            return true;
        }
        self.stats.misses += 1;
        // Fill: choose an empty way, else the LRU way.
        let victim = match ways.iter().position(|&t| t == u64::MAX) {
            Some(w) => w,
            None => {
                let mut lru = 0usize;
                let mut lru_stamp = u64::MAX;
                for w in 0..self.cfg.ways {
                    if self.stamps[base + w] < lru_stamp {
                        lru_stamp = self.stamps[base + w];
                        lru = w;
                    }
                }
                lru
            }
        };
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        self.memo_line = line;
        self.memo_slot = base + victim;
        false
    }

    fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.memo_line = u64::MAX;
        self.memo_slot = MEMO_NONE;
    }

    fn export_state(&self) -> CacheLevelState {
        CacheLevelState {
            tags: self.tags.clone(),
            stamps: self.stamps.clone(),
            clock: self.clock,
            memo_line: self.memo_line,
            memo_slot: self.memo_slot as u64,
        }
    }

    fn import_state(&mut self, s: &CacheLevelState) -> bool {
        let slot = s.memo_slot as usize;
        if s.tags.len() != self.tags.len()
            || s.stamps.len() != self.stamps.len()
            || (slot != MEMO_NONE && slot >= self.tags.len())
        {
            return false;
        }
        self.tags.copy_from_slice(&s.tags);
        self.stamps.copy_from_slice(&s.stamps);
        self.clock = s.clock;
        self.memo_line = s.memo_line;
        self.memo_slot = slot;
        true
    }
}

/// Plain-integer image of one level's behavioural state (tags, LRU
/// stamps, clock and last-line memo) — everything that influences the
/// latency of *future* accesses. Statistics are deliberately excluded:
/// they are accounting, owned by the counter drain/absorb protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheLevelState {
    /// Resident line tags, `tags[set * ways + way]` (`u64::MAX` empty).
    pub tags: Vec<u64>,
    /// LRU timestamps parallel to `tags`.
    pub stamps: Vec<u64>,
    /// LRU clock.
    pub clock: u64,
    /// Last accessed line (memo fast-path key).
    pub memo_line: u64,
    /// Tag slot holding `memo_line` (`u64::MAX` = invalid memo).
    pub memo_slot: u64,
}

/// Complete behavioural state of a [`CacheSim`]: both levels plus the
/// stream-prefetcher slots and decay tick. Exporting this and importing
/// it into a hierarchy of identical geometry makes every future access
/// cost bit-identical to the original — the property checkpoint/restore
/// builds on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSimState {
    /// L1 behavioural state.
    pub l1: CacheLevelState,
    /// L2 behavioural state.
    pub l2: CacheLevelState,
    /// Stream-prefetcher slots as `(last_line, confidence)`; always
    /// [`STREAM_SLOTS`] entries.
    pub streams: Vec<(u64, u32)>,
    /// Random-miss insertion counter driving periodic confidence decay.
    pub decay_tick: u32,
}

/// Number of hardware stream-prefetcher slots modelled.
const STREAM_SLOTS: usize = 32;

/// The two-level hierarchy with configurable latencies and a simple
/// next-line stream prefetcher: a DRAM miss whose line is adjacent to a
/// recently missed line is treated as prefetched and charged the
/// (bandwidth-limited) streaming cost instead of full latency. Without
/// this, sequential SoA sweeps would pay random-access latency and the
/// sorted-vs-unsorted contrast central to the paper would be understated.
#[derive(Debug, Clone)]
pub struct CacheSim {
    l1: CacheLevel,
    l2: CacheLevel,
    l1_hit_cy: f64,
    l2_hit_cy: f64,
    dram_cy: f64,
    stream_cy: f64,
    /// Tracked miss streams as `(last_line, confidence)`; confidence
    /// counts stream hits so one-off random misses cannot evict an
    /// established stream.
    streams: [(u64, u32); STREAM_SLOTS],
    /// Counts random-miss insertions; drives periodic confidence decay.
    decay_tick: u32,
    /// DRAM misses served at streaming (prefetched) cost.
    pub streamed_misses: u64,
    /// DRAM misses served at full random latency.
    pub random_misses: u64,
}

impl CacheSim {
    /// Builds the hierarchy from geometries and latency parameters.
    pub fn new(
        l1: CacheLevelConfig,
        l2: CacheLevelConfig,
        l1_hit_cy: f64,
        l2_hit_cy: f64,
        dram_cy: f64,
    ) -> Self {
        Self {
            l1: CacheLevel::new(l1),
            l2: CacheLevel::new(l2),
            l1_hit_cy,
            l2_hit_cy,
            dram_cy,
            // Streaming (prefetched) miss cost: bandwidth-limited rather
            // than latency-limited; a fixed fraction of the random cost.
            stream_cy: dram_cy * 0.15,
            streams: [(u64::MAX, 0); STREAM_SLOTS],
            decay_tick: 0,
            streamed_misses: 0,
            random_misses: 0,
        }
    }

    /// Touches every cache line covered by `[addr, addr + bytes)` and
    /// returns the total charged latency in cycles.
    pub fn access(&mut self, addr: u64, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let line = self.l1.cfg.line_bytes as u64;
        let first = addr / line;
        let last = (addr + bytes - 1) / line;
        let mut cycles = 0.0;
        for l in first..=last {
            cycles += self.access_line(l * line);
        }
        cycles
    }

    /// Touches a single line and returns its latency.
    pub fn access_line(&mut self, line_addr: u64) -> f64 {
        if self.l1.access(line_addr) {
            self.l1_hit_cy
        } else if self.l2.access(line_addr) {
            self.l2_hit_cy
        } else {
            let line = line_addr >> self.l1.line_shift;
            // Stream detection: adjacent (within 2 lines ahead) of a
            // tracked miss stream => prefetched.
            for (last, conf) in &mut self.streams {
                if *last != u64::MAX && line > *last && line - *last <= 2 {
                    *last = line;
                    *conf = (*conf + 1).min(64);
                    self.streamed_misses += 1;
                    return self.stream_cy;
                }
            }
            // New potential stream: evict the least-confident slot so an
            // established stream survives scattered one-off misses.
            let victim = self
                .streams
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, conf))| *conf)
                .map(|(i, _)| i)
                .unwrap_or(0);
            self.streams[victim] = (line, 1);
            // Periodic decay so stale streams eventually lose their slot
            // (per-insertion decay would let concurrently-establishing
            // streams evict each other before their second access).
            self.decay_tick += 1;
            if self.decay_tick >= 256 {
                self.decay_tick = 0;
                for (_, conf) in &mut self.streams {
                    *conf = conf.saturating_sub(1);
                }
            }
            self.random_misses += 1;
            self.dram_cy
        }
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats
    }

    /// Invalidates all cached lines (statistics are preserved).
    ///
    /// Resets every piece of *behavioural* state — tags, stream slots and
    /// the decay tick — so that the cost of an access sequence after a
    /// flush depends only on that sequence. This is what makes per-tile
    /// charging deterministic regardless of which worker ran the tile.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.streams = [(u64::MAX, 0); STREAM_SLOTS];
        self.decay_tick = 0;
    }

    /// Takes (and zeroes) the accumulated statistics:
    /// `(l1, l2, streamed_misses, random_misses)`.
    pub fn take_stats(&mut self) -> (CacheStats, CacheStats, u64, u64) {
        (
            std::mem::take(&mut self.l1.stats),
            std::mem::take(&mut self.l2.stats),
            std::mem::take(&mut self.streamed_misses),
            std::mem::take(&mut self.random_misses),
        )
    }

    /// Enables or disables the last-line memo fast path of both levels.
    ///
    /// The memo is purely a host-speed shortcut — counters, latencies and
    /// all future behaviour are bit-identical either way (the property
    /// the `memo_*` tests pin); this hook exists so tests can run the
    /// memo-less reference walk.
    pub fn set_line_memo(&mut self, enabled: bool) {
        self.l1.memo_enabled = enabled;
        self.l2.memo_enabled = enabled;
    }

    /// Adds externally accumulated statistics (a worker's) into this
    /// hierarchy's totals without touching behavioural state.
    pub fn absorb_stats(&mut self, l1: &CacheStats, l2: &CacheStats, streamed: u64, random: u64) {
        self.l1.stats.merge(l1);
        self.l2.stats.merge(l2);
        self.streamed_misses += streamed;
        self.random_misses += random;
    }

    /// Line size in bytes (identical across levels).
    pub fn line_bytes(&self) -> u64 {
        self.l1.cfg.line_bytes as u64
    }

    /// `log2(line_bytes)` — the line size is asserted to be a power of
    /// two at construction, so `addr >> line_shift()` is exactly
    /// `addr / line_bytes()` (hot paths use the shift to avoid a
    /// hardware divide per address).
    pub fn line_shift(&self) -> u32 {
        self.l1.line_shift
    }

    /// Exports the complete behavioural state (see [`CacheSimState`]).
    /// Non-destructive: the hierarchy is unchanged.
    pub fn export_state(&self) -> CacheSimState {
        CacheSimState {
            l1: self.l1.export_state(),
            l2: self.l2.export_state(),
            streams: self.streams.to_vec(),
            decay_tick: self.decay_tick,
        }
    }

    /// Imports behavioural state captured by [`CacheSim::export_state`]
    /// from a hierarchy of identical geometry. Returns `false` (leaving
    /// this hierarchy untouched) if the state's shape does not match —
    /// wrong tag-array lengths, out-of-range memo slot or wrong stream
    /// slot count — so corrupt snapshots surface as errors, not panics.
    pub fn import_state(&mut self, s: &CacheSimState) -> bool {
        if s.streams.len() != STREAM_SLOTS {
            return false;
        }
        // Validate both levels before mutating either: import is
        // all-or-nothing.
        let slot_ok = |lvl: &CacheLevel, st: &CacheLevelState| {
            let slot = st.memo_slot as usize;
            st.tags.len() == lvl.tags.len()
                && st.stamps.len() == lvl.stamps.len()
                && (slot == MEMO_NONE || slot < lvl.tags.len())
        };
        if !slot_ok(&self.l1, &s.l1) || !slot_ok(&self.l2, &s.l2) {
            return false;
        }
        assert!(self.l1.import_state(&s.l1) && self.l2.import_state(&s.l2));
        for (dst, src) in self.streams.iter_mut().zip(&s.streams) {
            *dst = *src;
        }
        self.decay_tick = s.decay_tick;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sim() -> CacheSim {
        // 4 sets x 2 ways x 64B = 512B L1; 8 sets x 4 ways = 2KiB L2.
        CacheSim::new(
            CacheLevelConfig {
                size_bytes: 512,
                ways: 2,
                line_bytes: 64,
            },
            CacheLevelConfig {
                size_bytes: 2048,
                ways: 4,
                line_bytes: 64,
            },
            1.0,
            10.0,
            100.0,
        )
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small_sim();
        assert_eq!(c.access(0, 8), 100.0);
        assert_eq!(c.access(0, 8), 1.0);
        assert_eq!(c.access(32, 8), 1.0, "same line as addr 0");
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut c = small_sim();
        let cy = c.access(60, 8); // Crosses the 64-byte boundary.
                                  // First line: random miss (100); second: stream-prefetched (15).
        assert_eq!(cy, 115.0);
    }

    #[test]
    fn sequential_sweep_is_prefetched() {
        let mut c = small_sim();
        let first = c.access(0, 8);
        assert_eq!(first, 100.0);
        // Subsequent sequential lines ride the detected stream.
        let mut total = 0.0;
        for l in 1..10u64 {
            total += c.access(l * 64, 8);
        }
        assert_eq!(total, 9.0 * 15.0, "streamed misses at bandwidth cost");
    }

    #[test]
    fn random_misses_pay_full_latency() {
        let mut c = small_sim();
        let mut total = 0.0;
        for l in [0u64, 100, 37, 999, 555, 777, 222, 444, 888, 333] {
            total += c.access(l * 64, 8);
        }
        assert_eq!(total, 10.0 * 100.0);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small_sim();
        // Set 0 holds lines whose (line % 4 == 0): addrs 0, 256, 512 map there.
        c.access(0, 1);
        c.access(256, 1);
        c.access(0, 1); // Refresh line 0 so line at 256 is LRU.
        c.access(512, 1); // Evicts 256 from L1.
        assert_eq!(c.access(0, 1), 1.0, "line 0 still in L1");
        let cy = c.access(256, 1);
        assert_eq!(cy, 10.0, "evicted to L2, hits L2");
    }

    #[test]
    fn l2_backstops_l1() {
        let mut c = small_sim();
        // Touch 16 distinct lines: all fit in L2 (32 lines) but not L1 (8).
        for i in 0..16u64 {
            c.access(i * 64, 1);
        }
        let mut l2_hits = 0;
        for i in 0..16u64 {
            let cy = c.access(i * 64, 1);
            assert!(cy <= 10.0, "must be served by L1 or L2");
            if cy == 10.0 {
                l2_hits += 1;
            }
        }
        assert!(l2_hits > 0, "some lines must have been evicted to L2");
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = small_sim();
        c.access(0, 1);
        c.access(0, 1);
        let s = c.l1_stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn flush_forces_misses_again() {
        let mut c = small_sim();
        c.access(0, 1);
        c.flush();
        assert_eq!(c.access(0, 1), 100.0);
    }

    #[test]
    fn zero_byte_access_is_free() {
        let mut c = small_sim();
        assert_eq!(c.access(0, 0), 0.0);
    }

    /// Replays a pseudo-random access stream (heavy on consecutive
    /// same-line repeats, the memo's fast path) with the memo on and
    /// off: latencies, statistics and subsequent behaviour must be
    /// bit-identical — the memo is an accelerator, not a model change.
    #[test]
    fn line_memo_is_bit_identical_to_slow_path() {
        let mut fast = small_sim();
        let mut slow = small_sim();
        slow.set_line_memo(false);
        let mut state = 0x9e37_79b9_u64;
        let mut addr = 0u64;
        for i in 0..10_000u64 {
            // ~2/3 of accesses repeat the previous line; the rest jump.
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(i);
            if state % 3 == 0 {
                addr = (state >> 16) % 4096 * 8;
            }
            let (a, b) = (fast.access(addr, 8), slow.access(addr, 8));
            assert_eq!(a.to_bits(), b.to_bits(), "latency diverged at access {i}");
        }
        let (f1, f2) = (fast.l1_stats(), fast.l2_stats());
        let (s1, s2) = (slow.l1_stats(), slow.l2_stats());
        assert_eq!((f1.hits, f1.misses), (s1.hits, s1.misses));
        assert_eq!((f2.hits, f2.misses), (s2.hits, s2.misses));
        assert_eq!(fast.streamed_misses, slow.streamed_misses);
        assert_eq!(fast.random_misses, slow.random_misses);
    }

    #[test]
    fn export_import_state_resumes_bit_identically() {
        let mut a = small_sim();
        let mut state = 0x1234_5678_u64;
        let mut addr = 0u64;
        for i in 0..5_000u64 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(i);
            if state % 3 != 2 {
                addr = (state >> 17) % 2048 * 8;
            }
            a.access(addr, 8);
        }
        let snap = a.export_state();
        let mut b = small_sim();
        assert!(b.import_state(&snap), "matching geometry must import");
        // Continue both with an identical stream: every latency (and the
        // miss split) must match bitwise.
        let (a_s0, a_r0) = (a.streamed_misses, a.random_misses);
        for i in 0..5_000u64 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(i);
            if state % 3 != 2 {
                addr = (state >> 17) % 2048 * 8;
            }
            let (x, y) = (a.access(addr, 8), b.access(addr, 8));
            assert_eq!(x.to_bits(), y.to_bits(), "latency diverged at {i}");
        }
        assert_eq!(a.streamed_misses - a_s0, b.streamed_misses);
        assert_eq!(a.random_misses - a_r0, b.random_misses);
    }

    #[test]
    fn import_state_refuses_mismatched_geometry() {
        let mut a = small_sim();
        a.access(0, 8);
        let snap = a.export_state();
        let mut other = CacheSim::new(
            CacheLevelConfig {
                size_bytes: 1024,
                ways: 2,
                line_bytes: 64,
            },
            CacheLevelConfig {
                size_bytes: 4096,
                ways: 4,
                line_bytes: 64,
            },
            1.0,
            10.0,
            100.0,
        );
        assert!(!other.import_state(&snap), "wrong geometry must refuse");
        let mut bad = snap.clone();
        bad.streams.pop();
        let mut c = small_sim();
        assert!(!c.import_state(&bad), "wrong stream count must refuse");
        let mut bad_slot = snap.clone();
        bad_slot.l1.memo_slot = 1_000_000;
        assert!(!c.import_state(&bad_slot), "oob memo slot must refuse");
        assert!(c.import_state(&snap), "pristine state still imports");
    }

    #[test]
    fn line_memo_survives_flush_correctly() {
        let mut c = small_sim();
        c.access(0, 8);
        assert_eq!(c.access(0, 8), 1.0, "memo repeat is an L1 hit");
        c.flush();
        // The memo must be invalidated with the tags: post-flush the line
        // is a cold miss again.
        assert_eq!(c.access(0, 8), 100.0);
    }
}
