//! Checked disjoint partition of a mutable slice across pool workers.
//!
//! Every sharded phase of the step loop relies on one soundness claim:
//! a scheduler hands each slice index to **exactly one** worker, so the
//! `&mut` references carved out of a shared slice never alias. Before
//! this module, that claim lived in comments next to raw-pointer
//! arithmetic (`DisjointSlice` in the exec layer, `RawGrid` in the guard
//! exchange). [`Partition`] centralises the pattern and — in debug
//! builds — *verifies* it at runtime: an atomic claim bitmap records
//! every granted index and panics the moment two grants overlap, so all
//! the existing determinism tests double as aliasing audits. Release
//! builds compile the bitmap out entirely; a grant is exactly the old
//! pointer add.
//!
//! The API is deliberately tiny:
//!
//! * [`Partition::grant`] — claim index `i` and get `&mut` to it
//!   (at most once per index per partition, debug-checked);
//! * [`Partition::read`] — read an index that is *never* granted
//!   (shared input cells, e.g. the interior cells the guard fill
//!   copies from; debug-checked against the claim set).
//!
//! Both are `unsafe fn`s: the check only exists in debug builds, so the
//! caller must still uphold the contract in release. What changes is
//! that the contract is now *exercised* — every `cargo test` run (debug
//! profile) walks the full claim history of every sharded phase.

use std::marker::PhantomData;
#[cfg(debug_assertions)]
use std::sync::atomic::{AtomicU64, Ordering};

/// A mutable slice shared across workers under an index-disjointness
/// contract, with debug-build claim checking. See the module docs.
pub struct Partition<'a, T> {
    ptr: *mut T,
    len: usize,
    /// One bit per element; set exactly when the element was granted.
    #[cfg(debug_assertions)]
    claims: Vec<AtomicU64>,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: access is partitioned by index — the scheduler hands each
// index to exactly one worker (verified by the debug claim bitmap), and
// `T: Send` lets the claimed element be mutated from that worker.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for Partition<'_, T> {}
// SAFETY: as above — `&Partition` only exposes disjoint-by-contract
// element access, so sharing the handle across threads is sound.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for Partition<'_, T> {}

impl<'a, T> Partition<'a, T> {
    /// Wraps a slice. The borrow lasts as long as the partition, so the
    /// slice is inaccessible (and in particular un-aliased) for the
    /// partition's whole lifetime.
    pub fn new(s: &'a mut [T]) -> Self {
        Self {
            ptr: s.as_mut_ptr(),
            len: s.len(),
            #[cfg(debug_assertions)]
            claims: (0..s.len().div_ceil(64))
                .map(|_| AtomicU64::new(0))
                .collect(),
            _marker: PhantomData,
        }
    }

    /// Number of elements in the partitioned slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the partitioned slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Claims element `i` and returns a `&mut` to it.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds, and each index may be granted **at most
    /// once** over the partition's lifetime, by whichever worker claimed
    /// it (a scheduler claim — static chunk ownership or an atomic
    /// cursor `fetch_add` — is exactly such a guarantee). Debug builds
    /// panic on any overlapping grant; release builds rely on the
    /// contract.
    // `&mut` out of `&self` is the point of the type: the partition is
    // shared across workers and the claim discipline (not the borrow
    // checker) serialises element access.
    #[allow(clippy::mut_from_ref)]
    #[allow(unsafe_code)]
    pub unsafe fn grant(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len, "grant({i}) out of bounds (len {})", self.len);
        #[cfg(debug_assertions)]
        self.claim(i);
        // SAFETY: `i` is in bounds (caller contract, debug-asserted) and
        // the at-most-once grant discipline (debug-verified above) means
        // no other `&mut` to this element exists.
        unsafe { &mut *self.ptr.add(i) }
    }

    /// Reads element `i` without claiming it.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds and must never be granted over the
    /// partition's lifetime — reads are for the shared, never-written
    /// portion of the slice (debug builds panic if `i` was already
    /// granted at read time).
    #[allow(unsafe_code)]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len, "read({i}) out of bounds (len {})", self.len);
        #[cfg(debug_assertions)]
        {
            let (word, bit) = (i / 64, 1u64 << (i % 64));
            assert!(
                // Relaxed ordering: the bitmap detects overlap through
                // RMW atomicity in `claim`, not through ordering, and
                // this debug probe publishes nothing.
                self.claims[word].load(Ordering::Relaxed) & bit == 0,
                "Partition read({i}) of an index that was granted &mut"
            );
        }
        // SAFETY: `i` is in bounds and no `&mut` to it exists (never
        // granted, per the caller contract checked above in debug).
        unsafe { *self.ptr.add(i) }
    }

    /// Records the claim of index `i`, panicking if it was already
    /// claimed. `fetch_or` is an atomic read-modify-write, so of two
    /// racing claimants exactly one observes the bit clear — the overlap
    /// is detected no matter how the race interleaves (`Relaxed`
    /// suffices: RMW atomicity, not ordering, is what the check needs,
    /// and the bitmap carries no result data).
    #[cfg(debug_assertions)]
    fn claim(&self, i: usize) {
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        // Relaxed ordering: RMW atomicity alone detects the double
        // grant (doc comment above); the bitmap carries no result data.
        let prev = self.claims[word].fetch_or(bit, Ordering::Relaxed);
        assert!(
            prev & bit == 0,
            "overlapping Partition grant: index {i} granted twice"
        );
    }

    /// Number of indices granted so far. Debug builds only — the claim
    /// bitmap does not exist in release.
    #[cfg(debug_assertions)]
    pub fn granted(&self) -> usize {
        self.claims
            .iter()
            // Relaxed ordering: debug-only census of claim bits; no
            // other memory is published through the bitmap.
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{SchedulerPolicy, WorkerPool};
    // Only the debug-gated overlap tests unwind.
    #[cfg(debug_assertions)]
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    // Exercises the unsafe grant/read API directly; every site
    // below carries its own SAFETY comment.
    #[allow(unsafe_code)]
    fn disjoint_grants_mutate_their_own_elements() {
        let mut data = vec![0usize; 100];
        {
            let part = Partition::new(&mut data);
            assert_eq!(part.len(), 100);
            assert!(!part.is_empty());
            for i in 0..100 {
                // SAFETY: each index granted exactly once, in bounds.
                unsafe { *part.grant(i) = i + 1 };
            }
            #[cfg(debug_assertions)]
            assert_eq!(part.granted(), 100);
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    // Exercises the unsafe grant/read API directly; every site
    // below carries its own SAFETY comment.
    #[allow(unsafe_code)]
    fn reads_of_ungranted_indices_see_current_values() {
        let mut data = vec![3.5f64, 7.0, -1.0];
        let part = Partition::new(&mut data);
        // SAFETY: index 1 is in bounds and never granted.
        assert_eq!(unsafe { part.read(1) }, 7.0);
        // SAFETY: index 0 granted once; index 1 only ever read.
        let v = unsafe { part.read(1) };
        // SAFETY: first and only grant of index 0.
        unsafe { *part.grant(0) = v };
        // SAFETY: in bounds, never granted.
        assert_eq!(unsafe { part.read(1) }, 7.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "granted twice")]
    // Exercises the unsafe grant/read API directly; every site
    // below carries its own SAFETY comment.
    #[allow(unsafe_code)]
    fn overlapping_grant_panics_in_debug() {
        let mut data = vec![0u8; 8];
        let part = Partition::new(&mut data);
        // SAFETY: first grant of index 3 is legal; the test then breaks
        // the contract on purpose to pin the debug detection.
        unsafe {
            *part.grant(3) = 1;
            let _ = part.grant(3);
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "granted &mut")]
    // Exercises the unsafe grant/read API directly; every site
    // below carries its own SAFETY comment.
    #[allow(unsafe_code)]
    fn read_of_granted_index_panics_in_debug() {
        let mut data = vec![0u8; 8];
        let part = Partition::new(&mut data);
        // SAFETY: legal grant; the read then violates the never-granted
        // contract on purpose.
        unsafe {
            *part.grant(2) = 1;
            let _ = part.read(2);
        }
    }

    /// The cross-thread detection path: two pool workers claim the same
    /// index, one must panic (and the pool propagates it).
    #[cfg(debug_assertions)]
    #[test]
    // Exercises the unsafe grant/read API directly; every site
    // below carries its own SAFETY comment.
    #[allow(unsafe_code)]
    fn overlapping_grants_across_pool_workers_are_detected() {
        let pool = WorkerPool::new(4);
        let mut data = vec![0usize; 4];
        let part = Partition::new(&mut data);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(&|_w| {
                // Every worker claims index 0: a deliberate overlap.
                // SAFETY: deliberately unsound claim pattern — the debug
                // bitmap must catch it; this is the negative test.
                unsafe { *part.grant(0) = 1 };
            });
        }));
        assert!(r.is_err(), "overlapping cross-thread grants must panic");
    }

    /// Every index claimed by a stealing-scheduler run lands exactly one
    /// grant: the partition check passes on a real scheduler pattern.
    #[test]
    fn stealing_schedule_grants_are_disjoint() {
        let pool = WorkerPool::new(4);
        let mut data = vec![0usize; 257];
        pool.exec(SchedulerPolicy::Stealing)
            .for_each(&mut data, |i, v| *v = i);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i));
    }

    /// Release builds must carry no claim state: the partition is a
    /// pointer + length, nothing else.
    #[cfg(not(debug_assertions))]
    #[test]
    fn release_partition_is_two_words() {
        assert_eq!(
            std::mem::size_of::<Partition<'_, f64>>(),
            2 * std::mem::size_of::<usize>()
        );
    }
}
