//! VPU vector register values.
//!
//! A 512-bit FP64 vector holds [`VLANES`] = 8 lanes. `VReg` is a plain
//! value type: arithmetic on it is performed by the [`crate::Machine`]
//! methods so that every operation is charged to the cost model; the
//! helpers here are cost-free constructors and lane accessors.

/// Number of f64 lanes in a 512-bit VPU register. Derived from the
/// workspace's single lane-width definition ([`crate::vect::W`], rule
/// L9): the emulated VPU and the lane-parallel host loops deliberately
/// share one width.
pub const VLANES: usize = crate::vect::W;

/// A VPU vector register value (8 x f64).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VReg(pub [f64; VLANES]);

impl VReg {
    /// All-zero register.
    pub fn zero() -> Self {
        VReg([0.0; VLANES])
    }

    /// Broadcasts `x` to all lanes (cost-free constructor; use
    /// [`crate::Machine::v_splat`] inside emulated kernels).
    pub fn splat(x: f64) -> Self {
        VReg([x; VLANES])
    }

    /// Builds a register from a slice, zero-padding missing lanes.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() > VLANES`.
    pub fn from_slice(s: &[f64]) -> Self {
        assert!(s.len() <= VLANES, "slice wider than a vector register");
        let mut r = [0.0; VLANES];
        r[..s.len()].copy_from_slice(s);
        VReg(r)
    }

    /// Lane accessor.
    ///
    /// # Panics
    ///
    /// Panics if `i >= VLANES`.
    pub fn lane(&self, i: usize) -> f64 {
        self.0[i]
    }

    /// Mutable lane accessor.
    pub fn lane_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }

    /// Copies the register into a slice (must be at least VLANES long).
    pub fn write_to(&self, out: &mut [f64]) {
        out[..VLANES].copy_from_slice(&self.0);
    }

    /// Horizontal sum of all lanes (cost-free; use
    /// [`crate::Machine::v_reduce_add`] inside emulated kernels).
    pub fn sum(&self) -> f64 {
        self.0.iter().sum()
    }
}

impl Default for VReg {
    fn default() -> Self {
        Self::zero()
    }
}

/// A per-lane boolean mask produced by vector compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VMask(pub [bool; VLANES]);

impl VMask {
    /// All-false mask.
    pub fn none() -> Self {
        VMask([false; VLANES])
    }

    /// All-true mask.
    pub fn all() -> Self {
        VMask([true; VLANES])
    }

    /// Mask with the first `n` lanes set (used for loop tails).
    ///
    /// # Panics
    ///
    /// Panics if `n > VLANES`.
    pub fn first(n: usize) -> Self {
        assert!(n <= VLANES);
        let mut m = [false; VLANES];
        m[..n].fill(true);
        VMask(m)
    }

    /// Number of set lanes.
    pub fn count(&self) -> usize {
        self.0.iter().filter(|&&b| b).count()
    }

    /// Whether any lane is set.
    pub fn any(&self) -> bool {
        self.0.iter().any(|&b| b)
    }

    /// Lane accessor.
    pub fn lane(&self, i: usize) -> bool {
        self.0[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slice_zero_pads() {
        let r = VReg::from_slice(&[1.0, 2.0]);
        assert_eq!(r.lane(0), 1.0);
        assert_eq!(r.lane(1), 2.0);
        assert_eq!(r.lane(7), 0.0);
    }

    #[test]
    #[should_panic(expected = "wider than a vector register")]
    fn from_slice_rejects_oversize() {
        let _ = VReg::from_slice(&[0.0; 9]);
    }

    #[test]
    fn sum_is_horizontal_add() {
        let r = VReg::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(r.sum(), 6.0);
    }

    #[test]
    fn mask_first_counts() {
        let m = VMask::first(3);
        assert_eq!(m.count(), 3);
        assert!(m.lane(2));
        assert!(!m.lane(3));
        assert!(m.any());
        assert!(!VMask::none().any());
    }
}
