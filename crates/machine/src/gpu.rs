//! SIMT cost model of the paper's GPU comparator (NVIDIA A800, Table 3).
//!
//! The paper's cross-platform claim is that the scatter-add deposition
//! pattern is a poor architectural match for GPUs: the "highly-optimized
//! CUDA kernel" reaches 29.76% of the A800's theoretical FP64 peak, versus
//! 83.08% for MatrixPIC on the MPU-equipped CPU. We cannot run CUDA here,
//! so this module replays the *same particle workload* through a
//! warp-granularity cost model of the canonical GPU deposition kernel:
//!
//! 1. coalesced SoA particle loads,
//! 2. full-rate FP64 shape-factor arithmetic,
//! 3. per-node `atomicAdd`s whose cost is driven by two measured (not
//!    assumed) quantities: intra-warp address conflicts (hardware replays
//!    conflicting lanes) and the number of distinct memory segments each
//!    warp touches (coalescing).
//!
//! The model is parameterised by [`GpuConfig`]; `GpuConfig::a800()` carries
//! the public A800 specifications (1.41 GHz, 108 SMs, 32 FP64 cores/SM).
//! Efficiency is reported exactly like the CPU side: canonical useful
//! FLOPs divided by (cycles x peak FLOPs/cycle), per SM.

/// Static description of the modelled GPU.
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// SM clock in Hz.
    pub clock_hz: f64,
    /// Number of streaming multiprocessors (used only for absolute-time
    /// estimates; efficiency is per-SM).
    pub sm_count: usize,
    /// FP64 cores per SM (32 on the A100/A800 generation).
    pub fp64_cores_per_sm: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Reciprocal throughput (cycles, per SM) of one FP64 atomic
    /// transaction that hits a distinct address segment.
    pub atomic_segment_cy: f64,
    /// Additional replay cost per conflicting lane within a warp atomic.
    pub atomic_conflict_cy: f64,
    /// Coalescing granularity in bytes (128 B on NVIDIA hardware).
    pub segment_bytes: u64,
    /// Cycles per 128-byte load transaction (throughput-amortised).
    pub load_segment_cy: f64,
    /// Fixed per-particle overhead cycles (index math, predication,
    /// bounds checks) executed on the integer/FP32 pipes.
    pub per_particle_overhead_cy: f64,
}

impl GpuConfig {
    /// The NVIDIA A800 (A100-class silicon, 80 GB HBM2e) used in the paper.
    pub fn a800() -> Self {
        Self {
            clock_hz: 1.41e9,
            sm_count: 108,
            fp64_cores_per_sm: 32,
            warp_size: 32,
            // Per-SM share of device L2 atomic throughput. Calibrated so
            // the modelled CUDA kernel sits at the paper's measured
            // position relative to the CPU configurations (Table 3:
            // 29.76% vs MatrixPIC's 83.08%, a 0.36x ratio); the
            // conflict/coalescing structure is measured from the real
            // particle stream, only this throughput constant is fitted.
            atomic_segment_cy: 0.66,
            atomic_conflict_cy: 0.25,
            segment_bytes: 128,
            load_segment_cy: 1.0,
            per_particle_overhead_cy: 4.0,
        }
    }

    /// Peak FP64 FLOPs per cycle per SM (each core does one FMA/cycle).
    pub fn peak_flops_per_cycle_per_sm(&self) -> f64 {
        (self.fp64_cores_per_sm * 2) as f64
    }

    /// Whole-device FP64 peak in FLOP/s (sanity: ~9.7 TFLOP/s for A800).
    pub fn peak_flops(&self) -> f64 {
        self.peak_flops_per_cycle_per_sm() * self.sm_count as f64 * self.clock_hz
    }
}

/// Result of replaying a deposition workload through the GPU model.
#[derive(Debug, Clone, Default)]
pub struct GpuDepositionReport {
    /// Total modelled cycles on one SM processing the whole stream.
    pub cycles: f64,
    /// Cycles spent in FP64 arithmetic.
    pub compute_cycles: f64,
    /// Cycles spent in atomic transactions and replays.
    pub atomic_cycles: f64,
    /// Cycles spent in particle-data load transactions.
    pub load_cycles: f64,
    /// Canonical useful FLOPs credited.
    pub useful_flops: f64,
    /// Total atomic replays observed (conflict lanes).
    pub atomic_replays: u64,
    /// Total distinct-segment atomic transactions.
    pub atomic_transactions: u64,
}

impl GpuDepositionReport {
    /// Fraction of theoretical FP64 peak achieved (per SM), as in Table 3.
    pub fn peak_fraction(&self, cfg: &GpuConfig) -> f64 {
        if self.cycles == 0.0 {
            return 0.0;
        }
        self.useful_flops / (self.cycles * cfg.peak_flops_per_cycle_per_sm())
    }
}

/// The warp-granularity deposition model.
#[derive(Debug, Clone)]
pub struct GpuModel {
    cfg: GpuConfig,
}

impl GpuModel {
    /// Builds a model from a configuration.
    pub fn new(cfg: GpuConfig) -> Self {
        Self { cfg }
    }

    /// The configuration.
    pub fn cfg(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Replays a deposition workload.
    ///
    /// * `node_addresses` — for each particle, the byte addresses of every
    ///   grid element it atomically updates (3 current components x
    ///   nodes-per-component). Addresses must be in a consistent virtual
    ///   layout so coalescing is meaningful; the harness derives them from
    ///   the actual grid indices of the actual particle stream.
    /// * `flops_per_particle` — canonical useful FLOPs (419 for QSP).
    /// * `arith_flops_per_particle` — FP64 operations the kernel really
    ///   executes per particle (shape factors + weighting + adds).
    pub fn deposit(
        &self,
        node_addresses: &[Vec<u64>],
        flops_per_particle: f64,
        arith_flops_per_particle: f64,
    ) -> GpuDepositionReport {
        let mut rep = GpuDepositionReport::default();
        let w = self.cfg.warp_size;
        let peak = self.cfg.peak_flops_per_cycle_per_sm();

        for warp in node_addresses.chunks(w) {
            let lanes = warp.len();
            // 1. Particle loads: 7 f64 per particle (x, y, z, ux, uy, uz, w)
            //    in SoA order are perfectly coalesced: ceil(lanes*8 /
            //    segment) transactions per attribute.
            let attr_bytes = (lanes * 8) as u64;
            let segs = attr_bytes.div_ceil(self.cfg.segment_bytes);
            rep.load_cycles += 7.0 * segs as f64 * self.cfg.load_segment_cy;

            // 2. Arithmetic at full FP64 rate; the warp occupies
            //    warp_size/fp64_cores issue slots.
            rep.compute_cycles += arith_flops_per_particle * lanes as f64 / peak;
            rep.compute_cycles +=
                self.cfg.per_particle_overhead_cy * lanes as f64 / self.cfg.warp_size as f64;

            // 3. Atomics: iterate node slots; each warp-wide atomic is
            //    split by the hardware into one transaction per distinct
            //    segment plus a replay per extra lane on the same address.
            let max_nodes = warp.iter().map(|a| a.len()).max().unwrap_or(0);
            for k in 0..max_nodes {
                let addrs: Vec<u64> = warp.iter().filter_map(|a| a.get(k).copied()).collect();
                if addrs.is_empty() {
                    continue;
                }
                // Distinct segments -> transactions.
                let mut segs: Vec<u64> = addrs.iter().map(|a| a / self.cfg.segment_bytes).collect();
                segs.sort_unstable();
                segs.dedup();
                rep.atomic_transactions += segs.len() as u64;
                rep.atomic_cycles += segs.len() as f64 * self.cfg.atomic_segment_cy;

                // Same-address replays.
                let mut sorted = addrs.clone();
                sorted.sort_unstable();
                let distinct = {
                    let mut d = sorted.clone();
                    d.dedup();
                    d.len()
                };
                let replays = (addrs.len() - distinct) as u64;
                rep.atomic_replays += replays;
                rep.atomic_cycles += replays as f64 * self.cfg.atomic_conflict_cy;
            }
        }

        rep.useful_flops = flops_per_particle * node_addresses.len() as f64;
        rep.cycles = rep.compute_cycles + rep.atomic_cycles + rep.load_cycles;
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a800_peak_is_about_9_7_tflops() {
        let cfg = GpuConfig::a800();
        let tflops = cfg.peak_flops() / 1e12;
        assert!((tflops - 9.7).abs() < 0.1, "got {tflops}");
    }

    #[test]
    fn conflicts_increase_cycles() {
        let model = GpuModel::new(GpuConfig::a800());
        // 32 particles all writing the same 8 addresses (full conflict)...
        let same: Vec<Vec<u64>> = (0..32)
            .map(|_| (0..8u64).map(|k| k * 8).collect())
            .collect();
        // ...versus 32 particles writing disjoint addresses.
        let disjoint: Vec<Vec<u64>> = (0..32u64)
            .map(|p| (0..8u64).map(|k| (p * 8 + k) * 512).collect())
            .collect();
        let r_same = model.deposit(&same, 100.0, 100.0);
        let r_disjoint = model.deposit(&disjoint, 100.0, 100.0);
        assert!(r_same.atomic_replays > 0);
        assert_eq!(r_disjoint.atomic_replays, 0);
        // Conflicts trade replays for transactions; the model must charge
        // the replayed case at least as much as the fully-coalesced case.
        assert!(r_same.atomic_cycles > 0.0 && r_disjoint.atomic_cycles > 0.0);
    }

    #[test]
    fn coalesced_atomics_fewer_transactions() {
        let model = GpuModel::new(GpuConfig::a800());
        // All lanes in one 128B segment: 1 transaction + 0 replays.
        let coalesced: Vec<Vec<u64>> = (0..32u64).map(|p| vec![p * 4]).collect();
        let r = model.deposit(&coalesced, 1.0, 1.0);
        assert_eq!(r.atomic_transactions, 1);
        // Scattered: every lane its own segment.
        let scattered: Vec<Vec<u64>> = (0..32u64).map(|p| vec![p * 4096]).collect();
        let r2 = model.deposit(&scattered, 1.0, 1.0);
        assert_eq!(r2.atomic_transactions, 32);
        assert!(r2.atomic_cycles > r.atomic_cycles);
    }

    #[test]
    fn efficiency_bounded_by_compute() {
        let model = GpuModel::new(GpuConfig::a800());
        // No atomics at all: efficiency == useful/arith ratio.
        let none: Vec<Vec<u64>> = (0..64).map(|_| vec![]).collect();
        let r = model.deposit(&none, 64.0, 64.0);
        let f = r.peak_fraction(model.cfg());
        assert!(f <= 1.0 && f > 0.5, "got {f}");
    }

    #[test]
    fn empty_workload_is_zero() {
        let model = GpuModel::new(GpuConfig::a800());
        let r = model.deposit(&[], 100.0, 100.0);
        assert_eq!(r.cycles, 0.0);
        assert_eq!(r.peak_fraction(model.cfg()), 0.0);
    }
}
