//! The unified execution layer: a persistent worker pool plus pluggable
//! tile schedulers.
//!
//! Before this module existed, every sharded phase of the step loop
//! (gather+push, both deposit kernel families, the counting sort, the
//! Z-slab field solve, guard exchange, window shift) paid a fresh
//! `std::thread::scope` spawn — roughly six spawn/join cycles per step —
//! and distributed work by static contiguous chunks only. The execution
//! layer lifts both decisions out of the call sites:
//!
//! * [`WorkerPool`] owns `workers - 1` long-lived threads that **park**
//!   between dispatches (the calling thread acts as worker 0), so a
//!   phase dispatch costs a mutex/condvar wake instead of thread spawns;
//! * [`SchedulerPolicy`] selects how items are claimed: [`Static`]
//!   reproduces the contiguous [`shard_bounds`] chunks, [`Stealing`]
//!   lets workers claim batches of K items from a shared atomic cursor
//!   (K auto-sized from items and workers, overridable via
//!   [`Exec::with_steal_chunk`]) — the right scheme for load-imbalanced
//!   LWFA tiles where one hot tile would otherwise serialise its whole
//!   static chunk.
//!
//! # Determinism
//!
//! Results are bit-identical across worker counts *and* scheduler
//! policies by construction, not by scheduling luck: per-item work is a
//! pure function of the item (each worker charges a private
//! [`Machine::fork_worker`] fork whose cache the item handler flushes at
//! the item boundary), per-item outputs land in per-item slots, and the
//! caller applies/merges them **in global item order** no matter which
//! worker executed what. The scheduler only decides *who* runs an item,
//! never *what the item computes* or *how results are combined*.
//!
//! [`Static`]: SchedulerPolicy::Static
//! [`Stealing`]: SchedulerPolicy::Stealing

// The execution layer is one of the two places in the workspace allowed
// to use `unsafe` (the other is the guard exchange): erasing the borrow
// lifetime of a dispatched closure (bounded by the pool's completion
// barrier) and handing out disjoint `&mut` slice elements through the
// checked [`Partition`] abstraction. Every unsafe item below carries a
// per-item `#[allow(unsafe_code)]` plus a SAFETY comment stating its
// invariant — `mpic-lint` (rules L1/L2/L4) enforces exactly that shape.

use std::any::Any;
use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};

use crate::counters::MachineCounters;
use crate::machine::Machine;
use crate::partition::Partition;
use crate::shard::shard_bounds;
use crate::sync::{Arc, AtomicUsize, Ordering, StdSync, SyncPrims};

/// Structured description of a dispatch that failed because a worker
/// panicked or died.
///
/// When a broadcast fails, the pool unwinds out of [`WorkerPool::broadcast`]
/// with an `ExecError` as the panic *payload* (via [`panic_any`]), so a
/// recovery layer that wraps the step loop in [`catch_unwind`] can
/// [`ExecError::from_payload`] the cause and distinguish an execution-layer
/// failure (recoverable: restore a checkpoint and retry) from an arbitrary
/// logic bug (not ours to swallow — re-raise it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// Worker id that failed (0 is the dispatching thread).
    pub worker: usize,
    /// 1-based index of the failing dispatch on this pool.
    pub dispatch: u64,
    /// Human-readable cause.
    pub detail: &'static str,
}

impl ExecError {
    /// Downcasts a caught panic payload to the execution error it
    /// carries, if the unwind originated in the execution layer.
    pub fn from_payload(payload: &(dyn Any + Send)) -> Option<&ExecError> {
        payload.downcast_ref::<ExecError>()
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker {} failed at dispatch {}: {}",
            self.worker, self.dispatch, self.detail
        )
    }
}

impl std::error::Error for ExecError {}

/// What an injected fault does to the targeted worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultKind {
    /// The worker panics at the start of its share of the dispatch; its
    /// thread survives (the pool catches the unwind per job).
    #[default]
    Panic,
    /// The worker's thread exits after bookkeeping a dying gasp — the
    /// pool sees a finished thread and refuses further dispatches until
    /// [`WorkerPool::respawn_dead`] repairs it. Worker 0 is the
    /// dispatching thread and cannot be killed; `Die` degrades to
    /// `Panic` there.
    Die,
}

/// A one-shot fault to inject: `worker` fails at the pool's
/// `dispatch`-th broadcast (1-based, see [`WorkerPool::dispatch_count`]).
///
/// Armed either programmatically ([`WorkerPool::inject_fault`] — the test
/// hook) or from the environment at pool construction
/// ([`FaultPlan::from_env`] — the CI fault matrix). The plan is consumed
/// when it fires, so a retried dispatch after recovery runs clean; note
/// that env-armed plans re-arm on every pool construction while the
/// variables remain set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Worker id to fail (0 = the dispatching thread).
    pub worker: usize,
    /// 1-based pool dispatch index at which to fire.
    pub dispatch: u64,
    /// Panic the job or kill the thread.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// Reads `MPIC_FAULT_WORKER` (required), `MPIC_FAULT_DISPATCH`
    /// (default 1) and `MPIC_FAULT_KIND` (`panic` | `die`, default
    /// `panic`) from the environment.
    pub fn from_env() -> Option<Self> {
        let worker = std::env::var("MPIC_FAULT_WORKER").ok()?.parse().ok()?;
        let dispatch = std::env::var("MPIC_FAULT_DISPATCH")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1);
        let kind = match std::env::var("MPIC_FAULT_KIND").as_deref() {
            Ok("die") => FaultKind::Die,
            _ => FaultKind::Panic,
        };
        Some(Self {
            worker,
            dispatch,
            kind,
        })
    }
}

/// Minimum items (keys, SoA slots, ...) per potential worker before a
/// sharded phase is worth threading at all: below this the dispatch wake
/// costs more than the work, so callers fall back to the 1-worker inline
/// path. One shared constant — used by the counting sort, the attribute
/// permutation and the guard exchange — so no two phases can ever
/// disagree about when threads are worth waking.
pub const INLINE_ITEM_THRESHOLD: usize = 4096;

/// How a dispatch distributes items over pool workers.
///
/// Either policy produces bit-identical results (see the module docs);
/// the choice is purely a host-performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Contiguous [`shard_bounds`] chunks, one per worker — minimal
    /// claim overhead, best for uniform per-item cost.
    #[default]
    Static,
    /// Workers claim batches of items from a shared atomic cursor —
    /// work-stealing-style load balancing for skewed per-item cost
    /// (e.g. LWFA particle tiles: mostly empty, a few hot). The batch
    /// size is auto-derived from items and workers; callers can pin it
    /// with [`Exec::with_steal_chunk`].
    Stealing,
}

impl SchedulerPolicy {
    /// Parses a CLI-style name (`static` / `stealing`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "static" => Some(Self::Static),
            "stealing" => Some(Self::Stealing),
            _ => None,
        }
    }

    /// Stable lowercase label (CLI, JSON records).
    pub fn label(self) -> &'static str {
        match self {
            Self::Static => "static",
            Self::Stealing => "stealing",
        }
    }
}

/// A dispatched job: a borrowed `Fn(worker_id)` with its lifetime erased.
/// [`WorkerPool::broadcast`] guarantees (even under unwinding) that no
/// worker still holds the pointer when the dispatch returns, which is
/// what makes the erasure sound.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared execution is the point) and the
// pool's completion barrier bounds its use to the broadcast call.
#[allow(unsafe_code)]
unsafe impl Send for Job {}

/// State shared between the dispatching thread and the parked workers,
/// generic over the [`SyncPrims`] implementation (real `std` primitives
/// in production, instrumented shims under the model checker).
struct SharedG<S: SyncPrims> {
    state: S::Lock<State>,
    /// Workers park here between jobs.
    work_cv: S::Signal,
    /// The dispatcher parks here until `active` drains to zero.
    done_cv: S::Signal,
}

#[derive(Default)]
struct State {
    /// Incremented once per dispatch; workers detect new work by epoch.
    epoch: u64,
    job: Option<Job>,
    /// Background workers still executing the current epoch.
    active: usize,
    shutdown: bool,
    /// First panic payload captured from a background worker.
    panic: Option<Box<dyn Any + Send>>,
    /// Total broadcasts on this pool (1-based id of the latest), counted
    /// on the inline path too — the coordinate system for [`FaultPlan`].
    dispatch: u64,
    /// Pending one-shot fault, consumed when it fires.
    fault: Option<FaultPlan>,
}

impl State {
    /// Takes the pending fault iff it targets `worker` at the current
    /// dispatch. One-shot: a fired plan does not re-trigger on retry.
    fn take_fault_for(&mut self, worker: usize) -> Option<FaultPlan> {
        match self.fault {
            Some(p) if p.worker == worker && p.dispatch == self.dispatch => self.fault.take(),
            _ => None,
        }
    }
}

impl<S: SyncPrims> SharedG<S> {
    /// Locks the protocol state. (Poison recovery — a *job* panicking on
    /// another thread must not wedge the pool's own critical sections —
    /// lives in [`StdSync::lock`].)
    fn lock(&self) -> S::Guard<'_, State> {
        S::lock(&self.state)
    }
}

/// A persistent pool of `workers - 1` parked threads plus the calling
/// thread (worker 0), generic over the [`SyncPrims`] facade.
///
/// The pool is created once (e.g. owned by a `Simulation` for its whole
/// lifetime) and reused by every phase of every step; between dispatches
/// the threads park on a [`SyncPrims::Signal`], so an idle pool consumes
/// no CPU. A pool of size 1 owns no threads at all and dispatches
/// inline — the sequential configuration has zero synchronisation
/// overhead.
///
/// Production code uses the [`WorkerPool`] alias (`PoolCore<StdSync>`,
/// monomorphised onto raw `std` primitives); the `mpic-check` model
/// checker instantiates the *same* protocol over its instrumented shim
/// scheduler.
pub struct PoolCore<S: SyncPrims = StdSync> {
    shared: Arc<SharedG<S>>,
    threads: Vec<S::Thread>,
    workers: usize,
}

/// The production pool: [`PoolCore`] monomorphised over [`StdSync`].
pub type WorkerPool = PoolCore<StdSync>;

impl<S: SyncPrims> std::fmt::Debug for PoolCore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl<S: SyncPrims> PoolCore<S> {
    /// Spawns a pool of `workers` (clamped to at least 1). The calling
    /// thread participates as worker 0, so only `workers - 1` threads
    /// are created.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(SharedG {
            state: S::lock_new(State {
                fault: FaultPlan::from_env(),
                ..State::default()
            }),
            work_cv: S::signal_new(),
            done_cv: S::signal_new(),
        });
        let threads = (1..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                S::spawn(format!("mpic-worker-{w}"), move || {
                    worker_loop::<S>(&shared, w, 0)
                })
            })
            .collect();
        Self {
            shared,
            threads,
            workers,
        }
    }

    /// A single-worker pool: no threads, every dispatch runs inline on
    /// the calling thread. Used by the sequential convenience wrappers.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Number of workers (including the calling thread).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Arms a one-shot fault (the programmatic test hook; the CI fault
    /// matrix uses [`FaultPlan::from_env`] instead). Replaces any
    /// pending plan.
    pub fn inject_fault(&self, plan: FaultPlan) {
        self.shared.lock().fault = Some(plan);
    }

    /// The pending (not yet fired) fault plan, if any.
    pub fn pending_fault(&self) -> Option<FaultPlan> {
        self.shared.lock().fault
    }

    /// Total broadcasts dispatched on this pool so far. The next
    /// broadcast has id `dispatch_count() + 1` — the coordinate a
    /// [`FaultPlan`] targets.
    pub fn dispatch_count(&self) -> u64 {
        self.shared.lock().dispatch
    }

    /// Ids of workers whose threads have terminated (a [`FaultKind::Die`]
    /// injection, or a real thread loss). A pool with dead workers
    /// refuses dispatches with a structured [`ExecError`] until
    /// [`WorkerPool::respawn_dead`] repairs it — silently running a
    /// dispatch short-handed would drop that worker's static share.
    pub fn dead_workers(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| S::is_finished(t))
            .map(|(i, _)| i + 1)
            .collect()
    }

    /// Snapshot of the protocol bookkeeping — `(epoch, dispatch, active,
    /// job_in_flight)` — for the model checker's quiescence invariants
    /// (acks collected exactly once, respawned pool indistinguishable
    /// from fresh). Not part of the stable API.
    #[doc(hidden)]
    pub fn protocol_state(&self) -> (u64, u64, usize, bool) {
        let st = self.shared.lock();
        (st.epoch, st.dispatch, st.active, st.job.is_some())
    }

    /// Replaces every terminated worker thread with a freshly spawned
    /// one parked on the same shared state; returns how many were
    /// respawned. Safe to call at any quiescent point (no dispatch in
    /// flight); the recovery driver calls it after catching an
    /// [`ExecError`].
    pub fn respawn_dead(&mut self) -> usize {
        // `&mut self` guarantees quiescence, so the epoch read here is
        // the one the replacement thread must treat as already-seen:
        // everything earlier was handled (or abandoned with its
        // bookkeeping done) by the thread it replaces.
        let epoch = self.shared.lock().epoch;
        let mut respawned = 0;
        for (i, slot) in self.threads.iter_mut().enumerate() {
            if !S::is_finished(slot) {
                continue;
            }
            let w = i + 1;
            let shared = Arc::clone(&self.shared);
            let fresh = S::spawn(format!("mpic-worker-{w}"), move || {
                worker_loop::<S>(&shared, w, epoch)
            });
            let dead = std::mem::replace(slot, fresh);
            S::join(dead);
            respawned += 1;
        }
        respawned
    }

    /// Runs `f(worker_id)` once on every worker (ids `0..workers()`,
    /// worker 0 being the calling thread) and returns when all have
    /// finished. Panics from any worker are propagated to the caller
    /// after the barrier.
    ///
    /// This is the one primitive every scheduler builds on; phases
    /// normally use [`Exec::for_each`] / [`Exec::run_counted`] instead.
    ///
    /// # Panics
    ///
    /// Panics if a dispatch is already in flight on this pool —
    /// re-entrant use (dispatching from inside a dispatched closure) or
    /// concurrent use from two threads. One job at a time is the
    /// invariant that keeps the lifetime-erased closure pointer alive
    /// exactly as long as workers can see it, so overlap is refused
    /// outright (checked under the state lock, never a data race).
    // Lifetime erasure of the dispatched closure is the pool's one
    // irreducible unsafe operation; the invariant is stated at the site.
    #[allow(unsafe_code)]
    pub fn broadcast(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.threads.is_empty() {
            let (dispatch, fault) = {
                let mut st = self.shared.lock();
                st.dispatch += 1;
                (st.dispatch, st.take_fault_for(0))
            };
            if fault.is_some() {
                panic_any(ExecError {
                    worker: 0,
                    dispatch,
                    detail: "injected worker fault",
                });
            }
            f(0);
            return;
        }
        // A pool with dead threads must not dispatch: the dead workers'
        // static shares would silently never run. Refuse with the same
        // structured payload an in-flight failure produces, so the
        // recovery layer repairs ([`Self::respawn_dead`]) and retries.
        // (The refused attempt does not consume a dispatch id.)
        if let Some(&w) = self.dead_workers().first() {
            let dispatch = self.shared.lock().dispatch + 1;
            panic_any(ExecError {
                worker: w,
                dispatch,
                detail: "worker thread dead; pool needs respawn_dead()",
            });
        }
        // SAFETY: erasing the borrow lifetime is sound because this
        // function does not return (or unwind) until every worker has
        // finished with the pointer — the completion barrier below runs
        // even when worker 0's share unwinds — and the in-flight check
        // rejects any second job that could outlive its own borrow.
        let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let (dispatch, fault0) = {
            let mut st = self.shared.lock();
            assert!(
                st.active == 0 && st.job.is_none(),
                "broadcast while a dispatch is in flight (re-entrant or \
                 concurrent WorkerPool use)"
            );
            st.dispatch += 1;
            let fault0 = st.take_fault_for(0);
            st.job = Some(Job(f_static as *const _));
            st.epoch += 1;
            st.active = self.threads.len();
            st.panic = None;
            S::wake_all(&self.shared.work_cv);
            (st.dispatch, fault0)
        };
        // Worker 0's share runs under catch_unwind so the completion
        // barrier below is unconditional: the borrowed closure can never
        // dangle, and the panic (ours or an injected fault) is re-raised
        // only after every background worker has quiesced.
        let local = catch_unwind(AssertUnwindSafe(|| {
            if fault0.is_some() {
                panic_any(ExecError {
                    worker: 0,
                    dispatch,
                    detail: "injected worker fault",
                });
            }
            f(0);
        }));
        let background = {
            let mut st = self.shared.lock();
            while st.active > 0 {
                st = S::wait(&self.shared.done_cv, &self.shared.state, st);
            }
            st.job = None;
            st.panic.take()
        };
        if let Some(p) = background {
            resume_unwind(p);
        }
        if let Err(p) = local {
            resume_unwind(p);
        }
    }
}

impl WorkerPool {
    /// Binds this pool to a scheduling policy, yielding the lightweight
    /// [`Exec`] handle the sharded phases take.
    pub fn exec(&self, policy: SchedulerPolicy) -> Exec<'_> {
        Exec::new(self, policy)
    }
}

impl<S: SyncPrims> Drop for PoolCore<S> {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
            S::wake_all(&self.shared.work_cv);
        }
        for t in self.threads.drain(..) {
            S::join(t);
        }
    }
}

// Dereferences the lifetime-erased job pointer published by `broadcast`;
// the SAFETY argument lives at the single deref site below.
#[allow(unsafe_code)]
fn worker_loop<S: SyncPrims>(shared: &SharedG<S>, id: usize, start_epoch: u64) {
    // `start_epoch` is captured by the spawner *before* the thread
    // starts (0 at pool construction, the current quiescent epoch on
    // respawn): reading it here instead would race with an early
    // broadcast — the worker could adopt the new epoch as already-seen
    // and strand the dispatch barrier.
    let mut seen = start_epoch;
    loop {
        let (job, dispatch, fault) = {
            let mut st = shared.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    let fault = st.take_fault_for(id);
                    break (
                        st.job.expect("epoch advanced without a job"),
                        st.dispatch,
                        fault,
                    );
                }
                st = S::wait(&shared.work_cv, &shared.state, st);
            }
        };
        if let Some(plan) = fault {
            if plan.kind == FaultKind::Die {
                // Simulated thread loss: bookkeep a dying gasp (so the
                // dispatcher's barrier drains and the failure is
                // attributed) and exit the loop — the pool now reports
                // this worker in `dead_workers()`.
                let mut st = shared.lock();
                if st.panic.is_none() {
                    st.panic = Some(Box::new(ExecError {
                        worker: id,
                        dispatch,
                        detail: "injected worker death",
                    }));
                }
                st.active -= 1;
                if st.active == 0 {
                    S::wake_all(&shared.done_cv);
                }
                return;
            }
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            if fault.is_some() {
                panic_any(ExecError {
                    worker: id,
                    dispatch,
                    detail: "injected worker fault",
                });
            }
            // SAFETY: the dispatcher keeps the closure alive until
            // `active` drains to zero, which happens strictly after
            // this call.
            unsafe { (&*job.0)(id) }
        }));
        let mut st = shared.lock();
        if let Err(p) = result {
            if st.panic.is_none() {
                st.panic = Some(p);
            }
        }
        st.active -= 1;
        if st.active == 0 {
            S::wake_all(&shared.done_cv);
        }
    }
}

/// Target number of cursor claims per worker when the stealing chunk
/// size is auto-derived: large enough to amortise cursor contention,
/// small enough that a straggler chunk cannot serialise the tail.
const STEAL_CLAIMS_PER_WORKER: usize = 4;

/// Items claimed per [`SchedulerPolicy::Stealing`] cursor fetch:
/// `override_k` when the caller pinned one, else auto-sized so each
/// worker makes about [`STEAL_CLAIMS_PER_WORKER`] claims. Always at
/// least 1; small item counts (tiles) degrade gracefully to the
/// one-at-a-time claims of the original scheduler.
fn steal_chunk(len: usize, workers: usize, override_k: Option<usize>) -> usize {
    match override_k {
        Some(k) => k.max(1),
        None => (len / (workers * STEAL_CLAIMS_PER_WORKER).max(1)).max(1),
    }
}

/// A pool bound to a scheduling policy: the handle every sharded phase
/// receives. `Copy`, so it threads through call stacks like a plain
/// configuration value.
#[derive(Clone, Copy)]
pub struct Exec<'a> {
    pool: &'a WorkerPool,
    policy: SchedulerPolicy,
    /// Explicit stealing chunk size; `None` auto-sizes from items and
    /// workers (see [`steal_chunk`]).
    steal_chunk: Option<usize>,
}

impl<'a> Exec<'a> {
    /// Builds a handle (equivalent to [`WorkerPool::exec`]).
    pub fn new(pool: &'a WorkerPool, policy: SchedulerPolicy) -> Self {
        Self {
            pool,
            policy,
            steal_chunk: None,
        }
    }

    /// Overrides the stealing scheduler's claim-batch size (clamped to at
    /// least 1). No effect under [`SchedulerPolicy::Static`]; results are
    /// bit-identical for any value — the chunk size only changes which
    /// worker runs which items, never what an item computes or how
    /// results merge.
    pub fn with_steal_chunk(mut self, k: usize) -> Self {
        self.steal_chunk = Some(k.max(1));
        self
    }

    /// The underlying pool.
    pub fn pool(&self) -> &'a WorkerPool {
        self.pool
    }

    /// The scheduling policy in force.
    pub fn policy(&self) -> SchedulerPolicy {
        self.policy
    }

    /// Worker count of the underlying pool.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Runs `f(index, &mut item)` once per item, distributed over the
    /// pool per the scheduler policy. Items must be independent: `f`
    /// may not assume anything about which worker runs an item or in
    /// what order items execute. With a 1-worker pool (or a single
    /// item) this runs inline with zero synchronisation.
    // The per-item `&mut` handout goes through the checked `Partition`
    // grants; each unsafe site states why its claims are disjoint.
    #[allow(unsafe_code)]
    pub fn for_each<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let len = items.len();
        if self.workers() == 1 && len > 0 {
            // A single-worker pool has no threads, so `broadcast`
            // degenerates to an inline call — but it still counts the
            // dispatch and honors an armed [`FaultPlan`], keeping fault
            // injection and recovery uniform across worker counts.
            let slots = Partition::new(items);
            self.pool.broadcast(&|_w| {
                for i in 0..len {
                    // SAFETY: the single inline worker grants each
                    // index exactly once.
                    f(i, unsafe { slots.grant(i) });
                }
            });
            return;
        }
        let workers = self.workers().min(len);
        if workers <= 1 {
            // Multi-worker pool, but too few items to shard: run inline
            // without waking the pool.
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        let slots = Partition::new(items);
        match self.policy {
            SchedulerPolicy::Static => {
                let bounds = shard_bounds(len, workers);
                self.pool.broadcast(&|w| {
                    if let Some(&(lo, hi)) = bounds.get(w) {
                        for i in lo..hi {
                            // SAFETY: static chunks are disjoint, so
                            // each index is granted exactly once.
                            f(i, unsafe { slots.grant(i) });
                        }
                    }
                });
            }
            SchedulerPolicy::Stealing => {
                // Chunked claims: one fetch_add hands out a batch of K
                // consecutive indices, cutting cursor contention K-fold
                // while the batch bound keeps the load balancing.
                let k = steal_chunk(len, workers, self.steal_chunk);
                let cursor = AtomicUsize::new(0);
                self.pool.broadcast(&|_w| loop {
                    // Relaxed ordering suffices: the cursor is a pure
                    // claim ticket (its value publishes no other memory),
                    // and the dispatch barrier orders item writes.
                    let lo = cursor.fetch_add(k, Ordering::Relaxed);
                    if lo >= len {
                        break;
                    }
                    for i in lo..(lo + k).min(len) {
                        // SAFETY: fetch_add hands each chunk (and thus
                        // each index) to exactly one worker, so each
                        // index is granted exactly once.
                        f(i, unsafe { slots.grant(i) });
                    }
                });
            }
        }
    }

    /// Runs `f` once per item on a forked worker [`Machine`] and returns
    /// the per-item [`MachineCounters`] deltas **indexed by item** — the
    /// cost-charged variant of [`Exec::for_each`] used by the emulated
    /// pipeline phases.
    ///
    /// Each participating worker forks `main` once per dispatch
    /// ([`Machine::fork_worker`]: private counters, flushed cache) and
    /// drains the fork after every item, so each delta is a pure
    /// function of the item provided `f` flushes the worker cache at the
    /// item boundary (both pipeline phases do, via
    /// `wm.mem().flush_cache()`). Because deltas land in per-item slots,
    /// the caller's sequential absorb loop sums them in item order
    /// regardless of worker count or policy — cycle totals and any
    /// caller-side fixed-order value reduction stay bit-identical.
    ///
    /// `f` receives `(worker_machine, item_index, item, worker
    /// scratch)`; `scratch[w]` is private to worker `w` for the whole
    /// dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` holds fewer entries than the number of
    /// workers that may participate (`min(workers(), items.len())`), or
    /// propagates the panic of any item handler.
    // Items, per-item output slots and per-worker scratch are all handed
    // out through checked `Partition` grants; each unsafe site states
    // why its claim is unique.
    #[allow(unsafe_code)]
    pub fn run_counted<T, S, F>(
        &self,
        main: &Machine,
        items: &mut [T],
        scratch: &mut [S],
        f: F,
    ) -> Vec<MachineCounters>
    where
        T: Send,
        S: Send,
        F: Fn(&mut Machine, usize, &mut T, &mut S) + Sync,
    {
        let len = items.len();
        if len == 0 {
            return Vec::new();
        }
        let workers = self.workers().min(len);
        assert!(
            scratch.len() >= workers,
            "scratch ({}) must cover every participating worker ({workers})",
            scratch.len(),
        );
        let mut out = vec![MachineCounters::default(); len];
        let items_sl = Partition::new(items);
        let out_sl = Partition::new(&mut out);
        let scratch_sl = Partition::new(scratch);
        let run_item = |wm: &mut Machine, scr: &mut S, i: usize| {
            // SAFETY: each item index is claimed by exactly one worker
            // (scheduler claim), so the item grant and the matching
            // output-slot grant are both unique.
            f(wm, i, unsafe { items_sl.grant(i) }, scr);
            // SAFETY: as above — output slot `i` pairs with item `i`.
            *unsafe { out_sl.grant(i) } = wm.drain_counters();
        };
        if workers == 1 {
            // Inline, but still on a fork: the per-item deltas must be
            // the same ones a multi-worker run produces.
            let run_all = |_w: usize| {
                let mut wm = main.fork_worker();
                // SAFETY: single worker, single scratch slot, granted
                // once.
                let scr = unsafe { scratch_sl.grant(0) };
                for i in 0..len {
                    run_item(&mut wm, scr, i);
                }
            };
            if self.workers() == 1 {
                // Single-worker pool: go through `broadcast` so the
                // dispatch is counted and an armed [`FaultPlan`] fires
                // here too (no threads — this is an inline call).
                self.pool.broadcast(&run_all);
            } else {
                // Multi-worker pool with a single item: run inline
                // without waking the pool.
                run_all(0);
            }
            return out;
        }
        match self.policy {
            SchedulerPolicy::Static => {
                let bounds = shard_bounds(len, workers);
                self.pool.broadcast(&|w| {
                    let Some(&(lo, hi)) = bounds.get(w) else {
                        return;
                    };
                    let mut wm = main.fork_worker();
                    // SAFETY: one scratch slot per worker id, granted
                    // once per dispatch by that worker alone.
                    let scr = unsafe { scratch_sl.grant(w) };
                    for i in lo..hi {
                        run_item(&mut wm, scr, i);
                    }
                });
            }
            SchedulerPolicy::Stealing => {
                let k = steal_chunk(len, workers, self.steal_chunk);
                let cursor = AtomicUsize::new(0);
                self.pool.broadcast(&|w| {
                    if w >= workers {
                        return;
                    }
                    // Fork lazily: a worker that never claims an item
                    // (all stolen before it woke) skips the fork cost.
                    let mut wm: Option<Machine> = None;
                    // SAFETY: one scratch slot per worker id, granted
                    // once per dispatch by that worker alone.
                    let scr = unsafe { scratch_sl.grant(w) };
                    loop {
                        // Relaxed ordering suffices: pure claim ticket,
                        // same argument as the `for_each` cursor above.
                        let lo = cursor.fetch_add(k, Ordering::Relaxed);
                        if lo >= len {
                            break;
                        }
                        let wm = wm.get_or_insert_with(|| main.fork_worker());
                        for i in lo..(lo + k).min(len) {
                            run_item(wm, scr, i);
                        }
                    }
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::MachineConfig;
    use crate::counters::Phase;
    use crate::sync::AtomicU64;
    use std::collections::HashSet;
    use std::sync::Mutex;

    /// Bumps a per-test hit counter.
    fn bump(c: &AtomicU64) {
        // Relaxed ordering: plain hit counters — the tests only read
        // them after the dispatch barrier, which orders the increments.
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a per-test hit counter (only after the dispatch barrier).
    fn total(c: &AtomicU64) -> u64 {
        // Relaxed ordering: see `bump` — reads happen after the barrier.
        c.load(Ordering::Relaxed)
    }

    fn charge_item(wm: &mut Machine, t: usize, item: &mut f64, scratch: &mut Vec<u64>) {
        wm.mem().flush_cache();
        scratch.push(t as u64);
        wm.set_phase(Phase::Compute);
        // Cost depends only on the item: deterministic per tile.
        wm.s_ops(t + 1);
        *item = t as f64;
    }

    #[test]
    fn counters_indexed_by_item_for_any_worker_count_and_policy() {
        let main = Machine::new(MachineConfig::lx2());
        let mut totals: Vec<Vec<f64>> = Vec::new();
        for &w in &[1usize, 3, 5, 11] {
            for policy in [SchedulerPolicy::Static, SchedulerPolicy::Stealing] {
                let pool = WorkerPool::new(w);
                let mut items = vec![0.0; 11];
                let mut scratch = vec![Vec::new(); w];
                let counters =
                    pool.exec(policy)
                        .run_counted(&main, &mut items, &mut scratch, charge_item);
                assert_eq!(counters.len(), 11);
                assert!(items.iter().enumerate().all(|(t, &v)| v == t as f64));
                totals.push(
                    counters
                        .iter()
                        .map(|c| c.perf.cycles(Phase::Compute))
                        .collect(),
                );
            }
        }
        for later in &totals[1..] {
            assert_eq!(
                &totals[0], later,
                "per-item deltas must not depend on sharding or policy"
            );
        }
    }

    #[test]
    fn empty_items_yield_no_counters() {
        let main = Machine::new(MachineConfig::lx2());
        let pool = WorkerPool::new(4);
        let mut items: Vec<f64> = Vec::new();
        let mut scratch = vec![Vec::new(); 4];
        let counters = pool.exec(SchedulerPolicy::Static).run_counted(
            &main,
            &mut items,
            &mut scratch,
            charge_item,
        );
        assert!(counters.is_empty());
    }

    #[test]
    fn workers_exceeding_items_are_clamped() {
        let main = Machine::new(MachineConfig::lx2());
        let pool = WorkerPool::new(8);
        let mut items = vec![0.0; 2];
        let mut scratch = vec![Vec::new(); 8];
        let counters = pool.exec(SchedulerPolicy::Stealing).run_counted(
            &main,
            &mut items,
            &mut scratch,
            charge_item,
        );
        assert_eq!(counters.len(), 2);
        assert_eq!(items, vec![0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "must cover every participating worker")]
    fn undersized_scratch_is_rejected() {
        let main = Machine::new(MachineConfig::lx2());
        let pool = WorkerPool::new(4);
        let mut items = vec![0.0; 16];
        let mut scratch = vec![Vec::new(); 2];
        let _ = pool.exec(SchedulerPolicy::Static).run_counted(
            &main,
            &mut items,
            &mut scratch,
            charge_item,
        );
    }

    #[test]
    fn broadcast_runs_every_worker_exactly_once() {
        let pool = WorkerPool::new(5);
        let seen = Mutex::new(Vec::new());
        pool.broadcast(&|w| seen.lock().unwrap().push(w));
        let mut ids = seen.into_inner().unwrap();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pool_is_reusable_across_many_dispatches() {
        let pool = WorkerPool::new(3);
        let hits = AtomicU64::new(0);
        for _ in 0..100 {
            pool.broadcast(&|_| {
                bump(&hits);
            });
        }
        assert_eq!(total(&hits), 300);
    }

    #[test]
    #[should_panic(expected = "deliberate worker panic")]
    fn worker_panic_propagates_to_dispatcher() {
        let pool = WorkerPool::new(4);
        pool.broadcast(&|w| {
            if w == 2 {
                panic!("deliberate worker panic");
            }
        });
    }

    #[test]
    #[should_panic(expected = "dispatch is in flight")]
    fn reentrant_broadcast_is_refused() {
        // Dispatching from inside a dispatched closure must be refused
        // loudly (the lifetime-erasure invariant is one job at a time),
        // not corrupt the pool state.
        let pool = WorkerPool::new(2);
        pool.broadcast(&|w| {
            if w == 0 {
                pool.broadcast(&|_| {});
            }
        });
    }

    #[test]
    fn pool_survives_a_propagated_panic() {
        let pool = WorkerPool::new(3);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(&|w| {
                if w == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err());
        // The pool must still dispatch cleanly afterwards.
        let hits = AtomicU64::new(0);
        pool.broadcast(&|_| {
            bump(&hits);
        });
        assert_eq!(total(&hits), 3);
    }

    #[test]
    fn for_each_visits_every_item_exactly_once_under_both_policies() {
        for policy in [SchedulerPolicy::Static, SchedulerPolicy::Stealing] {
            for workers in [1usize, 2, 4, 7] {
                let pool = WorkerPool::new(workers);
                let mut items: Vec<usize> = vec![0; 97];
                pool.exec(policy).for_each(&mut items, |i, item| {
                    *item += i + 1;
                });
                for (i, &v) in items.iter().enumerate() {
                    assert_eq!(v, i + 1, "policy {policy:?} workers {workers}");
                }
            }
        }
    }

    #[test]
    fn stealing_claims_partition_the_index_space() {
        let pool = WorkerPool::new(4);
        let claimed = Mutex::new(HashSet::new());
        pool.exec(SchedulerPolicy::Stealing)
            .for_each(&mut [(); 64], |i, _| {
                assert!(claimed.lock().unwrap().insert(i), "index {i} claimed twice");
            });
        assert_eq!(claimed.into_inner().unwrap().len(), 64);
    }

    #[test]
    fn steal_chunk_auto_sizing_and_override() {
        // Auto: each worker should get about STEAL_CLAIMS_PER_WORKER
        // claims; tiny item counts degrade to single-item claims.
        assert_eq!(steal_chunk(8, 4, None), 1);
        assert_eq!(steal_chunk(64, 4, None), 4);
        assert_eq!(steal_chunk(4096, 8, None), 128);
        assert_eq!(steal_chunk(0, 4, None), 1);
        // Override wins verbatim (clamped to >= 1).
        assert_eq!(steal_chunk(64, 4, Some(7)), 7);
        assert_eq!(steal_chunk(64, 4, Some(0)), 1);
    }

    #[test]
    fn chunked_stealing_visits_every_item_once_at_ragged_boundaries() {
        // Chunk sizes that do not divide the item count exercise the
        // trailing partial chunk; every index must still be claimed by
        // exactly one worker.
        for k in [1usize, 3, 5, 16, 97, 1000] {
            let pool = WorkerPool::new(4);
            let claimed = Mutex::new(HashSet::new());
            pool.exec(SchedulerPolicy::Stealing)
                .with_steal_chunk(k)
                .for_each(&mut [(); 97], |i, _| {
                    assert!(
                        claimed.lock().unwrap().insert(i),
                        "chunk {k}: index {i} claimed twice"
                    );
                });
            assert_eq!(claimed.into_inner().unwrap().len(), 97, "chunk {k}");
        }
    }

    #[test]
    fn chunked_stealing_run_counted_is_bit_identical_to_static() {
        // The chunk size changes only who runs an item; per-item counter
        // deltas and item outputs must match the static schedule exactly,
        // including when an item's chunk boundary splits a worker's
        // natural share.
        let main = Machine::new(MachineConfig::lx2());
        let reference = {
            let pool = WorkerPool::new(1);
            let mut items = vec![0.0; 23];
            let mut scratch = vec![Vec::new(); 1];
            pool.exec(SchedulerPolicy::Static).run_counted(
                &main,
                &mut items,
                &mut scratch,
                charge_item,
            )
        };
        for workers in [2usize, 4, 7] {
            for k in [1usize, 2, 5, 23, 100] {
                let pool = WorkerPool::new(workers);
                let mut items = vec![0.0; 23];
                let mut scratch = vec![Vec::new(); workers];
                let counters = pool
                    .exec(SchedulerPolicy::Stealing)
                    .with_steal_chunk(k)
                    .run_counted(&main, &mut items, &mut scratch, charge_item);
                assert!(items.iter().enumerate().all(|(t, &v)| v == t as f64));
                for (i, (a, b)) in reference.iter().zip(&counters).enumerate() {
                    assert_eq!(
                        a.perf.cycles(Phase::Compute).to_bits(),
                        b.perf.cycles(Phase::Compute).to_bits(),
                        "workers {workers} chunk {k}: item {i} delta diverged"
                    );
                }
            }
        }
    }

    /// Runs `op` and returns the `ExecError` its unwind carried.
    fn expect_exec_error(op: impl FnOnce()) -> ExecError {
        let payload = catch_unwind(AssertUnwindSafe(op)).expect_err("operation should fail");
        ExecError::from_payload(payload.as_ref())
            .expect("unwind should carry a structured ExecError")
            .clone()
    }

    #[test]
    fn injected_panic_fault_carries_structured_error_and_pool_recovers() {
        for target in [0usize, 2] {
            let pool = WorkerPool::new(4);
            pool.broadcast(&|_| {}); // dispatch 1: clean
            pool.inject_fault(FaultPlan {
                worker: target,
                dispatch: pool.dispatch_count() + 1,
                kind: FaultKind::Panic,
            });
            let err = expect_exec_error(|| pool.broadcast(&|_| {}));
            assert_eq!(err.worker, target);
            assert_eq!(err.dispatch, 2);
            // One-shot: the plan is consumed and the pool is not
            // poisoned — the next dispatch runs clean on all workers.
            assert_eq!(pool.pending_fault(), None);
            assert!(pool.dead_workers().is_empty());
            let hits = AtomicU64::new(0);
            pool.broadcast(&|_| {
                bump(&hits);
            });
            assert_eq!(total(&hits), 4);
        }
    }

    #[test]
    fn fault_waits_for_its_dispatch_index() {
        let pool = WorkerPool::new(3);
        pool.inject_fault(FaultPlan {
            worker: 1,
            dispatch: 3,
            kind: FaultKind::Panic,
        });
        pool.broadcast(&|_| {});
        pool.broadcast(&|_| {});
        let err = expect_exec_error(|| pool.broadcast(&|_| {}));
        assert_eq!((err.worker, err.dispatch), (1, 3));
    }

    #[test]
    fn inline_pool_faults_are_structured_too() {
        let pool = WorkerPool::sequential();
        pool.inject_fault(FaultPlan {
            worker: 0,
            dispatch: 1,
            kind: FaultKind::Panic,
        });
        let err = expect_exec_error(|| pool.broadcast(&|_| {}));
        assert_eq!((err.worker, err.dispatch), (0, 1));
        // Recovered: inline dispatches resume.
        let hits = AtomicU64::new(0);
        pool.broadcast(&|_| {
            bump(&hits);
        });
        assert_eq!(total(&hits), 1);
    }

    #[test]
    fn dead_worker_is_reported_refused_and_respawned() {
        let mut pool = WorkerPool::new(4);
        pool.inject_fault(FaultPlan {
            worker: 3,
            dispatch: 1,
            kind: FaultKind::Die,
        });
        let err = expect_exec_error(|| pool.broadcast(&|_| {}));
        assert_eq!((err.worker, err.dispatch), (3, 1));
        // The thread is gone; further dispatches are refused with a
        // structured error instead of silently dropping its share.
        assert_eq!(pool.dead_workers(), vec![3]);
        let refused = expect_exec_error(|| pool.broadcast(&|_| {}));
        assert_eq!(refused.worker, 3);
        // Repair brings the pool back to full strength.
        assert_eq!(pool.respawn_dead(), 1);
        assert!(pool.dead_workers().is_empty());
        let hits = AtomicU64::new(0);
        pool.broadcast(&|_| {
            bump(&hits);
        });
        assert_eq!(total(&hits), 4);
    }

    #[test]
    fn pool_drops_cleanly_right_after_injected_faults() {
        // Drop hygiene: a pool dropped immediately after a caught fault
        // (panic or death, no repair in between) must join without
        // hanging or double-panicking.
        for kind in [FaultKind::Panic, FaultKind::Die] {
            let pool = WorkerPool::new(4);
            pool.inject_fault(FaultPlan {
                worker: 2,
                dispatch: 1,
                kind,
            });
            let _ = expect_exec_error(|| pool.broadcast(&|_| {}));
            drop(pool);
        }
    }

    #[test]
    fn non_exec_panics_are_not_misattributed() {
        // An ordinary job panic must NOT downcast to ExecError: the
        // recovery layer distinguishes execution-layer failures from
        // logic bugs by payload type.
        let pool = WorkerPool::new(3);
        let payload = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(&|w| {
                if w == 1 {
                    panic!("logic bug");
                }
            });
        }))
        .expect_err("panic should propagate");
        assert!(ExecError::from_payload(payload.as_ref()).is_none());
    }

    #[test]
    fn fault_plan_env_parsing() {
        // Exercised via the parser only (no process-global env mutation
        // in tests): absent worker -> no plan; defaults documented.
        assert_eq!(FaultPlan::from_env(), None);
        assert_eq!(FaultKind::default(), FaultKind::Panic);
    }

    #[test]
    fn policy_parse_round_trips() {
        for p in [SchedulerPolicy::Static, SchedulerPolicy::Stealing] {
            assert_eq!(SchedulerPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(SchedulerPolicy::parse("greedy"), None);
        assert_eq!(SchedulerPolicy::default(), SchedulerPolicy::Static);
    }

    #[test]
    fn sequential_pool_runs_inline() {
        let pool = WorkerPool::sequential();
        assert_eq!(pool.workers(), 1);
        let main_thread = std::thread::current().id();
        pool.broadcast(&|w| {
            assert_eq!(w, 0);
            assert_eq!(std::thread::current().id(), main_thread);
        });
    }
}
