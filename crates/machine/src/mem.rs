//! Virtual address space and memory cost accounting.
//!
//! Emulated kernels keep their data in ordinary Rust arrays but register
//! each array with the machine to obtain a *virtual base address*. Memory
//! instructions then quote `VAddr`s so the cache simulation sees the same
//! address stream the real kernel would generate (SoA particle arrays
//! streaming, grid lines being revisited, rhocell lines staying resident).

use crate::cache::{CacheLevelConfig, CacheSim, CacheSimState, CacheStats};

/// A virtual byte address in the emulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VAddr(pub u64);

impl VAddr {
    /// Address `count` elements of `size` bytes past `self`.
    pub fn offset(self, count: usize, size: usize) -> VAddr {
        VAddr(self.0 + (count * size) as u64)
    }

    /// Address `count` f64 elements past `self`.
    pub fn offset_f64(self, count: usize) -> VAddr {
        self.offset(count, 8)
    }
}

/// The emulated memory system: a bump allocator handing out virtual
/// addresses plus the cache hierarchy charging latencies.
#[derive(Debug, Clone)]
pub struct MemSystem {
    cache: CacheSim,
    next: u64,
}

impl MemSystem {
    /// Builds a memory system over the given cache hierarchy.
    pub fn new(
        l1: CacheLevelConfig,
        l2: CacheLevelConfig,
        l1_hit_cy: f64,
        l2_hit_cy: f64,
        dram_cy: f64,
    ) -> Self {
        Self {
            cache: CacheSim::new(l1, l2, l1_hit_cy, l2_hit_cy, dram_cy),
            // Start past zero so VAddr(0) is never a valid allocation.
            next: 4096,
        }
    }

    /// Reserves `bytes` of virtual address space aligned to `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> VAddr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + bytes;
        VAddr(base)
    }

    /// Reserves space for `len` f64 values, cache-line aligned.
    pub fn alloc_f64(&mut self, len: usize) -> VAddr {
        self.alloc((len * 8) as u64, self.cache.line_bytes())
    }

    /// Charges a memory access covering `[addr, addr+bytes)`, returning
    /// the latency in cycles.
    pub fn access(&mut self, addr: VAddr, bytes: u64) -> f64 {
        self.cache.access(addr.0, bytes)
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> CacheStats {
        self.cache.l1_stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.cache.l2_stats()
    }

    /// Invalidates the cache contents (e.g. between benchmark repetitions,
    /// or at tile boundaries in the parallel pipeline where each tile is
    /// modelled as running on a private, initially cold per-core cache).
    pub fn flush_cache(&mut self) {
        self.cache.flush();
    }

    /// Takes (and zeroes) the cache statistics:
    /// `(l1, l2, streamed_misses, random_misses)`.
    pub fn take_stats(&mut self) -> (CacheStats, CacheStats, u64, u64) {
        self.cache.take_stats()
    }

    /// Adds a worker's cache statistics into this memory system's totals.
    pub fn absorb_stats(&mut self, l1: &CacheStats, l2: &CacheStats, streamed: u64, random: u64) {
        self.cache.absorb_stats(l1, l2, streamed, random);
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.cache.line_bytes()
    }

    /// `log2(line_bytes)`; see [`CacheSim::line_shift`].
    pub fn line_shift(&self) -> u32 {
        self.cache.line_shift()
    }

    /// Enables or disables the cache's last-line memo fast path (see
    /// [`CacheSim::set_line_memo`]); a pure host-speed knob whose
    /// counters are bit-identical either way. Test hook.
    pub fn set_line_memo(&mut self, enabled: bool) {
        self.cache.set_line_memo(enabled);
    }

    /// DRAM misses split into (streamed, random).
    pub fn miss_split(&self) -> (u64, u64) {
        (self.cache.streamed_misses, self.cache.random_misses)
    }

    /// The bump allocator's high-water mark: the next virtual address a
    /// future [`MemSystem::alloc`] would consider. Checkpoints record it
    /// so a restored machine reproduces the exact same address stream.
    pub fn alloc_mark(&self) -> u64 {
        self.next
    }

    /// Restores the bump allocator to a mark captured with
    /// [`MemSystem::alloc_mark`]. Addresses are purely virtual (data
    /// lives in host arrays), so rewinding the mark is safe as long as
    /// the caller also restores every `VAddr` handed out after the mark —
    /// exactly what snapshot restore does.
    pub fn restore_alloc_mark(&mut self, mark: u64) {
        self.next = mark;
    }

    /// Exports the cache hierarchy's behavioural state (tags, LRU
    /// clocks, prefetch streams); see [`CacheSim::export_state`].
    pub fn cache_state(&self) -> CacheSimState {
        self.cache.export_state()
    }

    /// Imports behavioural cache state captured by
    /// [`MemSystem::cache_state`]. Returns `false` on geometry mismatch
    /// (the hierarchy is left untouched).
    pub fn restore_cache_state(&mut self, s: &CacheSimState) -> bool {
        self.cache.import_state(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemSystem {
        MemSystem::new(
            CacheLevelConfig {
                size_bytes: 512,
                ways: 2,
                line_bytes: 64,
            },
            CacheLevelConfig {
                size_bytes: 2048,
                ways: 4,
                line_bytes: 64,
            },
            1.0,
            10.0,
            100.0,
        )
    }

    #[test]
    fn alloc_respects_alignment() {
        let mut m = mem();
        let a = m.alloc(10, 64);
        assert_eq!(a.0 % 64, 0);
        let b = m.alloc(8, 64);
        assert_eq!(b.0 % 64, 0);
        assert!(b.0 >= a.0 + 10);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut m = mem();
        let a = m.alloc_f64(100);
        let b = m.alloc_f64(100);
        assert!(b.0 >= a.0 + 800);
    }

    #[test]
    fn offset_math() {
        let a = VAddr(4096);
        assert_eq!(a.offset_f64(3).0, 4096 + 24);
        assert_eq!(a.offset(2, 4).0, 4096 + 8);
    }

    #[test]
    fn access_charges_cache_latency() {
        let mut m = mem();
        let a = m.alloc_f64(8);
        assert_eq!(m.access(a, 64), 100.0, "cold miss");
        assert_eq!(m.access(a, 64), 1.0, "warm hit");
    }
}
