//! Emulated execution platform for Matrix-PIC.
//!
//! The paper evaluates on the "LX2" CPU of the LS pilot system: a
//! many-core processor whose cores pair a 512-bit FP64 Vector Processing
//! Unit (VPU) with a Matrix Processing Unit (MPU) executing 8x8 FP64
//! Matrix-Outer-Product-Accumulate (MOPA) instructions at roughly 4x the
//! VPU's multiply-accumulate FLOP rate (paper section 5.1). That hardware is
//! restricted-access, so this crate provides a *cycle-modeled emulator*:
//!
//! * every emulated instruction executes the **real f64 arithmetic**, so
//!   kernels written against this crate are numerically verifiable against
//!   a scalar reference;
//! * every instruction simultaneously charges cycles from a parameterised
//!   cost model ([`MachineConfig`]) into per-phase performance counters
//!   ([`PerfCounters`]), and memory operations consult a two-level
//!   set-associative cache simulation ([`CacheSim`]) so that data-locality
//!   effects (the whole point of the paper's incremental sorter) are
//!   reflected in the reported cycle counts.
//!
//! The crate also contains a SIMT cost model ([`gpu::GpuModel`]) of the
//! NVIDIA A800 baseline used in the paper's Table 3 cross-platform
//! efficiency comparison: it replays the same deposition workload at warp
//! granularity and measures atomic-conflict serialisation from the actual
//! particle stream.
//!
//! # Example
//!
//! ```
//! use mpic_machine::{Machine, MachineConfig, Phase};
//!
//! let mut m = Machine::new(MachineConfig::lx2());
//! m.set_phase(Phase::Compute);
//! let a = m.v_splat(2.0);
//! let b = m.v_splat(3.0);
//! let c = m.v_mul(a, b);
//! assert_eq!(c.lane(0), 6.0);
//! assert!(m.counters().cycles(Phase::Compute) > 0.0);
//! ```

// Unsafe sites (the exec layer's lifetime-erased job pointer and the
// checked Partition grants) must wrap each unsafe operation explicitly
// even inside `unsafe fn`, so every site carries its own SAFETY comment.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cache;
pub mod cost;
pub mod counters;
pub mod exec;
pub mod gpu;
pub mod machine;
pub mod mem;
pub mod partition;
pub mod shard;
pub mod sync;
pub mod vect;
pub mod vreg;

pub use cache::{CacheLevelConfig, CacheLevelState, CacheSim, CacheSimState, CacheStats};
pub use cost::MachineConfig;
pub use counters::{MachineCounters, PerfCounters, Phase};
pub use exec::{
    Exec, ExecError, FaultKind, FaultPlan, PoolCore, SchedulerPolicy, WorkerPool,
    INLINE_ITEM_THRESHOLD,
};
pub use gpu::{GpuConfig, GpuDepositionReport, GpuModel};
pub use machine::{Machine, TileId};
pub use mem::{MemSystem, VAddr};
pub use partition::Partition;
pub use shard::shard_bounds;
pub use sync::{StdSync, SyncPrims};
pub use vect::{LaneMask, Lanes};
pub use vreg::{VMask, VReg, VLANES};
