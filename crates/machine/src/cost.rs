//! The parameterised cost model of the emulated LX2 core.
//!
//! All constants are per-core reciprocal throughputs in cycles. They encode
//! the architectural facts the paper states in section 5.1:
//!
//! * both compute engines run at (or above) 1.3 GHz;
//! * the VPU executes 512-bit FP64 SIMD, i.e. 8 lanes;
//! * the MPU executes 8x8 FP64 MOPA instructions whose theoretical FLOP
//!   rate is about 4x the VPU's MLA instruction;
//! * VPU<->MPU traffic is not free — the paper attributes the gap between
//!   the anticipated 2x and the observed 1.5x CIC kernel speedup to "data
//!   movement between the VPU and MPU, intrinsic latencies, and other
//!   VPU-bound operations" (section 6.1).
//!
//! The derived peak used in efficiency percentages is the MPU peak (the
//! maximum FP64 rate of the core), matching Table 3 where the baseline and
//! VPU configurations are charged against the same platform peak as
//! MatrixPIC.

use crate::cache::CacheLevelConfig;

/// Static description of the emulated core and memory hierarchy.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Core clock in Hz (1.3 GHz for the LX2).
    pub clock_hz: f64,
    /// FP64 lanes per VPU vector (512-bit => 8).
    pub vpu_lanes: usize,
    /// Parallel VPU pipes (affects reciprocal throughput of vector ops).
    pub vpu_pipes: usize,
    /// Reciprocal throughput of a VPU arithmetic instruction, in cycles.
    pub vpu_arith_cy: f64,
    /// Reciprocal throughput of a scalar FP instruction, in cycles.
    pub scalar_arith_cy: f64,
    /// Extra per-lane cost of a gather/scatter beyond a contiguous access.
    pub gather_lane_cy: f64,
    /// Serialisation penalty per conflicting lane in a scatter-add
    /// (models the atomic/conflict-detection loop of equation 2).
    pub conflict_lane_cy: f64,
    /// MPU tile dimension (8 for the LX2: 8x8 FP64 tiles).
    pub mpu_dim: usize,
    /// Reciprocal throughput of one MOPA instruction, in cycles.
    ///
    /// With `mpu_dim = 8` a MOPA performs 64 FMAs = 128 FLOPs; at one MOPA
    /// per cycle the MPU peak is 128 FLOP/cycle = 4x the VPU's 32
    /// FLOP/cycle (8 lanes x 2 FLOP x 2 pipes), matching the paper.
    pub mopa_cy: f64,
    /// Cost of moving one tile row between MPU and VPU register files.
    pub tile_row_xfer_cy: f64,
    /// Cost of zeroing an MPU tile register.
    pub tile_zero_cy: f64,
    /// L1 data cache geometry.
    pub l1: CacheLevelConfig,
    /// L2 cache geometry.
    pub l2: CacheLevelConfig,
    /// Cycles for an L1 hit (effective, throughput-amortised).
    pub l1_hit_cy: f64,
    /// Cycles for an L2 hit.
    pub l2_hit_cy: f64,
    /// Cycles for a DRAM access after overlap (memory-level parallelism).
    pub dram_cy: f64,
    /// Bandwidth-limited cycles per cache line charged by the
    /// *state-free streaming* price of lane-parallel block transfers
    /// (the `SimConfig::simd` hot paths). Wide loads and stores issued
    /// back to back behave like an established prefetch stream: the fill
    /// pipeline hides per-line latency and only the line's share of
    /// sustained bandwidth remains. Matches the cache model's streamed
    /// (prefetched) DRAM cost so the two pricing regimes agree on what a
    /// perfectly streamed line costs.
    pub simd_stream_line_cy: f64,
    /// Roofline crossover for the state-free streaming price: when a
    /// streamed call declares an operand-array footprint at or below this
    /// many bytes (and the footprint is known, i.e. non-zero), the
    /// operand set fits in L1 across the sweep and the line price drops
    /// from [`Self::simd_stream_line_cy`] to [`Self::resident_line_cy`].
    /// Keeps the price a pure function of the call operands — no cache
    /// state is consulted — while no longer overcharging L1-resident
    /// grids at the DRAM stream rate.
    pub stream_crossover_bytes: u64,
    /// Bandwidth-limited cycles per cache line on the resident side of
    /// the crossover: an L1-resident operand streams at L1 bandwidth, so
    /// one line costs one (throughput-amortised) L1 hit.
    pub resident_line_cy: f64,
    /// Efficiency factor applied to compiler auto-vectorised loops
    /// relative to hand-written intrinsics (<= 1.0). The paper's Table 1
    /// shows the auto-vectorised rhocell preprocessing running at roughly
    /// 2.6x the cost of the hand-tuned VPU version.
    pub autovec_efficiency: f64,
}

impl MachineConfig {
    /// The LX2 core model used for all headline experiments.
    ///
    /// Note on cache capacities: the real LX2 runs grids of hundreds of
    /// megabytes per rank, dwarfing its per-core caches by two to three
    /// orders of magnitude. Emulation forces laptop-scale grids (a few
    /// megabytes), so the modelled caches are scaled down by a comparable
    /// factor (L1 16 KiB, L2 256 KiB) to preserve the grid-to-cache ratio
    /// that makes deposition memory-bound — the regime every locality
    /// result in the paper depends on. This substitution is recorded in
    /// DESIGN.md.
    pub fn lx2() -> Self {
        Self {
            clock_hz: 1.3e9,
            vpu_lanes: 8,
            vpu_pipes: 2,
            vpu_arith_cy: 0.5,
            scalar_arith_cy: 0.5,
            gather_lane_cy: 0.125,
            conflict_lane_cy: 1.0,
            mpu_dim: 8,
            mopa_cy: 1.0,
            tile_row_xfer_cy: 1.0,
            tile_zero_cy: 1.0,
            l1: CacheLevelConfig {
                size_bytes: 16 * 1024,
                ways: 8,
                line_bytes: 64,
            },
            l2: CacheLevelConfig {
                size_bytes: 256 * 1024,
                ways: 16,
                line_bytes: 64,
            },
            l1_hit_cy: 0.5,
            l2_hit_cy: 12.0,
            dram_cy: 80.0,
            // = dram_cy x 0.15, the cache model's streamed-miss cost.
            simd_stream_line_cy: 12.0,
            // Crossover at the L1 capacity: an operand array that fits in
            // L1 streams at L1-hit bandwidth (one l1_hit_cy per line).
            stream_crossover_bytes: 16 * 1024,
            resident_line_cy: 0.5,
            autovec_efficiency: 0.30,
        }
    }

    /// Peak FP64 FLOPs per cycle of the VPU (lanes x 2 FLOP/FMA x pipes).
    pub fn vpu_peak_flops_per_cycle(&self) -> f64 {
        (self.vpu_lanes * 2 * self.vpu_pipes) as f64
    }

    /// Peak FP64 FLOPs per cycle of the MPU
    /// (dim^2 FMAs per MOPA x 2 FLOP / mopa_cy).
    pub fn mpu_peak_flops_per_cycle(&self) -> f64 {
        (self.mpu_dim * self.mpu_dim * 2) as f64 / self.mopa_cy
    }

    /// The platform peak used for efficiency percentages: the highest FP64
    /// rate available on the core (the MPU).
    pub fn peak_flops_per_cycle(&self) -> f64 {
        self.mpu_peak_flops_per_cycle()
            .max(self.vpu_peak_flops_per_cycle())
    }

    /// Converts a cycle count into seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / self.clock_hz
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::lx2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lx2_mpu_is_4x_vpu() {
        let cfg = MachineConfig::lx2();
        let ratio = cfg.mpu_peak_flops_per_cycle() / cfg.vpu_peak_flops_per_cycle();
        assert!((ratio - 4.0).abs() < 1e-12, "MOPA must be ~4x VPU MLA");
    }

    #[test]
    fn platform_peak_is_mpu_peak() {
        let cfg = MachineConfig::lx2();
        assert_eq!(cfg.peak_flops_per_cycle(), cfg.mpu_peak_flops_per_cycle());
    }

    #[test]
    fn cycles_to_seconds_uses_clock() {
        let cfg = MachineConfig::lx2();
        assert!((cfg.cycles_to_seconds(1.3e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lx2_crossover_sits_at_l1_capacity() {
        let cfg = MachineConfig::lx2();
        assert_eq!(cfg.stream_crossover_bytes, cfg.l1.size_bytes as u64);
        assert_eq!(cfg.resident_line_cy, cfg.l1_hit_cy);
        assert!(
            cfg.resident_line_cy <= cfg.simd_stream_line_cy,
            "the crossover must only ever lower the line price"
        );
    }

    #[test]
    fn vpu_peak_matches_paper_width() {
        let cfg = MachineConfig::lx2();
        // 512-bit FP64 = 8 lanes; 2 pipes; FMA = 2 FLOPs.
        assert_eq!(cfg.vpu_peak_flops_per_cycle(), 32.0);
        assert_eq!(cfg.mpu_peak_flops_per_cycle(), 128.0);
    }
}
