//! Per-phase performance counters.
//!
//! Cycle accounting mirrors the paper's measurement methodology (section
//! 5.2.2): kernel time is measured *inclusively* of implementation-specific
//! overheads, while the "useful work" credited towards peak-efficiency
//! percentages is the canonical scalar deposition FLOP count, independent of
//! the implementation. Counters therefore distinguish between
//! `flops_issued` (what the emulated hardware actually executed, including
//! zero-padded MPU tile slots) and `useful_flops` (canonical work set by the
//! harness).

/// Execution phases of a PIC timestep.
///
/// `Preprocess`, `Compute`, `Sort` and `Reduce` together form the complete
/// deposition kernel time reported in the paper's Tables 1 and 2;
/// `Gather`, `Push` and `FieldSolve` make up the rest of the loop for the
/// Figure 1/8/9 wall-time breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// VPU data staging for deposition: shape factors, weights, index math.
    Preprocess,
    /// The deposition arithmetic itself (VPU FMA chains or MPU MOPA).
    Compute,
    /// Incremental / global particle sorting and GPMA maintenance.
    Sort,
    /// Rhocell-to-grid reduction (scatter-add of per-cell accumulators).
    Reduce,
    /// Grid-to-particle field interpolation.
    Gather,
    /// Boris particle push.
    Push,
    /// Maxwell field solve.
    FieldSolve,
    /// Everything else (diagnostics, window shifts, boundary exchange).
    Other,
}

impl Phase {
    /// All phases, in reporting order.
    pub const ALL: [Phase; 8] = [
        Phase::Preprocess,
        Phase::Compute,
        Phase::Sort,
        Phase::Reduce,
        Phase::Gather,
        Phase::Push,
        Phase::FieldSolve,
        Phase::Other,
    ];

    /// The four phases that constitute the deposition kernel time in the
    /// paper's Tables 1 and 2.
    pub const DEPOSITION: [Phase; 4] = [
        Phase::Preprocess,
        Phase::Compute,
        Phase::Sort,
        Phase::Reduce,
    ];

    fn index(self) -> usize {
        match self {
            Phase::Preprocess => 0,
            Phase::Compute => 1,
            Phase::Sort => 2,
            Phase::Reduce => 3,
            Phase::Gather => 4,
            Phase::Push => 5,
            Phase::FieldSolve => 6,
            Phase::Other => 7,
        }
    }

    /// Human-readable label used by the bench harness tables.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Preprocess => "preproc",
            Phase::Compute => "compute",
            Phase::Sort => "sort",
            Phase::Reduce => "reduce",
            Phase::Gather => "gather",
            Phase::Push => "push",
            Phase::FieldSolve => "field_solve",
            Phase::Other => "other",
        }
    }
}

use crate::cache::CacheStats;

/// The complete mergeable accounting state of one emulated machine:
/// per-[`Phase`] cycles and instruction counts ([`PerfCounters`]) plus the
/// cache-hierarchy statistics the memory simulation accumulates.
///
/// Parallel tile workers each charge a private `MachineCounters` set
/// (drained per tile via [`crate::Machine::drain_counters`]) which the
/// orchestrator merges back into the main machine **in tile order**.
/// Because merging is a fixed-order sum of per-tile deltas, the totals
/// are bit-identical no matter how tiles were sharded across workers.
#[derive(Debug, Clone, Default)]
#[must_use]
pub struct MachineCounters {
    /// Cycle and instruction counters.
    pub perf: PerfCounters,
    /// L1 hit/miss statistics.
    pub l1: CacheStats,
    /// L2 hit/miss statistics.
    pub l2: CacheStats,
    /// DRAM misses served at streaming (prefetched) cost.
    pub streamed_misses: u64,
    /// DRAM misses served at full random latency.
    pub random_misses: u64,
}

impl MachineCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another counter set into this one. Deterministic: merging
    /// the same sequence of counter sets in the same order always
    /// produces the same floating-point totals.
    pub fn merge(&mut self, other: &MachineCounters) {
        self.perf.merge(&other.perf);
        self.l1.merge(&other.l1);
        self.l2.merge(&other.l2);
        self.streamed_misses += other.streamed_misses;
        self.random_misses += other.random_misses;
    }
}

/// Aggregated emulation statistics.
#[derive(Debug, Clone, Default)]
#[must_use]
pub struct PerfCounters {
    cycles: [f64; 8],
    /// FLOPs actually executed by emulated functional units (MPU tile
    /// padding included).
    pub flops_issued: f64,
    /// Canonical useful FLOPs, credited by the harness (419 per particle
    /// for third-order QSP deposition per the paper).
    pub useful_flops: f64,
    /// Emulated instructions issued, by rough class.
    pub scalar_ops: u64,
    /// Number of VPU vector instructions issued.
    pub vector_ops: u64,
    /// Number of MPU MOPA instructions issued.
    pub mopa_ops: u64,
    /// Number of VPU<->MPU tile row transfers.
    pub tile_transfers: u64,
}

impl PerfCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` to `phase`.
    pub fn add_cycles(&mut self, phase: Phase, cycles: f64) {
        self.cycles[phase.index()] += cycles;
    }

    /// Cycles charged to one phase.
    pub fn cycles(&self, phase: Phase) -> f64 {
        self.cycles[phase.index()]
    }

    /// Total cycles across all phases.
    pub fn total_cycles(&self) -> f64 {
        self.cycles.iter().sum()
    }

    /// Cycles across the deposition-kernel phases (preproc + compute +
    /// sort + reduce), matching the paper's "Deposition Kernel Time".
    pub fn deposition_cycles(&self) -> f64 {
        Phase::DEPOSITION.iter().map(|p| self.cycles(*p)).sum()
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &PerfCounters) {
        for (a, b) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            *a += b;
        }
        self.flops_issued += other.flops_issued;
        self.useful_flops += other.useful_flops;
        self.scalar_ops += other.scalar_ops;
        self.vector_ops += other.vector_ops;
        self.mopa_ops += other.mopa_ops;
        self.tile_transfers += other.tile_transfers;
    }

    /// Resets everything to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Fraction of theoretical peak achieved over the deposition phases,
    /// crediting only `useful_flops` (paper section 5.2.2).
    ///
    /// `peak_flops_per_cycle` is the platform's peak FP64 rate per core.
    /// Returns a value in `[0, 1]` for physical configurations (it may
    /// exceed 1 only if the caller credits more useful work than the
    /// machine executed, which indicates a mis-specified canonical count).
    pub fn peak_fraction(&self, peak_flops_per_cycle: f64) -> f64 {
        let cy = self.deposition_cycles();
        if cy == 0.0 {
            return 0.0;
        }
        self.useful_flops / (cy * peak_flops_per_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_accumulate_per_phase() {
        let mut c = PerfCounters::new();
        c.add_cycles(Phase::Compute, 10.0);
        c.add_cycles(Phase::Compute, 5.0);
        c.add_cycles(Phase::Sort, 2.0);
        assert_eq!(c.cycles(Phase::Compute), 15.0);
        assert_eq!(c.cycles(Phase::Sort), 2.0);
        assert_eq!(c.total_cycles(), 17.0);
    }

    #[test]
    fn deposition_cycles_cover_kernel_phases_only() {
        let mut c = PerfCounters::new();
        for p in Phase::ALL {
            c.add_cycles(p, 1.0);
        }
        assert_eq!(c.deposition_cycles(), 4.0);
        assert_eq!(c.total_cycles(), 8.0);
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = PerfCounters::new();
        a.add_cycles(Phase::Push, 1.0);
        a.flops_issued = 10.0;
        a.mopa_ops = 3;
        let mut b = PerfCounters::new();
        b.add_cycles(Phase::Push, 2.0);
        b.flops_issued = 5.0;
        b.mopa_ops = 4;
        a.merge(&b);
        assert_eq!(a.cycles(Phase::Push), 3.0);
        assert_eq!(a.flops_issued, 15.0);
        assert_eq!(a.mopa_ops, 7);
    }

    #[test]
    fn peak_fraction_uses_useful_flops() {
        let mut c = PerfCounters::new();
        c.add_cycles(Phase::Compute, 100.0);
        c.useful_flops = 3200.0;
        c.flops_issued = 6400.0;
        // Peak 64 flops/cycle over 100 cycles = 6400 capacity; useful 3200.
        assert!((c.peak_fraction(64.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn peak_fraction_zero_when_idle() {
        let c = PerfCounters::new();
        assert_eq!(c.peak_fraction(64.0), 0.0);
    }

    #[test]
    fn machine_counters_merge_all_fields() {
        let mut a = MachineCounters::new();
        a.perf.add_cycles(Phase::Compute, 2.0);
        a.l1.hits = 3;
        a.random_misses = 1;
        let mut b = MachineCounters::new();
        b.perf.add_cycles(Phase::Compute, 5.0);
        b.l1.hits = 4;
        b.l2.misses = 2;
        b.streamed_misses = 7;
        a.merge(&b);
        assert_eq!(a.perf.cycles(Phase::Compute), 7.0);
        assert_eq!(a.l1.hits, 7);
        assert_eq!(a.l2.misses, 2);
        assert_eq!(a.streamed_misses, 7);
        assert_eq!(a.random_misses, 1);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Phase::ALL.iter().map(|p| p.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Phase::ALL.len());
    }
}
