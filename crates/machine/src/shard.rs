//! Deterministic contiguous chunk decomposition for parallel emulation.
//!
//! The parallel pipeline's bit-identity guarantee rests on one
//! invariant: per-tile work must be chargeable as a pure function of the
//! tile (worker machines fork with a private cold cache), and per-tile
//! outputs must merge back in **global tile order** no matter how tiles
//! were distributed over threads. The execution layer ([`crate::exec`])
//! owns the distribution and merge; this module owns the one chunk
//! scheme the [`SchedulerPolicy::Static`] policy and every
//! chunk-granular phase (counting-sort histograms, Maxwell Z slabs) use,
//! so no phase can disagree with the scheduler about which worker owns
//! which items.
//!
//! [`SchedulerPolicy::Static`]: crate::exec::SchedulerPolicy::Static

/// Contiguous chunk decomposition of `len` items over at most `workers`
/// shards: `ceil(len / workers)` items per shard, last shard ragged.
///
/// This is the single chunk scheme every statically sharded phase uses.
/// Returns `(start, end)` half-open ranges covering `0..len` exactly, in
/// ascending order; empty when `len == 0`.
pub fn shard_bounds(len: usize, workers: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, len);
    let per = len.div_ceil(workers);
    (0..len.div_ceil(per))
        .map(|w| (w * per, ((w + 1) * per).min(len)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_bounds_cover_exactly_in_order() {
        for len in [0usize, 1, 2, 7, 11, 64] {
            for workers in [1usize, 2, 3, 4, 7, 100] {
                let b = shard_bounds(len, workers);
                let mut next = 0;
                for &(s, e) in &b {
                    assert_eq!(s, next, "len {len} workers {workers}: gap/overlap");
                    assert!(e > s, "len {len} workers {workers}: empty chunk");
                    next = e;
                }
                assert_eq!(next, len, "len {len} workers {workers}: not covered");
                assert!(b.len() <= workers.max(1));
            }
        }
    }
}
