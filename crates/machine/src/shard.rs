//! Deterministic tile sharding for parallel emulation.
//!
//! The parallel pipeline's bit-identity guarantee rests on one
//! invariant: per-tile work must be chargeable as a pure function of the
//! tile (worker machines fork with a private cold cache), and per-tile
//! counter deltas must merge back in **global tile order** no matter how
//! tiles were distributed over threads. This module owns that invariant
//! so every sharded phase (gather+push, sort, both deposit kernels, and
//! the Z-slab field solve) uses the identical scheme instead of
//! re-implementing it: [`run_sharded`] for phases that charge per-item
//! [`MachineCounters`], and [`shard_bounds`] for phases (counting sort,
//! Maxwell slabs) that only need the contiguous chunk decomposition.

use crate::counters::MachineCounters;
use crate::machine::Machine;

/// Contiguous chunk decomposition of `len` items over at most `workers`
/// shards: `ceil(len / workers)` items per shard, last shard ragged.
///
/// This is the single chunk scheme every sharded phase uses — keeping it
/// in one place means a phase can never disagree with [`run_sharded`]
/// about which worker owns which items. Returns `(start, end)`
/// half-open ranges covering `0..len` exactly, in ascending order; empty
/// when `len == 0`.
pub fn shard_bounds(len: usize, workers: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, len);
    let per = len.div_ceil(workers);
    (0..len.div_ceil(per))
        .map(|w| (w * per, ((w + 1) * per).min(len)))
        .collect()
}

/// Runs `f` once per item, sharded across `workers` scoped threads, and
/// returns the per-item [`MachineCounters`] deltas **in item order**.
///
/// Sharding is contiguous (`chunks_mut` of `ceil(len / workers)`), each
/// worker executes its chunk in ascending item order on a private
/// [`Machine::fork_worker`] fork, and results are concatenated in worker
/// order — which, for contiguous chunks, *is* item order. Callers absorb
/// the returned deltas sequentially, making both cycle totals and any
/// caller-side fixed-order value reduction independent of `workers`.
///
/// `f` receives `(worker_machine, global_item_index, item, worker
/// scratch)`. It is the callee's job to flush the worker cache at the
/// item boundary if its cost model is per-item (both pipeline phases
/// do, via `wm.mem().flush_cache()`), keeping each delta a pure
/// function of the item.
///
/// `scratch` provides one reusable per-worker state; it must hold at
/// least `min(workers, ceil(len / per))` entries (callers size it to
/// `workers`).
///
/// # Panics
///
/// Panics if `scratch` holds fewer entries than the number of chunks
/// (which would silently skip trailing items), or if a worker thread
/// panics (the panic is propagated).
pub fn run_sharded<T, S, F>(
    main: &Machine,
    items: &mut [T],
    scratch: &mut [S],
    workers: usize,
    f: F,
) -> Vec<MachineCounters>
where
    T: Send,
    S: Send,
    F: Fn(&mut Machine, usize, &mut T, &mut S) + Sync,
{
    let bounds = shard_bounds(items.len(), workers);
    let per = bounds.first().map_or(1, |&(s, e)| e - s);
    assert!(
        scratch.len() >= bounds.len(),
        "scratch ({}) must cover every chunk ({}): trailing items would be silently dropped",
        scratch.len(),
        bounds.len()
    );
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(per)
            .zip(scratch.iter_mut())
            .enumerate()
            .map(|(w, (chunk, scr))| {
                let proto = main.fork_worker();
                let f = &f;
                s.spawn(move || {
                    let mut wm = proto;
                    let mut out = Vec::with_capacity(chunk.len());
                    for (i, item) in chunk.iter_mut().enumerate() {
                        f(&mut wm, w * per + i, item, scr);
                        out.push(wm.drain_counters());
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sharded tile worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::MachineConfig;
    use crate::counters::Phase;

    fn charge_item(wm: &mut Machine, t: usize, item: &mut f64, scratch: &mut Vec<u64>) {
        wm.mem().flush_cache();
        scratch.push(t as u64);
        wm.set_phase(Phase::Compute);
        // Cost depends only on the item: deterministic per tile.
        wm.s_ops(t + 1);
        *item = t as f64;
    }

    #[test]
    fn counters_return_in_item_order_for_any_worker_count() {
        let main = Machine::new(MachineConfig::lx2());
        let totals: Vec<Vec<f64>> = [1usize, 3, 5, 11]
            .iter()
            .map(|&w| {
                let mut items = vec![0.0; 11];
                let mut scratch = vec![Vec::new(); w];
                let counters = run_sharded(&main, &mut items, &mut scratch, w, charge_item);
                assert_eq!(counters.len(), 11);
                assert!(items.iter().enumerate().all(|(t, &v)| v == t as f64));
                counters
                    .iter()
                    .map(|c| c.perf.cycles(Phase::Compute))
                    .collect()
            })
            .collect();
        for later in &totals[1..] {
            assert_eq!(
                &totals[0], later,
                "per-item deltas must not depend on sharding"
            );
        }
    }

    #[test]
    fn empty_items_yield_no_counters() {
        let main = Machine::new(MachineConfig::lx2());
        let mut items: Vec<f64> = Vec::new();
        let mut scratch = vec![Vec::new(); 4];
        let counters = run_sharded(&main, &mut items, &mut scratch, 4, charge_item);
        assert!(counters.is_empty());
    }

    #[test]
    fn shard_bounds_cover_exactly_in_order() {
        for len in [0usize, 1, 2, 7, 11, 64] {
            for workers in [1usize, 2, 3, 4, 7, 100] {
                let b = shard_bounds(len, workers);
                let mut next = 0;
                for &(s, e) in &b {
                    assert_eq!(s, next, "len {len} workers {workers}: gap/overlap");
                    assert!(e > s, "len {len} workers {workers}: empty chunk");
                    next = e;
                }
                assert_eq!(next, len, "len {len} workers {workers}: not covered");
                assert!(b.len() <= workers.max(1));
            }
        }
    }

    #[test]
    fn workers_exceeding_items_are_clamped() {
        let main = Machine::new(MachineConfig::lx2());
        let mut items = vec![0.0; 2];
        let mut scratch = vec![Vec::new(); 8];
        let counters = run_sharded(&main, &mut items, &mut scratch, 8, charge_item);
        assert_eq!(counters.len(), 2);
        assert_eq!(items, vec![0.0, 1.0]);
    }
}
