//! The synchronization facade the execution layer is built against.
//!
//! Every primitive the [`crate::exec`] pool protocol uses — the state
//! lock, the two wake signals (workers parking for work, the dispatcher
//! parking for acks), thread spawn/liveness/join, and the atomics of the
//! stealing cursor — is named here once, behind the [`SyncPrims`] trait,
//! instead of being reached for ad hoc at each site. Two implementations
//! exist:
//!
//! * [`StdSync`] (this module): the production mapping, where every
//!   trait item is a direct re-export or one-line delegation to `std`.
//!   The pool is monomorphised over it ([`crate::exec::WorkerPool`] *is*
//!   `PoolCore<StdSync>`), so the facade compiles to the identical
//!   `std::sync` primitives — zero cost, verified by the existing
//!   BENCH_step.json perf gate.
//! * `ShimSync` (in the `mpic-check` crate): instrumented shim types
//!   whose every operation yields to a deterministic mock scheduler, so
//!   a loom-style model checker can exhaustively explore bounded
//!   interleavings of the *actual* protocol code.
//!
//! The split is enforced, not aspirational: `mpic-lint` rule **L7**
//! denies raw `std` sync-primitive names outside this file (plus the
//! audited `partition.rs` claim bitmap and the checker's own scheduler),
//! so all future concurrency in the workspace flows through a layer the
//! model checker can see.

use std::ops::DerefMut;

// Atomics are re-exported rather than wrapped: the stealing cursor is a
// pure claim ticket outside the parking protocol (any interleaving of
// claims is correct by construction), so the checker does not need to
// interpose on it — it only needs the one canonical import site L7
// pins all users to.
pub use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
pub use std::sync::Arc;

/// The set of synchronization primitives the pool protocol consumes.
///
/// Implementations provide a mutual-exclusion lock, a condition signal,
/// and thread handles; [`crate::exec::PoolCore`] is generic over this
/// trait and contains the *entire* protocol logic, so the production
/// pool and the model-checked pool run the very same code.
pub trait SyncPrims: Sized + 'static {
    /// Mutual-exclusion lock protecting a `T`.
    type Lock<T: Send + 'static>: Send + Sync;
    /// RAII guard for an acquired [`Self::Lock`].
    type Guard<'a, T: Send + 'static>: DerefMut<Target = T>;
    /// Condition signal: threads park on it under a lock, wakers
    /// broadcast to it.
    type Signal: Send + Sync;
    /// Handle to a spawned thread.
    type Thread;

    /// Creates a lock owning `value`.
    fn lock_new<T: Send + 'static>(value: T) -> Self::Lock<T>;
    /// Acquires the lock, blocking until available.
    fn lock<T: Send + 'static>(lock: &Self::Lock<T>) -> Self::Guard<'_, T>;
    /// Creates a condition signal.
    fn signal_new() -> Self::Signal;
    /// Atomically releases `guard`, parks on `signal`, and re-acquires
    /// `lock` once woken. (Callers loop on their predicate; spurious
    /// wakeups are permitted.)
    fn wait<'a, T: Send + 'static>(
        signal: &Self::Signal,
        lock: &'a Self::Lock<T>,
        guard: Self::Guard<'a, T>,
    ) -> Self::Guard<'a, T>;
    /// Wakes every thread parked on `signal`.
    fn wake_all(signal: &Self::Signal);
    /// Spawns a named thread running `f`.
    fn spawn(name: String, f: impl FnOnce() + Send + 'static) -> Self::Thread;
    /// Whether the thread has terminated (its `f` returned, unwound, or
    /// the thread was killed).
    fn is_finished(thread: &Self::Thread) -> bool;
    /// Blocks until the thread terminates, discarding its outcome (the
    /// pool attributes failures through its own `panic` slot, never
    /// through join results).
    fn join(thread: Self::Thread);
}

/// The production implementation: every item maps 1:1 onto `std`, and
/// monomorphisation erases the indirection entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdSync;

impl SyncPrims for StdSync {
    type Lock<T: Send + 'static> = std::sync::Mutex<T>;
    type Guard<'a, T: Send + 'static> = std::sync::MutexGuard<'a, T>;
    type Signal = std::sync::Condvar;
    type Thread = std::thread::JoinHandle<()>;

    fn lock_new<T: Send + 'static>(value: T) -> Self::Lock<T> {
        std::sync::Mutex::new(value)
    }

    /// Locks, recovering from poisoning: the pool's own critical
    /// sections never panic, so a poisoned lock only means a *job*
    /// panicked on another thread — the protected state itself is
    /// sound, and panicking here (e.g. inside a Drop during unwinding)
    /// would abort.
    fn lock<T: Send + 'static>(lock: &Self::Lock<T>) -> Self::Guard<'_, T> {
        lock.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn signal_new() -> Self::Signal {
        std::sync::Condvar::new()
    }

    fn wait<'a, T: Send + 'static>(
        signal: &Self::Signal,
        _lock: &'a Self::Lock<T>,
        guard: Self::Guard<'a, T>,
    ) -> Self::Guard<'a, T> {
        // Poison recovery for the same reason as `lock`.
        signal.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    fn wake_all(signal: &Self::Signal) {
        signal.notify_all();
    }

    fn spawn(name: String, f: impl FnOnce() + Send + 'static) -> Self::Thread {
        std::thread::Builder::new()
            .name(name)
            .spawn(f)
            .expect("failed to spawn pool worker")
    }

    fn is_finished(thread: &Self::Thread) -> bool {
        thread.is_finished()
    }

    fn join(thread: Self::Thread) {
        let _ = thread.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_lock_round_trips_and_recovers_from_poison() {
        let lock = StdSync::lock_new(7u32);
        *StdSync::lock(&lock) += 1;
        assert_eq!(*StdSync::lock(&lock), 8);
        // Poison the lock from another thread; the facade must still
        // hand the (sound) state back instead of panicking.
        let lock = Arc::new(lock);
        let l2 = Arc::clone(&lock);
        let t = StdSync::spawn("poisoner".into(), move || {
            let _g = StdSync::lock(&l2);
            panic!("poison");
        });
        StdSync::join(t);
        assert_eq!(*StdSync::lock(&lock), 8);
    }

    #[test]
    fn std_signal_wakes_a_parked_waiter() {
        struct Cell {
            flag: <StdSync as SyncPrims>::Lock<bool>,
            sig: <StdSync as SyncPrims>::Signal,
        }
        let cell = Arc::new(Cell {
            flag: StdSync::lock_new(false),
            sig: StdSync::signal_new(),
        });
        let c2 = Arc::clone(&cell);
        let t = StdSync::spawn("waker".into(), move || {
            *StdSync::lock(&c2.flag) = true;
            StdSync::wake_all(&c2.sig);
        });
        let mut g = StdSync::lock(&cell.flag);
        while !*g {
            g = StdSync::wait(&cell.sig, &cell.flag, g);
        }
        drop(g);
        StdSync::join(t);
    }
}
