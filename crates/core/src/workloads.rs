//! The paper's two evaluation workloads (Appendix A Table 4), scaled to
//! emulation-friendly sizes.
//!
//! * **Uniform plasma** — homogeneous electron plasma at
//!   `1e25 m^-3`, Maxwellian `u_th = 0.01 c`, periodic everywhere, CKC
//!   solver, CFL 1.0, tile size 8x8x8. The paper's grid is 256x128x128;
//!   the builders accept any cell count so benches pick sizes that keep
//!   the grid-to-modelled-cache ratio in the paper's memory-bound regime.
//! * **LWFA** — a Gaussian `a0` laser driving a wake in a
//!   `2e23 m^-3` background plasma, moving window along z, absorbing z
//!   boundaries, tile size 8x8x64 (scaled with the domain).

use mpic_deposit::{KernelConfig, ShapeOrder};
use mpic_grid::{GridGeometry, TileLayout};
use mpic_particles::{Departure, ParticleContainer};
use mpic_solver::{AbsorbingLayer, BoundaryKind, LaserAntenna, SolverKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::SimConfig;
use crate::simulation::{PlasmaSpec, Simulation};

use mpic_grid::constants::{M_E, Q_E};

/// Uniform-plasma electron density (per m^3), as in Table 4.
pub const UNIFORM_DENSITY: f64 = 1e25;

/// LWFA background density (per m^3), as in Table 4.
pub const LWFA_DENSITY: f64 = 2e23;

/// Thermal spread of the uniform plasma (`u_th = 0.01 c`).
pub const UNIFORM_UTH: f64 = 0.01;

/// Loads `ppc` electrons per cell, uniformly random inside each cell
/// with a Maxwellian-ish momentum spread.
pub fn load_uniform_plasma(
    geom: &GridGeometry,
    layout: &TileLayout,
    density: f64,
    ppc: usize,
    u_th: f64,
    seed: u64,
) -> ParticleContainer {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = ParticleContainer::new(layout, -Q_E, M_E);
    let w = density * geom.cell_volume() / ppc as f64;
    let n = geom.n_cells;
    // Gaussian-ish via sum of uniforms (Irwin-Hall, adequate for a
    // thermal load).
    let maxwell = |rng: &mut StdRng| -> f64 {
        let s: f64 = (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() - 3.0;
        u_th * s / 0.5f64.sqrt()
    };
    for k in 0..n[2] {
        for j in 0..n[1] {
            for i in 0..n[0] {
                for _ in 0..ppc {
                    let d = Departure {
                        x: geom.lo[0] + (i as f64 + rng.gen::<f64>()) * geom.dx[0],
                        y: geom.lo[1] + (j as f64 + rng.gen::<f64>()) * geom.dx[1],
                        z: geom.lo[2] + (k as f64 + rng.gen::<f64>()) * geom.dx[2],
                        ux: maxwell(&mut rng),
                        uy: maxwell(&mut rng),
                        uz: maxwell(&mut rng),
                        w,
                    };
                    let _ = c.inject(layout, geom, d);
                }
            }
        }
    }
    c
}

/// Scrambles the SoA order of every tile (models the steady-state
/// disorder an unsorted production run accumulates; freshly loaded
/// particles would otherwise start artificially cell-ordered).
pub fn shuffle_particles(
    c: &mut ParticleContainer,
    geom: &GridGeometry,
    layout: &TileLayout,
    seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let gap = c.gap_ratio();
    for (t, tile) in c.tiles.iter_mut().enumerate() {
        let live: Vec<usize> = tile.soa.live_indices().collect();
        if live.len() < 2 {
            continue;
        }
        // Fisher-Yates permutation applied as a compacting gather.
        let mut perm = live.clone();
        for i in (1..perm.len()).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        tile.soa.permute(&perm);
        // Positions are unchanged but slots moved: rebuild the bin map
        // and the GPMA index from scratch.
        let tl = layout.tile(t);
        tile.cells = (0..tile.soa.slots())
            .map(|p| {
                let (cell, _) = geom.locate(tile.soa.x[p], tile.soa.y[p], tile.soa.z[p]);
                tl.local_cell_id(geom.wrap_cell(cell))
            })
            .collect();
        tile.gpma = mpic_particles::Gpma::build(&tile.cells, tl.num_cells(), gap);
        let _ = t;
    }
}

/// The uniform-plasma configuration.
pub fn uniform_plasma_config(
    n_cells: [usize; 3],
    shape: ShapeOrder,
    kernel: KernelConfig,
    seed: u64,
) -> SimConfig {
    SimConfig {
        n_cells,
        dx: [1.0e-6; 3],
        tile_size: [8, 8, 8],
        guard: 2,
        cfl: 1.0,
        solver: SolverKind::Ckc,
        shape,
        kernel,
        boundary: BoundaryKind::Periodic,
        moving_window: false,
        laser: None,
        absorber: AbsorbingLayer::default(),
        machine: mpic_machine::MachineConfig::lx2(),
        seed,
        num_workers: 1,
        scheduler: mpic_machine::SchedulerPolicy::Static,
        batching: false,
        simd: false,
    }
}

/// Builds a ready-to-run uniform plasma simulation.
pub fn uniform_plasma_sim(
    n_cells: [usize; 3],
    ppc: usize,
    shape: ShapeOrder,
    kernel: KernelConfig,
    seed: u64,
) -> Simulation {
    let cfg = uniform_plasma_config(n_cells, shape, kernel, seed);
    let geom = GridGeometry::new(cfg.n_cells, [0.0; 3], cfg.dx, cfg.guard);
    let layout = TileLayout::new(&geom, cfg.tile_size);
    let electrons = load_uniform_plasma(&geom, &layout, UNIFORM_DENSITY, ppc, UNIFORM_UTH, seed);
    Simulation::from_parts(cfg, geom, layout, electrons, None)
}

/// The LWFA configuration: laser, moving window, absorbing z.
pub fn lwfa_config(
    n_cells: [usize; 3],
    shape: ShapeOrder,
    kernel: KernelConfig,
    seed: u64,
) -> SimConfig {
    let dx = [0.5e-6, 0.5e-6, 0.25e-6];
    let laser = LaserAntenna {
        lambda: 0.8e-6,
        a0: 4.0,
        tau: 8e-15,
        t_peak: 20e-15,
        waist: 0.25 * n_cells[0] as f64 * dx[0],
        z_plane: 2,
    };
    SimConfig {
        n_cells,
        dx,
        tile_size: [8, 8, (n_cells[2] / 2).clamp(8, 64)],
        guard: 2,
        cfl: 1.0,
        solver: SolverKind::Ckc,
        shape,
        kernel,
        boundary: BoundaryKind::AbsorbingZ,
        moving_window: true,
        laser: Some(laser),
        absorber: AbsorbingLayer::default(),
        machine: mpic_machine::MachineConfig::lx2(),
        seed,
        num_workers: 1,
        scheduler: mpic_machine::SchedulerPolicy::Static,
        batching: false,
        simd: false,
    }
}

/// Builds a ready-to-run LWFA simulation.
pub fn lwfa_sim(
    n_cells: [usize; 3],
    ppc: usize,
    shape: ShapeOrder,
    kernel: KernelConfig,
    seed: u64,
) -> Simulation {
    let cfg = lwfa_config(n_cells, shape, kernel, seed);
    let geom = GridGeometry::new(cfg.n_cells, [0.0; 3], cfg.dx, cfg.guard);
    let layout = TileLayout::new(&geom, cfg.tile_size);
    let electrons = load_uniform_plasma(&geom, &layout, LWFA_DENSITY, ppc, 0.0, seed);
    let spec = PlasmaSpec {
        density: LWFA_DENSITY,
        ppc,
        u_th: 0.0,
    };
    Simulation::from_parts(cfg, geom, layout, electrons, Some(spec))
}

/// Builds an adversarially load-imbalanced LWFA simulation: every
/// particle is loaded into the cells of tile 0 (the "hot" tile) at
/// `ppc` per cell, leaving every other tile empty. This is the
/// worst-case input for static contiguous tile chunks — the chunk that
/// owns tile 0 carries the whole particle workload — and therefore the
/// stress test for the work-stealing scheduler's claim/merge
/// determinism (`tests/parallel_determinism.rs`).
pub fn imbalanced_lwfa_sim(n_cells: [usize; 3], ppc: usize, seed: u64) -> Simulation {
    let cfg = lwfa_config(n_cells, ShapeOrder::Cic, KernelConfig::FullOpt, seed);
    let geom = GridGeometry::new(cfg.n_cells, [0.0; 3], cfg.dx, cfg.guard);
    let layout = TileLayout::new(&geom, cfg.tile_size);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut electrons = ParticleContainer::new(&layout, -Q_E, M_E);
    let w = LWFA_DENSITY * geom.cell_volume() / ppc as f64;
    let ts = cfg.tile_size;
    for k in 0..ts[2].min(n_cells[2]) {
        for j in 0..ts[1].min(n_cells[1]) {
            for i in 0..ts[0].min(n_cells[0]) {
                for _ in 0..ppc {
                    let d = Departure {
                        x: geom.lo[0] + (i as f64 + rng.gen::<f64>()) * geom.dx[0],
                        y: geom.lo[1] + (j as f64 + rng.gen::<f64>()) * geom.dx[1],
                        z: geom.lo[2] + (k as f64 + rng.gen::<f64>()) * geom.dx[2],
                        ux: 0.0,
                        uy: 0.0,
                        uz: 0.0,
                        w,
                    };
                    let _ = electrons.inject(&layout, &geom, d);
                }
            }
        }
    }
    let spec = PlasmaSpec {
        density: LWFA_DENSITY,
        ppc,
        u_th: 0.0,
    };
    Simulation::from_parts(cfg, geom, layout, electrons, Some(spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_load_hits_target_ppc() {
        let geom = GridGeometry::new([4, 4, 4], [0.0; 3], [1e-6; 3], 2);
        let layout = TileLayout::new(&geom, [4, 4, 4]);
        let c = load_uniform_plasma(&geom, &layout, UNIFORM_DENSITY, 8, 0.01, 1);
        assert_eq!(c.total_particles(), 8 * 64);
        c.check_invariants();
        // Total charge = -q n V.
        let expect = -Q_E * UNIFORM_DENSITY * geom.cell_volume() * 64.0;
        assert!(((c.total_charge() - expect) / expect).abs() < 1e-12);
    }

    #[test]
    fn thermal_spread_is_near_uth() {
        let geom = GridGeometry::new([8, 8, 8], [0.0; 3], [1e-6; 3], 2);
        let layout = TileLayout::new(&geom, [8, 8, 8]);
        let c = load_uniform_plasma(&geom, &layout, UNIFORM_DENSITY, 16, 0.01, 3);
        let mut sum2 = 0.0;
        let mut n = 0usize;
        for t in &c.tiles {
            for p in t.soa.live_indices() {
                sum2 += t.soa.ux[p] * t.soa.ux[p];
                n += 1;
            }
        }
        let rms = (sum2 / n as f64).sqrt();
        assert!((rms / 0.01 - 1.0).abs() < 0.2, "rms {rms}");
    }

    #[test]
    fn lwfa_sim_builds() {
        let sim = lwfa_sim([8, 8, 32], 1, ShapeOrder::Cic, KernelConfig::FullOpt, 7);
        assert!(sim.cfg.moving_window);
        assert!(sim.cfg.laser.is_some());
        assert_eq!(sim.num_particles(), 8 * 8 * 32);
    }
}
