//! The PIC simulation orchestrator: Algorithm 1 embedded in the standard
//! gather -> push -> sort -> deposit -> field-solve loop.

use mpic_deposit::{canonical_flops_per_particle, AddrMap, Depositor, ShapeOrder, SortStrategy};
use mpic_grid::constants::C;
use mpic_grid::{Array3, FieldArrays, GridGeometry, TileLayout};
use mpic_machine::{
    vect::W, CacheLevelState, CacheSimState, Lanes, Machine, PerfCounters, Phase, VAddr, WorkerPool,
};
use mpic_particles::{
    Departure, Gpma, GpmaState, ParticleContainer, ParticleSoA, ParticleTile, PendingMove,
    RankSortStats, INVALID_PARTICLE_ID,
};
use mpic_push::boris::{boris_push, boris_push_lanes, charge_push, BorisCoeffs};
use mpic_push::gather::{
    charge_gather, charge_gather_run, charge_gather_run_reuse, gather_fields_with_cell,
    gather_from_block, gather_from_block_lanes_masked, load_node_block, GatherCost, NodeBlock,
    MAX_STENCIL_NODES,
};
use mpic_push::PushScratch;
use mpic_solver::{BoundaryKind, MaxwellSolver, SolverKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::SimConfig;
use crate::snapshot::{section, SectionReader, SnapshotError, SnapshotReader, SnapshotWriter};
use crate::timings::{RunReport, StepTimings};

/// Plasma parameters used when the moving window injects fresh particles
/// at the leading edge.
#[derive(Debug, Clone, Copy)]
pub struct PlasmaSpec {
    /// Electron number density (per m^3).
    pub density: f64,
    /// Particles per cell.
    pub ppc: usize,
    /// Thermal momentum spread (normalised u).
    pub u_th: f64,
}

/// A complete single-rank PIC simulation.
pub struct Simulation {
    /// Configuration the simulation was built from.
    pub cfg: SimConfig,
    /// Grid geometry.
    pub geom: GridGeometry,
    /// Tile decomposition.
    pub layout: TileLayout,
    /// Electromagnetic field state.
    pub fields: FieldArrays,
    /// The electron species.
    pub electrons: ParticleContainer,
    /// The emulated machine accumulating all costs.
    pub machine: Machine,
    solver: MaxwellSolver,
    depositor: Depositor,
    sort_stats: RankSortStats,
    pending_global_sort: bool,
    window_plasma: Option<PlasmaSpec>,
    window_accum: f64,
    boris: BorisCoeffs,
    dt: f64,
    time: f64,
    step_index: u64,
    field_addrs: [VAddr; 6],
    rng: StdRng,
    report: RunReport,
    /// Per-worker reusable gather/push buffers (index = worker id).
    push_scratch: Vec<PushScratch>,
    /// Per-tile departure buckets reused by every moving-window
    /// injection (index = tile id; capacity retained across advances so
    /// the recurring LWFA injection path stays allocation-free).
    window_buckets: Vec<Vec<Departure>>,
    /// The persistent execution pool every sharded phase dispatches to:
    /// threads are spawned once (sized by `cfg.num_workers`, rebuilt
    /// lazily if that changes between steps) and parked between phases
    /// and steps, replacing the per-phase `thread::scope` spawns the
    /// pipeline used to pay ~6x per step.
    pool: WorkerPool,
}

impl Simulation {
    /// Builds a simulation with an already-populated container.
    pub fn from_parts(
        cfg: SimConfig,
        geom: GridGeometry,
        layout: TileLayout,
        mut electrons: ParticleContainer,
        window_plasma: Option<PlasmaSpec>,
    ) -> Self {
        let mut machine = Machine::new(cfg.machine.clone());
        let fields = FieldArrays::new(&geom);
        let solver = MaxwellSolver::new(cfg.solver, &geom);
        let dt = cfg.cfl * solver.max_dt(&geom);
        let mut depositor = cfg.kernel.build(cfg.shape);
        depositor.prepare(&mut machine, &geom, &layout, &mut electrons);
        let dims = geom.dims_with_guard();
        let len = dims[0] * dims[1] * dims[2];
        let field_addrs = std::array::from_fn(|_| machine.mem().alloc_f64(len));
        let boris = BorisCoeffs::new(electrons.charge, electrons.mass, dt);
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0xabcd_ef01);
        let pool = WorkerPool::new(cfg.num_workers.max(1));
        Self {
            cfg,
            geom,
            layout,
            fields,
            electrons,
            machine,
            solver,
            depositor,
            sort_stats: RankSortStats::default(),
            pending_global_sort: false,
            window_plasma,
            window_accum: 0.0,
            boris,
            dt,
            time: 0.0,
            step_index: 0,
            field_addrs,
            rng,
            report: RunReport::default(),
            push_scratch: Vec::new(),
            window_buckets: Vec::new(),
            pool,
        }
    }

    /// The persistent execution pool: exposed for health checks and for
    /// the fault-injection test hook
    /// ([`mpic_machine::WorkerPool::inject_fault`]). Note the pool is
    /// rebuilt at the top of the next step if `cfg.num_workers` changed,
    /// which discards any pending fault plan — arm faults only after at
    /// least one step under the final worker count.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Respawns any dead pool worker threads (after a caught
    /// [`mpic_machine::ExecError`]); returns how many were replaced.
    /// Part of the recovery path driven by [`crate::ResilientDriver`].
    pub fn repair_workers(&mut self) -> usize {
        self.pool.respawn_dead()
    }

    /// Rebuilds the persistent pool if `cfg.num_workers` changed since
    /// the last step (tests and probes retarget the worker count between
    /// steps); otherwise the parked threads are reused as-is. Call once
    /// at the top of `step`, then borrow `self.pool.exec(...)` per
    /// phase.
    fn sync_pool(&mut self) {
        let workers = self.cfg.num_workers.max(1);
        if self.pool.workers() != workers {
            self.pool = WorkerPool::new(workers);
        }
    }

    /// Timestep (s).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Simulated physical time (s).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Steps taken.
    pub fn step_index(&self) -> u64 {
        self.step_index
    }

    /// The timing report accumulated so far.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// Deposition driver name (kernel configuration).
    pub fn kernel_name(&self) -> &'static str {
        self.depositor.name()
    }

    /// Live particle count.
    pub fn num_particles(&self) -> usize {
        self.electrons.total_particles()
    }

    /// Requests a global re-sort at the start of the next step (the same
    /// escalation path the adaptive policy uses). Only meaningful for
    /// [`SortStrategy::Incremental`] configurations.
    pub fn request_global_sort(&mut self) {
        self.pending_global_sort = true;
    }

    /// Whether a global sort is pending for the next step.
    pub fn global_sort_pending(&self) -> bool {
        self.pending_global_sort
    }

    /// The adaptive-policy counters as of the end of the last step
    /// (diagnostics and tests).
    pub fn sort_stats(&self) -> &RankSortStats {
        &self.sort_stats
    }

    /// Total kinetic energy (J).
    pub fn kinetic_energy(&self) -> f64 {
        let mc2 = self.electrons.mass * C * C;
        let mut e = 0.0;
        for t in &self.electrons.tiles {
            for p in t.soa.live_indices() {
                let (ux, uy, uz) = (t.soa.ux[p], t.soa.uy[p], t.soa.uz[p]);
                let gamma = (1.0 + ux * ux + uy * uy + uz * uz).sqrt();
                e += t.soa.w[p] * mc2 * (gamma - 1.0);
            }
        }
        e
    }

    /// Total field energy (J).
    pub fn field_energy(&self) -> f64 {
        self.fields.field_energy(&self.geom)
    }

    /// Total charge (C).
    pub fn total_charge(&self) -> f64 {
        self.electrons.total_charge()
    }

    /// Advances the simulation one step, returning the step's timings.
    pub fn step(&mut self) -> StepTimings {
        let before = self.machine.counters().clone();
        self.sync_pool();
        // The batching knob is read from cfg each step (probes retarget
        // it between steps); the depositor ANDs it with its sorting
        // strategy, so unsorted configurations keep the reference sweep.
        // The simd knob rides the same re-read and is ANDed with
        // batching inside the depositor and the push dispatch.
        self.depositor.set_batching(self.cfg.batching);
        self.depositor.set_simd(self.cfg.simd);

        // --- Gather + push + particle boundaries -----------------------
        self.push_particles();

        // --- Sorting (incremental GPMA or per-strategy) ----------------
        let force = std::mem::take(&mut self.pending_global_sort);
        let sort_report = self.depositor.sort_step_parallel(
            &mut self.machine,
            &self.geom,
            &self.layout,
            &mut self.electrons,
            force,
            self.pool.exec(self.cfg.scheduler),
        );
        if sort_report.policy_triggered {
            self.sort_stats.reset();
            // The metric `reset()` just promoted to `baseline_perf` is the
            // *pre-sort* throughput of the step that requested the sort —
            // stale and degraded. Clear it so `update_sort_policy` at the
            // end of *this* step re-seeds the baseline from the first
            // post-sort measurement; until then trigger 5 is disarmed, so
            // the policy cannot re-fire off its own sort's cost.
            self.sort_stats.baseline_perf = 0.0;
        }

        // --- Current deposition ----------------------------------------
        self.depositor.deposit_step_parallel(
            &mut self.machine,
            &self.geom,
            &self.layout,
            &self.electrons,
            &mut self.fields,
            self.pool.exec(self.cfg.scheduler),
        );
        // Credit canonical useful work (section 5.2.2).
        let n = self.num_particles();
        self.machine.counters_mut().useful_flops +=
            canonical_flops_per_particle(self.cfg.shape) * n as f64;

        // --- Field solve + sources + boundaries ------------------------
        // Z-slab sharded stencil sweeps + pooled guard exchange; laser
        // injection and the absorbing layer below stay on this thread in
        // fixed order.
        self.solver.step_sharded(
            &mut self.machine,
            &self.geom,
            &mut self.fields,
            self.dt,
            self.pool.exec(self.cfg.scheduler),
        );
        if let Some(laser) = &self.cfg.laser {
            laser.inject(&self.geom, &mut self.fields, self.time);
        }
        if self.cfg.boundary == BoundaryKind::AbsorbingZ {
            self.machine.in_phase(Phase::Other, |_| {});
            self.cfg.absorber.apply(&self.geom, &mut self.fields);
        }

        // --- Moving window ----------------------------------------------
        if self.cfg.moving_window {
            self.advance_window();
        }

        self.time += self.dt;
        self.step_index += 1;

        // --- Sort-policy bookkeeping (evaluated at end of step) ---------
        let timings = StepTimings::from_delta(&before, self.machine.counters(), n);
        self.update_sort_policy(&timings);
        self.report.push(timings);
        timings
    }

    /// Runs `n` steps and returns the accumulated report.
    pub fn run(&mut self, n: usize) -> &RunReport {
        for _ in 0..n {
            self.step();
        }
        &self.report
    }

    /// Gather + Boris push + position boundaries for every particle,
    /// sharded across the persistent worker pool (tiles are
    /// independent: each worker mutates only its own tiles and reads the
    /// shared immutable field state).
    ///
    /// Each tile is charged on a forked worker machine with a per-tile
    /// cold private cache, and counter deltas merge back in tile order —
    /// so positions, momenta and emulated cycles are bit-identical for
    /// any worker count or scheduler policy.
    ///
    /// With [`SimConfig::batching`] set (and a sorting strategy that
    /// keeps the GPMA cell-accurate), each tile runs the cell-run
    /// batched sweep instead: particles are visited in GPMA-sorted
    /// order, each same-cell run loads its stencil node block once and
    /// every particle interpolates from the cached block — bit-identical
    /// E/B values (gathers are read-only), ~ppc x fewer modelled node
    /// loads.
    fn push_particles(&mut self) {
        let order = self.cfg.shape;
        let nodes = order.nodes_3d();
        let absorbing = self.cfg.boundary == BoundaryKind::AbsorbingZ;
        let zlo = self.geom.lo[2];
        let zhi = self.geom.hi()[2];
        // The GPMA bins are position-accurate at push time only when a
        // sorting strategy maintains them for kernel consumption; the
        // unsorted baseline keeps the per-particle reference sweep
        // (whose sampled address stream is the paper's unsorted-gather
        // cost signal) regardless of the knob.
        let batched = self.cfg.batching && self.depositor.strategy().provides_sorted_order();
        // SIMD is a mode *of* the batched sweep (lane-width packs over a
        // run's particles), so it inherits the same sorted-order guard.
        let simd = batched && self.cfg.simd;
        let workers = self.pool.workers();
        if self.push_scratch.len() < workers {
            self.push_scratch.resize_with(workers, PushScratch::default);
        }
        let geom = &self.geom;
        let fields = &self.fields;
        let boris = self.boris;
        let field_addrs = self.field_addrs;
        let counters = self.pool.exec(self.cfg.scheduler).run_counted(
            &self.machine,
            &mut self.electrons.tiles,
            &mut self.push_scratch,
            |wm, _t, tile, scratch| {
                if simd {
                    push_tile_batched_simd(
                        wm,
                        geom,
                        order,
                        fields,
                        &field_addrs,
                        &boris,
                        absorbing,
                        zlo,
                        zhi,
                        tile,
                        scratch,
                    );
                } else if batched {
                    push_tile_batched(
                        wm,
                        geom,
                        order,
                        fields,
                        &field_addrs,
                        &boris,
                        absorbing,
                        zlo,
                        zhi,
                        tile,
                        scratch,
                    );
                } else {
                    push_tile(
                        wm,
                        geom,
                        order,
                        nodes,
                        fields,
                        &field_addrs,
                        &boris,
                        absorbing,
                        zlo,
                        zhi,
                        tile,
                        scratch,
                    );
                }
            },
        );
        // Deterministic fixed-order counter merge (tile order).
        for c in &counters {
            self.machine.absorb_counters(c);
        }
    }

    /// Shifts the moving window when it has advanced one cell: the
    /// field shift (independent component arrays), the per-tile
    /// particle shift with its trailing-edge removal (independent
    /// tiles) and the per-tile half of the fresh-plasma injection all
    /// run on the worker pool.
    fn advance_window(&mut self) {
        self.window_accum += C * self.dt;
        let dz = self.geom.dx[2];
        while self.window_accum >= dz {
            self.window_accum -= dz;
            self.machine.in_phase(Phase::Other, |m| {
                m.s_ops(self.geom.total_cells() / 8);
            });
            let exec = self.pool.exec(self.cfg.scheduler);
            self.fields.shift_window_z_exec(exec);
            // Shift particles into window coordinates, dropping those
            // that fall off the trailing edge. Tiles are independent, so
            // per-tile outcomes cannot depend on worker count or policy.
            let zlo = self.geom.lo[2];
            exec.for_each(&mut self.electrons.tiles, |_, tile| {
                shift_tile_window(tile, dz, zlo);
            });
            // Inject fresh plasma in the leading z plane.
            if let Some(spec) = self.window_plasma {
                self.inject_front_plane(spec);
            }
        }
    }

    /// Fills the last z-plane of cells with fresh plasma.
    ///
    /// Split in two halves so the RNG stream — and with it every
    /// particle's data *and* insertion order — is bit-identical for any
    /// worker count: particles are *generated* sequentially on the
    /// calling thread (consuming the RNG in the fixed j, i, ppc order)
    /// and bucketed by owning tile, then the per-tile *insertions* run
    /// on the worker pool. A tile's GPMA/SoA state depends only on its
    /// own insertion subsequence, which equals the sequential
    /// interleaving restricted to that tile.
    fn inject_front_plane(&mut self, spec: PlasmaSpec) {
        let n = self.geom.n_cells;
        let k = n[2] - 1;
        let w = spec.density * self.geom.cell_volume() / spec.ppc as f64;
        let n_tiles = self.electrons.tiles.len();
        if self.window_buckets.len() < n_tiles {
            self.window_buckets.resize_with(n_tiles, Vec::new);
        }
        for b in &mut self.window_buckets {
            b.clear();
        }
        for j in 0..n[1] {
            for i in 0..n[0] {
                for _ in 0..spec.ppc {
                    let x = self.geom.lo[0] + (i as f64 + self.rng.gen::<f64>()) * self.geom.dx[0];
                    let y = self.geom.lo[1] + (j as f64 + self.rng.gen::<f64>()) * self.geom.dx[1];
                    let z = self.geom.lo[2] + (k as f64 + self.rng.gen::<f64>()) * self.geom.dx[2];
                    let d = Departure {
                        x,
                        y,
                        z,
                        ux: spec.u_th * self.rng.gen_range(-1.0..1.0),
                        uy: spec.u_th * self.rng.gen_range(-1.0..1.0),
                        uz: spec.u_th * self.rng.gen_range(-1.0..1.0),
                        w,
                    };
                    let (cell, _) = self.geom.locate(d.x, d.y, d.z);
                    let cell = self.geom.wrap_cell(cell);
                    self.window_buckets[self.layout.tile_of_cell(cell)].push(d);
                }
            }
        }
        // Small injections run inline past the shared threshold, like
        // every other small-input phase: the front plane of the test
        // workloads holds a few hundred particles — not worth a pool
        // wake. Either path inserts each tile's bucket in generation
        // order, so the resulting state is identical.
        let total = n[0] * n[1] * spec.ppc;
        if self.pool.workers() == 1 || total < mpic_machine::INLINE_ITEM_THRESHOLD {
            for (t, bucket) in self.window_buckets.iter_mut().enumerate() {
                for d in bucket.drain(..) {
                    let _ = self.electrons.tiles[t].insert(d, self.layout.tile(t), &self.geom);
                }
            }
            return;
        }
        let geom = &self.geom;
        let layout = &self.layout;
        let mut items: Vec<(usize, &mut ParticleTile, &mut Vec<Departure>)> = self
            .electrons
            .tiles
            .iter_mut()
            .enumerate()
            .zip(self.window_buckets.iter_mut())
            .filter(|(_, b)| !b.is_empty())
            .map(|((t, tile), b)| (t, tile, b))
            .collect();
        self.pool
            .exec(self.cfg.scheduler)
            .for_each(&mut items, |_, (t, tile, bucket)| {
                for d in bucket.drain(..) {
                    let _ = tile.insert(d, layout.tile(*t), geom);
                }
            });
    }

    /// Updates [`RankSortStats`] and evaluates the five-trigger policy
    /// (`ShouldPerformGlobalSort`, end of Algorithm 1).
    fn update_sort_policy(&mut self, t: &StepTimings) {
        let SortStrategy::Incremental(policy) = self.depositor.strategy().clone() else {
            return;
        };
        self.sort_stats.steps_since_sort += 1;
        self.sort_stats.rebuilds_accum = self.electrons.rebuilds_accum();
        self.sort_stats.empty_ratio = self.electrons.empty_ratio();
        let dep_s = self.cfg.machine.cycles_to_seconds(t.deposition());
        self.sort_stats.perf_metric = if dep_s > 0.0 {
            t.particles as f64 / dep_s
        } else {
            0.0
        };
        if self.sort_stats.baseline_perf == 0.0 {
            self.sort_stats.baseline_perf = self.sort_stats.perf_metric;
        }
        if policy.should_sort(&self.sort_stats).is_some() {
            self.pending_global_sort = true;
        }
    }
}

/// Checkpoint/restore. The serialized inventory is everything `step()`
/// reads or writes: the nine field arrays, every tile's SoA + GPMA +
/// bin map, the RNG stream, the sort-policy counters, the per-phase
/// performance counters and cache statistics, the behavioural cache
/// state (tags, LRU stamps, stream detectors), the virtual address map
/// with the allocator mark, and the accumulated run report. Everything
/// else a simulation owns is either pure configuration (solver
/// coefficients, Boris coefficients, dt, geometry — rederived from
/// `SimConfig`) or scratch that is cleared before each use.
///
/// The contract (pinned in `tests/snapshot.rs`): `restore` onto a fresh
/// simulation built from the same `SimConfig`, followed by `step()`, is
/// **bit-identical** to stepping the original — fields, currents,
/// particle data, per-phase cycle counters and the final report — for
/// any worker count, scheduler policy and batching mode.
impl Simulation {
    /// Serializes the complete mutable state into the versioned snapshot
    /// format (see [`crate::snapshot`]). Non-destructive: the simulation
    /// is not perturbed, so snapshots can be taken mid-run at any step
    /// boundary.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut wtr = SnapshotWriter::new();

        wtr.begin_section(section::META);
        for d in 0..3 {
            wtr.put_usize(self.cfg.n_cells[d]);
        }
        for d in 0..3 {
            wtr.put_f64(self.cfg.dx[d]);
        }
        for d in 0..3 {
            wtr.put_usize(self.cfg.tile_size[d]);
        }
        wtr.put_usize(self.cfg.guard);
        wtr.put_u32(solver_kind_id(self.solver.kind()));
        wtr.put_usize(self.cfg.shape.order());
        wtr.put_str(self.kernel_name());
        wtr.put_f64(self.dt);
        wtr.put_usize(self.electrons.tiles.len());
        wtr.put_usize(self.fields.ex.as_slice().len());
        wtr.end_section();

        wtr.begin_section(section::FIELDS);
        for arr in field_array_refs(&self.fields) {
            wtr.put_vec_f64(arr.as_slice());
        }
        wtr.end_section();

        wtr.begin_section(section::PARTICLES);
        wtr.put_f64(self.electrons.charge);
        wtr.put_f64(self.electrons.mass);
        wtr.put_f64(self.electrons.gap_ratio());
        wtr.put_usize(self.electrons.tiles.len());
        for tile in &self.electrons.tiles {
            for attr in [
                &tile.soa.x,
                &tile.soa.y,
                &tile.soa.z,
                &tile.soa.ux,
                &tile.soa.uy,
                &tile.soa.uz,
                &tile.soa.w,
            ] {
                wtr.put_vec_f64(attr);
            }
            wtr.put_vec_bool(&tile.soa.alive);
            wtr.put_vec_usize(tile.soa.free_slots());
            wtr.put_vec_usize(&tile.cells);
            let g = tile.gpma.export_state();
            wtr.put_vec_usize(&g.local_index);
            wtr.put_vec_usize(&g.bin_offsets);
            wtr.put_vec_usize(&g.bin_lengths);
            wtr.put_usize(g.bin_free.len());
            for stack in &g.bin_free {
                wtr.put_vec_usize(stack);
            }
            wtr.put_vec_usize(&g.slot_of);
            wtr.put_usize(g.num_particles);
            wtr.put_usize(g.num_empty_slots);
            wtr.put_f64(g.gap_ratio);
            wtr.put_usize(g.pending.len());
            for p in &g.pending {
                wtr.put_usize(p.particle);
                put_opt_usize(&mut wtr, p.old_bin);
                put_opt_usize(&mut wtr, p.new_bin);
            }
            wtr.put_bool(g.was_rebuilt_this_step);
            wtr.put_u64(g.rebuild_count);
        }
        wtr.end_section();

        wtr.begin_section(section::RNG);
        wtr.put_u64(self.rng.state());
        wtr.end_section();

        wtr.begin_section(section::DRIVER);
        wtr.put_u64(self.sort_stats.steps_since_sort);
        wtr.put_u64(self.sort_stats.rebuilds_accum);
        wtr.put_f64(self.sort_stats.empty_ratio);
        wtr.put_f64(self.sort_stats.perf_metric);
        wtr.put_f64(self.sort_stats.baseline_perf);
        wtr.put_bool(self.pending_global_sort);
        wtr.put_f64(self.window_accum);
        wtr.put_f64(self.time);
        wtr.put_u64(self.step_index);
        wtr.end_section();

        wtr.begin_section(section::COUNTERS);
        let ctr = self.machine.counters();
        for p in Phase::ALL {
            wtr.put_f64(ctr.cycles(p));
        }
        wtr.put_f64(ctr.flops_issued);
        wtr.put_f64(ctr.useful_flops);
        wtr.put_u64(ctr.scalar_ops);
        wtr.put_u64(ctr.vector_ops);
        wtr.put_u64(ctr.mopa_ops);
        wtr.put_u64(ctr.tile_transfers);
        let mem = self.machine.mem_ref();
        for stats in [mem.l1_stats(), mem.l2_stats()] {
            wtr.put_u64(stats.hits);
            wtr.put_u64(stats.misses);
        }
        let (streamed, random) = mem.miss_split();
        wtr.put_u64(streamed);
        wtr.put_u64(random);
        wtr.end_section();

        wtr.begin_section(section::CACHE);
        let cache = self.machine.mem_ref().cache_state();
        for lvl in [&cache.l1, &cache.l2] {
            wtr.put_vec_u64(&lvl.tags);
            wtr.put_vec_u64(&lvl.stamps);
            wtr.put_u64(lvl.clock);
            wtr.put_u64(lvl.memo_line);
            wtr.put_u64(lvl.memo_slot);
        }
        wtr.put_usize(cache.streams.len());
        for &(tag, count) in &cache.streams {
            wtr.put_u64(tag);
            wtr.put_u32(count);
        }
        wtr.put_u32(cache.decay_tick);
        wtr.end_section();

        wtr.begin_section(section::ADDRS);
        wtr.put_u64(self.machine.mem_ref().alloc_mark());
        for a in self.field_addrs {
            wtr.put_u64(a.0);
        }
        let am = self
            .depositor
            .addr_map()
            .expect("depositor prepared at construction");
        wtr.put_u64(am.jx.0);
        wtr.put_u64(am.jy.0);
        wtr.put_u64(am.jz.0);
        wtr.put_usize(am.soa.len());
        for tile in &am.soa {
            for a in tile {
                wtr.put_u64(a.0);
            }
        }
        wtr.put_usize(am.local_index.len());
        for a in &am.local_index {
            wtr.put_u64(a.0);
        }
        wtr.put_usize(am.rhocell.len());
        for a in &am.rhocell {
            wtr.put_u64(a.0);
        }
        wtr.put_u64(am.staging.0);
        wtr.end_section();

        wtr.begin_section(section::REPORT);
        wtr.put_f64(self.report.useful_flops);
        wtr.put_usize(self.report.steps.len());
        for s in &self.report.steps {
            for c in s.cycles {
                wtr.put_f64(c);
            }
            wtr.put_usize(s.particles);
        }
        wtr.end_section();

        wtr.finish()
    }

    /// Restores the state captured by [`Simulation::snapshot`] into this
    /// simulation, which must have been built from the same
    /// configuration (geometry, solver, kernel, timestep — runtime knobs
    /// like `num_workers`, `scheduler`, `batching` and `simd` may
    /// differ; they shape host execution, not simulation state).
    ///
    /// Corrupt, truncated or incompatible input returns a structured
    /// [`SnapshotError`] and never panics. Every fallible decode and
    /// validation runs before the first write to `self`, so a failed
    /// restore leaves the simulation exactly as it was.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let rdr = SnapshotReader::new(bytes)?;

        // --- META: configuration fingerprint --------------------------
        let mut s = rdr.section(section::META)?;
        for d in 0..3 {
            if s.get_usize()? != self.cfg.n_cells[d] {
                return Err(SnapshotError::Incompatible { reason: "n_cells" });
            }
        }
        for d in 0..3 {
            if s.get_f64()?.to_bits() != self.cfg.dx[d].to_bits() {
                return Err(SnapshotError::Incompatible { reason: "dx" });
            }
        }
        for d in 0..3 {
            if s.get_usize()? != self.cfg.tile_size[d] {
                return Err(SnapshotError::Incompatible {
                    reason: "tile_size",
                });
            }
        }
        if s.get_usize()? != self.cfg.guard {
            return Err(SnapshotError::Incompatible { reason: "guard" });
        }
        if s.get_u32()? != solver_kind_id(self.solver.kind()) {
            return Err(SnapshotError::Incompatible { reason: "solver" });
        }
        if s.get_usize()? != self.cfg.shape.order() {
            return Err(SnapshotError::Incompatible {
                reason: "shape order",
            });
        }
        if s.get_string()? != self.kernel_name() {
            return Err(SnapshotError::Incompatible { reason: "kernel" });
        }
        if s.get_f64()?.to_bits() != self.dt.to_bits() {
            return Err(SnapshotError::Incompatible { reason: "dt" });
        }
        let n_tiles = self.electrons.tiles.len();
        if s.get_usize()? != n_tiles {
            return Err(SnapshotError::Incompatible {
                reason: "tile count",
            });
        }
        let field_len = self.fields.ex.as_slice().len();
        if s.get_usize()? != field_len {
            return Err(SnapshotError::Incompatible {
                reason: "field length",
            });
        }

        // --- FIELDS ----------------------------------------------------
        let mut s = rdr.section(section::FIELDS)?;
        let mut field_data = Vec::with_capacity(9);
        for _ in 0..9 {
            let v = s.get_vec_f64()?;
            if v.len() != field_len {
                return Err(SnapshotError::Malformed {
                    section: section::FIELDS,
                    reason: "field array length mismatch",
                });
            }
            field_data.push(v);
        }

        // --- PARTICLES -------------------------------------------------
        let mut s = rdr.section(section::PARTICLES)?;
        let bad = |reason| SnapshotError::Malformed {
            section: section::PARTICLES,
            reason,
        };
        let charge = s.get_f64()?;
        let mass = s.get_f64()?;
        let gap_ratio = s.get_f64()?;
        if !gap_ratio.is_finite() || gap_ratio < 0.0 {
            return Err(bad("gap ratio outside [0, inf)"));
        }
        if s.get_usize()? != n_tiles {
            return Err(bad("tile count disagrees with META"));
        }
        let mut tiles = Vec::with_capacity(n_tiles);
        for t in 0..n_tiles {
            let mut attrs = Vec::with_capacity(7);
            for _ in 0..7 {
                attrs.push(s.get_vec_f64()?);
            }
            let alive = s.get_vec_bool()?;
            let free = s.get_vec_usize()?;
            let cells = s.get_vec_usize()?;
            let local_index = s.get_vec_usize()?;
            let bin_offsets = s.get_vec_usize()?;
            let bin_lengths = s.get_vec_usize()?;
            let n_stacks = s.get_usize()?;
            if n_stacks != bin_lengths.len() {
                return Err(bad("free-stack count disagrees with bin count"));
            }
            let mut bin_free = Vec::with_capacity(n_stacks);
            for _ in 0..n_stacks {
                bin_free.push(s.get_vec_usize()?);
            }
            let slot_of = s.get_vec_usize()?;
            let num_particles = s.get_usize()?;
            let num_empty_slots = s.get_usize()?;
            let g_gap_ratio = s.get_f64()?;
            let n_pending = s.get_usize()?;
            let mut pending = Vec::with_capacity(n_pending.min(s.remaining() / 17));
            for _ in 0..n_pending {
                pending.push(PendingMove {
                    particle: s.get_usize()?,
                    old_bin: get_opt_usize(&mut s)?,
                    new_bin: get_opt_usize(&mut s)?,
                });
            }
            let was_rebuilt_this_step = s.get_bool()?;
            let rebuild_count = s.get_u64()?;
            let n_bins = bin_lengths.len();
            if n_bins != self.layout.tile(t).num_cells() {
                return Err(bad("GPMA bin count disagrees with the tile layout"));
            }
            if cells
                .iter()
                .any(|&c| c != INVALID_PARTICLE_ID && c >= n_bins)
            {
                return Err(bad("cell bin out of range"));
            }
            let [x, y, z, ux, uy, uz, w]: [Vec<f64>; 7] =
                attrs.try_into().expect("seven attribute arrays");
            let soa = ParticleSoA::from_parts(x, y, z, ux, uy, uz, w, alive, free).map_err(bad)?;
            let gpma = Gpma::from_state(GpmaState {
                local_index,
                bin_offsets,
                bin_lengths,
                bin_free,
                slot_of,
                num_particles,
                num_empty_slots,
                gap_ratio: g_gap_ratio,
                pending,
                was_rebuilt_this_step,
                rebuild_count,
            })
            .map_err(bad)?;
            tiles.push(ParticleTile { soa, gpma, cells });
        }

        // --- RNG -------------------------------------------------------
        let mut s = rdr.section(section::RNG)?;
        let rng_state = s.get_u64()?;

        // --- DRIVER ----------------------------------------------------
        let mut s = rdr.section(section::DRIVER)?;
        let sort_stats = RankSortStats {
            steps_since_sort: s.get_u64()?,
            rebuilds_accum: s.get_u64()?,
            empty_ratio: s.get_f64()?,
            perf_metric: s.get_f64()?,
            baseline_perf: s.get_f64()?,
        };
        let pending_global_sort = s.get_bool()?;
        let window_accum = s.get_f64()?;
        let time = s.get_f64()?;
        let step_index = s.get_u64()?;

        // --- COUNTERS --------------------------------------------------
        let mut s = rdr.section(section::COUNTERS)?;
        let mut cycles = [0.0f64; 8];
        for c in &mut cycles {
            *c = s.get_f64()?;
        }
        let flops_issued = s.get_f64()?;
        let useful_flops = s.get_f64()?;
        let scalar_ops = s.get_u64()?;
        let vector_ops = s.get_u64()?;
        let mopa_ops = s.get_u64()?;
        let tile_transfers = s.get_u64()?;
        let mut level_stats = [mpic_machine::CacheStats::default(); 2];
        for stats in &mut level_stats {
            stats.hits = s.get_u64()?;
            stats.misses = s.get_u64()?;
        }
        let streamed_misses = s.get_u64()?;
        let random_misses = s.get_u64()?;

        // --- CACHE -----------------------------------------------------
        let mut s = rdr.section(section::CACHE)?;
        let l1 = decode_cache_level(&mut s)?;
        let l2 = decode_cache_level(&mut s)?;
        let n_streams = s.get_usize()?;
        if n_streams > s.remaining() / 12 + 1 {
            return Err(SnapshotError::Malformed {
                section: section::CACHE,
                reason: "stream table length exceeds the section",
            });
        }
        let mut streams = Vec::with_capacity(n_streams);
        for _ in 0..n_streams {
            let tag = s.get_u64()?;
            let count = s.get_u32()?;
            streams.push((tag, count));
        }
        let decay_tick = s.get_u32()?;
        let cache_state = CacheSimState {
            l1,
            l2,
            streams,
            decay_tick,
        };

        // --- ADDRS -----------------------------------------------------
        let mut s = rdr.section(section::ADDRS)?;
        let bad_addr = |reason| SnapshotError::Malformed {
            section: section::ADDRS,
            reason,
        };
        let alloc_mark = s.get_u64()?;
        let mut field_addrs = [VAddr(0); 6];
        for a in &mut field_addrs {
            *a = VAddr(s.get_u64()?);
        }
        let jx = VAddr(s.get_u64()?);
        let jy = VAddr(s.get_u64()?);
        let jz = VAddr(s.get_u64()?);
        if s.get_usize()? != n_tiles {
            return Err(bad_addr("SoA address table length"));
        }
        let mut soa_addrs = Vec::with_capacity(n_tiles);
        for _ in 0..n_tiles {
            let mut tile_addrs = [VAddr(0); 7];
            for a in &mut tile_addrs {
                *a = VAddr(s.get_u64()?);
            }
            soa_addrs.push(tile_addrs);
        }
        if s.get_usize()? != n_tiles {
            return Err(bad_addr("local-index address table length"));
        }
        let mut local_index_addrs = Vec::with_capacity(n_tiles);
        for _ in 0..n_tiles {
            local_index_addrs.push(VAddr(s.get_u64()?));
        }
        if s.get_usize()? != n_tiles {
            return Err(bad_addr("rhocell address table length"));
        }
        let mut rhocell_addrs = Vec::with_capacity(n_tiles);
        for _ in 0..n_tiles {
            rhocell_addrs.push(VAddr(s.get_u64()?));
        }
        let staging = VAddr(s.get_u64()?);
        let addr_map = AddrMap {
            jx,
            jy,
            jz,
            soa: soa_addrs,
            local_index: local_index_addrs,
            rhocell: rhocell_addrs,
            staging,
        };

        // --- REPORT ----------------------------------------------------
        let mut s = rdr.section(section::REPORT)?;
        let report_useful_flops = s.get_f64()?;
        let n_steps = s.get_usize()?;
        if n_steps > s.remaining() / 72 + 1 {
            return Err(SnapshotError::Malformed {
                section: section::REPORT,
                reason: "step count exceeds the section",
            });
        }
        let mut steps = Vec::with_capacity(n_steps);
        for _ in 0..n_steps {
            let mut cy = [0.0f64; 8];
            for c in &mut cy {
                *c = s.get_f64()?;
            }
            let particles = s.get_usize()?;
            steps.push(StepTimings {
                cycles: cy,
                particles,
            });
        }

        // --- Apply. The cache import is the one remaining fallible
        // step; it validates geometry before mutating anything, so a
        // failure here still leaves `self` untouched. Everything after
        // it is infallible.
        if !self.machine.mem().restore_cache_state(&cache_state) {
            return Err(SnapshotError::Malformed {
                section: section::CACHE,
                reason: "cache state rejected by geometry validation",
            });
        }
        for (arr, data) in field_array_muts(&mut self.fields)
            .into_iter()
            .zip(&field_data)
        {
            arr.as_mut_slice().copy_from_slice(data);
        }
        self.electrons.charge = charge;
        self.electrons.mass = mass;
        self.electrons.set_gap_ratio(gap_ratio);
        self.electrons.tiles = tiles;
        // Derived from species parameters — rebuilt, not serialized.
        self.boris = BorisCoeffs::new(charge, mass, self.dt);
        self.rng = StdRng::from_state(rng_state);
        self.sort_stats = sort_stats;
        self.pending_global_sort = pending_global_sort;
        self.window_accum = window_accum;
        self.time = time;
        self.step_index = step_index;
        let ctr = self.machine.counters_mut();
        *ctr = PerfCounters::new();
        for (p, c) in Phase::ALL.iter().zip(cycles) {
            ctr.add_cycles(*p, c);
        }
        ctr.flops_issued = flops_issued;
        ctr.useful_flops = useful_flops;
        ctr.scalar_ops = scalar_ops;
        ctr.vector_ops = vector_ops;
        ctr.mopa_ops = mopa_ops;
        ctr.tile_transfers = tile_transfers;
        // Zero the accumulated cache statistics, then seed them with the
        // captured totals through the worker-merge path.
        let _ = self.machine.mem().take_stats();
        self.machine.mem().absorb_stats(
            &level_stats[0],
            &level_stats[1],
            streamed_misses,
            random_misses,
        );
        self.machine.mem().restore_alloc_mark(alloc_mark);
        self.machine.reset_execution_state();
        self.field_addrs = field_addrs;
        self.depositor.restore_addr_map(addr_map);
        self.report = RunReport {
            steps,
            useful_flops: report_useful_flops,
        };
        Ok(())
    }
}

/// Stable on-disk discriminant for the solver kind.
fn solver_kind_id(k: SolverKind) -> u32 {
    match k {
        SolverKind::Yee => 0,
        SolverKind::Ckc => 1,
    }
}

/// The nine field arrays in serialization order.
fn field_array_refs(f: &FieldArrays) -> [&Array3; 9] {
    [
        &f.ex, &f.ey, &f.ez, &f.bx, &f.by, &f.bz, &f.jx, &f.jy, &f.jz,
    ]
}

/// Mutable view of the nine field arrays in serialization order.
fn field_array_muts(f: &mut FieldArrays) -> [&mut Array3; 9] {
    [
        &mut f.ex, &mut f.ey, &mut f.ez, &mut f.bx, &mut f.by, &mut f.bz, &mut f.jx, &mut f.jy,
        &mut f.jz,
    ]
}

/// `Option<usize>` as a tag byte plus the value when present.
fn put_opt_usize(wtr: &mut SnapshotWriter, v: Option<usize>) {
    match v {
        Some(x) => {
            wtr.put_bool(true);
            wtr.put_usize(x);
        }
        None => wtr.put_bool(false),
    }
}

/// Inverse of [`put_opt_usize`].
fn get_opt_usize(s: &mut SectionReader<'_>) -> Result<Option<usize>, SnapshotError> {
    Ok(if s.get_bool()? {
        Some(s.get_usize()?)
    } else {
        None
    })
}

/// Decodes one cache level's behavioural state.
fn decode_cache_level(s: &mut SectionReader<'_>) -> Result<CacheLevelState, SnapshotError> {
    Ok(CacheLevelState {
        tags: s.get_vec_u64()?,
        stamps: s.get_vec_u64()?,
        clock: s.get_u64()?,
        memo_line: s.get_u64()?,
        memo_slot: s.get_u64()?,
    })
}

/// One tile's share of the moving-window shift: translate every live
/// particle by one cell towards -z and remove those that fell off the
/// trailing edge. All mutation is tile-local, so the result is a pure
/// function of the tile regardless of which pool worker runs it.
fn shift_tile_window(tile: &mut ParticleTile, dz: f64, zlo: f64) {
    let mut removals: Vec<(usize, usize)> = Vec::new();
    for p in 0..tile.soa.slots() {
        if !tile.soa.alive[p] {
            continue;
        }
        tile.soa.z[p] -= dz;
        if tile.soa.z[p] < zlo {
            removals.push((p, tile.cells[p]));
        }
    }
    for &(p, bin) in &removals {
        tile.gpma.queue_remove(p, bin);
        tile.cells[p] = INVALID_PARTICLE_ID;
        tile.soa.remove(p);
    }
    if !removals.is_empty() {
        let _ = tile.gpma.apply_pending_moves(&tile.cells);
    }
}

/// One tile's gather + Boris push + boundary handling, charged on the
/// worker machine `wm` with a fresh per-tile cache. All mutation is
/// tile-local; the field state is read-only.
fn push_tile(
    wm: &mut Machine,
    geom: &GridGeometry,
    order: ShapeOrder,
    nodes: usize,
    fields: &FieldArrays,
    field_addrs: &[VAddr; 6],
    boris: &BorisCoeffs,
    absorbing: bool,
    zlo: f64,
    zhi: f64,
    tile: &mut ParticleTile,
    scratch: &mut PushScratch,
) {
    scratch.clear();
    scratch.live.extend(tile.soa.live_indices());
    if scratch.live.is_empty() {
        return;
    }
    wm.mem().flush_cache();
    for &p in &scratch.live {
        let (e, b, cw) = gather_fields_with_cell(
            geom,
            order,
            fields,
            tile.soa.x[p],
            tile.soa.y[p],
            tile.soa.z[p],
        );
        scratch.sample_idx.push(fields.ex.idx(
            cw[0] + geom.guard,
            cw[1] + geom.guard,
            cw[2] + geom.guard,
        ));
        let (mut x, mut y, mut z) = (tile.soa.x[p], tile.soa.y[p], tile.soa.z[p]);
        let (mut ux, mut uy, mut uz) = (tile.soa.ux[p], tile.soa.uy[p], tile.soa.uz[p]);
        boris_push(
            boris, e, b, &mut ux, &mut uy, &mut uz, &mut x, &mut y, &mut z,
        );
        // Periodic wrap in x/y (and z when fully periodic).
        let wrapped = geom.wrap_position([x, y, z]);
        x = wrapped[0];
        y = wrapped[1];
        if absorbing {
            if z < zlo || z >= zhi {
                scratch.removals.push((p, tile.cells[p]));
            }
        } else {
            z = wrapped[2];
        }
        tile.soa.x[p] = x;
        tile.soa.y[p] = y;
        tile.soa.z[p] = z;
        tile.soa.ux[p] = ux;
        tile.soa.uy[p] = uy;
        tile.soa.uz[p] = uz;
    }
    for &(p, bin) in &scratch.removals {
        tile.gpma.queue_remove(p, bin);
        tile.cells[p] = INVALID_PARTICLE_ID;
        tile.soa.remove(p);
    }
    if !scratch.removals.is_empty() {
        let _ = tile.gpma.apply_pending_moves(&tile.cells);
    }
    charge_gather(
        wm,
        GatherCost::default(),
        scratch.live.len(),
        nodes,
        field_addrs,
        &scratch.sample_idx,
    );
    charge_push(wm, scratch.live.len());
}

/// The cell-run batched variant of [`push_tile`]: particles are visited
/// in GPMA-sorted order (the grouping heuristic — same-bin particles
/// are adjacent), each same-cell run loads its stencil node block once,
/// and every particle of the run interpolates from the cached block.
///
/// Run boundaries come from each particle's **actual located cell**,
/// not from its GPMA bin: the moving-window shift translates positions
/// after the last maintenance pass, so bins can be one cell stale at
/// push time — the located cell never is, and it is computed anyway for
/// the interpolation weights. A uniformly stale order still groups
/// perfectly, so the amortisation is unaffected.
///
/// Value-exact versus the per-particle gather — same node values, same
/// weights, same accumulation order (gathers are read-only, so the
/// cached block cannot go stale within a run) — while the cost model
/// charges one run-scoped block gather per field array instead of a
/// per-particle node sweep. Still a pure function of the tile: the
/// iteration order, removals (queued in GPMA order rather than raw slot
/// order) and all charges depend only on tile state, so worker-count
/// and scheduler bit-identity hold exactly as for the reference path.
fn push_tile_batched(
    wm: &mut Machine,
    geom: &GridGeometry,
    order: ShapeOrder,
    fields: &FieldArrays,
    field_addrs: &[VAddr; 6],
    boris: &BorisCoeffs,
    absorbing: bool,
    zlo: f64,
    zhi: f64,
    tile: &mut ParticleTile,
    scratch: &mut PushScratch,
) {
    scratch.clear();
    scratch.live.extend(tile.gpma.iter_sorted().map(|(_, p)| p));
    if scratch.live.is_empty() {
        return;
    }
    wm.mem().flush_cache();
    let mut block = NodeBlock::new();
    // No cell has this value after wrapping, so the first particle
    // always opens a run.
    let mut run_cell = [usize::MAX; 3];
    let mut run_len = 0usize;
    for &p in &scratch.live {
        let (mut x, mut y, mut z) = (tile.soa.x[p], tile.soa.y[p], tile.soa.z[p]);
        let (located, frac) = geom.locate(x, y, z);
        let cell = geom.wrap_cell(located);
        if cell != run_cell {
            // Close the previous run's charge, then cache the new
            // cell's stencil block (indices + six field node sets).
            if run_len > 0 {
                charge_gather_run(
                    wm,
                    GatherCost::default(),
                    run_len,
                    field_addrs,
                    &block.idx[..block.nodes],
                );
            }
            load_node_block(geom, order, fields, cell, &mut block);
            run_cell = cell;
            run_len = 0;
        }
        run_len += 1;
        let (e, b) = gather_from_block(order, &block, frac);
        let (mut ux, mut uy, mut uz) = (tile.soa.ux[p], tile.soa.uy[p], tile.soa.uz[p]);
        boris_push(
            boris, e, b, &mut ux, &mut uy, &mut uz, &mut x, &mut y, &mut z,
        );
        let wrapped = geom.wrap_position([x, y, z]);
        x = wrapped[0];
        y = wrapped[1];
        if absorbing {
            if z < zlo || z >= zhi {
                scratch.removals.push((p, tile.cells[p]));
            }
        } else {
            z = wrapped[2];
        }
        tile.soa.x[p] = x;
        tile.soa.y[p] = y;
        tile.soa.z[p] = z;
        tile.soa.ux[p] = ux;
        tile.soa.uy[p] = uy;
        tile.soa.uz[p] = uz;
    }
    if run_len > 0 {
        charge_gather_run(
            wm,
            GatherCost::default(),
            run_len,
            field_addrs,
            &block.idx[..block.nodes],
        );
    }
    for &(p, bin) in &scratch.removals {
        tile.gpma.queue_remove(p, bin);
        tile.cells[p] = INVALID_PARTICLE_ID;
        tile.soa.remove(p);
    }
    if !scratch.removals.is_empty() {
        let _ = tile.gpma.apply_pending_moves(&tile.cells);
    }
    charge_push(wm, scratch.live.len());
}

/// The lane-parallel variant of [`push_tile_batched`]
/// ([`SimConfig::simd`]): same GPMA-sorted sweep and same run discovery
/// from each particle's located cell, but a run's particles are buffered
/// as `(slot, frac)` pairs and — when the run closes — interpolated AND
/// Boris-pushed in lane-width packs: the masked lane gather
/// ([`gather_from_block_lanes_masked`]) hands `(E, B)` to the
/// lane-parallel push ([`boris_push_lanes`]) still in lane registers,
/// and ragged tails run the same packs under a prefix mask instead of a
/// scalar remainder loop. Each lane holds one particle end to end, and
/// every lane operation is the correctly-rounded per-lane twin of its
/// scalar counterpart, so E/B values, positions, momenta and removals
/// are bit-identical to the batched-scalar sweep.
/// *Pricing* is where the lane-parallel mode differs: the
/// previous run's stencil block stays in lane registers across the
/// run boundary, so [`charge_gather_run_reuse`] charges only the cache
/// lines the new stencil adds — and it prices them with the state-free
/// streaming model (a flat bandwidth cost per line, no cache-sim walk),
/// so the charge is a pure function of the run's node indices
/// (sorted-cell order makes consecutive stencils overlap heavily) plus
/// the declared field-array footprint: grids small enough to sit in L1
/// cross the roofline to the resident line price instead of being
/// overcharged at the DRAM stream rate.
/// The reuse state is tile-local — reset at tile start and advanced in
/// run order, which the GPMA sweep fixes independently of worker count
/// or scheduler policy — so Gather cycles stay bit-identical across
/// workers x policies and never price above the scalar mode's walking
/// charge on either side of the crossover. Deferring
/// the Boris push to run close is safe: gathers are read-only and each
/// particle's writeback touches only its own SoA slots, so no buffered
/// particle can observe another's push.
fn push_tile_batched_simd(
    wm: &mut Machine,
    geom: &GridGeometry,
    order: ShapeOrder,
    fields: &FieldArrays,
    field_addrs: &[VAddr; 6],
    boris: &BorisCoeffs,
    absorbing: bool,
    zlo: f64,
    zhi: f64,
    tile: &mut ParticleTile,
    scratch: &mut PushScratch,
) {
    scratch.clear();
    scratch.live.extend(tile.gpma.iter_sorted().map(|(_, p)| p));
    if scratch.live.is_empty() {
        return;
    }
    wm.mem().flush_cache();
    let mut block = NodeBlock::new();
    // Roofline footprint of one guarded field array: the whole array is
    // swept by a tile's run sequence, so this is the operand span the
    // streaming price compares against L1 capacity.
    let dims = geom.dims_with_guard();
    let field_footprint = (dims[0] * dims[1] * dims[2] * 8) as u64;
    // Register-reuse state: the node list of the last flushed run's
    // block. Tile-local and advanced in GPMA run order, so the charge
    // stream is identical for every worker count and policy.
    let mut prev_idx = [0usize; MAX_STENCIL_NODES];
    let mut prev_n = 0usize;
    // No cell has this value after wrapping, so the first particle
    // always opens a run.
    let mut run_cell = [usize::MAX; 3];
    for &p in &scratch.live {
        let (x, y, z) = (tile.soa.x[p], tile.soa.y[p], tile.soa.z[p]);
        let (located, frac) = geom.locate(x, y, z);
        let cell = geom.wrap_cell(located);
        if cell != run_cell {
            flush_run_simd(
                wm,
                geom,
                order,
                field_addrs,
                boris,
                absorbing,
                zlo,
                zhi,
                tile,
                &block,
                &scratch.run_slots,
                &scratch.run_frac,
                &prev_idx[..prev_n],
                field_footprint,
                &mut scratch.removals,
            );
            if !scratch.run_slots.is_empty() {
                prev_n = block.nodes;
                prev_idx[..prev_n].copy_from_slice(&block.idx[..prev_n]);
            }
            scratch.run_slots.clear();
            scratch.run_frac.clear();
            load_node_block(geom, order, fields, cell, &mut block);
            run_cell = cell;
        }
        scratch.run_slots.push(p);
        scratch.run_frac.push(frac);
    }
    flush_run_simd(
        wm,
        geom,
        order,
        field_addrs,
        boris,
        absorbing,
        zlo,
        zhi,
        tile,
        &block,
        &scratch.run_slots,
        &scratch.run_frac,
        &prev_idx[..prev_n],
        field_footprint,
        &mut scratch.removals,
    );
    scratch.run_slots.clear();
    scratch.run_frac.clear();
    for &(p, bin) in &scratch.removals {
        tile.gpma.queue_remove(p, bin);
        tile.cells[p] = INVALID_PARTICLE_ID;
        tile.soa.remove(p);
    }
    if !scratch.removals.is_empty() {
        let _ = tile.gpma.apply_pending_moves(&tile.cells);
    }
    charge_push(wm, scratch.live.len());
}

/// Closes one buffered same-cell run of the SIMD sweep: charges the run
/// gather with run-to-run register reuse (`prev_idx` is the node list of
/// the previously flushed block — cache lines it covers stay in lane
/// registers and charge nothing; `field_footprint` feeds the roofline
/// crossover), then interpolates and Boris-pushes the particles in
/// lane-width packs. The final ragged pack — every run length that is
/// not a multiple of [`W`] — runs the same lane kernels under a prefix
/// mask ([`gather_from_block_lanes_masked`]): inactive tail lanes carry
/// zeros through the gather and push (all operations stay finite on
/// zeros) and are simply never written back. Active lanes are
/// bit-identical to the scalar sweep, and particles retire in buffer
/// (= GPMA) order so the removal sequence matches it too.
fn flush_run_simd(
    wm: &mut Machine,
    geom: &GridGeometry,
    order: ShapeOrder,
    field_addrs: &[VAddr; 6],
    boris: &BorisCoeffs,
    absorbing: bool,
    zlo: f64,
    zhi: f64,
    tile: &mut ParticleTile,
    block: &NodeBlock,
    slots: &[usize],
    fracs: &[[f64; 3]],
    prev_idx: &[usize],
    field_footprint: u64,
    removals: &mut Vec<(usize, usize)>,
) {
    if slots.is_empty() {
        return;
    }
    charge_gather_run_reuse(
        wm,
        GatherCost::default(),
        slots.len(),
        field_addrs,
        &block.idx[..block.nodes],
        prev_idx,
        field_footprint,
    );
    let mut i = 0;
    while i < slots.len() {
        let n = (slots.len() - i).min(W);
        let pack = &slots[i..i + n];
        let (e, b) = gather_from_block_lanes_masked(order, block, &fracs[i..i + n]);
        // Transpose the pack's phase space into lane registers; tail
        // lanes beyond `n` stay zero.
        let mut u = [Lanes::zero(); 3];
        let mut pos = [Lanes::zero(); 3];
        for (l, &p) in pack.iter().enumerate() {
            pos[0].0[l] = tile.soa.x[p];
            pos[1].0[l] = tile.soa.y[p];
            pos[2].0[l] = tile.soa.z[p];
            u[0].0[l] = tile.soa.ux[p];
            u[1].0[l] = tile.soa.uy[p];
            u[2].0[l] = tile.soa.uz[p];
        }
        boris_push_lanes(boris, &e, &b, &mut u, &mut pos);
        for (l, &p) in pack.iter().enumerate() {
            finish_push(
                geom,
                absorbing,
                zlo,
                zhi,
                tile,
                removals,
                p,
                [pos[0].lane(l), pos[1].lane(l), pos[2].lane(l)],
                [u[0].lane(l), u[1].lane(l), u[2].lane(l)],
            );
        }
        i += n;
    }
}

/// Boundary handling + SoA writeback of one already-pushed particle
/// (post-push position `pos` and momentum `u`): statement-for-statement
/// the tail of [`push_tile_batched`]'s particle loop after its
/// [`boris_push`] call, factored out so every lane of the SIMD pack
/// retires through the identical scalar epilogue.
fn finish_push(
    geom: &GridGeometry,
    absorbing: bool,
    zlo: f64,
    zhi: f64,
    tile: &mut ParticleTile,
    removals: &mut Vec<(usize, usize)>,
    p: usize,
    pos: [f64; 3],
    u: [f64; 3],
) {
    let wrapped = geom.wrap_position(pos);
    let x = wrapped[0];
    let y = wrapped[1];
    let mut z = pos[2];
    if absorbing {
        if z < zlo || z >= zhi {
            removals.push((p, tile.cells[p]));
        }
    } else {
        z = wrapped[2];
    }
    tile.soa.x[p] = x;
    tile.soa.y[p] = y;
    tile.soa.z[p] = z;
    tile.soa.ux[p] = u[0];
    tile.soa.uy[p] = u[1];
    tile.soa.uz[p] = u[2];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn small_sim_steps_and_reports() {
        let mut sim = workloads::uniform_plasma_sim(
            [8, 8, 8],
            8,
            mpic_deposit::ShapeOrder::Cic,
            mpic_deposit::KernelConfig::FullOpt,
            1,
        );
        let n0 = sim.num_particles();
        let t = sim.step();
        assert_eq!(sim.step_index(), 1);
        assert_eq!(sim.num_particles(), n0, "periodic run conserves N");
        assert!(t.total() > 0.0);
        assert!(t.deposition() > 0.0);
        assert!(t.phase(Phase::Gather) > 0.0);
        assert!(t.phase(Phase::Push) > 0.0);
        assert!(t.phase(Phase::FieldSolve) > 0.0);
    }

    #[test]
    fn forced_global_sort_reseeds_baseline_from_post_sort_step() {
        let mut sim = workloads::uniform_plasma_sim(
            [8, 8, 8],
            4,
            mpic_deposit::ShapeOrder::Cic,
            mpic_deposit::KernelConfig::FullOpt,
            5,
        );
        sim.step(); // Seed the policy baseline from a normal step.
        sim.request_global_sort();
        assert!(sim.global_sort_pending());
        sim.step(); // Executes the forced sort.
        assert!(
            !sim.global_sort_pending(),
            "policy re-fired immediately after its own forced sort"
        );
        let s = sim.sort_stats();
        assert_eq!(s.steps_since_sort, 1);
        assert!(s.baseline_perf > 0.0, "baseline must be re-seeded");
        assert_eq!(
            s.baseline_perf.to_bits(),
            s.perf_metric.to_bits(),
            "baseline must be the first post-sort step's metric, not the \
             stale pre-sort throughput"
        );
    }

    #[test]
    fn charge_is_conserved_over_steps() {
        let mut sim = workloads::uniform_plasma_sim(
            [8, 8, 8],
            4,
            mpic_deposit::ShapeOrder::Cic,
            mpic_deposit::KernelConfig::FullOpt,
            2,
        );
        let q0 = sim.total_charge();
        sim.run(3);
        let q1 = sim.total_charge();
        assert!(((q1 - q0) / q0).abs() < 1e-12);
        sim.electrons.check_invariants();
    }
}
