//! Step-transaction recovery: a driver that runs the simulation under a
//! checkpoint/restore umbrella so execution-layer failures (worker
//! panics, worker thread deaths — injected by the fault matrix or real)
//! roll back to the last checkpoint and replay instead of aborting the
//! run.
//!
//! Each [`Simulation::step`] is treated as a transaction: the driver
//! snapshots the complete simulation state every `checkpoint_interval`
//! steps ([`Simulation::snapshot`] — fields, particles, RNG, counters,
//! cache behavioural state), and a step that unwinds with a structured
//! [`ExecError`] payload is rolled back by restoring the checkpoint,
//! repairing the worker pool ([`Simulation::repair_workers`]) and
//! replaying the lost steps. Because stepping is bit-deterministic and
//! the snapshot is total, a recovered run is **bitwise identical** to a
//! crash-free run — the paper's reproducibility claims survive faults.
//!
//! Panics that do *not* carry an [`ExecError`] are logic bugs, not
//! execution failures: the driver re-raises them untouched rather than
//! masking them with a rollback-and-retry loop.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use mpic_machine::ExecError;

use crate::simulation::Simulation;
use crate::snapshot::SnapshotError;

/// What the recovery umbrella did during a driven run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[must_use]
pub struct RecoveryStats {
    /// Checkpoints written (including the one taken before step 1).
    pub checkpoints_taken: usize,
    /// Execution-layer failures caught and rolled back.
    pub failures: usize,
    /// Completed steps discarded by rollbacks and re-executed.
    pub steps_replayed: usize,
    /// Dead worker threads replaced during recovery.
    pub workers_respawned: usize,
}

/// Terminal failures of a resilient run.
#[derive(Debug)]
pub enum DriverError {
    /// The same step kept failing past the retry budget.
    RetryBudgetExhausted {
        /// Step index that would not complete.
        step: u64,
        /// Consecutive failed attempts at it.
        attempts: usize,
        /// The last execution error observed.
        last: ExecError,
    },
    /// A checkpoint failed to restore (should be impossible for
    /// driver-written checkpoints; indicates memory corruption).
    Restore(SnapshotError),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RetryBudgetExhausted {
                step,
                attempts,
                last,
            } => write!(
                f,
                "step {step} failed {attempts} consecutive times (last: {last})"
            ),
            Self::Restore(e) => write!(f, "checkpoint restore failed: {e}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// Runs a [`Simulation`] with periodic checkpoints and bounded
/// retry-on-failure.
///
/// ```
/// use mpic_core::{workloads, ResilientDriver};
/// use mpic_deposit::{KernelConfig, ShapeOrder};
///
/// let mut sim = workloads::uniform_plasma_sim(
///     [8, 8, 8], 2, ShapeOrder::Cic, KernelConfig::FullOpt, 7,
/// );
/// let mut driver = ResilientDriver::new(2, 3);
/// let stats = driver.run(&mut sim, 4).unwrap();
/// assert_eq!(sim.step_index(), 4);
/// assert_eq!(stats.failures, 0);
/// ```
#[derive(Debug)]
pub struct ResilientDriver {
    /// Steps between checkpoints (clamped to at least 1).
    checkpoint_interval: usize,
    /// Consecutive failures tolerated per step before giving up.
    retry_budget: usize,
    /// Last checkpoint: (step index it captures, snapshot bytes).
    checkpoint: Option<(u64, Vec<u8>)>,
    stats: RecoveryStats,
}

impl ResilientDriver {
    /// A driver checkpointing every `checkpoint_interval` steps and
    /// tolerating `retry_budget` consecutive failures of any one step.
    pub fn new(checkpoint_interval: usize, retry_budget: usize) -> Self {
        Self {
            checkpoint_interval: checkpoint_interval.max(1),
            retry_budget,
            checkpoint: None,
            stats: RecoveryStats::default(),
        }
    }

    /// Cumulative recovery statistics over every `run` on this driver.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// The most recent checkpoint: the step index it captures and its
    /// serialized bytes (e.g. to persist externally).
    pub fn last_checkpoint(&self) -> Option<(u64, &[u8])> {
        self.checkpoint
            .as_ref()
            .map(|(step, bytes)| (*step, bytes.as_slice()))
    }

    /// Advances `sim` by `steps`, rolling execution-layer failures back
    /// to the last checkpoint and replaying. Returns the cumulative
    /// [`RecoveryStats`] on success.
    ///
    /// # Panics
    ///
    /// Re-raises any step panic that is not a structured [`ExecError`]
    /// — logic bugs are not retried.
    pub fn run(
        &mut self,
        sim: &mut Simulation,
        steps: usize,
    ) -> Result<RecoveryStats, DriverError> {
        let target = sim.step_index() + steps as u64;
        let mut consecutive_failures = 0usize;
        while sim.step_index() < target {
            let due = match &self.checkpoint {
                None => true,
                Some((step, _)) => sim.step_index() >= step + self.checkpoint_interval as u64,
            };
            if due {
                self.checkpoint = Some((sim.step_index(), sim.snapshot()));
                self.stats.checkpoints_taken += 1;
            }
            let before = sim.step_index();
            // AssertUnwindSafe: if the step unwinds mid-phase the
            // simulation is in a torn state, but the only way out of
            // this catch is either a full restore from the checkpoint
            // (which replaces every piece of stepping state) or
            // re-raising the panic — the torn state is never observed.
            let outcome = catch_unwind(AssertUnwindSafe(|| sim.step()));
            match outcome {
                Ok(_timings) => consecutive_failures = 0,
                Err(payload) => {
                    let Some(err) = ExecError::from_payload(payload.as_ref()).cloned() else {
                        resume_unwind(payload);
                    };
                    self.stats.failures += 1;
                    consecutive_failures += 1;
                    if consecutive_failures > self.retry_budget {
                        return Err(DriverError::RetryBudgetExhausted {
                            step: before,
                            attempts: consecutive_failures,
                            last: err,
                        });
                    }
                    self.stats.workers_respawned += sim.repair_workers();
                    let (ckpt_step, bytes) = self
                        .checkpoint
                        .as_ref()
                        .expect("a checkpoint is taken before the first step");
                    sim.restore(bytes).map_err(DriverError::Restore)?;
                    debug_assert_eq!(sim.step_index(), *ckpt_step);
                    self.stats.steps_replayed += (before - ckpt_step) as usize;
                }
            }
        }
        Ok(self.stats)
    }
}
