//! The deterministic checkpoint container format.
//!
//! A snapshot is a single byte buffer with a fixed header, a section
//! table and one checksummed payload slice per section:
//!
//! ```text
//! magic   [u8; 8] = "MPICSNAP"
//! version u32     = 1
//! count   u32     = number of sections
//! table   count x { id: u32, offset: u64, len: u64, fnv1a64: u64 }
//! payload concatenated section bytes (offsets are absolute)
//! ```
//!
//! All integers are little-endian; `f64` values travel as their IEEE-754
//! bit patterns, so a restored simulation resumes **bit-identically** —
//! no text round-trip, no locale, no rounding. The format is hand-rolled
//! and dependency-free on purpose: the simulation's state inventory is
//! small and stable, and an explicit byte layout is auditable in a way a
//! derived serializer is not.
//!
//! [`SnapshotWriter`] builds a buffer section by section;
//! [`SnapshotReader`] validates the header, table and every section
//! checksum up front, then hands out bounds-checked [`SectionReader`]s.
//! Corrupt or truncated input of any shape yields a structured
//! [`SnapshotError`] — decoding never panics (see `tests/snapshot.rs`
//! for the per-section corruption matrix).

use std::fmt;

/// Leading magic bytes of every snapshot.
pub const MAGIC: [u8; 8] = *b"MPICSNAP";

/// Current format version.
pub const VERSION: u32 = 1;

/// Well-known section identifiers.
pub mod section {
    /// Configuration fingerprint (geometry, solver, kernel, dt).
    pub const META: u32 = 1;
    /// The nine guarded field arrays.
    pub const FIELDS: u32 = 2;
    /// Per-tile SoA + GPMA + authoritative bin maps.
    pub const PARTICLES: u32 = 3;
    /// RNG stream position.
    pub const RNG: u32 = 4;
    /// Step loop state: sort-policy counters, window, time, step index.
    pub const DRIVER: u32 = 5;
    /// Per-phase performance counters and cache statistics.
    pub const COUNTERS: u32 = 6;
    /// Behavioural cache-hierarchy state (tags, LRU, streams).
    pub const CACHE: u32 = 7;
    /// Virtual address map and allocator mark.
    pub const ADDRS: u32 = 8;
    /// The accumulated timing report.
    pub const REPORT: u32 = 9;
}

/// Why a snapshot failed to decode. Every variant is a *returned* error:
/// corrupt input of any shape must never panic the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer is shorter than the fixed header.
    TooShort,
    /// The magic bytes are wrong — not a snapshot at all.
    BadMagic,
    /// A version this build does not understand.
    BadVersion(u32),
    /// The section table is truncated or points outside the buffer.
    BadSectionTable,
    /// A section's payload does not match its recorded checksum.
    ChecksumMismatch {
        /// The failing section id.
        section: u32,
    },
    /// A required section is absent.
    MissingSection {
        /// The absent section id.
        section: u32,
    },
    /// A section decoded structurally but its contents are invalid.
    Malformed {
        /// The failing section id.
        section: u32,
        /// What was wrong.
        reason: &'static str,
    },
    /// The snapshot is valid but was taken from an incompatible
    /// configuration (different geometry, kernel, solver or timestep).
    Incompatible {
        /// Which fingerprint field disagreed.
        reason: &'static str,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::TooShort => write!(f, "snapshot shorter than header"),
            SnapshotError::BadMagic => write!(f, "bad snapshot magic"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::BadSectionTable => write!(f, "corrupt section table"),
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            SnapshotError::MissingSection { section } => {
                write!(f, "missing section {section}")
            }
            SnapshotError::Malformed { section, reason } => {
                write!(f, "malformed section {section}: {reason}")
            }
            SnapshotError::Incompatible { reason } => {
                write!(f, "incompatible snapshot: {reason}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit over a byte slice — small, dependency-free and plenty
/// for detecting accidental corruption (this is an integrity check, not
/// an authentication code).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const HEADER_LEN: usize = 8 + 4 + 4;
const TABLE_ENTRY_LEN: usize = 4 + 8 + 8 + 8;

/// Builds a snapshot buffer section by section.
pub struct SnapshotWriter {
    sections: Vec<(u32, Vec<u8>)>,
    open: bool,
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self {
            sections: Vec::new(),
            open: false,
        }
    }

    /// Opens a new section; subsequent `put_*` calls append to it.
    ///
    /// # Panics
    ///
    /// Panics if a section is already open or `id` repeats — both are
    /// writer-side programming errors, not input-dependent conditions.
    pub fn begin_section(&mut self, id: u32) {
        assert!(!self.open, "previous section not closed");
        assert!(
            self.sections.iter().all(|(sid, _)| *sid != id),
            "duplicate section id {id}"
        );
        self.sections.push((id, Vec::new()));
        self.open = true;
    }

    /// Closes the current section.
    pub fn end_section(&mut self) {
        assert!(self.open, "no open section");
        self.open = false;
    }

    fn buf(&mut self) -> &mut Vec<u8> {
        assert!(self.open, "write outside a section");
        &mut self.sections.last_mut().expect("open section").1
    }

    /// Appends a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf().extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf().extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf().push(u8::from(v));
    }

    /// Appends a length-prefixed `u64` vector.
    pub fn put_vec_u64(&mut self, v: &[u64]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_u64(x);
        }
    }

    /// Appends a length-prefixed `usize` vector (as `u64`s).
    pub fn put_vec_usize(&mut self, v: &[usize]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_usize(x);
        }
    }

    /// Appends a length-prefixed `f64` vector (bit patterns).
    pub fn put_vec_f64(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Appends a length-prefixed `bool` vector (one byte each).
    pub fn put_vec_bool(&mut self, v: &[bool]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_bool(x);
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf().extend_from_slice(s.as_bytes());
    }

    /// Assembles the final buffer: header, table, payload.
    ///
    /// # Panics
    ///
    /// Panics if a section is still open.
    pub fn finish(self) -> Vec<u8> {
        assert!(!self.open, "section left open at finish");
        let table_len = self.sections.len() * TABLE_ENTRY_LEN;
        let payload_len: usize = self.sections.iter().map(|(_, b)| b.len()).sum();
        let mut out = Vec::with_capacity(HEADER_LEN + table_len + payload_len);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = (HEADER_LEN + table_len) as u64;
        for (id, body) in &self.sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(body.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a64(body).to_le_bytes());
            offset += body.len() as u64;
        }
        for (_, body) in &self.sections {
            out.extend_from_slice(body);
        }
        out
    }
}

/// Parses and validates a snapshot buffer, handing out per-section
/// readers. Construction verifies the header, the table bounds and every
/// section checksum, so a reader that exists is structurally sound.
pub struct SnapshotReader<'a> {
    data: &'a [u8],
    /// `(id, offset, len)` per section, bounds- and checksum-verified.
    table: Vec<(u32, usize, usize)>,
}

impl<'a> SnapshotReader<'a> {
    /// Validates the container and builds the section index.
    pub fn new(data: &'a [u8]) -> Result<Self, SnapshotError> {
        if data.len() < HEADER_LEN {
            return Err(SnapshotError::TooShort);
        }
        if data[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let count = u32::from_le_bytes(data[12..16].try_into().expect("4 bytes")) as usize;
        let table_end = HEADER_LEN
            .checked_add(
                count
                    .checked_mul(TABLE_ENTRY_LEN)
                    .ok_or(SnapshotError::BadSectionTable)?,
            )
            .ok_or(SnapshotError::BadSectionTable)?;
        if table_end > data.len() {
            return Err(SnapshotError::BadSectionTable);
        }
        let mut table = Vec::with_capacity(count);
        for i in 0..count {
            let e = HEADER_LEN + i * TABLE_ENTRY_LEN;
            let id = u32::from_le_bytes(data[e..e + 4].try_into().expect("4 bytes"));
            let offset = u64::from_le_bytes(data[e + 4..e + 12].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(data[e + 12..e + 20].try_into().expect("8 bytes"));
            let sum = u64::from_le_bytes(data[e + 20..e + 28].try_into().expect("8 bytes"));
            let (offset, len) = (
                usize::try_from(offset).map_err(|_| SnapshotError::BadSectionTable)?,
                usize::try_from(len).map_err(|_| SnapshotError::BadSectionTable)?,
            );
            let end = offset
                .checked_add(len)
                .ok_or(SnapshotError::BadSectionTable)?;
            if offset < table_end || end > data.len() {
                return Err(SnapshotError::BadSectionTable);
            }
            if fnv1a64(&data[offset..end]) != sum {
                return Err(SnapshotError::ChecksumMismatch { section: id });
            }
            table.push((id, offset, len));
        }
        Ok(Self { data, table })
    }

    /// A bounds-checked reader over one section's payload.
    pub fn section(&self, id: u32) -> Result<SectionReader<'a>, SnapshotError> {
        let &(_, offset, len) = self
            .table
            .iter()
            .find(|(sid, _, _)| *sid == id)
            .ok_or(SnapshotError::MissingSection { section: id })?;
        Ok(SectionReader {
            id,
            data: &self.data[offset..offset + len],
            pos: 0,
        })
    }
}

/// Sequential bounds-checked decoder over one section's bytes. Every
/// read that would pass the end returns [`SnapshotError::Malformed`].
pub struct SectionReader<'a> {
    id: u32,
    data: &'a [u8],
    pos: usize,
}

impl SectionReader<'_> {
    fn malformed(&self, reason: &'static str) -> SnapshotError {
        SnapshotError::Malformed {
            section: self.id,
            reason,
        }
    }

    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| self.malformed("field runs past the section end"))?;
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn get_usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.get_u64()?).map_err(|_| self.malformed("count exceeds usize"))
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `bool`; bytes other than 0/1 are malformed.
    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(self.malformed("boolean byte is neither 0 nor 1")),
        }
    }

    /// Reads a length prefix for `elem_bytes`-wide elements, refusing
    /// lengths the remaining bytes cannot possibly hold (so corrupt
    /// counts cannot trigger huge allocations).
    fn get_len(&mut self, elem_bytes: usize) -> Result<usize, SnapshotError> {
        let len = self.get_usize()?;
        if len
            .checked_mul(elem_bytes)
            .is_none_or(|bytes| bytes > self.remaining())
        {
            return Err(self.malformed("vector length exceeds the section"));
        }
        Ok(len)
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn get_vec_u64(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let len = self.get_len(8)?;
        (0..len).map(|_| self.get_u64()).collect()
    }

    /// Reads a length-prefixed `usize` vector.
    pub fn get_vec_usize(&mut self) -> Result<Vec<usize>, SnapshotError> {
        let len = self.get_len(8)?;
        (0..len).map(|_| self.get_usize()).collect()
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn get_vec_f64(&mut self) -> Result<Vec<f64>, SnapshotError> {
        let len = self.get_len(8)?;
        (0..len).map(|_| self.get_f64()).collect()
    }

    /// Reads a length-prefixed `bool` vector.
    pub fn get_vec_bool(&mut self) -> Result<Vec<bool>, SnapshotError> {
        let len = self.get_len(1)?;
        (0..len).map(|_| self.get_bool()).collect()
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Result<String, SnapshotError> {
        let len = self.get_len(1)?;
        let bytes = self.take(len)?.to_vec();
        String::from_utf8(bytes).map_err(|_| self.malformed("string is not UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.begin_section(section::META);
        w.put_u64(42);
        w.put_f64(1.5);
        w.put_str("hello");
        w.end_section();
        w.begin_section(section::RNG);
        w.put_vec_u64(&[1, 2, 3]);
        w.put_bool(true);
        w.end_section();
        w.finish()
    }

    #[test]
    fn round_trip_reads_back_every_field() {
        let buf = sample();
        let r = SnapshotReader::new(&buf).expect("valid snapshot");
        let mut meta = r.section(section::META).expect("meta present");
        assert_eq!(meta.get_u64().unwrap(), 42);
        assert_eq!(meta.get_f64().unwrap().to_bits(), 1.5f64.to_bits());
        assert_eq!(meta.get_string().unwrap(), "hello");
        assert_eq!(meta.remaining(), 0);
        let mut rng = r.section(section::RNG).expect("rng present");
        assert_eq!(rng.get_vec_u64().unwrap(), vec![1, 2, 3]);
        assert!(rng.get_bool().unwrap());
    }

    #[test]
    fn header_corruption_is_structured() {
        let buf = sample();
        assert_eq!(
            SnapshotReader::new(&buf[..4]).err(),
            Some(SnapshotError::TooShort)
        );
        let mut bad_magic = buf.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(
            SnapshotReader::new(&bad_magic).err(),
            Some(SnapshotError::BadMagic)
        );
        let mut bad_version = buf.clone();
        bad_version[8] = 99;
        assert_eq!(
            SnapshotReader::new(&bad_version).err(),
            Some(SnapshotError::BadVersion(99))
        );
        // Truncating into the payload breaks the table bounds.
        assert!(matches!(
            SnapshotReader::new(&buf[..buf.len() - 3]).err(),
            Some(SnapshotError::BadSectionTable | SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn payload_flip_fails_the_right_sections_checksum() {
        let buf = sample();
        // Flip the last payload byte: that's the RNG section's tail.
        let mut bad = buf.clone();
        *bad.last_mut().unwrap() ^= 0x01;
        assert_eq!(
            SnapshotReader::new(&bad).err(),
            Some(SnapshotError::ChecksumMismatch {
                section: section::RNG
            })
        );
    }

    #[test]
    fn missing_section_and_overreads_are_errors() {
        let buf = sample();
        let r = SnapshotReader::new(&buf).expect("valid snapshot");
        assert_eq!(
            r.section(section::FIELDS).err(),
            Some(SnapshotError::MissingSection {
                section: section::FIELDS
            })
        );
        let mut rng = r.section(section::RNG).unwrap();
        let _ = rng.get_vec_u64().unwrap();
        let _ = rng.get_bool().unwrap();
        assert!(matches!(
            rng.get_u64().err(),
            Some(SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn hostile_vector_length_is_rejected_without_allocating() {
        let mut w = SnapshotWriter::new();
        w.begin_section(section::FIELDS);
        w.put_u64(u64::MAX); // Claimed element count.
        w.end_section();
        let buf = w.finish();
        let r = SnapshotReader::new(&buf).unwrap();
        let mut s = r.section(section::FIELDS).unwrap();
        assert!(matches!(
            s.get_vec_f64().err(),
            Some(SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn fnv_vector_is_stable() {
        // Pin the checksum function: a silent change would invalidate
        // every snapshot in the wild while still "round-tripping" in
        // fresh tests.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
