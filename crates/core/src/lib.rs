//! Matrix-PIC simulation core: configuration, orchestration, workloads
//! and timing reports.
//!
//! A [`Simulation`] wires the full stack together — emulated machine,
//! grid, particle tiles with GPMA indices, deposition driver, Maxwell
//! solver, laser antenna, absorbers and the moving window — and runs the
//! standard PIC loop with Algorithm 1's sorting phases embedded. Every
//! phase is charged to the emulated cost model, so the accumulated
//! [`timings::RunReport`] carries the same per-phase breakdown the
//! paper's figures and tables report.
//!
//! # Example
//!
//! ```
//! use mpic_core::workloads;
//! use mpic_deposit::{KernelConfig, ShapeOrder};
//!
//! let mut sim = workloads::uniform_plasma_sim(
//!     [8, 8, 8],
//!     2,
//!     ShapeOrder::Cic,
//!     KernelConfig::FullOpt,
//!     1234,
//! );
//! sim.run(2);
//! assert_eq!(sim.step_index(), 2);
//! assert!(sim.report().deposition_cycles() > 0.0);
//! ```

pub mod config;
pub mod driver;
pub mod simulation;
pub mod snapshot;
pub mod timings;
pub mod workloads;

pub use config::SimConfig;
pub use driver::{DriverError, RecoveryStats, ResilientDriver};
pub use simulation::{PlasmaSpec, Simulation};
pub use snapshot::SnapshotError;
pub use timings::{RunReport, StepTimings};
