//! Simulation configuration.

use mpic_deposit::{KernelConfig, ShapeOrder};
use mpic_machine::{MachineConfig, SchedulerPolicy};
use mpic_solver::{AbsorbingLayer, BoundaryKind, LaserAntenna, SolverKind};

/// Full configuration of one simulation run (the analogue of a WarpX
/// input file restricted to the parameters in Appendix A Table 4).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Physical cells per dimension (`amr.n_cell`).
    pub n_cells: [usize; 3],
    /// Cell size (m).
    pub dx: [f64; 3],
    /// Particle tile size (`particles.tile_size`).
    pub tile_size: [usize; 3],
    /// Guard cells (2 suffices for QSP).
    pub guard: usize,
    /// CFL fraction of the solver's stable limit (`warpx.cfl`).
    pub cfl: f64,
    /// Maxwell solver (`algo.maxwell_solver`).
    pub solver: SolverKind,
    /// Deposition/gather shape order (`algo.particle_shape`).
    pub shape: ShapeOrder,
    /// Deposition kernel + sorting configuration.
    pub kernel: KernelConfig,
    /// Field/particle boundaries along z.
    pub boundary: BoundaryKind,
    /// Moving window along z (`warpx.do_moving_window`).
    pub moving_window: bool,
    /// Optional laser antenna (LWFA).
    pub laser: Option<LaserAntenna>,
    /// Damping layer used with [`BoundaryKind::AbsorbingZ`].
    pub absorber: AbsorbingLayer,
    /// Emulated machine model.
    pub machine: MachineConfig,
    /// RNG seed for particle loading.
    pub seed: u64,
    /// Host worker threads sharding every phase of the step loop:
    /// gather+push tiles, the global counting sort, both deposit kernel
    /// families (rhocell and direct-scatter), the Z-slab Maxwell solve,
    /// the guard exchange and the moving-window shift. The threads live
    /// in one persistent [`mpic_machine::WorkerPool`] owned by the
    /// simulation, parked between phases. Results and emulated cycle
    /// totals are bit-identical for any value; only host wall-clock
    /// changes.
    pub num_workers: usize,
    /// How the worker pool distributes items within a phase:
    /// [`SchedulerPolicy::Static`] contiguous chunks, or
    /// [`SchedulerPolicy::Stealing`] atomic-cursor claiming for
    /// load-imbalanced workloads (LWFA's mostly-empty tiles). Results
    /// are bit-identical for either policy.
    pub scheduler: SchedulerPolicy,
    /// Selects the cell-run batched hot path: the gather loads each
    /// cell's stencil node block once per same-cell particle run
    /// (value-exact — gathers are read-only), and the deposition kernels
    /// accumulate each run into a stack-resident stencil block applied
    /// to the tile accumulator once per run. Requires a sorting strategy
    /// that provides cell-grouped order; unsorted configurations fall
    /// back to the per-particle reference sweep regardless of this flag.
    /// `false` (the default) keeps the per-particle reference paths and
    /// the paper-figure cost model exactly as before; the batched path
    /// is bit-identical across worker counts and scheduler policies, and
    /// its gather/push values are bit-identical to the reference
    /// (deposit regroups FP adds within a tight ULP bound on the
    /// direct-scatter kernel only).
    pub batching: bool,
    /// Selects the lane-parallel (SIMD) execution mode of the batched
    /// hot kernels: the run gather interpolates `W`-wide chunks of
    /// particles from the shared stencil node block at once, the batched
    /// deposit kernels accumulate lanes of nodes per iteration, and the
    /// rhocell→grid reduction folds each cell's components in one fused
    /// traversal (priced by `Machine::v_touch_reduce_block`). ANDed with
    /// [`SimConfig::batching`]: without the batched path there are no
    /// runs to chunk, so `simd` alone is a no-op and the per-particle
    /// path stays the bitwise reference. Values are bit-identical to the
    /// batched-scalar path everywhere (the lane loops preserve the
    /// per-particle association order). Emulated counters follow the
    /// streaming-price contract: the memory-bound block transfers are
    /// priced by the state-free streaming model instead of cache walks,
    /// so `Preprocess`, `Compute` and `Gather` charge strictly fewer
    /// cycles (as does `Reduce` on the rhocell-based kernels), while
    /// `Sort`, `Push`, `FieldSolve` and `Other` stay bit-identical.
    /// `false` is the default. Runtime knob: like `num_workers`, it may
    /// differ freely between a snapshot's save and restore.
    pub simd: bool,
}

impl SimConfig {
    /// A small fully-periodic default (tests and the quickstart example).
    pub fn small_periodic() -> Self {
        Self {
            n_cells: [16, 16, 16],
            dx: [1.0e-6; 3],
            tile_size: [8, 8, 8],
            guard: 2,
            cfl: 0.98,
            solver: SolverKind::Ckc,
            shape: ShapeOrder::Cic,
            kernel: KernelConfig::FullOpt,
            boundary: BoundaryKind::Periodic,
            moving_window: false,
            laser: None,
            absorber: AbsorbingLayer::default(),
            machine: MachineConfig::lx2(),
            seed: 0x5eed,
            num_workers: 1,
            scheduler: SchedulerPolicy::Static,
            batching: false,
            simd: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_consistent() {
        let c = SimConfig::small_periodic();
        assert_eq!(c.n_cells, [16, 16, 16]);
        assert!(c.cfl <= 1.0);
        assert!(c.laser.is_none());
    }
}
