//! Per-step and per-run timing records derived from the emulated
//! performance counters — the data behind every figure and table of the
//! paper's evaluation.

use mpic_machine::{MachineConfig, PerfCounters, Phase};

/// Snapshot of one step's cycle charges by phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepTimings {
    /// Cycles per phase in [`Phase::ALL`] order.
    pub cycles: [f64; 8],
    /// Live particles at the end of the step.
    pub particles: usize,
}

impl StepTimings {
    /// Computes the delta between two counter snapshots.
    pub fn from_delta(before: &PerfCounters, after: &PerfCounters, particles: usize) -> Self {
        let mut cycles = [0.0; 8];
        for (i, p) in Phase::ALL.iter().enumerate() {
            cycles[i] = after.cycles(*p) - before.cycles(*p);
        }
        Self { cycles, particles }
    }

    /// Cycles of one phase.
    pub fn phase(&self, p: Phase) -> f64 {
        let i = Phase::ALL.iter().position(|q| *q == p).expect("phase");
        self.cycles[i]
    }

    /// Total cycles of the step.
    pub fn total(&self) -> f64 {
        self.cycles.iter().sum()
    }

    /// Deposition-kernel cycles (preproc + compute + sort + reduce) —
    /// the paper's complete "Deposition Kernel Time".
    pub fn deposition(&self) -> f64 {
        self.phase(Phase::Preprocess)
            + self.phase(Phase::Compute)
            + self.phase(Phase::Sort)
            + self.phase(Phase::Reduce)
    }
}

/// Accumulated timings across a run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Every step's timings, in order.
    pub steps: Vec<StepTimings>,
    /// Total useful FLOPs credited over the run.
    pub useful_flops: f64,
}

impl RunReport {
    /// Records one step.
    pub fn push(&mut self, t: StepTimings) {
        self.steps.push(t);
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total cycles over all steps.
    pub fn total_cycles(&self) -> f64 {
        self.steps.iter().map(|s| s.total()).sum()
    }

    /// Total cycles of one phase.
    pub fn phase_cycles(&self, p: Phase) -> f64 {
        self.steps.iter().map(|s| s.phase(p)).sum()
    }

    /// Total deposition-kernel cycles.
    pub fn deposition_cycles(&self) -> f64 {
        self.steps.iter().map(|s| s.deposition()).sum()
    }

    /// Average wall seconds per step at the machine clock.
    pub fn wall_seconds_per_step(&self, cfg: &MachineConfig) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        cfg.cycles_to_seconds(self.total_cycles()) / self.steps.len() as f64
    }

    /// Deposition-kernel seconds over the whole run.
    pub fn deposition_seconds(&self, cfg: &MachineConfig) -> f64 {
        cfg.cycles_to_seconds(self.deposition_cycles())
    }

    /// Kernel throughput in particles per second
    /// (`N_particles / T_deposition`, the paper's primary metric).
    pub fn particles_per_second(&self, cfg: &MachineConfig) -> f64 {
        let t = self.deposition_seconds(cfg);
        if t == 0.0 {
            return 0.0;
        }
        let processed: usize = self.steps.iter().map(|s| s.particles).sum();
        processed as f64 / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(compute: f64, sort: f64, particles: usize) -> StepTimings {
        let mut before = PerfCounters::new();
        let mut after = PerfCounters::new();
        before.add_cycles(Phase::Compute, 0.0);
        after.add_cycles(Phase::Compute, compute);
        after.add_cycles(Phase::Sort, sort);
        StepTimings::from_delta(&before, &after, particles)
    }

    #[test]
    fn delta_captures_phase_cycles() {
        let t = step(10.0, 5.0, 3);
        assert_eq!(t.phase(Phase::Compute), 10.0);
        assert_eq!(t.phase(Phase::Sort), 5.0);
        assert_eq!(t.total(), 15.0);
        assert_eq!(t.deposition(), 15.0);
    }

    #[test]
    fn report_aggregates() {
        let mut r = RunReport::default();
        r.push(step(10.0, 0.0, 100));
        r.push(step(20.0, 4.0, 100));
        assert_eq!(r.len(), 2);
        assert_eq!(r.total_cycles(), 34.0);
        assert_eq!(r.phase_cycles(Phase::Compute), 30.0);
        let cfg = MachineConfig::lx2();
        assert!(r.particles_per_second(&cfg) > 0.0);
        assert!(r.wall_seconds_per_step(&cfg) > 0.0);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = RunReport::default();
        let cfg = MachineConfig::lx2();
        assert_eq!(r.wall_seconds_per_step(&cfg), 0.0);
        assert_eq!(r.particles_per_second(&cfg), 0.0);
        assert!(r.is_empty());
    }
}
