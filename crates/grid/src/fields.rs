//! The electromagnetic field state: E, B and J arrays with guard cells.
//!
//! All nine arrays share the guarded node dimensions; Yee staggering
//! (Ex at (i+1/2, j, k), Bx at (i, j+1/2, k+1/2), J co-located with E)
//! is carried in the interpretation of the indices, as is conventional in
//! guard-cell PIC codes. Guard exchange provides the two operations a
//! single-rank periodic run needs: folding deposited guard current back
//! into the interior, and mirroring interior field values into guards for
//! gather and stencil sweeps.

use crate::array3::Array3;
use crate::geometry::GridGeometry;

/// Identifies one of the nine field arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldComponent {
    /// Electric field x.
    Ex,
    /// Electric field y.
    Ey,
    /// Electric field z.
    Ez,
    /// Magnetic field x.
    Bx,
    /// Magnetic field y.
    By,
    /// Magnetic field z.
    Bz,
    /// Current density x.
    Jx,
    /// Current density y.
    Jy,
    /// Current density z.
    Jz,
}

/// The full field state on one patch.
#[derive(Debug, Clone)]
pub struct FieldArrays {
    /// Electric field components.
    pub ex: Array3,
    /// Electric field components.
    pub ey: Array3,
    /// Electric field components.
    pub ez: Array3,
    /// Magnetic field components.
    pub bx: Array3,
    /// Magnetic field components.
    pub by: Array3,
    /// Magnetic field components.
    pub bz: Array3,
    /// Current density components.
    pub jx: Array3,
    /// Current density components.
    pub jy: Array3,
    /// Current density components.
    pub jz: Array3,
    guard: usize,
    n_cells: [usize; 3],
}

impl FieldArrays {
    /// Allocates zeroed fields for a geometry.
    pub fn new(geom: &GridGeometry) -> Self {
        let [nx, ny, nz] = geom.dims_with_guard();
        let mk = || Array3::zeros(nx, ny, nz);
        Self {
            ex: mk(),
            ey: mk(),
            ez: mk(),
            bx: mk(),
            by: mk(),
            bz: mk(),
            jx: mk(),
            jy: mk(),
            jz: mk(),
            guard: geom.guard,
            n_cells: geom.n_cells,
        }
    }

    /// Guard width.
    pub fn guard(&self) -> usize {
        self.guard
    }

    /// Immutable access by component id.
    pub fn get(&self, c: FieldComponent) -> &Array3 {
        match c {
            FieldComponent::Ex => &self.ex,
            FieldComponent::Ey => &self.ey,
            FieldComponent::Ez => &self.ez,
            FieldComponent::Bx => &self.bx,
            FieldComponent::By => &self.by,
            FieldComponent::Bz => &self.bz,
            FieldComponent::Jx => &self.jx,
            FieldComponent::Jy => &self.jy,
            FieldComponent::Jz => &self.jz,
        }
    }

    /// Mutable access by component id.
    pub fn get_mut(&mut self, c: FieldComponent) -> &mut Array3 {
        match c {
            FieldComponent::Ex => &mut self.ex,
            FieldComponent::Ey => &mut self.ey,
            FieldComponent::Ez => &mut self.ez,
            FieldComponent::Bx => &mut self.bx,
            FieldComponent::By => &mut self.by,
            FieldComponent::Bz => &mut self.bz,
            FieldComponent::Jx => &mut self.jx,
            FieldComponent::Jy => &mut self.jy,
            FieldComponent::Jz => &mut self.jz,
        }
    }

    /// Zeroes the current arrays (start of every deposition).
    pub fn clear_currents(&mut self) {
        self.jx.fill(0.0);
        self.jy.fill(0.0);
        self.jz.fill(0.0);
    }

    /// Folds guard-cell current deposits back into the periodic interior
    /// and zeroes the guards. Call once after deposition.
    pub fn fold_guards_periodic(&mut self) {
        for c in [FieldComponent::Jx, FieldComponent::Jy, FieldComponent::Jz] {
            let g = self.guard;
            let n = self.n_cells;
            let arr = self.get_mut(c);
            let [dx, dy, dz] = arr.shape();
            for k in 0..dz {
                for j in 0..dy {
                    for i in 0..dx {
                        let inside = |v: usize, g: usize, n: usize| v >= g && v < g + n;
                        if inside(i, g, n[0]) && inside(j, g, n[1]) && inside(k, g, n[2]) {
                            continue;
                        }
                        let v = arr.get(i, j, k);
                        if v == 0.0 {
                            continue;
                        }
                        let wrap = |v: usize, g: usize, n: usize| {
                            ((v as i64 - g as i64).rem_euclid(n as i64)) as usize + g
                        };
                        let (wi, wj, wk) = (wrap(i, g, n[0]), wrap(j, g, n[1]), wrap(k, g, n[2]));
                        arr.add(wi, wj, wk, v);
                        arr.set(i, j, k, 0.0);
                    }
                }
            }
        }
    }

    /// Copies interior values into guard cells periodically for the six
    /// E/B components. Call after every field solve.
    pub fn fill_guards_periodic(&mut self) {
        for c in [
            FieldComponent::Ex,
            FieldComponent::Ey,
            FieldComponent::Ez,
            FieldComponent::Bx,
            FieldComponent::By,
            FieldComponent::Bz,
        ] {
            let g = self.guard;
            let n = self.n_cells;
            let arr = self.get_mut(c);
            let [dx, dy, dz] = arr.shape();
            for k in 0..dz {
                for j in 0..dy {
                    for i in 0..dx {
                        let inside = |v: usize, g: usize, n: usize| v >= g && v < g + n;
                        if inside(i, g, n[0]) && inside(j, g, n[1]) && inside(k, g, n[2]) {
                            continue;
                        }
                        let wrap = |v: usize, g: usize, n: usize| {
                            ((v as i64 - g as i64).rem_euclid(n as i64)) as usize + g
                        };
                        let (wi, wj, wk) = (wrap(i, g, n[0]), wrap(j, g, n[1]), wrap(k, g, n[2]));
                        let v = arr.get(wi, wj, wk);
                        arr.set(i, j, k, v);
                    }
                }
            }
        }
    }

    /// Total electromagnetic field energy, using `eps0/2 E^2 + 1/(2 mu0)
    /// B^2` summed over interior nodes times the cell volume.
    pub fn field_energy(&self, geom: &GridGeometry) -> f64 {
        let g = self.guard;
        let n = self.n_cells;
        let mut e2 = 0.0;
        let mut b2 = 0.0;
        for k in g..g + n[2] {
            for j in g..g + n[1] {
                for i in g..g + n[0] {
                    e2 += self.ex.get(i, j, k).powi(2)
                        + self.ey.get(i, j, k).powi(2)
                        + self.ez.get(i, j, k).powi(2);
                    b2 += self.bx.get(i, j, k).powi(2)
                        + self.by.get(i, j, k).powi(2)
                        + self.bz.get(i, j, k).powi(2);
                }
            }
        }
        let vol = geom.cell_volume();
        0.5 * crate::constants::EPS0 * e2 * vol + 0.5 / crate::constants::MU0 * b2 * vol
    }

    /// Shifts all field arrays one plane towards -z (moving window).
    pub fn shift_window_z(&mut self) {
        for c in [
            FieldComponent::Ex,
            FieldComponent::Ey,
            FieldComponent::Ez,
            FieldComponent::Bx,
            FieldComponent::By,
            FieldComponent::Bz,
            FieldComponent::Jx,
            FieldComponent::Jy,
            FieldComponent::Jz,
        ] {
            self.get_mut(c).shift_down_z();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> GridGeometry {
        GridGeometry::new([4, 4, 4], [0.0; 3], [1.0; 3], 2)
    }

    #[test]
    fn arrays_have_guarded_dims() {
        let f = FieldArrays::new(&geom());
        assert_eq!(f.ex.shape(), [8, 8, 8]);
    }

    #[test]
    fn fold_guards_wraps_current() {
        let g = geom();
        let mut f = FieldArrays::new(&g);
        // Deposit into the guard cell just below the interior in x:
        // index 1 should fold onto interior index 1 + 4 = 5.
        f.jx.set(1, 2, 2, 3.0);
        f.fold_guards_periodic();
        assert_eq!(f.jx.get(1, 2, 2), 0.0);
        assert_eq!(f.jx.get(5, 2, 2), 3.0);
    }

    #[test]
    fn fold_guards_preserves_total() {
        let g = geom();
        let mut f = FieldArrays::new(&g);
        f.jy.set(0, 0, 0, 1.0);
        f.jy.set(7, 7, 7, 2.0);
        f.jy.set(3, 3, 3, 4.0); // Interior; must stay.
        let before = f.jy.sum();
        f.fold_guards_periodic();
        assert!((f.jy.sum() - before).abs() < 1e-15);
        // Guard (7,7,7) wraps onto interior (3,3,3): 4 + 2.
        assert_eq!(f.jy.get(3, 3, 3), 6.0);
        // Guard (0,0,0) wraps onto interior (4,4,4).
        assert_eq!(f.jy.get(4, 4, 4), 1.0);
    }

    #[test]
    fn fill_guards_mirrors_interior() {
        let g = geom();
        let mut f = FieldArrays::new(&g);
        f.ex.set(2, 2, 2, 7.0); // Interior cell (0,0,0).
        f.fill_guards_periodic();
        // Guard cell at (6, 2, 2) wraps to interior (2,2,2)? 6-2=4 -> wraps
        // to 0 -> interior index 2. Yes.
        assert_eq!(f.ex.get(6, 2, 2), 7.0);
    }

    #[test]
    fn clear_currents_only_touches_j() {
        let g = geom();
        let mut f = FieldArrays::new(&g);
        f.ex.set(1, 1, 1, 5.0);
        f.jx.set(1, 1, 1, 5.0);
        f.clear_currents();
        assert_eq!(f.ex.get(1, 1, 1), 5.0);
        assert_eq!(f.jx.get(1, 1, 1), 0.0);
    }

    #[test]
    fn field_energy_positive_and_scales() {
        let g = geom();
        let mut f = FieldArrays::new(&g);
        f.ez.set(3, 3, 3, 2.0);
        let e1 = f.field_energy(&g);
        assert!(e1 > 0.0);
        f.ez.set(3, 3, 3, 4.0);
        let e2 = f.field_energy(&g);
        assert!((e2 / e1 - 4.0).abs() < 1e-12, "energy ~ E^2");
    }

    #[test]
    fn window_shift_moves_all_components() {
        let g = geom();
        let mut f = FieldArrays::new(&g);
        f.bz.set(0, 0, 1, 9.0);
        f.shift_window_z();
        assert_eq!(f.bz.get(0, 0, 0), 9.0);
        assert_eq!(f.bz.get(0, 0, 1), 0.0);
    }
}
