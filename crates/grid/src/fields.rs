//! The electromagnetic field state: E, B and J arrays with guard cells.
//!
//! All nine arrays share the guarded node dimensions; Yee staggering
//! (Ex at (i+1/2, j, k), Bx at (i, j+1/2, k+1/2), J co-located with E)
//! is carried in the interpretation of the indices, as is conventional in
//! guard-cell PIC codes. Guard exchange provides the two operations a
//! single-rank periodic run needs: folding deposited guard current back
//! into the interior, and mirroring interior field values into guards for
//! gather and stencil sweeps.

use crate::array3::Array3;
use crate::geometry::GridGeometry;
use mpic_machine::{Exec, Partition, INLINE_ITEM_THRESHOLD};

/// Identifies one of the nine field arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldComponent {
    /// Electric field x.
    Ex,
    /// Electric field y.
    Ey,
    /// Electric field z.
    Ez,
    /// Magnetic field x.
    Bx,
    /// Magnetic field y.
    By,
    /// Magnetic field z.
    Bz,
    /// Current density x.
    Jx,
    /// Current density y.
    Jy,
    /// Current density z.
    Jz,
}

/// The full field state on one patch.
#[derive(Debug, Clone)]
pub struct FieldArrays {
    /// Electric field components.
    pub ex: Array3,
    /// Electric field components.
    pub ey: Array3,
    /// Electric field components.
    pub ez: Array3,
    /// Magnetic field components.
    pub bx: Array3,
    /// Magnetic field components.
    pub by: Array3,
    /// Magnetic field components.
    pub bz: Array3,
    /// Current density components.
    pub jx: Array3,
    /// Current density components.
    pub jy: Array3,
    /// Current density components.
    pub jz: Array3,
    guard: usize,
    n_cells: [usize; 3],
}

impl FieldArrays {
    /// Allocates zeroed fields for a geometry.
    pub fn new(geom: &GridGeometry) -> Self {
        let [nx, ny, nz] = geom.dims_with_guard();
        let mk = || Array3::zeros(nx, ny, nz);
        Self {
            ex: mk(),
            ey: mk(),
            ez: mk(),
            bx: mk(),
            by: mk(),
            bz: mk(),
            jx: mk(),
            jy: mk(),
            jz: mk(),
            guard: geom.guard,
            n_cells: geom.n_cells,
        }
    }

    /// Guard width.
    pub fn guard(&self) -> usize {
        self.guard
    }

    /// Immutable access by component id.
    pub fn get(&self, c: FieldComponent) -> &Array3 {
        match c {
            FieldComponent::Ex => &self.ex,
            FieldComponent::Ey => &self.ey,
            FieldComponent::Ez => &self.ez,
            FieldComponent::Bx => &self.bx,
            FieldComponent::By => &self.by,
            FieldComponent::Bz => &self.bz,
            FieldComponent::Jx => &self.jx,
            FieldComponent::Jy => &self.jy,
            FieldComponent::Jz => &self.jz,
        }
    }

    /// Mutable access by component id.
    pub fn get_mut(&mut self, c: FieldComponent) -> &mut Array3 {
        match c {
            FieldComponent::Ex => &mut self.ex,
            FieldComponent::Ey => &mut self.ey,
            FieldComponent::Ez => &mut self.ez,
            FieldComponent::Bx => &mut self.bx,
            FieldComponent::By => &mut self.by,
            FieldComponent::Bz => &mut self.bz,
            FieldComponent::Jx => &mut self.jx,
            FieldComponent::Jy => &mut self.jy,
            FieldComponent::Jz => &mut self.jz,
        }
    }

    /// Zeroes the current arrays (start of every deposition).
    pub fn clear_currents(&mut self) {
        self.jx.fill(0.0);
        self.jy.fill(0.0);
        self.jz.fill(0.0);
    }

    /// Folds guard-cell current deposits back into the periodic interior
    /// and zeroes the guards. Call once after deposition.
    pub fn fold_guards_periodic(&mut self) {
        for c in [FieldComponent::Jx, FieldComponent::Jy, FieldComponent::Jz] {
            let g = self.guard;
            let n = self.n_cells;
            let arr = self.get_mut(c);
            let [dx, dy, dz] = arr.shape();
            for k in 0..dz {
                for j in 0..dy {
                    for i in 0..dx {
                        let inside = |v: usize, g: usize, n: usize| v >= g && v < g + n;
                        if inside(i, g, n[0]) && inside(j, g, n[1]) && inside(k, g, n[2]) {
                            continue;
                        }
                        let v = arr.get(i, j, k);
                        if v == 0.0 {
                            continue;
                        }
                        let wrap = |v: usize, g: usize, n: usize| {
                            ((v as i64 - g as i64).rem_euclid(n as i64)) as usize + g
                        };
                        let (wi, wj, wk) = (wrap(i, g, n[0]), wrap(j, g, n[1]), wrap(k, g, n[2]));
                        arr.add(wi, wj, wk, v);
                        arr.set(i, j, k, 0.0);
                    }
                }
            }
        }
    }

    /// Copies interior values into guard cells periodically for the six
    /// E/B components. Call after every field solve.
    ///
    /// The guard shell is walked as six disjoint face slabs (whole z
    /// guard planes, then y guard rows of interior planes, then x guard
    /// columns), so only guard cells are visited — the interior is never
    /// scanned. [`FieldArrays::fill_guards_periodic_exec`] distributes
    /// the same component x face items over the worker pool.
    pub fn fill_guards_periodic(&mut self) {
        let g = self.guard;
        let n = self.n_cells;
        let faces = guard_faces(g, n, self.ex.shape());
        for arr in self.eb_components_mut() {
            let grid = GuardGrid::new(arr);
            for face in faces {
                fill_guard_face(&grid, g, n, face);
            }
        }
    }

    /// [`FieldArrays::fill_guards_periodic`] with the 6 components x 6
    /// guard faces sharded across the persistent worker pool.
    ///
    /// Bit-identical to the sequential fill for any worker count or
    /// scheduler policy: every guard cell belongs to exactly one face
    /// item and is *copied* (not accumulated) from an interior cell that
    /// no item writes, so there is no ordering to preserve. Small shells
    /// (fewer total guard cells than the shared
    /// [`INLINE_ITEM_THRESHOLD`]) run inline, like the sharded sort's
    /// small-input path.
    pub fn fill_guards_periodic_exec(&mut self, exec: Exec<'_>) {
        let g = self.guard;
        let n = self.n_cells;
        let [dx, dy, dz] = self.ex.shape();
        let shell = dx * dy * dz - n[0] * n[1] * n[2];
        if exec.workers() == 1 || 6 * shell < INLINE_ITEM_THRESHOLD {
            self.fill_guards_periodic();
            return;
        }
        let faces = guard_faces(g, n, [dx, dy, dz]);
        let grids: [GuardGrid<'_>; 6] = self.eb_components_mut().map(GuardGrid::new);
        let mut items: Vec<(&GuardGrid<'_>, GuardFace)> = grids
            .iter()
            .flat_map(|grid| faces.iter().map(move |&f| (grid, f)))
            .collect();
        exec.for_each(&mut items, |_, (grid, face)| {
            fill_guard_face(grid, g, n, *face);
        });
    }

    /// The six E/B component arrays, in canonical order.
    fn eb_components_mut(&mut self) -> [&mut Array3; 6] {
        [
            &mut self.ex,
            &mut self.ey,
            &mut self.ez,
            &mut self.bx,
            &mut self.by,
            &mut self.bz,
        ]
    }

    /// Total electromagnetic field energy, using `eps0/2 E^2 + 1/(2 mu0)
    /// B^2` summed over interior nodes times the cell volume.
    pub fn field_energy(&self, geom: &GridGeometry) -> f64 {
        let g = self.guard;
        let n = self.n_cells;
        let mut e2 = 0.0;
        let mut b2 = 0.0;
        for k in g..g + n[2] {
            for j in g..g + n[1] {
                for i in g..g + n[0] {
                    e2 += self.ex.get(i, j, k).powi(2)
                        + self.ey.get(i, j, k).powi(2)
                        + self.ez.get(i, j, k).powi(2);
                    b2 += self.bx.get(i, j, k).powi(2)
                        + self.by.get(i, j, k).powi(2)
                        + self.bz.get(i, j, k).powi(2);
                }
            }
        }
        let vol = geom.cell_volume();
        0.5 * crate::constants::EPS0 * e2 * vol + 0.5 / crate::constants::MU0 * b2 * vol
    }

    /// Shifts all field arrays one plane towards -z (moving window).
    pub fn shift_window_z(&mut self) {
        for c in [
            FieldComponent::Ex,
            FieldComponent::Ey,
            FieldComponent::Ez,
            FieldComponent::Bx,
            FieldComponent::By,
            FieldComponent::Bz,
            FieldComponent::Jx,
            FieldComponent::Jy,
            FieldComponent::Jz,
        ] {
            self.get_mut(c).shift_down_z();
        }
    }

    /// [`FieldArrays::shift_window_z`] with the nine independent
    /// component shifts sharded across the persistent worker pool.
    /// Trivially bit-identical: each array's shift touches only that
    /// array.
    pub fn shift_window_z_exec(&mut self, exec: Exec<'_>) {
        let mut comps: [&mut Array3; 9] = [
            &mut self.ex,
            &mut self.ey,
            &mut self.ez,
            &mut self.bx,
            &mut self.by,
            &mut self.bz,
            &mut self.jx,
            &mut self.jy,
            &mut self.jz,
        ];
        exec.for_each(&mut comps, |_, arr| arr.shift_down_z());
    }
}

/// One face slab of the guard shell: half-open index ranges per axis.
///
/// The six faces *partition* the shell — z faces take whole guard
/// planes, y faces take the guard rows of interior planes, x faces take
/// the guard columns of interior rows — so every guard cell belongs to
/// exactly one face and parallel face workers never write the same cell.
#[derive(Debug, Clone, Copy)]
struct GuardFace {
    i: (usize, usize),
    j: (usize, usize),
    k: (usize, usize),
}

/// The six disjoint guard faces of a `dims`-shaped array with `n`
/// interior cells behind `g` guard layers.
fn guard_faces(g: usize, n: [usize; 3], dims: [usize; 3]) -> [GuardFace; 6] {
    let full = |d: usize| (0, dims[d]);
    let interior = |d: usize| (g, g + n[d]);
    [
        // z-low / z-high slabs: whole guard planes.
        GuardFace {
            i: full(0),
            j: full(1),
            k: (0, g),
        },
        GuardFace {
            i: full(0),
            j: full(1),
            k: (g + n[2], dims[2]),
        },
        // y-low / y-high rows of the interior-z planes.
        GuardFace {
            i: full(0),
            j: (0, g),
            k: interior(2),
        },
        GuardFace {
            i: full(0),
            j: (g + n[1], dims[1]),
            k: interior(2),
        },
        // x-low / x-high columns of the interior-z/y rows.
        GuardFace {
            i: (0, g),
            j: interior(1),
            k: interior(2),
        },
        GuardFace {
            i: (g + n[0], dims[0]),
            j: interior(1),
            k: interior(2),
        },
    ]
}

/// Checked shared view of one field component for guard-face workers:
/// a [`Partition`] over the component's flat element buffer plus the
/// strides to index it.
///
/// Guard faces partition the write set (every guard cell belongs to
/// exactly one face) and every read is of an interior cell, which no
/// face writes — in debug builds the partition's claim bitmap verifies
/// both halves of that argument on every fill.
struct GuardGrid<'a> {
    part: Partition<'a, f64>,
    nx: usize,
    ny: usize,
}

impl<'a> GuardGrid<'a> {
    fn new(arr: &'a mut Array3) -> Self {
        let [nx, ny, _] = arr.shape();
        Self {
            part: Partition::new(arr.as_mut_slice()),
            nx,
            ny,
        }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (k * self.ny + j) * self.nx + i
    }
}

/// Fills one guard face of one component: each guard cell copies the
/// periodically wrapped interior cell.
// Writes go through checked Partition grants (guard cells, face-unique)
// and reads through unclaimed Partition reads (interior cells).
#[allow(unsafe_code)]
fn fill_guard_face(grid: &GuardGrid<'_>, g: usize, n: [usize; 3], face: GuardFace) {
    let wrap =
        |v: usize, g: usize, n: usize| ((v as i64 - g as i64).rem_euclid(n as i64)) as usize + g;
    for k in face.k.0..face.k.1 {
        let wk = wrap(k, g, n[2]);
        for j in face.j.0..face.j.1 {
            let wj = wrap(j, g, n[1]);
            for i in face.i.0..face.i.1 {
                let wi = wrap(i, g, n[0]);
                // SAFETY: indices are in bounds by face construction;
                // the source is interior (wrapped into `g..g+n`, never
                // granted by any face) and the destination guard cell
                // belongs to this face alone, so its grant is unique —
                // both claims are what the debug bitmap checks.
                unsafe {
                    let v = grid.part.read(grid.idx(wi, wj, wk));
                    *grid.part.grant(grid.idx(i, j, k)) = v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> GridGeometry {
        GridGeometry::new([4, 4, 4], [0.0; 3], [1.0; 3], 2)
    }

    #[test]
    fn arrays_have_guarded_dims() {
        let f = FieldArrays::new(&geom());
        assert_eq!(f.ex.shape(), [8, 8, 8]);
    }

    #[test]
    fn fold_guards_wraps_current() {
        let g = geom();
        let mut f = FieldArrays::new(&g);
        // Deposit into the guard cell just below the interior in x:
        // index 1 should fold onto interior index 1 + 4 = 5.
        f.jx.set(1, 2, 2, 3.0);
        f.fold_guards_periodic();
        assert_eq!(f.jx.get(1, 2, 2), 0.0);
        assert_eq!(f.jx.get(5, 2, 2), 3.0);
    }

    #[test]
    fn fold_guards_preserves_total() {
        let g = geom();
        let mut f = FieldArrays::new(&g);
        f.jy.set(0, 0, 0, 1.0);
        f.jy.set(7, 7, 7, 2.0);
        f.jy.set(3, 3, 3, 4.0); // Interior; must stay.
        let before = f.jy.sum();
        f.fold_guards_periodic();
        assert!((f.jy.sum() - before).abs() < 1e-15);
        // Guard (7,7,7) wraps onto interior (3,3,3): 4 + 2.
        assert_eq!(f.jy.get(3, 3, 3), 6.0);
        // Guard (0,0,0) wraps onto interior (4,4,4).
        assert_eq!(f.jy.get(4, 4, 4), 1.0);
    }

    #[test]
    fn fill_guards_mirrors_interior() {
        let g = geom();
        let mut f = FieldArrays::new(&g);
        f.ex.set(2, 2, 2, 7.0); // Interior cell (0,0,0).
        f.fill_guards_periodic();
        // Guard cell at (6, 2, 2) wraps to interior (2,2,2)? 6-2=4 -> wraps
        // to 0 -> interior index 2. Yes.
        assert_eq!(f.ex.get(6, 2, 2), 7.0);
    }

    #[test]
    fn clear_currents_only_touches_j() {
        let g = geom();
        let mut f = FieldArrays::new(&g);
        f.ex.set(1, 1, 1, 5.0);
        f.jx.set(1, 1, 1, 5.0);
        f.clear_currents();
        assert_eq!(f.ex.get(1, 1, 1), 5.0);
        assert_eq!(f.jx.get(1, 1, 1), 0.0);
    }

    #[test]
    fn field_energy_positive_and_scales() {
        let g = geom();
        let mut f = FieldArrays::new(&g);
        f.ez.set(3, 3, 3, 2.0);
        let e1 = f.field_energy(&g);
        assert!(e1 > 0.0);
        f.ez.set(3, 3, 3, 4.0);
        let e2 = f.field_energy(&g);
        assert!((e2 / e1 - 4.0).abs() < 1e-12, "energy ~ E^2");
    }

    #[test]
    fn window_shift_moves_all_components() {
        let g = geom();
        let mut f = FieldArrays::new(&g);
        f.bz.set(0, 0, 1, 9.0);
        f.shift_window_z();
        assert_eq!(f.bz.get(0, 0, 0), 9.0);
        assert_eq!(f.bz.get(0, 0, 1), 0.0);
    }
}
