//! Physical constants (SI units) used throughout the simulation stack.

/// Speed of light in vacuum, m/s.
pub const C: f64 = 299_792_458.0;

/// Vacuum permittivity, F/m.
pub const EPS0: f64 = 8.854_187_812_8e-12;

/// Vacuum permeability, H/m.
pub const MU0: f64 = 1.256_637_062_12e-6;

/// Elementary charge, C.
pub const Q_E: f64 = 1.602_176_634e-19;

/// Electron mass, kg.
pub const M_E: f64 = 9.109_383_701_5e-31;

/// Proton mass, kg.
pub const M_P: f64 = 1.672_621_923_69e-27;

/// Electron plasma frequency for density `n` (per m^3), rad/s.
pub fn plasma_frequency(n: f64) -> f64 {
    (n * Q_E * Q_E / (EPS0 * M_E)).sqrt()
}

/// Critical density for laser wavelength `lambda` (m), per m^3.
pub fn critical_density(lambda: f64) -> f64 {
    let omega = 2.0 * std::f64::consts::PI * C / lambda;
    EPS0 * M_E * omega * omega / (Q_E * Q_E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_squared_matches_1_over_eps0_mu0() {
        let c2 = 1.0 / (EPS0 * MU0);
        assert!((c2 / (C * C) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn plasma_frequency_known_value() {
        // n = 1e25 m^-3 (paper's uniform plasma density) => fpe ~ 28.4 THz.
        let w = plasma_frequency(1e25);
        let f = w / (2.0 * std::f64::consts::PI);
        assert!((f / 28.4e12 - 1.0).abs() < 0.02, "got {f}");
    }

    #[test]
    fn critical_density_800nm() {
        // ~1.74e27 m^-3 for 0.8 um light.
        let nc = critical_density(0.8e-6);
        assert!((nc / 1.74e27 - 1.0).abs() < 0.02, "got {nc}");
    }
}
