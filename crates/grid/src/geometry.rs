//! Grid geometry: physical extents, cell sizes, guard cells and the
//! position-to-cell mapping used by deposition, gather and the sorter.

/// Geometry of a rectilinear grid patch.
#[derive(Debug, Clone)]
pub struct GridGeometry {
    /// Number of *physical* cells per dimension (excludes guards).
    pub n_cells: [usize; 3],
    /// Physical coordinate of the lower corner of cell (0,0,0).
    pub lo: [f64; 3],
    /// Cell size per dimension (m).
    pub dx: [f64; 3],
    /// Guard (ghost) cells on each side.
    pub guard: usize,
}

impl GridGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if any cell count is zero or any cell size is non-positive.
    pub fn new(n_cells: [usize; 3], lo: [f64; 3], dx: [f64; 3], guard: usize) -> Self {
        assert!(n_cells.iter().all(|&n| n > 0), "cell counts must be > 0");
        assert!(dx.iter().all(|&d| d > 0.0), "cell sizes must be > 0");
        Self {
            n_cells,
            lo,
            dx,
            guard,
        }
    }

    /// Array dimensions including guards.
    pub fn dims_with_guard(&self) -> [usize; 3] {
        [
            self.n_cells[0] + 2 * self.guard,
            self.n_cells[1] + 2 * self.guard,
            self.n_cells[2] + 2 * self.guard,
        ]
    }

    /// Physical domain extent per dimension (m).
    pub fn extent(&self) -> [f64; 3] {
        [
            self.n_cells[0] as f64 * self.dx[0],
            self.n_cells[1] as f64 * self.dx[1],
            self.n_cells[2] as f64 * self.dx[2],
        ]
    }

    /// Upper corner of the physical domain.
    pub fn hi(&self) -> [f64; 3] {
        let e = self.extent();
        [self.lo[0] + e[0], self.lo[1] + e[1], self.lo[2] + e[2]]
    }

    /// Total number of physical cells.
    pub fn total_cells(&self) -> usize {
        self.n_cells[0] * self.n_cells[1] * self.n_cells[2]
    }

    /// Cell volume (m^3).
    pub fn cell_volume(&self) -> f64 {
        self.dx[0] * self.dx[1] * self.dx[2]
    }

    /// Maps a position to `(cell, frac)` where `cell` is the physical cell
    /// index (may be outside `[0, n)` for particles in guard regions) and
    /// `frac` is the normalised intra-cell coordinate in `[0, 1)`.
    #[inline]
    pub fn locate(&self, x: f64, y: f64, z: f64) -> ([i64; 3], [f64; 3]) {
        let mut cell = [0i64; 3];
        let mut frac = [0f64; 3];
        for (d, &p) in [x, y, z].iter().enumerate() {
            let u = (p - self.lo[d]) / self.dx[d];
            let c = u.floor();
            cell[d] = c as i64;
            frac[d] = u - c;
        }
        (cell, frac)
    }

    /// Wraps a (possibly negative) cell index into `[0, n)` per dimension
    /// for periodic boundaries.
    ///
    /// Almost every caller passes an already-in-range index (positions
    /// are wrapped at the end of the push, so `locate` lands inside the
    /// domain except at fractional-rounding edges), and `rem_euclid` on
    /// `i64` is a hardware divide — the in-range branch skips it on the
    /// common path. Integer arithmetic, so the two paths agree exactly.
    #[inline]
    pub fn wrap_cell(&self, cell: [i64; 3]) -> [usize; 3] {
        let mut out = [0usize; 3];
        for d in 0..3 {
            let n = self.n_cells[d] as i64;
            out[d] = if (0..n).contains(&cell[d]) {
                cell[d] as usize
            } else {
                cell[d].rem_euclid(n) as usize
            };
        }
        out
    }

    /// Wraps a position into the periodic domain.
    ///
    /// The three guarded branches cover every CFL-bounded push (a step
    /// moves a particle less than one cell, far less than the domain
    /// extent) without the libm `fmod` behind `rem_euclid`, which
    /// dominated the push phase's host profile. Each branch is bitwise
    /// identical to `rem_euclid` on its range: `fmod` is exact, so for
    /// offsets in `[0, e)` it returns the offset unchanged, for
    /// `[e, 2e)` it returns the mathematically exact `r - e` (which
    /// Sterbenz's lemma makes the one floating subtraction reproduce
    /// exactly), and for `(-e, 0)` it returns `r` followed by the same
    /// single rounded `r + e` the branch performs. Anything outside
    /// those ranges — including the `r == -e` edge, where `rem_euclid`
    /// yields `-0.0` rather than `0.0` — still takes `rem_euclid`.
    #[inline]
    pub fn wrap_position(&self, pos: [f64; 3]) -> [f64; 3] {
        let mut out = pos;
        let e = self.extent();
        for d in 0..3 {
            let r = out[d] - self.lo[d];
            out[d] = self.lo[d]
                + if (0.0..e[d]).contains(&r) {
                    r
                } else if r >= e[d] && r < 2.0 * e[d] {
                    r - e[d]
                } else if r < 0.0 && r > -e[d] {
                    r + e[d]
                } else {
                    r.rem_euclid(e[d])
                };
        }
        out
    }

    /// Linear physical-cell id with x fastest (the GPMA sort key).
    #[inline]
    pub fn cell_id(&self, cell: [usize; 3]) -> usize {
        (cell[2] * self.n_cells[1] + cell[1]) * self.n_cells[0] + cell[0]
    }

    /// Inverse of [`GridGeometry::cell_id`].
    #[inline]
    pub fn cell_coords(&self, id: usize) -> [usize; 3] {
        let i = id % self.n_cells[0];
        let j = (id / self.n_cells[0]) % self.n_cells[1];
        let k = id / (self.n_cells[0] * self.n_cells[1]);
        [i, j, k]
    }

    /// CFL-stable timestep for the Yee scheme, scaled by `cfl`
    /// (the paper uses `warpx.cfl = 1.0`).
    pub fn cfl_dt(&self, cfl: f64) -> f64 {
        let inv2: f64 = self.dx.iter().map(|d| 1.0 / (d * d)).sum();
        cfl / (crate::constants::C * inv2.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> GridGeometry {
        GridGeometry::new([8, 8, 8], [0.0; 3], [1.0e-6; 3], 2)
    }

    #[test]
    fn locate_interior() {
        let g = geom();
        let (c, f) = g.locate(2.5e-6, 0.0, 7.999e-6);
        assert_eq!(c, [2, 0, 7]);
        assert!((f[0] - 0.5).abs() < 1e-9);
        assert!(f[2] > 0.99);
    }

    #[test]
    fn locate_negative_positions() {
        let g = geom();
        let (c, f) = g.locate(-0.5e-6, 0.0, 0.0);
        assert_eq!(c[0], -1);
        assert!((f[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn wrap_cell_periodic() {
        let g = geom();
        assert_eq!(g.wrap_cell([-1, 8, 3]), [7, 0, 3]);
        assert_eq!(g.wrap_cell([-9, 17, 0]), [7, 1, 0]);
    }

    #[test]
    fn wrap_position_periodic() {
        let g = geom();
        let p = g.wrap_position([-0.5e-6, 8.5e-6, 4.0e-6]);
        assert!((p[0] - 7.5e-6).abs() < 1e-12);
        assert!((p[1] - 0.5e-6).abs() < 1e-12);
        assert!((p[2] - 4.0e-6).abs() < 1e-12);
    }

    #[test]
    fn conf_wrap_position_fast_paths_match_rem_euclid_bitwise() {
        let g = geom();
        let e = g.extent();
        // Offsets spanning every branch: in-domain, one extent above,
        // just below 2e, negative within one extent, far outside both
        // ways, and the exact-boundary edges (0, e, -e, 2e).
        let offsets = [
            0.0, 1e-7, 0.37, 0.999_999, 1.0, 1.25, 1.999_999, 2.0, 2.5, 7.0, -1e-7, -0.5,
            -0.999_999, -1.0, -1.5, -6.25,
        ];
        for d in 0..3 {
            for &k in &offsets {
                let mut pos = [2.0e-6, 3.0e-6, 4.0e-6];
                pos[d] = g.lo[d] + k * e[d];
                let got = g.wrap_position(pos);
                for dd in 0..3 {
                    let want = g.lo[dd] + (pos[dd] - g.lo[dd]).rem_euclid(e[dd]);
                    assert_eq!(
                        got[dd].to_bits(),
                        want.to_bits(),
                        "dim {dd}, offset {k} extents (got {}, want {})",
                        got[dd],
                        want
                    );
                }
            }
        }
    }

    #[test]
    fn cell_id_roundtrip() {
        let g = geom();
        for id in 0..g.total_cells() {
            assert_eq!(g.cell_id(g.cell_coords(id)), id);
        }
    }

    #[test]
    fn cell_id_x_fastest() {
        let g = geom();
        assert_eq!(g.cell_id([1, 0, 0]), 1);
        assert_eq!(g.cell_id([0, 1, 0]), 8);
        assert_eq!(g.cell_id([0, 0, 1]), 64);
    }

    #[test]
    fn cfl_dt_cubic_grid() {
        let g = geom();
        let dt = g.cfl_dt(1.0);
        // dt = dx / (c * sqrt(3)) for a cubic grid.
        let expect = 1.0e-6 / (crate::constants::C * 3f64.sqrt());
        assert!((dt / expect - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dims_with_guard() {
        let g = geom();
        assert_eq!(g.dims_with_guard(), [12, 12, 12]);
        assert_eq!(g.total_cells(), 512);
    }
}
