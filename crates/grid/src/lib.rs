//! Grid substrate for Matrix-PIC: 3-D field arrays, Yee staggering,
//! guard cells and the tile decomposition the paper's per-tile GPMA
//! structures hang off.
//!
//! Index convention: `x` is the fastest-varying dimension, matching the
//! Structure-of-Arrays layout the paper maintains for VPU/MPU streaming.
//!
//! # Example
//!
//! ```
//! use mpic_grid::{GridGeometry, TileLayout};
//!
//! let geom = GridGeometry::new([16, 16, 16], [0.0; 3], [1e-6; 3], 2);
//! let tiles = TileLayout::new(&geom, [8, 8, 8]);
//! assert_eq!(tiles.num_tiles(), 8);
//! let (cell, frac) = geom.locate(0.5e-6, 0.25e-6, 15.9e-6);
//! assert_eq!(cell, [0, 0, 15]);
//! assert!((frac[0] - 0.5).abs() < 1e-12);
//! ```

// The guard exchange's Partition-backed fill is the crate's only unsafe
// code; each unsafe operation must be wrapped and SAFETY-commented even
// inside `unsafe fn`.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod array3;
pub mod constants;
pub mod fields;
pub mod geometry;
pub mod tile;

pub use array3::Array3;
pub use fields::{FieldArrays, FieldComponent};
pub use geometry::GridGeometry;
pub use tile::{Tile, TileLayout};
