//! Flat row-major 3-D array of f64 with x fastest.

use std::ops::{Index, IndexMut};

/// A dense 3-D array of `f64`, linearised as `(k * ny + j) * nx + i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Array3 {
    nx: usize,
    ny: usize,
    nz: usize,
    data: Vec<f64>,
}

impl Array3 {
    /// Creates a zero-filled array of the given shape.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Self {
        Self {
            nx,
            ny,
            nz,
            data: vec![0.0; nx * ny * nz],
        }
    }

    /// Shape as `[nx, ny, nz]`.
    pub fn shape(&self) -> [usize; 3] {
        [self.nx, self.ny, self.nz]
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Linear index of `(i, j, k)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any coordinate is out of range.
    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        (k * self.ny + j) * self.nx + i
    }

    /// Inverse of [`Array3::idx`].
    #[inline]
    pub fn coords(&self, lin: usize) -> [usize; 3] {
        let i = lin % self.nx;
        let j = (lin / self.nx) % self.ny;
        let k = lin / (self.nx * self.ny);
        [i, j, k]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f64) {
        let idx = self.idx(i, j, k);
        self.data[idx] = v;
    }

    /// In-place add at one site.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, k: usize, v: f64) {
        let idx = self.idx(i, j, k);
        self.data[idx] += v;
    }

    /// Fills the whole array with `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Raw slice view.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Raw mutable slice view.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Sum of all elements (diagnostics).
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Sum of squares (energy diagnostics).
    pub fn sum_sq(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Maximum absolute value.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Shifts the array contents one plane towards -z (plane `k` receives
    /// plane `k+1`; the last plane is zeroed). Used by the moving window.
    pub fn shift_down_z(&mut self) {
        let plane = self.nx * self.ny;
        let n = self.data.len();
        self.data.copy_within(plane..n, 0);
        self.data[n - plane..].fill(0.0);
    }
}

impl Index<(usize, usize, usize)> for Array3 {
    type Output = f64;

    fn index(&self, (i, j, k): (usize, usize, usize)) -> &f64 {
        &self.data[self.idx(i, j, k)]
    }
}

impl IndexMut<(usize, usize, usize)> for Array3 {
    fn index_mut(&mut self, (i, j, k): (usize, usize, usize)) -> &mut f64 {
        let idx = self.idx(i, j, k);
        &mut self.data[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_roundtrips_with_coords() {
        let a = Array3::zeros(4, 5, 6);
        for k in 0..6 {
            for j in 0..5 {
                for i in 0..4 {
                    assert_eq!(a.coords(a.idx(i, j, k)), [i, j, k]);
                }
            }
        }
    }

    #[test]
    fn x_is_fastest_dimension() {
        let a = Array3::zeros(4, 5, 6);
        assert_eq!(a.idx(1, 0, 0), a.idx(0, 0, 0) + 1);
        assert_eq!(a.idx(0, 1, 0), a.idx(0, 0, 0) + 4);
        assert_eq!(a.idx(0, 0, 1), a.idx(0, 0, 0) + 20);
    }

    #[test]
    fn indexing_and_add() {
        let mut a = Array3::zeros(2, 2, 2);
        a[(1, 1, 1)] = 3.0;
        a.add(1, 1, 1, 2.0);
        assert_eq!(a.get(1, 1, 1), 5.0);
        assert_eq!(a.sum(), 5.0);
        assert_eq!(a.sum_sq(), 25.0);
        assert_eq!(a.max_abs(), 5.0);
    }

    #[test]
    fn shift_down_z_moves_planes() {
        let mut a = Array3::zeros(2, 2, 3);
        a.set(0, 0, 0, 1.0);
        a.set(0, 0, 1, 2.0);
        a.set(0, 0, 2, 3.0);
        a.shift_down_z();
        assert_eq!(a.get(0, 0, 0), 2.0);
        assert_eq!(a.get(0, 0, 1), 3.0);
        assert_eq!(a.get(0, 0, 2), 0.0);
    }
}
