//! Tile decomposition of the grid.
//!
//! The paper's particle containers are organised per tile
//! (`particles.tile_size = 8x8x8` for uniform plasma, `8x8x64` for LWFA);
//! each tile owns a GPMA index structure and its particles are binned by
//! *tile-local* cell id so that a tile's working set (particle slices,
//! rhocell accumulators) fits in cache while the MPU sweeps it.

use crate::geometry::GridGeometry;

/// A contiguous box of physical cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Inclusive lower cell coordinate.
    pub lo: [usize; 3],
    /// Exclusive upper cell coordinate.
    pub hi: [usize; 3],
}

impl Tile {
    /// Cells per dimension.
    pub fn size(&self) -> [usize; 3] {
        [
            self.hi[0] - self.lo[0],
            self.hi[1] - self.lo[1],
            self.hi[2] - self.lo[2],
        ]
    }

    /// Total number of cells in the tile.
    pub fn num_cells(&self) -> usize {
        let s = self.size();
        s[0] * s[1] * s[2]
    }

    /// Whether a physical cell coordinate lies inside this tile.
    pub fn contains(&self, cell: [usize; 3]) -> bool {
        (0..3).all(|d| cell[d] >= self.lo[d] && cell[d] < self.hi[d])
    }

    /// Tile-local linear cell id (x fastest), the GPMA bin key.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the cell is outside the tile.
    #[inline]
    pub fn local_cell_id(&self, cell: [usize; 3]) -> usize {
        debug_assert!(self.contains(cell));
        let s = self.size();
        let i = cell[0] - self.lo[0];
        let j = cell[1] - self.lo[1];
        let k = cell[2] - self.lo[2];
        (k * s[1] + j) * s[0] + i
    }

    /// Inverse of [`Tile::local_cell_id`], returning the physical cell.
    #[inline]
    pub fn global_cell(&self, local: usize) -> [usize; 3] {
        let s = self.size();
        let i = local % s[0];
        let j = (local / s[0]) % s[1];
        let k = local / (s[0] * s[1]);
        [self.lo[0] + i, self.lo[1] + j, self.lo[2] + k]
    }
}

/// Decomposition of a geometry into tiles.
#[derive(Debug, Clone)]
pub struct TileLayout {
    /// Requested tile size (edge tiles may be smaller).
    pub tile_size: [usize; 3],
    tiles: Vec<Tile>,
    tiles_per_dim: [usize; 3],
}

impl TileLayout {
    /// Decomposes `geom` into tiles of at most `tile_size` cells.
    ///
    /// # Panics
    ///
    /// Panics if any tile dimension is zero.
    pub fn new(geom: &GridGeometry, tile_size: [usize; 3]) -> Self {
        assert!(tile_size.iter().all(|&t| t > 0));
        let tiles_per_dim = [
            geom.n_cells[0].div_ceil(tile_size[0]),
            geom.n_cells[1].div_ceil(tile_size[1]),
            geom.n_cells[2].div_ceil(tile_size[2]),
        ];
        let mut tiles = Vec::new();
        for tk in 0..tiles_per_dim[2] {
            for tj in 0..tiles_per_dim[1] {
                for ti in 0..tiles_per_dim[0] {
                    let lo = [ti * tile_size[0], tj * tile_size[1], tk * tile_size[2]];
                    let hi = [
                        (lo[0] + tile_size[0]).min(geom.n_cells[0]),
                        (lo[1] + tile_size[1]).min(geom.n_cells[1]),
                        (lo[2] + tile_size[2]).min(geom.n_cells[2]),
                    ];
                    tiles.push(Tile { lo, hi });
                }
            }
        }
        Self {
            tile_size,
            tiles,
            tiles_per_dim,
        }
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Tile accessor.
    pub fn tile(&self, t: usize) -> &Tile {
        &self.tiles[t]
    }

    /// Iterator over tiles.
    pub fn iter(&self) -> impl Iterator<Item = &Tile> {
        self.tiles.iter()
    }

    /// Which tile a physical cell belongs to.
    pub fn tile_of_cell(&self, cell: [usize; 3]) -> usize {
        let t = [
            cell[0] / self.tile_size[0],
            cell[1] / self.tile_size[1],
            cell[2] / self.tile_size[2],
        ];
        (t[2] * self.tiles_per_dim[1] + t[1]) * self.tiles_per_dim[0] + t[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> GridGeometry {
        GridGeometry::new([16, 16, 16], [0.0; 3], [1.0; 3], 1)
    }

    #[test]
    fn exact_decomposition() {
        let layout = TileLayout::new(&geom(), [8, 8, 8]);
        assert_eq!(layout.num_tiles(), 8);
        assert!(layout.iter().all(|t| t.num_cells() == 512));
    }

    #[test]
    fn ragged_edges_are_clipped() {
        let g = GridGeometry::new([10, 10, 10], [0.0; 3], [1.0; 3], 1);
        let layout = TileLayout::new(&g, [8, 8, 8]);
        assert_eq!(layout.num_tiles(), 8);
        let total: usize = layout.iter().map(|t| t.num_cells()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn tile_of_cell_consistent_with_contains() {
        let layout = TileLayout::new(&geom(), [8, 8, 8]);
        for cell in [[0, 0, 0], [7, 7, 7], [8, 0, 0], [15, 15, 15], [3, 9, 12]] {
            let t = layout.tile_of_cell(cell);
            assert!(layout.tile(t).contains(cell), "cell {cell:?} tile {t}");
        }
    }

    #[test]
    fn local_cell_id_roundtrip() {
        let layout = TileLayout::new(&geom(), [8, 8, 8]);
        let tile = layout.tile(5);
        for local in 0..tile.num_cells() {
            let cell = tile.global_cell(local);
            assert_eq!(tile.local_cell_id(cell), local);
        }
    }

    #[test]
    fn lwfa_tile_shape() {
        let g = GridGeometry::new([64, 64, 512], [0.0; 3], [1.0; 3], 1);
        let layout = TileLayout::new(&g, [8, 8, 64]);
        assert_eq!(layout.num_tiles(), 8 * 8 * 8);
    }
}
