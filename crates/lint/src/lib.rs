//! `mpic-lint`: the workspace's own static-analysis gate.
//!
//! The workspace ships a determinism contract (bit-identical results
//! across worker counts and scheduler policies) and a small audited
//! unsafe surface (the exec layer's job pointer, the checked
//! [`Partition`](../mpic_machine/partition/index.html), the guard-cell
//! fill). Neither is something rustc checks for us — so this crate
//! does, with a hand-rolled lexer (no external parser dependencies) and
//! nine deny-by-default rules; see [`rules`] for the catalogue.
//!
//! Run it as `cargo run --release -p mpic-lint`; exit status 1 means
//! findings. CI runs it as a required job, and the crate's own test
//! suite asserts the real workspace lints clean, so `cargo test` fails
//! the moment a violation lands anywhere in the tree.

pub mod lexer;
pub mod rules;

use rules::Finding;
use std::fs;
use std::path::{Path, PathBuf};

/// Outcome of a full workspace scan.
#[derive(Debug)]
pub struct LintReport {
    /// How many `.rs` files were lexed and checked.
    pub files_scanned: usize,
    /// All violations, in path-then-line order.
    pub findings: Vec<Finding>,
}

/// The workspace root, resolved from this crate's own manifest dir so
/// the binary works from any cwd.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf()
}

/// Every first-party `.rs` file under the workspace root, sorted.
/// `vendor/` (third-party stand-ins) and `target/` are skipped.
pub fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        walk(&root.join(top), &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    let mut entries: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            walk(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Scans the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> LintReport {
    let files = collect_sources(root);
    let mut findings = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = fs::read_to_string(f) else {
            continue;
        };
        findings.extend(rules::lint_file(&rel, &src));
    }
    LintReport {
        files_scanned: files.len(),
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The self-check: the workspace this linter ships in must satisfy
    /// its own rules. This is the test that makes every `cargo test`
    /// run a static-analysis gate.
    #[test]
    fn workspace_lints_clean() {
        let report = lint_workspace(&workspace_root());
        assert!(
            report.files_scanned >= 30,
            "suspiciously few files scanned ({}): wrong root?",
            report.files_scanned
        );
        let rendered: Vec<String> = report
            .findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
            .collect();
        assert!(
            report.findings.is_empty(),
            "workspace has lint findings:\n{}",
            rendered.join("\n")
        );
    }

    /// The scan must cover the bench binaries and this crate itself —
    /// no carve-outs in the file walk.
    #[test]
    fn scan_covers_bench_bins_and_the_linter_itself() {
        let files = collect_sources(&workspace_root());
        let rels: Vec<String> = files
            .iter()
            .map(|p| p.to_string_lossy().replace('\\', "/"))
            .collect();
        assert!(
            rels.iter().any(|r| r.contains("crates/bench/src/bin/")),
            "bench bins missing from scan: {rels:?}"
        );
        assert!(rels.iter().any(|r| r.ends_with("crates/lint/src/rules.rs")));
        assert!(rels
            .iter()
            .any(|r| r.ends_with("crates/machine/src/exec.rs")));
        assert!(rels
            .iter()
            .any(|r| r.ends_with("tests/parallel_determinism.rs")));
        assert!(
            !rels.iter().any(|r| r.contains("/vendor/")),
            "vendored third-party stand-ins must not be linted"
        );
    }
}
