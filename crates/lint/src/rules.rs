//! The nine deny-by-default rule families.
//!
//! * **L1** `safety-comment` — every `unsafe` keyword needs an adjacent
//!   `// SAFETY:` (or `/// # Safety` doc section) stating the invariant
//!   being relied on.
//! * **L2** `unsafe-allowlist` — `unsafe` may only appear in the small
//!   allowlisted set of files that *are* the unsafe boundary (the exec
//!   layer's job pointer, the checked `Partition`, the guard-exchange
//!   fill). Anywhere else it is a finding, no matter how well commented.
//! * **L3** `determinism` — result-bearing crates must not reach for
//!   constructs that can perturb bit-identity or smuggle wall-clock /
//!   scheduling dependence into results: `HashMap`/`HashSet` (iteration
//!   order), `Instant` (wall clock), `Mutex`/`Condvar`/`RwLock` and
//!   `thread::spawn`/`thread::scope` (ad-hoc threading outside the
//!   deterministic exec layer), and `Ordering::Relaxed` (unsynchronised
//!   result flow). The exec layer itself, test code, and the bench/lint
//!   crates are out of scope — they are not result-bearing.
//! * **L4** `allow-hygiene` — module-scope `#![allow(...)]` is rejected
//!   outright; per-item `#[allow(...)]` must carry a justification
//!   comment (same line or immediately above the attribute stack).
//! * **L5** `float-cast` — result-bearing code must not write a
//!   float→int `as` cast in expression position (`(6.0 * n) as usize`,
//!   `x.ceil() as usize`, `1.5 as i32`): NaN truncates to zero and
//!   out-of-range values saturate, both silently. The sanctioned form —
//!   bind the float to a named local and pin its domain with a
//!   `debug_assert!` before converting (see `gap_slots` in
//!   `crates/particles/src/gpma.rs`) — is invisible to the rule by
//!   design: the named local *is* the escape hatch.
//! * **L6** `must-use-stats` — public structs named `*Stats` /
//!   `*Counters` must carry `#[must_use]`: they are the receipts of the
//!   emulated cost model, and dropping one on the floor silently
//!   discards work that was charged for.
//! * **L7** `raw-sync` — raw `std` synchronization primitives
//!   (`std::sync::atomic`, `Condvar`, thread parking) are confined to
//!   the sync facade (`machine/sync.rs`), the checked claim bitmap
//!   (`machine/partition.rs`) and the model checker's scheduler
//!   (`check/sched.rs`). Everywhere else synchronization must go
//!   through the `SyncPrims` facade, so the model checker actually
//!   exercises the protocol production runs — a raw primitive on the
//!   side is a blind spot the checker cannot see.
//! * **L8** `ordering-justify` — every explicit memory-ordering
//!   selection (`Ordering::...`) in the files that are allowed atomics
//!   must carry an adjacent comment (same line or immediately above,
//!   L1-style adjacency) justifying why that ordering suffices. Test
//!   regions are *not* exempt: a copy-pasted `Relaxed` in a test is how
//!   unjustified orderings leak back into production code.
//! * **L9** `vector-width` — lane widths have exactly one source of
//!   truth: `crates/machine/src/vect.rs`. A lane-width-named constant
//!   (`W`, `VLANES`, `LANES`, `LANE_WIDTH`, `SIMD_WIDTH`) initialised
//!   from a *numeric literal* anywhere else drifts silently when the
//!   emulated VPU width changes — derive it (`= crate::vect::W`)
//!   instead, which the rule deliberately cannot see. Raw
//!   `std::arch`/`core::arch` reaches outside the vect module are
//!   denied for the same reason: platform intrinsics hard-code a width
//!   the portable wrappers abstract. Test regions are *not* exempt — a
//!   hard-coded `8` in a test is exactly how width assumptions fossilise.
//!
//! All rules run on the lexed token stream from [`crate::lexer`], so
//! string literals and comments can never produce false positives, and
//! comment *adjacency* (which L1 and L4 are about) is exact.

use crate::lexer::{lex, TokKind, Token};

/// One rule violation, reported as `file:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// Stable rule id (`L1-safety-comment`, ...).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// Files allowed to contain `unsafe` at all (rule L2). This is the
/// workspace's entire unsafe surface; growing it is a reviewed decision,
/// not a local convenience.
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/machine/src/exec.rs",
    "crates/machine/src/partition.rs",
    "crates/grid/src/fields.rs",
];

/// The deterministic execution layer: the one place thread primitives
/// and relaxed atomics are legitimate (the worker pool's parking, the
/// steal cursor, and the sync facade that wraps the primitives), so
/// rule L3 does not apply inside it.
const EXEC_LAYER: &[&str] = &[
    "crates/machine/src/exec.rs",
    "crates/machine/src/partition.rs",
    "crates/machine/src/sync.rs",
];

/// Crates whose outputs feed simulation results and therefore fall
/// under the bit-identity determinism contract (rule L3). The bench and
/// lint crates are deliberately absent: wall-clock reads and ad-hoc
/// threads are their job.
const RESULT_BEARING_PREFIXES: &[&str] = &[
    "src/",
    "crates/machine/",
    "crates/grid/",
    "crates/particles/",
    "crates/deposit/",
    "crates/solver/",
    "crates/push/",
    "crates/core/",
];

/// Files allowed to touch raw `std` synchronization primitives (rule
/// L7): the production sync facade, the exec layer's debug claim
/// bitmap, and the model checker's scheduler — which *implements* the
/// instrumented shims and must use real primitives to do so. Everywhere
/// else, synchronization goes through the `SyncPrims` facade so the
/// model checker sees it.
const RAW_SYNC_ALLOWLIST: &[&str] = &[
    "crates/machine/src/sync.rs",
    "crates/machine/src/partition.rs",
    "crates/check/src/sched.rs",
];

/// Files under the ordering-justification contract (rule L8): exactly
/// the first-party files that use atomics at all. Every `Ordering::`
/// selection there needs an adjacent justification comment.
const ORDERING_JUSTIFY_FILES: &[&str] = &[
    "crates/machine/src/sync.rs",
    "crates/machine/src/exec.rs",
    "crates/machine/src/partition.rs",
];

/// Thread-parking identifiers denied by rule L7 when path- or
/// method-qualified (`thread::park`, `handle.unpark()`).
const PARK_FNS: &[&str] = &["park", "park_timeout", "unpark"];

/// The one file allowed to define lane-width literals and touch
/// `std::arch`/`core::arch` (rule L9): the portable lane-pack module
/// that *is* the workspace's single source of vector width.
const VECT_MODULE: &[&str] = &["crates/machine/src/vect.rs"];

/// Constant names that denote a vector lane width (rule L9). Defining
/// one of these from a numeric literal outside the vect module forks
/// the width; deriving it (`= crate::vect::W`) is the sanctioned form.
const LANE_WIDTH_NAMES: &[&str] = &["W", "VLANES", "LANES", "LANE_WIDTH", "SIMD_WIDTH"];

/// Type names reserved for the vect module's lane-pack vocabulary (rule
/// L9): defining a shadow `Lanes`/`LaneMask` elsewhere forks the masked
/// load/store/FMA contract the conformance suite pins on the real ones.
const LANE_TYPE_NAMES: &[&str] = &["Lanes", "LaneMask"];

/// A justification comment for rule L8 must actually talk about memory
/// ordering — any of these (case-insensitive) counts.
const ORDERING_WORDS: &[&str] = &[
    "ordering", "relaxed", "acquire", "release", "seqcst", "acqrel",
];

/// Integer target types of an `as` cast (rule L5).
const INT_TYPES: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

/// Methods whose receiver/result is unambiguously floating-point, so a
/// call directly cast to an integer is a float→int crossing (rule L5).
/// Deliberately excludes `abs`/`min`/`max`/`clamp`, which are just as
/// common on integers.
const FLOAT_FNS: &[&str] = &[
    "floor",
    "ceil",
    "round",
    "trunc",
    "fract",
    "sqrt",
    "cbrt",
    "powf",
    "powi",
    "exp",
    "exp2",
    "ln",
    "log2",
    "log10",
    "hypot",
    "recip",
    "mul_add",
    "to_radians",
    "to_degrees",
];

/// Where a file sits in the workspace's trust taxonomy; drives which
/// rules apply.
#[derive(Debug, Clone, Copy)]
pub struct FileScope {
    /// May contain `unsafe` (rule L2 allowlist).
    pub unsafe_allowed: bool,
    /// Part of the exec layer (rule L3 exempt).
    pub exec_layer: bool,
    /// Feeds simulation results (rule L3 applies).
    pub result_bearing: bool,
    /// Integration test / example / bench harness file.
    pub test_file: bool,
    /// May touch raw `std` sync primitives (rule L7 allowlist).
    pub raw_sync_allowed: bool,
    /// Under the ordering-justification contract (rule L8).
    pub ordering_justify: bool,
    /// May define lane-width literals and use `std::arch`/`core::arch`
    /// (rule L9 allowlist — the vect module itself).
    pub lane_source: bool,
}

impl FileScope {
    /// Classifies a workspace-relative path (`/`-separated).
    pub fn classify(rel: &str) -> FileScope {
        FileScope {
            unsafe_allowed: UNSAFE_ALLOWLIST.contains(&rel),
            exec_layer: EXEC_LAYER.contains(&rel),
            result_bearing: RESULT_BEARING_PREFIXES.iter().any(|p| rel.starts_with(p)),
            test_file: rel.starts_with("tests/")
                || rel.starts_with("examples/")
                || rel.contains("/tests/")
                || rel.contains("/examples/")
                || rel.contains("/benches/"),
            raw_sync_allowed: RAW_SYNC_ALLOWLIST.contains(&rel),
            ordering_justify: ORDERING_JUSTIFY_FILES.contains(&rel),
            lane_source: VECT_MODULE.contains(&rel),
        }
    }
}

/// Lints one file; `rel` is its workspace-relative path.
pub fn lint_file(rel: &str, src: &str) -> Vec<Finding> {
    let scope = FileScope::classify(rel);
    let toks = lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let regions = test_regions(&toks);
    // Non-comment tokens, for adjacency patterns like `Ordering::Relaxed`.
    let code: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .map(|(i, _)| i)
        .collect();

    let mut out = Vec::new();
    let mut push = |line: usize, rule: &'static str, message: String| {
        out.push(Finding {
            file: rel.to_string(),
            line,
            rule,
            message,
        });
    };

    for (ci, &ti) in code.iter().enumerate() {
        let t = &toks[ti];
        let nxt = |k: usize| code.get(ci + k).map(|&j| &toks[j]);
        let punct = |tok: Option<&Token>, c: &str| {
            tok.is_some_and(|t| t.kind == TokKind::Punct && t.text == c)
        };
        let ident = |tok: Option<&Token>, names: &[&str]| {
            tok.is_some_and(|t| t.kind == TokKind::Ident && names.contains(&t.text.as_str()))
        };

        // L1 + L2: every `unsafe` keyword in the file.
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            if !scope.unsafe_allowed {
                push(
                    t.line,
                    "L2-unsafe-allowlist",
                    format!(
                        "`unsafe` is confined to the audited boundary files \
                         ({}); refactor through their checked APIs instead",
                        UNSAFE_ALLOWLIST.join(", ")
                    ),
                );
            }
            if !has_safety_comment(&toks, ti, &lines) {
                push(
                    t.line,
                    "L1-safety-comment",
                    "`unsafe` without an adjacent `// SAFETY:` comment \
                     stating the invariant it relies on"
                        .to_string(),
                );
            }
        }

        // L3: determinism lints in result-bearing, non-exec, non-test code.
        if scope.result_bearing
            && !scope.exec_layer
            && !scope.test_file
            && !in_test_region(&regions, ti)
            && t.kind == TokKind::Ident
        {
            match t.text.as_str() {
                "HashMap" | "HashSet" => push(
                    t.line,
                    "L3-determinism",
                    format!(
                        "{} has nondeterministic iteration order; use a Vec, \
                         sorted keys, or BTreeMap/BTreeSet",
                        t.text
                    ),
                ),
                "Instant" => push(
                    t.line,
                    "L3-determinism",
                    "wall-clock reads (`Instant`) must not influence \
                     result-bearing code; timing belongs in crates/bench"
                        .to_string(),
                ),
                "Mutex" | "Condvar" | "RwLock" => push(
                    t.line,
                    "L3-determinism",
                    format!(
                        "{} introduces scheduling-dependent behaviour; go \
                         through the deterministic exec layer instead",
                        t.text
                    ),
                ),
                "thread"
                    if punct(nxt(1), ":")
                        && punct(nxt(2), ":")
                        && ident(nxt(3), &["spawn", "scope"]) =>
                {
                    push(
                        t.line,
                        "L3-determinism",
                        "ad-hoc thread spawning bypasses the deterministic \
                         worker pool; use machine::exec"
                            .to_string(),
                    )
                }
                "Ordering"
                    if punct(nxt(1), ":") && punct(nxt(2), ":") && ident(nxt(3), &["Relaxed"]) =>
                {
                    push(
                        t.line,
                        "L3-determinism",
                        "`Ordering::Relaxed` on a result-carrying atomic \
                         cannot order result flow; only the exec layer's \
                         steal cursor and claim bitmap may use it"
                            .to_string(),
                    )
                }
                _ => {}
            }
        }

        // L7: raw std sync primitives outside the facade allowlist.
        // Test harness files and embedded test regions are exempt (the
        // production protocol is what the checker must see through the
        // facade; tests may scaffold freely).
        if !scope.raw_sync_allowed
            && !scope.test_file
            && !in_test_region(&regions, ti)
            && t.kind == TokKind::Ident
        {
            let prev_punct = |c: &str| {
                ci.checked_sub(1).is_some_and(|p| {
                    toks[code[p]].kind == TokKind::Punct && toks[code[p]].text == c
                })
            };
            let raw = if t.text == "Condvar" {
                Some("`Condvar`")
            } else if t.text == "sync"
                && punct(nxt(1), ":")
                && punct(nxt(2), ":")
                && ident(nxt(3), &["atomic"])
            {
                Some("`sync::atomic`")
            } else if PARK_FNS.contains(&t.text.as_str()) && (prev_punct(":") || prev_punct(".")) {
                Some("thread parking")
            } else {
                None
            };
            if let Some(what) = raw {
                push(
                    t.line,
                    "L7-raw-sync",
                    format!(
                        "raw {what} outside the sync facade ({}); go through \
                         machine::sync::SyncPrims so the model checker can \
                         see this synchronization",
                        RAW_SYNC_ALLOWLIST.join(", ")
                    ),
                );
            }
        }

        // L8: every explicit `Ordering::` selection in the atomic-using
        // files needs an adjacent justification comment. Test regions
        // are deliberately NOT exempt.
        if scope.ordering_justify
            && t.kind == TokKind::Ident
            && t.text == "Ordering"
            && punct(nxt(1), ":")
            && punct(nxt(2), ":")
            && !has_ordering_comment(&toks, ti, &lines)
        {
            push(
                t.line,
                "L8-ordering-justify",
                "`Ordering::` selection without an adjacent comment (same \
                 line or immediately above) justifying why this memory \
                 ordering suffices"
                    .to_string(),
            );
        }

        // L5: float→int `as` casts in expression position, in
        // result-bearing, non-exec, non-test code.
        if scope.result_bearing
            && !scope.exec_layer
            && !scope.test_file
            && !in_test_region(&regions, ti)
            && t.kind == TokKind::Ident
            && t.text == "as"
            && ident(nxt(1), INT_TYPES)
            && cast_source_is_float(&toks, &code, ci)
        {
            push(
                t.line,
                "L5-float-cast",
                "float→int `as` cast in expression position: NaN \
                 truncates to 0 and out-of-range saturates, silently; \
                 bind to a named local and pin its domain with a \
                 `debug_assert!` first (see `gap_slots` in \
                 crates/particles/src/gpma.rs)"
                    .to_string(),
            );
        }

        // L6: public stats/counters structs must be #[must_use].
        if !scope.test_file
            && !in_test_region(&regions, ti)
            && t.kind == TokKind::Ident
            && t.text == "pub"
            && ident(nxt(1), &["struct"])
        {
            if let Some(name_tok) = nxt(2) {
                let name = name_tok.text.clone();
                if (name.ends_with("Stats") || name.ends_with("Counters"))
                    && !attr_stack_has_must_use(&toks, &code, ci)
                {
                    push(
                        name_tok.line,
                        "L6-must-use-stats",
                        format!(
                            "public stats struct `{name}` must carry \
                             `#[must_use]`: dropping it silently discards \
                             counters the cost model charged for"
                        ),
                    );
                }
            }
        }

        // L4: allow-attribute hygiene (test harness files exempt).
        if t.kind == TokKind::Punct && t.text == "#" && !scope.test_file {
            if punct(nxt(1), "!") && punct(nxt(2), "[") && ident(nxt(3), &["allow"]) {
                push(
                    t.line,
                    "L4-allow-hygiene",
                    "blanket module-scope `#![allow(...)]` hides every \
                     future violation; use per-item allows with a \
                     justification comment"
                        .to_string(),
                );
            } else if punct(nxt(1), "[")
                && ident(nxt(2), &["allow"])
                && !allow_is_justified(&toks, ti, &lines)
            {
                push(
                    t.line,
                    "L4-allow-hygiene",
                    "`#[allow(...)]` without a justification comment (same \
                     line or immediately above the attribute stack)"
                        .to_string(),
                );
            }
        }

        // L9: vector-width hygiene. Lane widths have one source of
        // truth (the vect module); test regions are deliberately NOT
        // exempt — a hard-coded width in a test fossilises the
        // assumption the portable wrappers exist to prevent.
        if !scope.lane_source && t.kind == TokKind::Ident {
            if t.text == "const"
                && nxt(1).is_some_and(|n| {
                    n.kind == TokKind::Ident && LANE_WIDTH_NAMES.contains(&n.text.as_str())
                })
            {
                // Scan past the type annotation to the initialiser; a
                // numeric-literal RHS is the fork L9 denies, while a
                // derived RHS (`= crate::vect::W`) is invisible to the
                // rule by design. Generic `const W: usize` parameters
                // terminate at `>`/`,` and carry no `=` Num either.
                let mut k = 2;
                while k < 12 {
                    match nxt(k) {
                        Some(p) if p.kind == TokKind::Punct && p.text == "=" => break,
                        Some(p)
                            if p.kind == TokKind::Punct
                                && matches!(p.text.as_str(), ";" | "}" | ">" | ",") =>
                        {
                            k = 12;
                        }
                        Some(_) => k += 1,
                        None => k = 12,
                    }
                }
                if k < 12
                    && punct(nxt(k), "=")
                    && nxt(k + 1).is_some_and(|n| n.kind == TokKind::Num)
                {
                    push(
                        t.line,
                        "L9-vector-width",
                        format!(
                            "lane-width constant `{}` hard-codes a numeric \
                             width; derive it from the vect module \
                             (`crate::vect::W` / `mpic_machine::vect::W`) so \
                             the workspace has one lane-width source of truth",
                            nxt(1).map_or(String::new(), |n| n.text.clone())
                        ),
                    );
                }
            }
            if (t.text == "std" || t.text == "core")
                && punct(nxt(1), ":")
                && punct(nxt(2), ":")
                && ident(nxt(3), &["arch"])
            {
                push(
                    t.line,
                    "L9-vector-width",
                    format!(
                        "raw `{}::arch` intrinsics outside the vect module \
                         ({}) hard-code a platform vector width; use the \
                         portable lane-pack wrappers instead",
                        t.text,
                        VECT_MODULE.join(", ")
                    ),
                );
            }
            if matches!(t.text.as_str(), "struct" | "enum" | "type")
                && ident(nxt(1), LANE_TYPE_NAMES)
            {
                push(
                    t.line,
                    "L9-vector-width",
                    format!(
                        "defining `{}` outside the vect module ({}) shadows \
                         the lane-pack type whose masked-tail contract the \
                         conformance suite pins; import it from \
                         `mpic_machine` instead",
                        nxt(1).map_or(String::new(), |n| n.text.clone()),
                        VECT_MODULE.join(", ")
                    ),
                );
            }
        }
    }
    out
}

fn mentions_safety(text: &str) -> bool {
    text.contains("SAFETY") || text.contains("Safety")
}

/// L1 adjacency: a comment mentioning SAFETY on the same line, or an
/// unbroken run of comment/attribute/blank lines directly above that
/// contains one. The scan stops at the first code line — a SAFETY
/// comment elsewhere in the function does not cover this site.
fn has_safety_comment(toks: &[Token], ti: usize, lines: &[&str]) -> bool {
    let line = toks[ti].line;
    if toks
        .iter()
        .any(|t| t.is_comment() && t.line == line && mentions_safety(&t.text))
    {
        return true;
    }
    for ln in (1..line).rev().take(40) {
        let s = lines.get(ln - 1).map_or("", |l| l.trim_start());
        if s.is_empty() || s.starts_with("#[") || s.starts_with("#!") {
            continue;
        }
        if s.starts_with("//") || s.starts_with("/*") || s.starts_with('*') {
            if mentions_safety(s) {
                return true;
            }
            continue;
        }
        return false;
    }
    false
}

fn mentions_ordering(text: &str) -> bool {
    let lower = text.to_lowercase();
    ORDERING_WORDS.iter().any(|w| lower.contains(w))
}

/// L8 adjacency: a comment mentioning memory-ordering vocabulary on the
/// same line as the `Ordering::` selection, or in the unbroken run of
/// comment/attribute/blank lines directly above it. Same discipline as
/// the L1 SAFETY scan: a justification elsewhere in the function does
/// not cover this site.
fn has_ordering_comment(toks: &[Token], ti: usize, lines: &[&str]) -> bool {
    let line = toks[ti].line;
    if toks
        .iter()
        .any(|t| t.is_comment() && t.line == line && mentions_ordering(&t.text))
    {
        return true;
    }
    for ln in (1..line).rev().take(40) {
        let s = lines.get(ln - 1).map_or("", |l| l.trim_start());
        if s.is_empty() || s.starts_with("#[") || s.starts_with("#!") {
            continue;
        }
        if s.starts_with("//") || s.starts_with("/*") || s.starts_with('*') {
            if mentions_ordering(s) {
                return true;
            }
            continue;
        }
        return false;
    }
    false
}

/// L4 justification: any comment on the attribute's line, or the first
/// non-blank, non-attribute line above it is a comment.
fn allow_is_justified(toks: &[Token], ti: usize, lines: &[&str]) -> bool {
    let line = toks[ti].line;
    if toks.iter().any(|t| t.is_comment() && t.line == line) {
        return true;
    }
    for ln in (1..line).rev().take(40) {
        let s = lines.get(ln - 1).map_or("", |l| l.trim_start());
        if s.is_empty() || s.starts_with("#[") || s.starts_with("#!") {
            continue;
        }
        return s.starts_with("//") || s.starts_with("/*") || s.starts_with('*');
    }
    false
}

/// A numeric literal that is floating-point: has a fractional part, an
/// `f32`/`f64` suffix, or a decimal exponent (`1e9`; hex/binary/octal
/// digits can contain `e` but carry a base prefix).
fn is_float_literal(text: &str) -> bool {
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || (!text.starts_with("0x")
            && !text.starts_with("0b")
            && !text.starts_with("0o")
            && (text.contains('e') || text.contains('E')))
}

/// L5 source detection for the `as` at code-position `ci`: is the
/// expression being cast evidently floating-point? True for a float
/// literal directly cast, a parenthesized expression containing a float
/// literal or an `f32`/`f64` ident, and a `.float_method(...)` call
/// directly cast. A named local cast (`slots as usize`) is deliberately
/// invisible — that is the sanctioned, debug_assert-pinned form.
fn cast_source_is_float(toks: &[Token], code: &[usize], ci: usize) -> bool {
    let tok = |k: usize| &toks[code[k]];
    let Some(pi) = ci.checked_sub(1) else {
        return false;
    };
    let prev = tok(pi);
    if prev.kind == TokKind::Num {
        return is_float_literal(&prev.text);
    }
    if prev.kind != TokKind::Punct || prev.text != ")" {
        return false;
    }
    // Scan back to the matching `(`.
    let mut depth = 1usize;
    let mut j = pi;
    while depth > 0 {
        let Some(k) = j.checked_sub(1) else {
            return false;
        };
        j = k;
        let t = tok(j);
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                ")" => depth += 1,
                "(" => depth -= 1,
                _ => {}
            }
        }
    }
    // Float evidence inside the parentheses.
    for k in j + 1..pi {
        let t = tok(k);
        let float_num = t.kind == TokKind::Num && is_float_literal(&t.text);
        let float_ty = t.kind == TokKind::Ident && (t.text == "f32" || t.text == "f64");
        if float_num || float_ty {
            return true;
        }
    }
    // `.float_method(...)` directly cast.
    if let (Some(m), Some(d)) = (j.checked_sub(1), j.checked_sub(2)) {
        let method = tok(m);
        let dot = tok(d);
        if method.kind == TokKind::Ident
            && FLOAT_FNS.contains(&method.text.as_str())
            && dot.kind == TokKind::Punct
            && dot.text == "."
        {
            return true;
        }
    }
    false
}

/// L6: walks the attribute stack immediately above the `pub` at
/// code-position `ci`, looking for a `must_use` identifier in any
/// `#[...]` group (doc comments are not code tokens and are skipped
/// implicitly).
fn attr_stack_has_must_use(toks: &[Token], code: &[usize], ci: usize) -> bool {
    let tok = |k: usize| &toks[code[k]];
    let mut j = ci;
    loop {
        let Some(close) = j.checked_sub(1) else {
            return false;
        };
        let t = tok(close);
        if t.kind != TokKind::Punct || t.text != "]" {
            return false;
        }
        let mut depth = 1usize;
        let mut k = close;
        let mut found = false;
        while depth > 0 {
            let Some(p) = k.checked_sub(1) else {
                return false;
            };
            k = p;
            let t = tok(k);
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "]" => depth += 1,
                    "[" => depth -= 1,
                    _ => {}
                }
            } else if t.kind == TokKind::Ident && t.text == "must_use" {
                found = true;
            }
        }
        if found {
            return true;
        }
        // Step over the `#` introducing this attribute and keep walking
        // up the stack.
        let Some(hash) = k.checked_sub(1) else {
            return false;
        };
        if tok(hash).kind != TokKind::Punct || tok(hash).text != "#" {
            return false;
        }
        j = hash;
    }
}

/// Token-index ranges (inclusive) covered by `#[test]` functions and
/// `#[cfg(test)]` items, so rule L3 can exempt unit-test code embedded
/// in src files.
fn test_regions(toks: &[Token]) -> Vec<(usize, usize)> {
    let code: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .map(|(i, _)| i)
        .collect();
    let is_punct = |k: usize, c: &str| {
        code.get(k)
            .is_some_and(|&j| toks[j].kind == TokKind::Punct && toks[j].text == c)
    };
    let is_attr_start = |k: usize| is_punct(k, "#") && is_punct(k + 1, "[");

    let mut regions = Vec::new();
    let mut ci = 0usize;
    while ci < code.len() {
        if !is_attr_start(ci) {
            ci += 1;
            continue;
        }
        let (idents, attr_end) = parse_attr(toks, &code, ci);
        if !is_test_attr(&idents) {
            ci = attr_end + 1;
            continue;
        }
        let start_orig = code[ci];
        // Skip the rest of the item's attribute stack.
        let mut k = attr_end + 1;
        while k < code.len() && is_attr_start(k) {
            let (_, e) = parse_attr(toks, &code, k);
            k = e + 1;
        }
        // Consume the item: through its brace-balanced body, or to the
        // terminating `;` for brace-free items (e.g. a cfg'd `use`).
        let mut depth = 0usize;
        let mut end_orig = code.last().copied().unwrap_or(start_orig);
        while k < code.len() {
            let tk = &toks[code[k]];
            if tk.kind == TokKind::Punct {
                match tk.text.as_str() {
                    "{" => depth += 1,
                    "}" if depth > 0 => {
                        depth -= 1;
                        if depth == 0 {
                            end_orig = code[k];
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        end_orig = code[k];
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        regions.push((start_orig, end_orig));
        ci = k + 1;
    }
    regions
}

/// Parses the attribute whose `#` sits at code-position `ci`; returns
/// the identifiers inside it and the code-position of its closing `]`.
fn parse_attr(toks: &[Token], code: &[usize], ci: usize) -> (Vec<String>, usize) {
    let mut idents = Vec::new();
    let mut depth = 0usize;
    let mut k = ci;
    while k < code.len() {
        let t = &toks[code[k]];
        if t.kind == TokKind::Punct && t.text == "[" {
            depth += 1;
        } else if t.kind == TokKind::Punct && t.text == "]" {
            depth -= 1;
            if depth == 0 {
                return (idents, k);
            }
        } else if t.kind == TokKind::Ident && depth > 0 {
            idents.push(t.text.clone());
        }
        k += 1;
    }
    (idents, code.len().saturating_sub(1))
}

/// `#[test]`, or a `#[cfg(...)]` that requires `test` (conservatively:
/// mentions `test`, does not mention `not`).
fn is_test_attr(idents: &[String]) -> bool {
    if idents.len() == 1 && idents[0] == "test" {
        return true;
    }
    idents.first().is_some_and(|f| f == "cfg")
        && idents.iter().any(|i| i == "test")
        && !idents.iter().any(|i| i == "not")
}

fn in_test_region(regions: &[(usize, usize)], ti: usize) -> bool {
    regions.iter().any(|&(s, e)| s <= ti && ti <= e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(rel: &str, src: &str) -> Vec<&'static str> {
        lint_file(rel, src).into_iter().map(|f| f.rule).collect()
    }

    const ALLOWED: &str = "crates/machine/src/exec.rs";
    const ORDINARY: &str = "crates/solver/src/maxwell.rs";

    // ---- L1 ----

    #[test]
    fn l1_undocumented_unsafe_is_a_finding() {
        let src = "fn f(p: *mut u8) { unsafe { *p = 1; } }\n";
        let fired = rules_fired(ALLOWED, src);
        assert!(fired.contains(&"L1-safety-comment"), "{fired:?}");
    }

    #[test]
    fn l1_safety_comment_above_satisfies() {
        let src = "fn f(p: *mut u8) {\n    // SAFETY: p is valid per caller contract.\n    unsafe { *p = 1; }\n}\n";
        assert!(rules_fired(ALLOWED, src).is_empty());
    }

    #[test]
    fn l1_trailing_same_line_safety_comment_satisfies() {
        let src = "fn f(p: *mut u8) {\n    unsafe { *p = 1; } // SAFETY: p valid.\n}\n";
        assert!(rules_fired(ALLOWED, src).is_empty());
    }

    #[test]
    fn l1_doc_safety_section_covers_unsafe_fn() {
        let src = "/// Does the thing.\n///\n/// # Safety\n///\n/// `p` must be valid.\n#[allow(unsafe_code)]\npub unsafe fn f(p: *mut u8) {\n    // SAFETY: caller contract, forwarded.\n    unsafe { *p = 1; }\n}\n";
        let fired = rules_fired(ALLOWED, src);
        assert!(!fired.contains(&"L1-safety-comment"), "{fired:?}");
    }

    #[test]
    fn l1_comment_does_not_leak_past_code_lines() {
        let src = "// SAFETY: this comment covers nothing below the let.\nfn f(p: *mut u8) {\n    let x = 1;\n    unsafe { *p = x; }\n}\n";
        let fired = rules_fired(ALLOWED, src);
        assert!(fired.contains(&"L1-safety-comment"), "{fired:?}");
    }

    // ---- L2 ----

    #[test]
    fn l2_unsafe_outside_allowlist_is_a_finding() {
        let src = "fn f(p: *mut u8) {\n    // SAFETY: well documented, still not allowed here.\n    unsafe { *p = 1; }\n}\n";
        let fired = rules_fired(ORDINARY, src);
        assert!(fired.contains(&"L2-unsafe-allowlist"), "{fired:?}");
    }

    #[test]
    fn l2_the_word_unsafe_in_strings_and_comments_is_ignored() {
        let src = "// unsafe is discussed here only.\nfn f() -> &'static str { \"unsafe\" }\n";
        assert!(rules_fired(ORDINARY, src).is_empty());
    }

    // ---- L3 ----

    #[test]
    fn l3_hash_collections_are_findings() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); let _ = m; }\n";
        let fired = rules_fired(ORDINARY, src);
        assert_eq!(fired.iter().filter(|r| **r == "L3-determinism").count(), 3);
    }

    #[test]
    fn l3_instant_and_locks_are_findings() {
        let src = "fn f() { let t = Instant::now(); let m = Mutex::new(0); let r = RwLock::new(0); let c = Condvar::new(); }\n";
        let fired = rules_fired(ORDINARY, src);
        assert_eq!(fired.iter().filter(|r| **r == "L3-determinism").count(), 4);
    }

    #[test]
    fn l3_thread_spawn_and_relaxed_ordering_are_findings() {
        let src =
            "fn f() { let h = thread::spawn(|| 1); let _ = x.fetch_add(1, Ordering::Relaxed); }\n";
        let fired = rules_fired(ORDINARY, src);
        assert_eq!(fired.iter().filter(|r| **r == "L3-determinism").count(), 2);
    }

    #[test]
    fn l3_other_orderings_and_thread_idents_are_fine() {
        let src = "fn f() { let _ = x.load(Ordering::Acquire); let t = thread::current(); }\n";
        assert!(rules_fired(ORDINARY, src).is_empty());
    }

    #[test]
    fn l3_does_not_apply_to_exec_layer_bench_or_test_files() {
        let src = "fn f() { let t = Instant::now(); let m = Mutex::new(0); }\n";
        assert!(rules_fired("crates/machine/src/exec.rs", src).is_empty());
        assert!(rules_fired("crates/bench/src/bin/probe_parallel.rs", src).is_empty());
        assert!(rules_fired("tests/parallel_determinism.rs", src).is_empty());
    }

    #[test]
    fn l3_exempts_cfg_test_modules_and_test_fns_in_src_files() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n    #[test]\n    fn t() { let s: HashSet<u32> = HashSet::new(); let _ = s; }\n}\n";
        assert!(rules_fired(ORDINARY, src).is_empty());
        let src2 =
            "#[test]\nfn t() { let i = Instant::now(); }\nfn real() { let i = Instant::now(); }\n";
        let fired = rules_fired(ORDINARY, src2);
        assert_eq!(fired.iter().filter(|r| **r == "L3-determinism").count(), 1);
    }

    #[test]
    fn l3_cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn real() { let i = Instant::now(); }\n";
        let fired = rules_fired(ORDINARY, src);
        assert!(fired.contains(&"L3-determinism"), "{fired:?}");
    }

    // ---- L4 ----

    #[test]
    fn l4_blanket_module_allow_is_a_finding() {
        let src = "#![allow(dead_code)]\nfn f() {}\n";
        let fired = rules_fired(ORDINARY, src);
        assert!(fired.contains(&"L4-allow-hygiene"), "{fired:?}");
    }

    #[test]
    fn l4_bare_item_allow_is_a_finding() {
        let src = "fn g() {}\n#[allow(dead_code)]\nfn f() {}\n";
        let fired = rules_fired(ORDINARY, src);
        assert!(fired.contains(&"L4-allow-hygiene"), "{fired:?}");
    }

    #[test]
    fn l4_justified_allows_pass() {
        let trailing = "#[allow(dead_code)] // kept for the ffi table layout\nfn f() {}\n";
        assert!(rules_fired(ORDINARY, trailing).is_empty());
        let above = "// The extra arm keeps the jump table dense.\n#[allow(dead_code)]\n#[allow(clippy::match_like_matches_macro)]\nfn f() {}\n";
        assert!(rules_fired(ORDINARY, above).is_empty());
    }

    #[test]
    fn l4_deny_attributes_are_not_findings() {
        let src = "// Inner deny is encouraged, not rejected.\n#![deny(unsafe_op_in_unsafe_fn)]\nfn f() {}\n";
        assert!(rules_fired(ORDINARY, src).is_empty());
    }

    #[test]
    fn l4_exempts_test_harness_files() {
        let src = "#![allow(dead_code)]\n#[allow(unused)]\nfn f() {}\n";
        assert!(rules_fired("tests/property_tests.rs", src).is_empty());
    }

    // ---- L5 ----

    #[test]
    fn l5_parenthesized_float_arithmetic_cast_is_a_finding() {
        let src = "fn f(n: f64, m: &mut M) { m.s_ops((6.0 * n) as usize); }\n";
        let fired = rules_fired(ORDINARY, src);
        assert!(fired.contains(&"L5-float-cast"), "{fired:?}");
    }

    #[test]
    fn l5_float_method_call_cast_is_a_finding() {
        let src = "fn f(x: f64) -> usize { x.ceil() as usize }\n";
        let fired = rules_fired(ORDINARY, src);
        assert!(fired.contains(&"L5-float-cast"), "{fired:?}");
        let src2 = "fn g(x: f64) -> i64 { (x * 0.5).floor() as i64 }\n";
        assert!(rules_fired(ORDINARY, src2).contains(&"L5-float-cast"));
    }

    #[test]
    fn l5_float_literal_cast_is_a_finding() {
        let src = "fn f() -> i32 { 1.5 as i32 }\n";
        assert!(rules_fired(ORDINARY, src).contains(&"L5-float-cast"));
    }

    #[test]
    fn l5_named_local_with_domain_pin_is_the_sanctioned_form() {
        let src = "fn gap(count: usize, ratio: f64) -> usize {\n    let slots = (count as f64 * ratio).ceil();\n    debug_assert!(slots.is_finite() && slots >= 0.0);\n    slots as usize\n}\n";
        assert!(rules_fired(ORDINARY, src).is_empty());
    }

    #[test]
    fn l5_integer_casts_are_fine() {
        let src = "fn f(a: u64, b: u64, c: [i64; 3]) -> usize {\n    let x = (a + b) as usize;\n    let y = c[0] as usize;\n    let z = a.count_ones() as usize;\n    let w = ((a as i64 - b as i64).rem_euclid(8)) as usize;\n    x + y + z + w\n}\n";
        assert!(rules_fired(ORDINARY, src).is_empty());
    }

    #[test]
    fn l5_does_not_apply_to_exec_layer_tests_or_bench() {
        let src = "fn f(x: f64) -> usize { x.ceil() as usize }\n";
        assert!(rules_fired("crates/machine/src/partition.rs", src).is_empty());
        assert!(rules_fired("tests/snapshot.rs", src).is_empty());
        assert!(rules_fired("crates/bench/src/bin/probe_parallel.rs", src).is_empty());
        let in_test =
            "#[cfg(test)]\nmod tests {\n    fn f(x: f64) -> usize { x.ceil() as usize }\n}\n";
        assert!(rules_fired(ORDINARY, in_test).is_empty());
    }

    // ---- L6 ----

    #[test]
    fn l6_stats_struct_without_must_use_is_a_finding() {
        let src = "/// Counts things.\n#[derive(Debug, Clone, Copy, Default)]\npub struct SweepStats {\n    pub n: usize,\n}\n";
        let fired = rules_fired(ORDINARY, src);
        assert!(fired.contains(&"L6-must-use-stats"), "{fired:?}");
        let counters = "#[derive(Debug)]\npub struct PhaseCounters { pub n: usize }\n";
        assert!(rules_fired(ORDINARY, counters).contains(&"L6-must-use-stats"));
    }

    #[test]
    fn l6_must_use_anywhere_in_the_attribute_stack_passes() {
        let above = "/// Doc.\n#[derive(Debug, Clone, Copy, Default)]\n#[must_use]\npub struct SweepStats { pub n: usize }\n";
        assert!(rules_fired(ORDINARY, above).is_empty());
        let below = "#[must_use]\n#[derive(Debug)]\npub struct PhaseCounters { pub n: usize }\n";
        assert!(rules_fired(ORDINARY, below).is_empty());
        let reasoned = "#[must_use = \"receipts\"]\npub struct SweepStats { pub n: usize }\n";
        assert!(rules_fired(ORDINARY, reasoned).is_empty());
    }

    #[test]
    fn l6_ignores_private_structs_other_names_and_test_files() {
        let private = "struct SweepStats { n: usize }\n";
        assert!(rules_fired(ORDINARY, private).is_empty());
        let other = "pub struct SweepReport { pub n: usize }\n";
        assert!(rules_fired(ORDINARY, other).is_empty());
        let test_file = "pub struct SweepStats { pub n: usize }\n";
        assert!(rules_fired("tests/helpers.rs", test_file).is_empty());
    }

    // ---- L7 ----

    #[test]
    fn l7_raw_atomics_outside_the_facade_are_findings() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\nfn f() {}\n";
        let fired = rules_fired("crates/core/src/recovery.rs", src);
        assert!(fired.contains(&"L7-raw-sync"), "{fired:?}");
    }

    #[test]
    fn l7_condvar_and_parking_are_findings() {
        let src = "fn f(c: &Condvar, h: &H) { std::thread::park(); h.unpark(); let _ = c; }\n";
        let fired = rules_fired(ORDINARY, src);
        assert_eq!(fired.iter().filter(|r| **r == "L7-raw-sync").count(), 3);
    }

    #[test]
    fn l7_allowlisted_files_may_use_raw_primitives() {
        let src =
            "use std::sync::atomic::{AtomicU64, Ordering};\nstruct S { cv: std::sync::Condvar }\n";
        for rel in [
            "crates/machine/src/sync.rs",
            "crates/machine/src/partition.rs",
            "crates/check/src/sched.rs",
        ] {
            let fired = rules_fired(rel, src);
            assert!(!fired.contains(&"L7-raw-sync"), "{rel}: {fired:?}");
        }
    }

    #[test]
    fn l7_primitive_names_in_strings_and_comments_are_ignored() {
        let src = "// Condvar and std::sync::atomic and park() discussed here.\nfn f() -> &'static str { \"std::sync::atomic::Condvar park unpark\" }\n";
        assert!(rules_fired("crates/lint/src/other.rs", src).is_empty());
    }

    #[test]
    fn l7_unqualified_park_identifiers_are_not_findings() {
        // A local fn named `park` (no `::`/`.` qualifier) is not thread
        // parking; only qualified calls are.
        let src = "fn park(x: u32) -> u32 { x }\nfn f() -> u32 { park(3) }\n";
        assert!(rules_fired("crates/lint/src/other.rs", src).is_empty());
    }

    #[test]
    fn l7_exempts_test_files_and_test_regions() {
        let src = "use std::sync::atomic::AtomicU64;\nfn f(c: &Condvar) { let _ = c; }\n";
        assert!(!rules_fired("tests/helpers.rs", src).contains(&"L7-raw-sync"));
        let in_test = "#[cfg(test)]\nmod tests {\n    use std::sync::atomic::AtomicU64;\n}\n";
        assert!(rules_fired("crates/check/src/lib.rs", in_test).is_empty());
    }

    // ---- L8 ----

    const SYNC_FACADE: &str = "crates/machine/src/sync.rs";

    #[test]
    fn l8_bare_ordering_selection_is_a_finding() {
        let src = "fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n";
        let fired = rules_fired(SYNC_FACADE, src);
        assert!(fired.contains(&"L8-ordering-justify"), "{fired:?}");
    }

    #[test]
    fn l8_justified_orderings_pass() {
        let same_line =
            "fn f(c: &AtomicU64) -> u64 {\n    c.load(Ordering::Relaxed) // Relaxed: debug counter, barrier orders reads\n}\n";
        assert!(rules_fired(SYNC_FACADE, same_line).is_empty());
        let above = "fn f(c: &AtomicU64) -> u64 {\n    // Acquire pairs with the Release store in `publish`.\n    c.load(Ordering::Acquire)\n}\n";
        assert!(rules_fired(SYNC_FACADE, above).is_empty());
    }

    #[test]
    fn l8_comment_must_talk_about_memory_ordering() {
        let src = "fn f(c: &AtomicU64) -> u64 {\n    // bump the counter\n    c.load(Ordering::Relaxed)\n}\n";
        let fired = rules_fired(SYNC_FACADE, src);
        assert!(fired.contains(&"L8-ordering-justify"), "{fired:?}");
    }

    #[test]
    fn l8_applies_inside_test_regions() {
        let in_test = "#[cfg(test)]\nmod tests {\n    fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n}\n";
        let fired = rules_fired("crates/machine/src/exec.rs", in_test);
        assert!(fired.contains(&"L8-ordering-justify"), "{fired:?}");
    }

    #[test]
    fn l8_only_covers_the_atomic_using_files() {
        // SeqCst so rule L3 stays quiet: this checks L8 scope alone.
        let src = "fn f(c: &AtomicU64) -> u64 { c.load(Ordering::SeqCst) }\n";
        assert!(!rules_fired("crates/core/src/recovery.rs", src).contains(&"L8-ordering-justify"));
    }

    // ---- scope classification ----

    #[test]
    fn l9_hardcoded_lane_width_const_is_a_finding() {
        for name in ["W", "VLANES", "LANES", "LANE_WIDTH", "SIMD_WIDTH"] {
            let src = format!("pub const {name}: usize = 8;\n");
            let fired = rules_fired(ORDINARY, &src);
            assert!(fired.contains(&"L9-vector-width"), "{name}: {fired:?}");
        }
    }

    #[test]
    fn l9_derived_lane_width_is_sanctioned() {
        let src = "pub const VLANES: usize = crate::vect::W;\n";
        assert!(rules_fired("crates/machine/src/vreg.rs", src).is_empty());
        assert!(rules_fired(ORDINARY, src).is_empty());
    }

    #[test]
    fn l9_vect_module_may_define_the_width() {
        let src = "pub const W: usize = 8;\n";
        assert!(rules_fired("crates/machine/src/vect.rs", src).is_empty());
    }

    #[test]
    fn l9_other_consts_and_generic_width_params_are_fine() {
        let src = "pub const MAX_NODES: usize = 64;\nfn f<const W: usize>() {}\n";
        assert!(rules_fired(ORDINARY, src).is_empty());
    }

    #[test]
    fn l9_arch_intrinsics_outside_vect_are_findings() {
        let src = "use std::arch::x86_64::_mm512_add_pd;\nfn f() { core::arch::asm!(\"nop\"); }\n";
        let fired = rules_fired(ORDINARY, src);
        assert_eq!(
            fired.iter().filter(|r| **r == "L9-vector-width").count(),
            2,
            "{fired:?}"
        );
        assert!(rules_fired("crates/machine/src/vect.rs", src).is_empty());
    }

    #[test]
    fn l9_shadow_lane_pack_types_outside_vect_are_findings() {
        for src in [
            "pub struct Lanes(pub [f64; 8]);\n",
            "enum LaneMask { Full, Prefix(usize) }\n",
            "type Lanes = [f64; 8];\n",
        ] {
            let fired = rules_fired(ORDINARY, src);
            assert!(fired.contains(&"L9-vector-width"), "{src}: {fired:?}");
        }
        let defining = "pub struct Lanes(pub [f64; W]);\npub struct LaneMask([bool; W]);\n";
        assert!(rules_fired("crates/machine/src/vect.rs", defining).is_empty());
    }

    #[test]
    fn l9_lane_pack_uses_and_lookalike_names_are_fine() {
        let src = "use mpic_machine::{LaneMask, Lanes};\n\
                   fn f(a: Lanes, m: LaneMask) -> Lanes { a.mul_acc_masked(a, a, m) }\n\
                   struct LanesFoo;\n";
        assert!(rules_fired(ORDINARY, src).is_empty());
    }

    #[test]
    fn l9_applies_inside_test_regions_too() {
        let src = "#[cfg(test)]\nmod tests {\n    const LANES: usize = 4;\n}\n";
        let fired = rules_fired(ORDINARY, src);
        assert!(fired.contains(&"L9-vector-width"), "{fired:?}");
    }

    #[test]
    fn l9_mentions_in_strings_and_comments_are_ignored() {
        let src = "// const W: usize = 8; and std::arch are discussed only.\nfn f() -> &'static str { \"const VLANES: usize = 8;\" }\n";
        assert!(rules_fired(ORDINARY, src).is_empty());
    }

    #[test]
    fn scope_taxonomy_matches_the_workspace_layout() {
        let exec = FileScope::classify("crates/machine/src/exec.rs");
        assert!(exec.unsafe_allowed && exec.exec_layer && exec.result_bearing);
        assert!(!exec.raw_sync_allowed && exec.ordering_justify);
        let part = FileScope::classify("crates/machine/src/partition.rs");
        assert!(part.unsafe_allowed && part.exec_layer);
        assert!(part.raw_sync_allowed && part.ordering_justify);
        let sync = FileScope::classify("crates/machine/src/sync.rs");
        assert!(sync.raw_sync_allowed && sync.ordering_justify && sync.exec_layer);
        assert!(!sync.unsafe_allowed);
        let sched = FileScope::classify("crates/check/src/sched.rs");
        assert!(sched.raw_sync_allowed && !sched.ordering_justify);
        assert!(!sched.result_bearing && !sched.unsafe_allowed);
        let fields = FileScope::classify("crates/grid/src/fields.rs");
        assert!(fields.unsafe_allowed && !fields.exec_layer && fields.result_bearing);
        let bench = FileScope::classify("crates/bench/src/bin/probe_parallel.rs");
        assert!(!bench.unsafe_allowed && !bench.result_bearing);
        let lint = FileScope::classify("crates/lint/src/rules.rs");
        assert!(!lint.unsafe_allowed && !lint.result_bearing);
        let test = FileScope::classify("tests/parallel_determinism.rs");
        assert!(test.test_file);
        let facade = FileScope::classify("src/lib.rs");
        assert!(facade.result_bearing && !facade.unsafe_allowed);
        let vect = FileScope::classify("crates/machine/src/vect.rs");
        assert!(vect.lane_source && vect.result_bearing && !vect.unsafe_allowed);
        assert!(!exec.lane_source && !facade.lane_source);
    }
}
