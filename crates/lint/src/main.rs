//! CLI entry point: scan the workspace, print findings, exit nonzero
//! if any. An optional first argument overrides the workspace root
//! (used by CI sandboxes that check out to a different path).

use mpic_lint::{lint_workspace, workspace_root};
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(workspace_root);
    let report = lint_workspace(&root);
    for f in &report.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    if report.findings.is_empty() {
        println!(
            "mpic-lint: {} files scanned, no findings",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "mpic-lint: {} finding(s) across {} files scanned",
            report.findings.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
