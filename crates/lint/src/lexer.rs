//! A minimal hand-rolled Rust lexer — just enough token structure for
//! the lint rules, with zero dependencies (the build environment has no
//! crates.io access, so `syn` is not an option).
//!
//! The lexer's one job is to make the rules immune to the classic
//! grep-lint false positives: identifiers inside string literals, inside
//! comments, or inside `r#"raw"#` fixture strings must never trigger a
//! rule, and comments must be *kept* (with their line numbers) because
//! rule L1 is precisely about comment adjacency.

/// Kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (text retained).
    Ident,
    /// Single punctuation character (text retained, one char).
    Punct,
    /// `// ...` comment, doc comments included (text retained).
    LineComment,
    /// `/* ... */` comment, nesting handled (text retained).
    BlockComment,
    /// String literal of any flavour (`"_"`, `b"_"`, `r#"_"#`); the
    /// contents are deliberately dropped so they can never match rules.
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal (ints, floats, suffixed; text retained so rules
    /// can tell a float literal from an integer one).
    Num,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// What was lexed.
    pub kind: TokKind,
    /// Token text (empty for `Str`/`Char`; see [`TokKind`]).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Token {
    fn new(kind: TokKind, text: impl Into<String>, line: usize) -> Self {
        Token {
            kind,
            text: text.into(),
            line,
        }
    }

    /// Whether this token is a comment of either flavour.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Lexes `src` into a token stream. Unterminated constructs consume the
/// rest of the input rather than erroring: the linter must degrade
/// gracefully on any file rustc itself accepts (or rejects — rustc is
/// the authority on well-formedness, not this lexer).
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && b.get(i + 1) == Some(&'/') {
            let start = i;
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            toks.push(Token::new(TokKind::LineComment, text, line));
        } else if c == '/' && b.get(i + 1) == Some(&'*') {
            let tline = line;
            let mut depth = 1usize;
            let mut text = String::new();
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    text.push(b[i]);
                    i += 1;
                }
            }
            toks.push(Token::new(TokKind::BlockComment, text, tline));
        } else if c == '"' {
            i = skip_plain_string(&b, i, &mut line);
            toks.push(Token::new(TokKind::Str, "", line));
        } else if c == '\'' {
            // Lifetime vs char literal: a quote followed by an escape or
            // by `X'` is a char; otherwise it is a lifetime.
            if b.get(i + 1) == Some(&'\\') {
                // Skip the opening quote, the backslash and the escaped
                // char itself (which may be `'`), then scan for the
                // close — covers `'\''` and multi-char `'\u{..}'`.
                i += 3;
                while i < b.len() && b[i] != '\'' {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i += 1;
                toks.push(Token::new(TokKind::Char, "", line));
            } else if b.get(i + 1).is_some() && b.get(i + 2) == Some(&'\'') {
                i += 3;
                toks.push(Token::new(TokKind::Char, "", line));
            } else {
                i += 1;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                toks.push(Token::new(TokKind::Lifetime, "", line));
            }
        } else if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            // One fractional part; `0..10` must not swallow the range.
            if i + 1 < b.len() && b[i] == '.' && b[i + 1].is_ascii_digit() {
                i += 1;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            }
            let text: String = b[start..i].iter().collect();
            toks.push(Token::new(TokKind::Num, text, line));
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            let raw_prefix = matches!(text.as_str(), "r" | "b" | "br");
            if raw_prefix && (b.get(i) == Some(&'"') || b.get(i) == Some(&'#')) {
                if text == "b" && b[i] == '"' {
                    // Byte string: same escape rules as a plain string.
                    i = skip_plain_string(&b, i, &mut line);
                    toks.push(Token::new(TokKind::Str, "", line));
                } else if let Some(end) = try_raw_string(&b, i, &mut line) {
                    i = end;
                    toks.push(Token::new(TokKind::Str, "", line));
                } else {
                    // `r#ident` raw identifier: `#` then the real name.
                    i += 1; // the '#'
                    let s2 = i;
                    while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    let name: String = b[s2..i].iter().collect();
                    toks.push(Token::new(TokKind::Ident, name, line));
                }
            } else {
                toks.push(Token::new(TokKind::Ident, text, line));
            }
        } else {
            toks.push(Token::new(TokKind::Punct, c.to_string(), line));
            i += 1;
        }
    }
    toks
}

/// Advances past a `"..."` literal starting at `b[i] == '"'`, handling
/// backslash escapes; returns the index one past the closing quote.
fn skip_plain_string(b: &[char], i: usize, line: &mut usize) -> usize {
    let mut i = i + 1;
    while i < b.len() {
        match b[i] {
            // An escape skips the next char — which may itself be a
            // newline (line-continuation), so keep the line count true.
            '\\' => {
                if b.get(i + 1) == Some(&'\n') {
                    *line += 1;
                }
                i += 2;
            }
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Tries to lex a raw string whose `#...#"` framing starts at `b[i]`
/// (which is `#` or `"`). Returns the end index, or `None` if this is
/// not a raw string (e.g. an `r#ident` raw identifier).
fn try_raw_string(b: &[char], i: usize, line: &mut usize) -> Option<usize> {
    let mut j = i;
    let mut hashes = 0usize;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    while j < b.len() {
        if b[j] == '"' && (0..hashes).all(|h| b.get(j + 1 + h) == Some(&'#')) {
            return Some(j + 1 + hashes);
        }
        if b[j] == '\n' {
            *line += 1;
        }
        j += 1;
    }
    Some(j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn identifiers_in_strings_are_not_tokens() {
        let src = r##"let s = "no unsafe here"; let r = r#"also no unsafe"#;"##;
        let ids = idents(src);
        assert!(!ids.iter().any(|t| t == "unsafe"), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn identifiers_in_comments_are_not_idents_but_text_is_kept() {
        let toks = lex("// mentions unsafe stuff\nlet x = 1; /* unsafe too */");
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "unsafe"));
        let comments: Vec<&Token> = toks.iter().filter(|t| t.is_comment()).collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].text.contains("unsafe"));
        assert_eq!(comments[0].line, 1);
        assert_eq!(comments[1].line, 2);
    }

    #[test]
    fn lifetimes_do_not_eat_following_code() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(ids, vec!["fn", "f", "x", "str", "str", "x"]);
        // The three lifetime marks lex as Lifetime tokens, not chars.
        let lifetimes = lex("fn f<'a>(x: &'a str) -> &'a str { x }")
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn char_literals_including_escapes() {
        let toks = lex(r"let c = 'x'; let q = '\''; let n = '\n';");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Char).count(),
            3,
            "{toks:?}"
        );
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let toks = lex("/* outer /* inner */ still outer */ let x = 1;");
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert!(toks[0].text.contains("still outer"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "x"));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let toks = lex("let a = \"one\ntwo\";\nlet unsafe_free = 1;");
        let id = toks
            .iter()
            .find(|t| t.kind == TokKind::Ident && t.text == "unsafe_free")
            .unwrap();
        assert_eq!(id.line, 3);
    }

    #[test]
    fn numeric_ranges_do_not_merge() {
        let toks = lex("for i in 0..10 { let f = 1.5e-3; }");
        let nums = toks.iter().filter(|t| t.kind == TokKind::Num).count();
        // 0, 10, 1.5e (exponent sign splits: 1.5e / - / 3).
        assert!(nums >= 3, "{toks:?}");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Punct && t.text == "."));
    }

    #[test]
    fn numeric_literal_text_distinguishes_floats() {
        let nums: Vec<String> = lex("let a = 10; let b = 1.5; let c = 2f64; let d = 0xFE;")
            .into_iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text)
            .collect();
        assert_eq!(nums, vec!["10", "1.5", "2f64", "0xFE"]);
    }

    #[test]
    fn raw_identifiers_keep_their_name() {
        let ids = idents("let r#fn = 1;");
        assert!(ids.contains(&"fn".to_string()));
    }
}
