//! Grid-to-particle field interpolation.

use mpic_deposit::{stage_particle, ShapeOrder};
use mpic_grid::{FieldArrays, GridGeometry};
use mpic_machine::{Machine, Phase, VAddr};

/// Per-step cost parameters of the gather sweep (charged coarsely: the
//  gather is not the paper's optimisation target, but its time must
/// appear in the Figure 1/8 breakdowns with a realistic magnitude).
#[derive(Debug, Clone, Copy)]
pub struct GatherCost {
    /// Vector ALU ops charged per 8 particles.
    pub v_ops_per_chunk: usize,
}

impl Default for GatherCost {
    fn default() -> Self {
        Self {
            v_ops_per_chunk: 30,
        }
    }
}

/// Interpolates `(E, B)` at one particle position using shape order
/// `order` (pure; used by the push loop and tests).
pub fn gather_fields(
    geom: &GridGeometry,
    order: ShapeOrder,
    fields: &FieldArrays,
    x: f64,
    y: f64,
    z: f64,
) -> ([f64; 3], [f64; 3]) {
    // Reuse the deposition staging to get cell + weights (charge/weight
    // arguments are irrelevant for the shape factors).
    let st = stage_particle(geom, order, 1.0, x, y, z, 0.0, 0.0, 0.0, 1.0);
    let s = order.support();
    let mut e = [0.0; 3];
    let mut b = [0.0; 3];
    for c in 0..s {
        for bb in 0..s {
            for a in 0..s {
                let w = st.sx[a] * st.sy[bb] * st.sz[c];
                let n = mpic_deposit::common::node_index(geom, &st, order, a, bb, c);
                e[0] += w * fields.ex.get(n[0], n[1], n[2]);
                e[1] += w * fields.ey.get(n[0], n[1], n[2]);
                e[2] += w * fields.ez.get(n[0], n[1], n[2]);
                b[0] += w * fields.bx.get(n[0], n[1], n[2]);
                b[1] += w * fields.by.get(n[0], n[1], n[2]);
                b[2] += w * fields.bz.get(n[0], n[1], n[2]);
            }
        }
    }
    (e, b)
}

/// Charges the gather cost of `n` particles touching `nodes` grid nodes
/// each across six field arrays whose bases are `field_addrs`; node
/// addresses are sampled from the particles' first node (`sample_idx`)
/// so cache behaviour tracks the real access stream.
pub fn charge_gather(
    m: &mut Machine,
    cost: GatherCost,
    n: usize,
    nodes: usize,
    field_addrs: &[VAddr; 6],
    sample_idx: &[usize],
) {
    m.in_phase(Phase::Gather, |m| {
        let mut p = 0;
        while p < n {
            let lanes = (n - p).min(8);
            m.v_ops(cost.v_ops_per_chunk);
            // Six field arrays x nodes gathers; use the sampled node
            // index of each lane, offset per node to cover the stencil.
            for node in 0..nodes.min(8) {
                for addr in field_addrs {
                    let idx: Vec<usize> = (p..p + lanes)
                        .map(|i| sample_idx[i.min(sample_idx.len() - 1)] + node)
                        .collect();
                    m.v_touch_gather(*addr, &idx);
                }
            }
            p += lanes;
        }
        m.record_flops((n * nodes * 6 * 2) as f64);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GridGeometry, FieldArrays) {
        let geom = GridGeometry::new([8, 8, 8], [0.0; 3], [1.0e-6; 3], 2);
        let fields = FieldArrays::new(&geom);
        (geom, fields)
    }

    #[test]
    fn uniform_field_gathers_exactly() {
        let (geom, mut fields) = setup();
        fields.ez.fill(5.0);
        fields.bx.fill(-2.0);
        for order in [ShapeOrder::Cic, ShapeOrder::Tsc, ShapeOrder::Qsp] {
            let (e, b) = gather_fields(&geom, order, &fields, 3.3e-6, 4.7e-6, 1.2e-6);
            assert!((e[2] - 5.0).abs() < 1e-12, "{order:?}");
            assert!((b[0] + 2.0).abs() < 1e-12, "{order:?}");
            assert!(e[0].abs() < 1e-12);
        }
    }

    #[test]
    fn linear_field_interpolated_linearly_cic() {
        let (geom, mut fields) = setup();
        // Ex = i (node x index) on the grid: at fractional position the
        // CIC gather must reproduce the linear profile.
        let [nx, ny, nz] = fields.ex.shape();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    fields.ex.set(i, j, k, i as f64);
                }
            }
        }
        let (e, _) = gather_fields(&geom, ShapeOrder::Cic, &fields, 2.25e-6, 0.0, 0.0);
        // x = 2.25 cells -> guarded node coordinate 4.25.
        assert!((e[0] - 4.25).abs() < 1e-12, "got {}", e[0]);
    }

    #[test]
    fn gather_cost_is_charged() {
        let (_, _) = setup();
        let mut m = Machine::new(mpic_machine::MachineConfig::lx2());
        let addrs = std::array::from_fn(|_| m.mem().alloc_f64(1000));
        charge_gather(&mut m, GatherCost::default(), 64, 8, &addrs, &[0; 64]);
        assert!(m.counters().cycles(Phase::Gather) > 0.0);
        assert_eq!(m.counters().cycles(Phase::Compute), 0.0);
    }
}
