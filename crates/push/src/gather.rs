//! Grid-to-particle field interpolation.

use mpic_deposit::{stage_particle, ShapeOrder};
use mpic_grid::{FieldArrays, GridGeometry};
use mpic_machine::{Machine, Phase, VAddr};

/// Per-step cost parameters of the gather sweep (charged coarsely: the
//  gather is not the paper's optimisation target, but its time must
/// appear in the Figure 1/8 breakdowns with a realistic magnitude).
#[derive(Debug, Clone, Copy)]
pub struct GatherCost {
    /// Vector ALU ops charged per 8 particles.
    pub v_ops_per_chunk: usize,
}

impl Default for GatherCost {
    fn default() -> Self {
        Self {
            v_ops_per_chunk: 30,
        }
    }
}

/// Interpolates `(E, B)` at one particle position using shape order
/// `order` (pure; used by the push loop and tests).
///
/// The innermost loop of the whole step runs here (particles x nodes x
/// six arrays), so the periodic node wrap is hoisted to one pass per
/// dimension and each node's linear index is computed once and shared by
/// all six field reads. Weight products keep the `sx * sy * sz`
/// association of the scalar reference.
pub fn gather_fields(
    geom: &GridGeometry,
    order: ShapeOrder,
    fields: &FieldArrays,
    x: f64,
    y: f64,
    z: f64,
) -> ([f64; 3], [f64; 3]) {
    let (e, b, _) = gather_fields_with_cell(geom, order, fields, x, y, z);
    (e, b)
}

/// [`gather_fields`] returning also the particle's wrapped physical
/// cell, which staging computes anyway — the push loop uses it for the
/// gather cost model's sampled address stream instead of locating the
/// particle a second time.
pub fn gather_fields_with_cell(
    geom: &GridGeometry,
    order: ShapeOrder,
    fields: &FieldArrays,
    x: f64,
    y: f64,
    z: f64,
) -> ([f64; 3], [f64; 3], [usize; 3]) {
    // Reuse the deposition staging to get cell + weights (charge/weight
    // arguments are irrelevant for the shape factors).
    let st = stage_particle(geom, order, 1.0, x, y, z, 0.0, 0.0, 0.0, 1.0);
    let s = order.support();
    // Guarded node coordinate per support offset, from the shared
    // deposit-side wrap (`node_coord`) so gather and deposit can never
    // disagree on node targets — computed 3*s times instead of 3*s^3.
    let mut ni = [[0usize; 4]; 3];
    for d in 0..3 {
        for (a, slot) in ni[d].iter_mut().enumerate().take(s) {
            *slot = mpic_deposit::common::node_coord(geom, order, d, st.cell[d], a);
        }
    }
    let dims = geom.dims_with_guard();
    let (ex, ey, ez) = (
        fields.ex.as_slice(),
        fields.ey.as_slice(),
        fields.ez.as_slice(),
    );
    let (bx, by, bz) = (
        fields.bx.as_slice(),
        fields.by.as_slice(),
        fields.bz.as_slice(),
    );
    let mut e = [0.0; 3];
    let mut b = [0.0; 3];
    for c in 0..s {
        for bb in 0..s {
            let row = (ni[2][c] * dims[1] + ni[1][bb]) * dims[0];
            for a in 0..s {
                let w = st.sx[a] * st.sy[bb] * st.sz[c];
                let li = row + ni[0][a];
                e[0] += w * ex[li];
                e[1] += w * ey[li];
                e[2] += w * ez[li];
                b[0] += w * bx[li];
                b[1] += w * by[li];
                b[2] += w * bz[li];
            }
        }
    }
    (e, b, st.cell)
}

/// Charges the gather cost of `n` particles touching `nodes` grid nodes
/// each across six field arrays whose bases are `field_addrs`; node
/// addresses are sampled from the particles' first node (`sample_idx`)
/// so cache behaviour tracks the real access stream.
pub fn charge_gather(
    m: &mut Machine,
    cost: GatherCost,
    n: usize,
    nodes: usize,
    field_addrs: &[VAddr; 6],
    sample_idx: &[usize],
) {
    m.in_phase(Phase::Gather, |m| {
        let mut p = 0;
        while p < n {
            let lanes = (n - p).min(8);
            m.v_ops(cost.v_ops_per_chunk);
            // Six field arrays x nodes gathers; use the sampled node
            // index of each lane, offset per node to cover the stencil.
            // The lane indices are identical across the six arrays, so
            // they are built once per node in a stack buffer.
            for node in 0..nodes.min(8) {
                let mut idx = [0usize; 8];
                for (l, i) in (p..p + lanes).enumerate() {
                    idx[l] = sample_idx[i.min(sample_idx.len() - 1)] + node;
                }
                for addr in field_addrs {
                    m.v_touch_gather(*addr, &idx[..lanes]);
                }
            }
            p += lanes;
        }
        m.record_flops((n * nodes * 6 * 2) as f64);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GridGeometry, FieldArrays) {
        let geom = GridGeometry::new([8, 8, 8], [0.0; 3], [1.0e-6; 3], 2);
        let fields = FieldArrays::new(&geom);
        (geom, fields)
    }

    #[test]
    fn uniform_field_gathers_exactly() {
        let (geom, mut fields) = setup();
        fields.ez.fill(5.0);
        fields.bx.fill(-2.0);
        for order in [ShapeOrder::Cic, ShapeOrder::Tsc, ShapeOrder::Qsp] {
            let (e, b) = gather_fields(&geom, order, &fields, 3.3e-6, 4.7e-6, 1.2e-6);
            assert!((e[2] - 5.0).abs() < 1e-12, "{order:?}");
            assert!((b[0] + 2.0).abs() < 1e-12, "{order:?}");
            assert!(e[0].abs() < 1e-12);
        }
    }

    #[test]
    fn linear_field_interpolated_linearly_cic() {
        let (geom, mut fields) = setup();
        // Ex = i (node x index) on the grid: at fractional position the
        // CIC gather must reproduce the linear profile.
        let [nx, ny, nz] = fields.ex.shape();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    fields.ex.set(i, j, k, i as f64);
                }
            }
        }
        let (e, _) = gather_fields(&geom, ShapeOrder::Cic, &fields, 2.25e-6, 0.0, 0.0);
        // x = 2.25 cells -> guarded node coordinate 4.25.
        assert!((e[0] - 4.25).abs() < 1e-12, "got {}", e[0]);
    }

    #[test]
    fn gather_cost_is_charged() {
        let (_, _) = setup();
        let mut m = Machine::new(mpic_machine::MachineConfig::lx2());
        let addrs = std::array::from_fn(|_| m.mem().alloc_f64(1000));
        charge_gather(&mut m, GatherCost::default(), 64, 8, &addrs, &[0; 64]);
        assert!(m.counters().cycles(Phase::Gather) > 0.0);
        assert_eq!(m.counters().cycles(Phase::Compute), 0.0);
    }
}
