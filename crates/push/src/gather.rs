//! Grid-to-particle field interpolation.

use mpic_deposit::{stage_particle, ShapeOrder};
use mpic_grid::{FieldArrays, GridGeometry};
use mpic_machine::{vect::W, LaneMask, Lanes, Machine, Phase, VAddr};

/// Per-step cost parameters of the gather sweep (charged coarsely: the
//  gather is not the paper's optimisation target, but its time must
/// appear in the Figure 1/8 breakdowns with a realistic magnitude).
#[derive(Debug, Clone, Copy)]
pub struct GatherCost {
    /// Vector ALU ops charged per 8 particles.
    pub v_ops_per_chunk: usize,
}

impl Default for GatherCost {
    fn default() -> Self {
        Self {
            v_ops_per_chunk: 30,
        }
    }
}

/// Interpolates `(E, B)` at one particle position using shape order
/// `order` (pure; used by the push loop and tests).
///
/// The innermost loop of the whole step runs here (particles x nodes x
/// six arrays), so the periodic node wrap is hoisted to one pass per
/// dimension and each node's linear index is computed once and shared by
/// all six field reads. Weight products keep the `sx * sy * sz`
/// association of the scalar reference.
pub fn gather_fields(
    geom: &GridGeometry,
    order: ShapeOrder,
    fields: &FieldArrays,
    x: f64,
    y: f64,
    z: f64,
) -> ([f64; 3], [f64; 3]) {
    let (e, b, _) = gather_fields_with_cell(geom, order, fields, x, y, z);
    (e, b)
}

/// [`gather_fields`] returning also the particle's wrapped physical
/// cell, which staging computes anyway — the push loop uses it for the
/// gather cost model's sampled address stream instead of locating the
/// particle a second time.
pub fn gather_fields_with_cell(
    geom: &GridGeometry,
    order: ShapeOrder,
    fields: &FieldArrays,
    x: f64,
    y: f64,
    z: f64,
) -> ([f64; 3], [f64; 3], [usize; 3]) {
    // Reuse the deposition staging to get cell + weights (charge/weight
    // arguments are irrelevant for the shape factors).
    let st = stage_particle(geom, order, 1.0, x, y, z, 0.0, 0.0, 0.0, 1.0);
    let s = order.support();
    // Guarded node coordinate per support offset, from the shared
    // deposit-side wrap (`node_coord`) so gather and deposit can never
    // disagree on node targets — computed 3*s times instead of 3*s^3.
    let mut ni = [[0usize; 4]; 3];
    for d in 0..3 {
        for (a, slot) in ni[d].iter_mut().enumerate().take(s) {
            *slot = mpic_deposit::common::node_coord(geom, order, d, st.cell[d], a);
        }
    }
    let dims = geom.dims_with_guard();
    let (ex, ey, ez) = (
        fields.ex.as_slice(),
        fields.ey.as_slice(),
        fields.ez.as_slice(),
    );
    let (bx, by, bz) = (
        fields.bx.as_slice(),
        fields.by.as_slice(),
        fields.bz.as_slice(),
    );
    let mut e = [0.0; 3];
    let mut b = [0.0; 3];
    for c in 0..s {
        for bb in 0..s {
            let row = (ni[2][c] * dims[1] + ni[1][bb]) * dims[0];
            for a in 0..s {
                let w = st.sx[a] * st.sy[bb] * st.sz[c];
                let li = row + ni[0][a];
                e[0] += w * ex[li];
                e[1] += w * ey[li];
                e[2] += w * ez[li];
                b[0] += w * bx[li];
                b[1] += w * by[li];
                b[2] += w * bz[li];
            }
        }
    }
    (e, b, st.cell)
}

/// Maximum stencil nodes of any shape order, sizing the stack-resident
/// node blocks of the batched gather. Derived from the deposit side's
/// [`mpic_deposit::shape::MAX_NODES_3D`] so a future higher-order shape
/// grows both block families together.
pub const MAX_STENCIL_NODES: usize = mpic_deposit::shape::MAX_NODES_3D;

/// One cell's cached stencil: the linear guarded-grid index of every
/// support node plus the six field-component values at those nodes, in
/// node order `(c*s + b)*s + a` with `a` fastest — the same traversal
/// [`gather_fields`] uses, so interpolating from the block is bit-exact.
///
/// Loaded once per same-cell particle run by the batched hot path and
/// reused for every particle of the run (gathers are read-only, so the
/// cached values cannot go stale within a run).
#[derive(Debug, Clone)]
pub struct NodeBlock {
    /// Stencil nodes currently loaded (`support^3`).
    pub nodes: usize,
    /// Linear guarded-grid index per node.
    pub idx: [usize; MAX_STENCIL_NODES],
    /// Field values per node: `[ex, ey, ez, bx, by, bz]`.
    pub vals: [[f64; MAX_STENCIL_NODES]; 6],
}

impl NodeBlock {
    /// An empty block (no nodes loaded).
    pub fn new() -> Self {
        Self {
            nodes: 0,
            idx: [0; MAX_STENCIL_NODES],
            vals: [[0.0; MAX_STENCIL_NODES]; 6],
        }
    }
}

impl Default for NodeBlock {
    fn default() -> Self {
        Self::new()
    }
}

/// Fills `block` with the stencil node indices and field values of the
/// given wrapped physical `cell` — the once-per-run half of the batched
/// gather. Pure (no cost charging); the node wrap comes from the shared
/// deposit-side [`mpic_deposit::common::node_coord`], so the block can
/// never disagree with the per-particle gather about node targets.
pub fn load_node_block(
    geom: &GridGeometry,
    order: ShapeOrder,
    fields: &FieldArrays,
    cell: [usize; 3],
    block: &mut NodeBlock,
) {
    let s = order.support();
    let mut ni = [[0usize; 4]; 3];
    for d in 0..3 {
        for (a, slot) in ni[d].iter_mut().enumerate().take(s) {
            *slot = mpic_deposit::common::node_coord(geom, order, d, cell[d], a);
        }
    }
    let dims = geom.dims_with_guard();
    let arrays = [
        fields.ex.as_slice(),
        fields.ey.as_slice(),
        fields.ez.as_slice(),
        fields.bx.as_slice(),
        fields.by.as_slice(),
        fields.bz.as_slice(),
    ];
    block.nodes = s * s * s;
    for c in 0..s {
        for b in 0..s {
            let row = (ni[2][c] * dims[1] + ni[1][b]) * dims[0];
            for a in 0..s {
                let nd = (c * s + b) * s + a;
                let li = row + ni[0][a];
                block.idx[nd] = li;
                for (comp, arr) in arrays.iter().enumerate() {
                    block.vals[comp][nd] = arr[li];
                }
            }
        }
    }
}

/// Interpolates `(E, B)` for one particle from a cached [`NodeBlock`],
/// given the particle's intra-cell offsets `frac`. Bit-identical to
/// [`gather_fields`] at the same position: the weights come from the
/// same [`ShapeOrder::weights`] evaluation, the node values are the same
/// loads, and the accumulation runs in the same `(c, b, a)` order with
/// the same `(sx * sy) * sz` association.
pub fn gather_from_block(
    order: ShapeOrder,
    block: &NodeBlock,
    frac: [f64; 3],
) -> ([f64; 3], [f64; 3]) {
    let s = order.support();
    let mut sx = [0.0; 4];
    let mut sy = [0.0; 4];
    let mut sz = [0.0; 4];
    order.weights(frac[0], &mut sx);
    order.weights(frac[1], &mut sy);
    order.weights(frac[2], &mut sz);
    let mut e = [0.0; 3];
    let mut b = [0.0; 3];
    for c in 0..s {
        for bb in 0..s {
            for a in 0..s {
                let w = sx[a] * sy[bb] * sz[c];
                let nd = (c * s + bb) * s + a;
                e[0] += w * block.vals[0][nd];
                e[1] += w * block.vals[1][nd];
                e[2] += w * block.vals[2][nd];
                b[0] += w * block.vals[3][nd];
                b[1] += w * block.vals[4][nd];
                b[2] += w * block.vals[5][nd];
            }
        }
    }
    (e, b)
}

/// Interpolates `(E, B)` for up to [`W`] particles at once from a cached
/// [`NodeBlock`] — the lane-parallel half of the SIMD gather
/// (`SimConfig::simd`). Each lane is one particle: the six accumulators
/// are per lane, the node loop runs in the same `(c, b, a)` order as
/// [`gather_from_block`], and each lane's weight keeps the
/// `(sx * sy) * sz` association, so every particle's result is
/// bit-identical to its own [`gather_from_block`] call (no cross-lane
/// arithmetic exists to regroup). `fracs.len()` selects the active lane
/// count; callers chunk runs into full-width packs and finish ragged
/// tails with the scalar routine.
///
/// # Panics
/// If `fracs` is wider than a lane pack or the output slices are
/// shorter than `fracs`.
pub fn gather_from_block_lanes(
    order: ShapeOrder,
    block: &NodeBlock,
    fracs: &[[f64; 3]],
    e_out: &mut [[f64; 3]],
    b_out: &mut [[f64; 3]],
) {
    let n = fracs.len();
    assert!(
        e_out.len() >= n && b_out.len() >= n,
        "output slices shorter than the lane pack"
    );
    let (e, b) = gather_from_block_lanes_masked(order, block, fracs);
    for l in 0..n {
        for d in 0..3 {
            e_out[l][d] = e[d].lane(l);
            b_out[l][d] = b[d].lane(l);
        }
    }
}

/// Masked core of the lane gather: interpolates `(E, B)` for
/// `fracs.len()` particles (at most [`W`]) and returns the results still
/// in lane-register layout (`[Lanes; 3]` per field, lane `l` = particle
/// `l`) for the lane-parallel Boris push to consume directly — no
/// transpose through memory. Ragged run tails stay on this path: the
/// accumulation runs under a [`LaneMask::prefix`] mask, so inactive tail
/// lanes hold exact zeros on return while every active lane is
/// bit-identical to its own [`gather_from_block`] call (masking selects
/// lanes; it never regroups arithmetic).
///
/// # Panics
/// If `fracs` is wider than a lane pack.
pub fn gather_from_block_lanes_masked(
    order: ShapeOrder,
    block: &NodeBlock,
    fracs: &[[f64; 3]],
) -> ([Lanes; 3], [Lanes; 3]) {
    let s = order.support();
    let n = fracs.len();
    let mask = LaneMask::prefix(n);
    // Per-lane shape weights, evaluated exactly as the scalar gather
    // evaluates them.
    let mut sw = [[[0.0f64; 4]; 3]; W];
    for (l, f) in fracs.iter().enumerate() {
        order.weights(f[0], &mut sw[l][0]);
        order.weights(f[1], &mut sw[l][1]);
        order.weights(f[2], &mut sw[l][2]);
    }
    let mut acc = [Lanes::zero(); 6];
    for c in 0..s {
        for bb in 0..s {
            for a in 0..s {
                let nd = (c * s + bb) * s + a;
                let mut wl = [0.0; W];
                for (l, w) in wl.iter_mut().enumerate().take(n) {
                    *w = sw[l][0][a] * sw[l][1][bb] * sw[l][2][c];
                }
                let wl = Lanes(wl);
                for (comp, lane_acc) in acc.iter_mut().enumerate() {
                    *lane_acc =
                        lane_acc.mul_acc_masked(wl, Lanes::splat(block.vals[comp][nd]), mask);
                }
            }
        }
    }
    ([acc[0], acc[1], acc[2]], [acc[3], acc[4], acc[5]])
}

/// Charges the gather cost of one same-cell run of `n` particles whose
/// stencil block (node indices `node_idx`) was loaded **once** for the
/// whole run: each field array pays one run-scoped block gather (every
/// distinct cache line charged once, see
/// [`Machine::v_touch_gather_block`]) instead of a per-particle node
/// sweep, while the interpolation arithmetic is still charged per
/// particle — batching amortises memory traffic, not FLOPs.
pub fn charge_gather_run(
    m: &mut Machine,
    cost: GatherCost,
    n: usize,
    field_addrs: &[VAddr; 6],
    node_idx: &[usize],
) {
    m.in_phase(Phase::Gather, |m| {
        for addr in field_addrs {
            m.v_touch_gather_block(*addr, node_idx);
        }
        let chunks = n.div_ceil(8);
        m.v_ops(cost.v_ops_per_chunk * chunks);
        m.record_flops((n * node_idx.len() * 6 * 2) as f64);
    });
}

/// Reuse-aware variant of [`charge_gather_run`] for the lane-parallel
/// path: the SIMD push walks a tile's runs in sorted-cell order, so the
/// previous run's stencil block (`prev_idx`, its node list) is still
/// resident in lane registers — cache lines it covers are rotated in
/// place instead of re-gathered, and only the **new** lines are charged,
/// at the state-free streaming price (see
/// [`Machine::v_touch_gather_block_reuse`]): the block loads of
/// consecutive sorted runs sweep the field arrays in ascending order,
/// which the stream prefetcher services at bandwidth. `footprint` is the
/// byte span of one field array (guarded grid x 8), which the machine's
/// roofline crossover compares against L1 capacity — small L1-resident
/// grids are charged at the resident line price instead of the DRAM
/// stream price. The functional accounting (vector ops, FLOPs) matches
/// [`charge_gather_run`] exactly; only the memory price differs.
pub fn charge_gather_run_reuse(
    m: &mut Machine,
    cost: GatherCost,
    n: usize,
    field_addrs: &[VAddr; 6],
    node_idx: &[usize],
    prev_idx: &[usize],
    footprint: u64,
) {
    m.in_phase(Phase::Gather, |m| {
        // One line-set walk shared by all six (line-aligned) field
        // arrays; bit-identical to six per-array calls.
        m.v_touch_gather_block_reuse_multi(field_addrs, node_idx, prev_idx, footprint);
        let chunks = n.div_ceil(8);
        m.v_ops(cost.v_ops_per_chunk * chunks);
        m.record_flops((n * node_idx.len() * 6 * 2) as f64);
    });
}

/// Charges the gather cost of `n` particles touching `nodes` grid nodes
/// each across six field arrays whose bases are `field_addrs`; node
/// addresses are sampled from the particles' first node (`sample_idx`)
/// so cache behaviour tracks the real access stream.
pub fn charge_gather(
    m: &mut Machine,
    cost: GatherCost,
    n: usize,
    nodes: usize,
    field_addrs: &[VAddr; 6],
    sample_idx: &[usize],
) {
    m.in_phase(Phase::Gather, |m| {
        let mut p = 0;
        while p < n {
            let lanes = (n - p).min(8);
            m.v_ops(cost.v_ops_per_chunk);
            // Six field arrays x nodes gathers; use the sampled node
            // index of each lane, offset per node to cover the stencil.
            // The lane indices are identical across the six arrays, so
            // they are built once per node in a stack buffer.
            for node in 0..nodes.min(8) {
                let mut idx = [0usize; 8];
                for (l, i) in (p..p + lanes).enumerate() {
                    idx[l] = sample_idx[i.min(sample_idx.len() - 1)] + node;
                }
                for addr in field_addrs {
                    m.v_touch_gather(*addr, &idx[..lanes]);
                }
            }
            p += lanes;
        }
        m.record_flops((n * nodes * 6 * 2) as f64);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GridGeometry, FieldArrays) {
        let geom = GridGeometry::new([8, 8, 8], [0.0; 3], [1.0e-6; 3], 2);
        let fields = FieldArrays::new(&geom);
        (geom, fields)
    }

    #[test]
    fn uniform_field_gathers_exactly() {
        let (geom, mut fields) = setup();
        fields.ez.fill(5.0);
        fields.bx.fill(-2.0);
        for order in [ShapeOrder::Cic, ShapeOrder::Tsc, ShapeOrder::Qsp] {
            let (e, b) = gather_fields(&geom, order, &fields, 3.3e-6, 4.7e-6, 1.2e-6);
            assert!((e[2] - 5.0).abs() < 1e-12, "{order:?}");
            assert!((b[0] + 2.0).abs() < 1e-12, "{order:?}");
            assert!(e[0].abs() < 1e-12);
        }
    }

    #[test]
    fn linear_field_interpolated_linearly_cic() {
        let (geom, mut fields) = setup();
        // Ex = i (node x index) on the grid: at fractional position the
        // CIC gather must reproduce the linear profile.
        let [nx, ny, nz] = fields.ex.shape();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    fields.ex.set(i, j, k, i as f64);
                }
            }
        }
        let (e, _) = gather_fields(&geom, ShapeOrder::Cic, &fields, 2.25e-6, 0.0, 0.0);
        // x = 2.25 cells -> guarded node coordinate 4.25.
        assert!((e[0] - 4.25).abs() < 1e-12, "got {}", e[0]);
    }

    #[test]
    fn block_gather_is_bit_identical_to_per_particle_gather() {
        // Fill the fields with an irregular pattern and compare the
        // batched (block-cached) gather against the per-particle
        // reference at many positions inside one cell: the tentpole's
        // value-exactness claim, pinned bitwise.
        let (geom, mut fields) = setup();
        let [nx, ny, nz] = fields.ex.shape();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let v = (i * 31 + j * 7 + k) as f64 * 0.013 - 1.7;
                    fields.ex.set(i, j, k, v);
                    fields.ey.set(i, j, k, -v * 0.5);
                    fields.ez.set(i, j, k, v * v * 1e-3);
                    fields.bx.set(i, j, k, 2.0 - v);
                    fields.by.set(i, j, k, v.sin());
                    fields.bz.set(i, j, k, 0.25 * v);
                }
            }
        }
        for order in [ShapeOrder::Cic, ShapeOrder::Tsc, ShapeOrder::Qsp] {
            let mut block = NodeBlock::new();
            for t in 0..20 {
                let f = t as f64 / 20.0;
                let (x, y, z) = (
                    (3.0 + f) * 1e-6,
                    (4.0 + f * 0.77) * 1e-6,
                    (1.0 + f * 0.31) * 1e-6,
                );
                let (cell, frac) = geom.locate(x, y, z);
                let cell = geom.wrap_cell(cell);
                load_node_block(&geom, order, &fields, cell, &mut block);
                let (e_want, b_want) = gather_fields(&geom, order, &fields, x, y, z);
                let (e_got, b_got) = gather_from_block(order, &block, frac);
                for d in 0..3 {
                    assert_eq!(e_got[d].to_bits(), e_want[d].to_bits(), "{order:?} E[{d}]");
                    assert_eq!(b_got[d].to_bits(), b_want[d].to_bits(), "{order:?} B[{d}]");
                }
            }
        }
    }

    #[test]
    fn lane_gather_matches_scalar_block_gather_bitwise() {
        // Every lane of the SIMD gather must reproduce its own scalar
        // gather_from_block result bit for bit, at full width and on
        // ragged tails (1, W-1, W lanes).
        let (geom, mut fields) = setup();
        let [nx, ny, nz] = fields.ex.shape();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let v = (i * 13 + j * 5 + k * 3) as f64 * 0.021 - 0.9;
                    fields.ex.set(i, j, k, v);
                    fields.ey.set(i, j, k, v * 1.5 - 0.2);
                    fields.ez.set(i, j, k, (v * 0.7).cos());
                    fields.bx.set(i, j, k, -v);
                    fields.by.set(i, j, k, v * v * 0.05);
                    fields.bz.set(i, j, k, 1.0 / (2.0 + v * v));
                }
            }
        }
        for order in [ShapeOrder::Cic, ShapeOrder::Tsc, ShapeOrder::Qsp] {
            let mut block = NodeBlock::new();
            let (cell, _) = geom.locate(3.4e-6, 4.1e-6, 1.9e-6);
            let cell = geom.wrap_cell(cell);
            load_node_block(&geom, order, &fields, cell, &mut block);
            let fracs: Vec<[f64; 3]> = (0..W)
                .map(|t| {
                    let f = t as f64 / W as f64;
                    [f * 0.9 + 0.05, (1.0 - f) * 0.8 + 0.1, f * f * 0.7 + 0.2]
                })
                .collect();
            for n in [1, W - 1, W] {
                let mut e = vec![[0.0; 3]; n];
                let mut b = vec![[0.0; 3]; n];
                gather_from_block_lanes(order, &block, &fracs[..n], &mut e, &mut b);
                for (l, frac) in fracs[..n].iter().enumerate() {
                    let (e_want, b_want) = gather_from_block(order, &block, *frac);
                    for d in 0..3 {
                        assert_eq!(
                            e[l][d].to_bits(),
                            e_want[d].to_bits(),
                            "{order:?} n={n} lane {l} E[{d}]"
                        );
                        assert_eq!(
                            b[l][d].to_bits(),
                            b_want[d].to_bits(),
                            "{order:?} n={n} lane {l} B[{d}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn conf_masked_tail_gather_matches_scalar_bitwise() {
        // The masked core must return, for EVERY tail width 1..=W, active
        // lanes bit-identical to the scalar gather and exact zeros in the
        // inactive tail lanes — the contract that lets the push consume
        // ragged runs without a scalar remainder loop.
        let (geom, mut fields) = setup();
        let [nx, ny, nz] = fields.ex.shape();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let v = (i * 17 + j * 3 + k * 11) as f64 * 0.017 - 1.1;
                    fields.ex.set(i, j, k, v);
                    fields.ey.set(i, j, k, v * 0.3 + 0.6);
                    fields.ez.set(i, j, k, (v * 0.4).sin());
                    fields.bx.set(i, j, k, 0.7 - v);
                    fields.by.set(i, j, k, v * v * 0.02);
                    fields.bz.set(i, j, k, 1.0 / (1.5 + v * v));
                }
            }
        }
        for order in [ShapeOrder::Cic, ShapeOrder::Tsc, ShapeOrder::Qsp] {
            let mut block = NodeBlock::new();
            let (cell, _) = geom.locate(2.6e-6, 5.2e-6, 3.8e-6);
            let cell = geom.wrap_cell(cell);
            load_node_block(&geom, order, &fields, cell, &mut block);
            let fracs: Vec<[f64; 3]> = (0..W)
                .map(|t| {
                    let f = t as f64 / W as f64;
                    [f * 0.85 + 0.05, (1.0 - f) * 0.7 + 0.15, f * f * 0.6 + 0.25]
                })
                .collect();
            for n in 1..=W {
                let (e, b) = gather_from_block_lanes_masked(order, &block, &fracs[..n]);
                for (l, frac) in fracs[..n].iter().enumerate() {
                    let (e_want, b_want) = gather_from_block(order, &block, *frac);
                    for d in 0..3 {
                        assert_eq!(
                            e[d].lane(l).to_bits(),
                            e_want[d].to_bits(),
                            "{order:?} n={n} lane {l} E[{d}]"
                        );
                        assert_eq!(
                            b[d].lane(l).to_bits(),
                            b_want[d].to_bits(),
                            "{order:?} n={n} lane {l} B[{d}]"
                        );
                    }
                }
                for l in n..W {
                    for d in 0..3 {
                        assert_eq!(e[d].lane(l).to_bits(), 0, "{order:?} n={n} tail lane {l}");
                        assert_eq!(b[d].lane(l).to_bits(), 0, "{order:?} n={n} tail lane {l}");
                    }
                }
            }
        }
    }

    #[test]
    fn lane_gather_rejects_oversized_packs() {
        let block = NodeBlock::new();
        let fracs = vec![[0.5; 3]; W + 1];
        let mut e = vec![[0.0; 3]; W + 1];
        let mut b = vec![[0.0; 3]; W + 1];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gather_from_block_lanes(ShapeOrder::Cic, &block, &fracs, &mut e, &mut b);
        }));
        assert!(r.is_err(), "packs wider than W lanes must be rejected");
    }

    #[test]
    fn node_block_wraps_periodically() {
        // A boundary cell's block must target the same wrapped nodes the
        // per-particle gather touches (shared node_coord), so values
        // gathered across the periodic seam stay exact.
        let (geom, mut fields) = setup();
        fields.ez.fill(3.25);
        let mut block = NodeBlock::new();
        load_node_block(&geom, ShapeOrder::Qsp, &fields, [0, 7, 0], &mut block);
        assert_eq!(block.nodes, 64);
        let (_, frac) = geom.locate(0.4e-6, 7.6e-6, 0.1e-6);
        let (e, _) = gather_from_block(ShapeOrder::Qsp, &block, frac);
        assert!(
            (e[2] - 3.25).abs() < 1e-12,
            "weights must sum to 1 over wrapped nodes"
        );
    }

    #[test]
    fn charge_gather_run_is_cheaper_than_per_particle_charge() {
        // The whole point of the batched cost model: a ppc-sized run
        // charges its stencil lines once, not once per particle.
        let mut per_particle = Machine::new(mpic_machine::MachineConfig::lx2());
        let mut batched = Machine::new(mpic_machine::MachineConfig::lx2());
        let addrs_a: [VAddr; 6] = std::array::from_fn(|_| per_particle.mem().alloc_f64(4096));
        let addrs_b: [VAddr; 6] = std::array::from_fn(|_| batched.mem().alloc_f64(4096));
        // One 64-particle run over an 8-node CIC stencil: the reference
        // path replays the node sweep for every 8-lane particle chunk,
        // the batched path loads the block once for the whole run.
        let node_idx: [usize; 8] = std::array::from_fn(|nd| 100 + nd);
        charge_gather(
            &mut per_particle,
            GatherCost::default(),
            64,
            8,
            &addrs_a,
            &[100; 64],
        );
        charge_gather_run(&mut batched, GatherCost::default(), 64, &addrs_b, &node_idx);
        let (pp, bt) = (
            per_particle.counters().cycles(Phase::Gather),
            batched.counters().cycles(Phase::Gather),
        );
        assert!(
            bt < pp,
            "batched run charge {bt} must undercut per-particle {pp}"
        );
        assert_eq!(
            per_particle.counters().flops_issued,
            batched.counters().flops_issued,
            "batching amortises memory, not useful FLOPs"
        );
    }

    #[test]
    fn gather_cost_is_charged() {
        let (_, _) = setup();
        let mut m = Machine::new(mpic_machine::MachineConfig::lx2());
        let addrs = std::array::from_fn(|_| m.mem().alloc_f64(1000));
        charge_gather(&mut m, GatherCost::default(), 64, 8, &addrs, &[0; 64]);
        assert!(m.counters().cycles(Phase::Gather) > 0.0);
        assert_eq!(m.counters().cycles(Phase::Compute), 0.0);
    }
}
