//! Field gather and relativistic Boris particle push.
//!
//! The gather step interpolates E and B from the grid to each particle
//! using the same B-spline shapes as deposition; together they account for
//! over 80% of the paper's Figure 1 runtime breakdown (gather + deposit).
//! The Boris rotation is the standard energy-conserving velocity update
//! used by WarpX (`algo.particle_pusher = boris`).

pub mod boris;
pub mod gather;
pub mod scratch;

pub use boris::{boris_push, BorisCoeffs};
pub use gather::{gather_fields, GatherCost};
pub use scratch::PushScratch;
