//! Per-worker reusable buffers for the gather + push sweep.
//!
//! The parallel tile pipeline gives each worker one [`PushScratch`] and
//! reuses it for every tile the worker processes, so the per-step hot
//! path performs no heap allocation once the buffers have grown to the
//! largest tile's population.

/// Reusable per-worker buffers for one tile's gather + push sweep.
#[derive(Debug, Clone, Default)]
pub struct PushScratch {
    /// Live SoA slot indices of the tile being processed (raw liveness
    /// order for the per-particle path; GPMA-sorted order for the
    /// batched path).
    pub live: Vec<usize>,
    /// Per-particle sampled grid node index (drives the gather's emulated
    /// address stream).
    pub sample_idx: Vec<usize>,
    /// Particles leaving the domain this step, as `(slot, gpma_bin)`.
    pub removals: Vec<(usize, usize)>,
    /// SoA slots of the currently open same-cell run (SIMD gather only:
    /// the lane-parallel sweep buffers a run and interpolates it in
    /// lane-width packs when the run closes).
    pub run_slots: Vec<usize>,
    /// Intra-cell offsets of the currently open run, parallel to
    /// [`PushScratch::run_slots`].
    pub run_frac: Vec<[f64; 3]>,
}

impl PushScratch {
    /// Clears all buffers, keeping their capacity.
    pub fn clear(&mut self) {
        self.live.clear();
        self.sample_idx.clear();
        self.removals.clear();
        self.run_slots.clear();
        self.run_frac.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_keeps_capacity() {
        let mut s = PushScratch::default();
        s.live.extend(0..100);
        s.sample_idx.extend(0..100);
        s.removals.push((1, 2));
        s.run_slots.push(7);
        s.run_frac.push([0.5; 3]);
        let cap = s.live.capacity();
        s.clear();
        assert!(s.live.is_empty() && s.sample_idx.is_empty() && s.removals.is_empty());
        assert!(s.run_slots.is_empty() && s.run_frac.is_empty());
        assert_eq!(s.live.capacity(), cap);
    }
}
