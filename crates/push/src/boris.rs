//! Relativistic Boris pusher.
//!
//! Operates on normalised momentum `u = gamma v / c`. The scheme is the
//! classic half-acceleration / rotation / half-acceleration splitting,
//! which conserves energy exactly in a pure magnetic field.

use mpic_grid::constants::C;
use mpic_machine::{Lanes, Machine, Phase};

/// Precomputed per-species, per-step push coefficients.
#[derive(Debug, Clone, Copy)]
pub struct BorisCoeffs {
    /// `q dt / (2 m c)` — E-field half kick in normalised momentum.
    pub e_fac: f64,
    /// `q dt / (2 m)` — B rotation prefactor (divided by gamma inside).
    pub b_fac: f64,
    /// Timestep (s).
    pub dt: f64,
}

impl BorisCoeffs {
    /// Builds coefficients for a species of charge `q` (C), mass `m` (kg)
    /// and timestep `dt` (s).
    pub fn new(q: f64, m: f64, dt: f64) -> Self {
        Self {
            e_fac: q * dt / (2.0 * m * C),
            b_fac: q * dt / (2.0 * m),
            dt,
        }
    }
}

/// Advances one particle's normalised momentum and position in place.
///
/// Returns the particle's Lorentz factor after the update (for
/// diagnostics).
pub fn boris_push(
    c: &BorisCoeffs,
    e: [f64; 3],
    b: [f64; 3],
    ux: &mut f64,
    uy: &mut f64,
    uz: &mut f64,
    x: &mut f64,
    y: &mut f64,
    z: &mut f64,
) -> f64 {
    // Half electric kick.
    let mut umx = *ux + c.e_fac * e[0];
    let mut umy = *uy + c.e_fac * e[1];
    let mut umz = *uz + c.e_fac * e[2];

    // Magnetic rotation.
    let gamma_m = (1.0 + umx * umx + umy * umy + umz * umz).sqrt();
    let tx = c.b_fac * b[0] / gamma_m;
    let ty = c.b_fac * b[1] / gamma_m;
    let tz = c.b_fac * b[2] / gamma_m;
    let upx = umx + (umy * tz - umz * ty);
    let upy = umy + (umz * tx - umx * tz);
    let upz = umz + (umx * ty - umy * tx);
    let s = 2.0 / (1.0 + tx * tx + ty * ty + tz * tz);
    umx += s * (upy * tz - upz * ty);
    umy += s * (upz * tx - upx * tz);
    umz += s * (upx * ty - upy * tx);

    // Second half electric kick.
    *ux = umx + c.e_fac * e[0];
    *uy = umy + c.e_fac * e[1];
    *uz = umz + c.e_fac * e[2];

    // Position update with the new momentum.
    let gamma = (1.0 + *ux * *ux + *uy * *uy + *uz * *uz).sqrt();
    let f = C * c.dt / gamma;
    *x += *ux * f;
    *y += *uy * f;
    *z += *uz * f;
    gamma
}

/// Lane-parallel Boris push: advances up to [`mpic_machine::vect::W`]
/// particles at once, one per lane. `e`/`b` hold the gathered field
/// components as lane packs (component-major: `e[d]` is component `d`
/// of every lane's E field), `u` the normalised momenta and `pos` the
/// positions, updated in place.
///
/// Every lane replays [`boris_push`]'s operation sequence exactly —
/// the multiply-then-add splits are unfused ([`Lanes::mul_acc`]), and
/// the per-lane `sqrt`/division are IEEE correctly rounded — so each
/// lane's momentum and position are bitwise the scalar push of that
/// particle. Inactive tail lanes may simply carry zeros: every
/// intermediate stays finite (`gamma = 1`), and masked writeback
/// discards them.
///
/// Cost-model note: this routine charges nothing, exactly like the
/// scalar [`boris_push`]; both execution modes price the push through
/// [`charge_push`], which is how `Push` cycles stay bitwise identical
/// across scalar and SIMD modes.
pub fn boris_push_lanes(
    c: &BorisCoeffs,
    e: &[Lanes; 3],
    b: &[Lanes; 3],
    u: &mut [Lanes; 3],
    pos: &mut [Lanes; 3],
) {
    let e_fac = Lanes::splat(c.e_fac);
    let one = Lanes::splat(1.0);

    // Half electric kick.
    let um = [
        u[0].mul_acc(e_fac, e[0]),
        u[1].mul_acc(e_fac, e[1]),
        u[2].mul_acc(e_fac, e[2]),
    ];

    // Magnetic rotation.
    let gamma_m = one
        .mul_acc(um[0], um[0])
        .mul_acc(um[1], um[1])
        .mul_acc(um[2], um[2])
        .sqrt();
    let b_fac = Lanes::splat(c.b_fac);
    let t = [
        (b_fac * b[0]) / gamma_m,
        (b_fac * b[1]) / gamma_m,
        (b_fac * b[2]) / gamma_m,
    ];
    let up = [
        um[0] + (um[1] * t[2] - um[2] * t[1]),
        um[1] + (um[2] * t[0] - um[0] * t[2]),
        um[2] + (um[0] * t[1] - um[1] * t[0]),
    ];
    let s = Lanes::splat(2.0)
        / one
            .mul_acc(t[0], t[0])
            .mul_acc(t[1], t[1])
            .mul_acc(t[2], t[2]);
    let um = [
        um[0].mul_acc(s, up[1] * t[2] - up[2] * t[1]),
        um[1].mul_acc(s, up[2] * t[0] - up[0] * t[2]),
        um[2].mul_acc(s, up[0] * t[1] - up[1] * t[0]),
    ];

    // Second half electric kick.
    u[0] = um[0].mul_acc(e_fac, e[0]);
    u[1] = um[1].mul_acc(e_fac, e[1]);
    u[2] = um[2].mul_acc(e_fac, e[2]);

    // Position update with the new momentum.
    let gamma = one
        .mul_acc(u[0], u[0])
        .mul_acc(u[1], u[1])
        .mul_acc(u[2], u[2])
        .sqrt();
    let f = Lanes::splat(C * c.dt) / gamma;
    pos[0] = pos[0].mul_acc(u[0], f);
    pos[1] = pos[1].mul_acc(u[1], f);
    pos[2] = pos[2].mul_acc(u[2], f);
}

/// Charges the push cost of `n` particles (vectorised sweep: loads of
/// 6 gathered fields + 6 phase-space attributes, ~45 FLOPs/particle,
/// stores back).
pub fn charge_push(m: &mut Machine, n: usize) {
    m.in_phase(Phase::Push, |m| {
        let chunks = n.div_ceil(8);
        // 12 loads + 6 stores + ~24 arithmetic vector ops per chunk.
        m.v_ops(chunks * 42);
        m.record_flops((n * 45) as f64);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpic_grid::constants::{M_E, Q_E};

    #[test]
    fn pure_b_field_conserves_energy() {
        let dt = 1e-12;
        let c = BorisCoeffs::new(-Q_E, M_E, dt);
        let (mut ux, mut uy, mut uz) = (0.3, 0.1, -0.2);
        let (mut x, mut y, mut z) = (0.0, 0.0, 0.0);
        let u0 = f64::sqrt(ux * ux + uy * uy + uz * uz);
        for _ in 0..1000 {
            boris_push(
                &c,
                [0.0; 3],
                [0.0, 0.0, 0.5],
                &mut ux,
                &mut uy,
                &mut uz,
                &mut x,
                &mut y,
                &mut z,
            );
        }
        let u1 = (ux * ux + uy * uy + uz * uz).sqrt();
        assert!(((u1 - u0) / u0).abs() < 1e-12, "|u| drifted: {u0} -> {u1}");
    }

    #[test]
    fn e_field_accelerates_linearly_nonrelativistic() {
        // du/dt = qE/(mc): after N steps u = N dt qE/(mc).
        let dt = 1e-15;
        let e_field = 1e6;
        let c = BorisCoeffs::new(-Q_E, M_E, dt);
        let (mut ux, mut uy, mut uz) = (0.0, 0.0, 0.0);
        let (mut x, mut y, mut z) = (0.0, 0.0, 0.0);
        let n = 100;
        for _ in 0..n {
            boris_push(
                &c,
                [e_field, 0.0, 0.0],
                [0.0; 3],
                &mut ux,
                &mut uy,
                &mut uz,
                &mut x,
                &mut y,
                &mut z,
            );
        }
        let expect = -Q_E * e_field * (n as f64) * dt / (M_E * C);
        assert!(
            ((ux - expect) / expect).abs() < 1e-9,
            "u {ux} expect {expect}"
        );
        assert!(uy.abs() < 1e-300 && uz.abs() < 1e-300);
    }

    #[test]
    fn gyration_preserves_plane() {
        // Motion in B = z-hat stays in the xy plane.
        let c = BorisCoeffs::new(-Q_E, M_E, 1e-13);
        let (mut ux, mut uy, mut uz) = (0.1, 0.0, 0.0);
        let (mut x, mut y, mut z) = (0.0, 0.0, 0.0);
        for _ in 0..500 {
            boris_push(
                &c,
                [0.0; 3],
                [0.0, 0.0, 1.0],
                &mut ux,
                &mut uy,
                &mut uz,
                &mut x,
                &mut y,
                &mut z,
            );
        }
        assert_eq!(uz, 0.0);
        assert_eq!(z, 0.0);
        assert!(ux.abs() <= 0.1 + 1e-12 && uy.abs() <= 0.1 + 1e-12);
    }

    #[test]
    fn position_advance_uses_c_over_gamma() {
        let c = BorisCoeffs::new(0.0, M_E, 1e-9); // Neutral: pure drift.
        let (mut ux, mut uy, mut uz) = (1.0, 0.0, 0.0);
        let (mut x, mut y, mut z) = (0.0, 0.0, 0.0);
        let gamma = boris_push(
            &c, [0.0; 3], [0.0; 3], &mut ux, &mut uy, &mut uz, &mut x, &mut y, &mut z,
        );
        assert!((gamma - 2.0_f64.sqrt()).abs() < 1e-12);
        let expect = C * 1e-9 / 2.0_f64.sqrt();
        assert!((x - expect).abs() < 1e-6 * expect);
    }

    #[test]
    fn conf_lane_boris_push_matches_scalar_bitwise() {
        use mpic_machine::vect::W;

        let c = BorisCoeffs::new(-Q_E, M_E, 1.3e-13);
        // Distinct, irregular per-lane phase-space and field values so a
        // cross-lane mixup or regrouped operation cannot cancel out.
        let mut e = [Lanes::zero(); 3];
        let mut b = [Lanes::zero(); 3];
        let mut u = [Lanes::zero(); 3];
        let mut pos = [Lanes::zero(); 3];
        let mut su = [[0.0f64; W]; 3];
        let mut sp = [[0.0f64; W]; 3];
        let mut se = [[0.0f64; W]; 3];
        let mut sb = [[0.0f64; W]; 3];
        for l in 0..W {
            for d in 0..3 {
                let x = (l * 3 + d) as f64;
                se[d][l] = (x * 0.713).sin() * 2.0e5;
                sb[d][l] = (x * 1.117).cos() * 0.4;
                su[d][l] = (x * 0.391).sin() * 0.8;
                sp[d][l] = (x * 0.157).cos() * 1.0e-6;
                e[d].0[l] = se[d][l];
                b[d].0[l] = sb[d][l];
                u[d].0[l] = su[d][l];
                pos[d].0[l] = sp[d][l];
            }
        }
        boris_push_lanes(&c, &e, &b, &mut u, &mut pos);
        for l in 0..W {
            let (mut ux, mut uy, mut uz) = (su[0][l], su[1][l], su[2][l]);
            let (mut x, mut y, mut z) = (sp[0][l], sp[1][l], sp[2][l]);
            boris_push(
                &c,
                [se[0][l], se[1][l], se[2][l]],
                [sb[0][l], sb[1][l], sb[2][l]],
                &mut ux,
                &mut uy,
                &mut uz,
                &mut x,
                &mut y,
                &mut z,
            );
            let want = [ux, uy, uz, x, y, z];
            let got = [
                u[0].lane(l),
                u[1].lane(l),
                u[2].lane(l),
                pos[0].lane(l),
                pos[1].lane(l),
                pos[2].lane(l),
            ];
            for (d, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "lane {l} component {d}");
            }
        }
    }

    #[test]
    fn lane_push_zero_lanes_stay_finite() {
        // Tail lanes carry zeros; the lane push must keep them finite
        // (gamma = 1, no division blowup) so masked writeback can
        // simply ignore them.
        let c = BorisCoeffs::new(-Q_E, M_E, 1e-13);
        let e = [Lanes::zero(); 3];
        let b = [Lanes::zero(); 3];
        let mut u = [Lanes::zero(); 3];
        let mut pos = [Lanes::zero(); 3];
        boris_push_lanes(&c, &e, &b, &mut u, &mut pos);
        for d in 0..3 {
            for l in 0..mpic_machine::vect::W {
                assert!(u[d].lane(l).is_finite() && pos[d].lane(l).is_finite());
                assert_eq!(u[d].lane(l), 0.0);
                assert_eq!(pos[d].lane(l), 0.0);
            }
        }
    }

    #[test]
    fn charge_push_fills_push_phase() {
        let mut m = Machine::new(mpic_machine::MachineConfig::lx2());
        charge_push(&mut m, 100);
        assert!(m.counters().cycles(Phase::Push) > 0.0);
    }
}
