//! Relativistic Boris pusher.
//!
//! Operates on normalised momentum `u = gamma v / c`. The scheme is the
//! classic half-acceleration / rotation / half-acceleration splitting,
//! which conserves energy exactly in a pure magnetic field.

use mpic_grid::constants::C;
use mpic_machine::{Machine, Phase};

/// Precomputed per-species, per-step push coefficients.
#[derive(Debug, Clone, Copy)]
pub struct BorisCoeffs {
    /// `q dt / (2 m c)` — E-field half kick in normalised momentum.
    pub e_fac: f64,
    /// `q dt / (2 m)` — B rotation prefactor (divided by gamma inside).
    pub b_fac: f64,
    /// Timestep (s).
    pub dt: f64,
}

impl BorisCoeffs {
    /// Builds coefficients for a species of charge `q` (C), mass `m` (kg)
    /// and timestep `dt` (s).
    pub fn new(q: f64, m: f64, dt: f64) -> Self {
        Self {
            e_fac: q * dt / (2.0 * m * C),
            b_fac: q * dt / (2.0 * m),
            dt,
        }
    }
}

/// Advances one particle's normalised momentum and position in place.
///
/// Returns the particle's Lorentz factor after the update (for
/// diagnostics).
pub fn boris_push(
    c: &BorisCoeffs,
    e: [f64; 3],
    b: [f64; 3],
    ux: &mut f64,
    uy: &mut f64,
    uz: &mut f64,
    x: &mut f64,
    y: &mut f64,
    z: &mut f64,
) -> f64 {
    // Half electric kick.
    let mut umx = *ux + c.e_fac * e[0];
    let mut umy = *uy + c.e_fac * e[1];
    let mut umz = *uz + c.e_fac * e[2];

    // Magnetic rotation.
    let gamma_m = (1.0 + umx * umx + umy * umy + umz * umz).sqrt();
    let tx = c.b_fac * b[0] / gamma_m;
    let ty = c.b_fac * b[1] / gamma_m;
    let tz = c.b_fac * b[2] / gamma_m;
    let upx = umx + (umy * tz - umz * ty);
    let upy = umy + (umz * tx - umx * tz);
    let upz = umz + (umx * ty - umy * tx);
    let s = 2.0 / (1.0 + tx * tx + ty * ty + tz * tz);
    umx += s * (upy * tz - upz * ty);
    umy += s * (upz * tx - upx * tz);
    umz += s * (upx * ty - upy * tx);

    // Second half electric kick.
    *ux = umx + c.e_fac * e[0];
    *uy = umy + c.e_fac * e[1];
    *uz = umz + c.e_fac * e[2];

    // Position update with the new momentum.
    let gamma = (1.0 + *ux * *ux + *uy * *uy + *uz * *uz).sqrt();
    let f = C * c.dt / gamma;
    *x += *ux * f;
    *y += *uy * f;
    *z += *uz * f;
    gamma
}

/// Charges the push cost of `n` particles (vectorised sweep: loads of
/// 6 gathered fields + 6 phase-space attributes, ~45 FLOPs/particle,
/// stores back).
pub fn charge_push(m: &mut Machine, n: usize) {
    m.in_phase(Phase::Push, |m| {
        let chunks = n.div_ceil(8);
        // 12 loads + 6 stores + ~24 arithmetic vector ops per chunk.
        m.v_ops(chunks * 42);
        m.record_flops((n * 45) as f64);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpic_grid::constants::{M_E, Q_E};

    #[test]
    fn pure_b_field_conserves_energy() {
        let dt = 1e-12;
        let c = BorisCoeffs::new(-Q_E, M_E, dt);
        let (mut ux, mut uy, mut uz) = (0.3, 0.1, -0.2);
        let (mut x, mut y, mut z) = (0.0, 0.0, 0.0);
        let u0 = f64::sqrt(ux * ux + uy * uy + uz * uz);
        for _ in 0..1000 {
            boris_push(
                &c,
                [0.0; 3],
                [0.0, 0.0, 0.5],
                &mut ux,
                &mut uy,
                &mut uz,
                &mut x,
                &mut y,
                &mut z,
            );
        }
        let u1 = (ux * ux + uy * uy + uz * uz).sqrt();
        assert!(((u1 - u0) / u0).abs() < 1e-12, "|u| drifted: {u0} -> {u1}");
    }

    #[test]
    fn e_field_accelerates_linearly_nonrelativistic() {
        // du/dt = qE/(mc): after N steps u = N dt qE/(mc).
        let dt = 1e-15;
        let e_field = 1e6;
        let c = BorisCoeffs::new(-Q_E, M_E, dt);
        let (mut ux, mut uy, mut uz) = (0.0, 0.0, 0.0);
        let (mut x, mut y, mut z) = (0.0, 0.0, 0.0);
        let n = 100;
        for _ in 0..n {
            boris_push(
                &c,
                [e_field, 0.0, 0.0],
                [0.0; 3],
                &mut ux,
                &mut uy,
                &mut uz,
                &mut x,
                &mut y,
                &mut z,
            );
        }
        let expect = -Q_E * e_field * (n as f64) * dt / (M_E * C);
        assert!(
            ((ux - expect) / expect).abs() < 1e-9,
            "u {ux} expect {expect}"
        );
        assert!(uy.abs() < 1e-300 && uz.abs() < 1e-300);
    }

    #[test]
    fn gyration_preserves_plane() {
        // Motion in B = z-hat stays in the xy plane.
        let c = BorisCoeffs::new(-Q_E, M_E, 1e-13);
        let (mut ux, mut uy, mut uz) = (0.1, 0.0, 0.0);
        let (mut x, mut y, mut z) = (0.0, 0.0, 0.0);
        for _ in 0..500 {
            boris_push(
                &c,
                [0.0; 3],
                [0.0, 0.0, 1.0],
                &mut ux,
                &mut uy,
                &mut uz,
                &mut x,
                &mut y,
                &mut z,
            );
        }
        assert_eq!(uz, 0.0);
        assert_eq!(z, 0.0);
        assert!(ux.abs() <= 0.1 + 1e-12 && uy.abs() <= 0.1 + 1e-12);
    }

    #[test]
    fn position_advance_uses_c_over_gamma() {
        let c = BorisCoeffs::new(0.0, M_E, 1e-9); // Neutral: pure drift.
        let (mut ux, mut uy, mut uz) = (1.0, 0.0, 0.0);
        let (mut x, mut y, mut z) = (0.0, 0.0, 0.0);
        let gamma = boris_push(
            &c, [0.0; 3], [0.0; 3], &mut ux, &mut uy, &mut uz, &mut x, &mut y, &mut z,
        );
        assert!((gamma - 2.0_f64.sqrt()).abs() < 1e-12);
        let expect = C * 1e-9 / 2.0_f64.sqrt();
        assert!((x - expect).abs() < 1e-6 * expect);
    }

    #[test]
    fn charge_push_fills_push_phase() {
        let mut m = Machine::new(mpic_machine::MachineConfig::lx2());
        charge_push(&mut m, 100);
        assert!(m.counters().cycles(Phase::Push) > 0.0);
    }
}
