//! Yee and CKC finite-difference Maxwell solvers on the guarded grid.
//!
//! Fields follow the conventional Yee staggering (Ex at (i+1/2, j, k),
//! Bx at (i, j+1/2, k+1/2), J co-located with E); arrays share nodal
//! dimensions with staggering carried by interpretation, as is usual in
//! guard-cell PIC codes. One step performs the leapfrog
//!
//! ```text
//! B -= dt/2 curl E;   E += dt (c^2 curl B - J/eps0);   B -= dt/2 curl E
//! ```
//!
//! The CKC solver replaces the transverse differences in the E update
//! with Cowan's smoothed stencil (coefficients beta = 1/8 *
//! (dx_d/dx_t)^2), which moves the numerical light cone onto the grid
//! diagonal and is stable at CFL = 1 on cubic cells — the configuration
//! the paper runs.

use mpic_grid::constants::{C, EPS0};
use mpic_grid::{Array3, FieldArrays, GridGeometry};
use mpic_machine::{Exec, Machine, Phase, SchedulerPolicy, WorkerPool};

/// Which curl discretisation the E update uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Classic second-order Yee.
    Yee,
    /// Cole-Karkkainen-Cowan extended stencil (WarpX `ckc`).
    Ckc,
}

/// The FDTD field solver.
#[derive(Debug, Clone)]
pub struct MaxwellSolver {
    kind: SolverKind,
    /// CKC transverse smoothing weights: `beta[d][t]` smooths the
    /// difference along `d` with neighbours displaced along `t`.
    beta: [[f64; 3]; 3],
    alpha: [f64; 3],
}

impl MaxwellSolver {
    /// Builds a solver for the geometry.
    pub fn new(kind: SolverKind, geom: &GridGeometry) -> Self {
        let mut beta = [[0.0; 3]; 3];
        let mut alpha = [1.0; 3];
        if kind == SolverKind::Ckc {
            for d in 0..3 {
                let mut a = 1.0;
                for t in 0..3 {
                    if t == d {
                        continue;
                    }
                    let r = geom.dx[d] / geom.dx[t];
                    beta[d][t] = 0.125 * r * r;
                    a -= 2.0 * beta[d][t];
                }
                alpha[d] = a;
            }
        }
        Self { kind, beta, alpha }
    }

    /// Solver kind.
    pub fn kind(&self) -> SolverKind {
        self.kind
    }

    /// Maximum stable timestep: the Yee limit `1/(c sqrt(sum 1/dx^2))`,
    /// or CKC's extended limit `min(dx)/c` (the "magic timestep" that
    /// lets the paper run `warpx.cfl = 1.0` on cubic cells).
    pub fn max_dt(&self, geom: &GridGeometry) -> f64 {
        match self.kind {
            SolverKind::Yee => geom.cfl_dt(1.0),
            SolverKind::Ckc => geom.dx.iter().cloned().fold(f64::INFINITY, f64::min) / C,
        }
    }

    /// Advances fields by one step given the deposited current; charges
    /// the sweep to [`Phase::FieldSolve`]. Single-worker convenience
    /// wrapper around [`MaxwellSolver::step_sharded`].
    pub fn step(&self, m: &mut Machine, geom: &GridGeometry, f: &mut FieldArrays, dt: f64) {
        let pool = WorkerPool::sequential();
        self.step_sharded(m, geom, f, dt, pool.exec(SchedulerPolicy::Static));
    }

    /// [`MaxwellSolver::step`] with each of the three stencil sweeps
    /// sharded across the persistent worker pool by Z-slab
    /// decomposition, and each guard exchange sharded by component/face.
    ///
    /// Every cell update reads only the *previous* half-step's arrays and
    /// writes its own cell exactly once, so slab workers touch disjoint
    /// output planes and the fields are bit-identical for any worker
    /// count or scheduler policy. The emulated cost charge runs on the
    /// calling thread in fixed order (the caller's laser/absorber pass
    /// stays fixed-order too), so the per-phase cycle totals are
    /// worker-count independent as well.
    pub fn step_sharded(
        &self,
        m: &mut Machine,
        geom: &GridGeometry,
        f: &mut FieldArrays,
        dt: f64,
        exec: Exec<'_>,
    ) {
        m.in_phase(Phase::FieldSolve, |m| {
            self.push_b(geom, f, 0.5 * dt, exec);
            f.fill_guards_periodic_exec(exec);
            self.push_e(geom, f, dt, exec);
            f.fill_guards_periodic_exec(exec);
            self.push_b(geom, f, 0.5 * dt, exec);
            f.fill_guards_periodic_exec(exec);
            // Cost: ~36 FLOPs/cell/update x 2.5 sweeps, vectorised and
            // streaming (memory-bound stencil).
            let cells = geom.total_cells();
            m.v_ops(cells / 2);
            m.record_flops(90.0 * cells as f64);
        });
    }

    /// B update: `B -= dt curl E` (Faraday), sharded over Z slabs.
    fn push_b(&self, geom: &GridGeometry, f: &mut FieldArrays, dt: f64, exec: Exec<'_>) {
        let g = geom.guard;
        let n = geom.n_cells;
        let [dx, dy, dz] = geom.dx;
        let FieldArrays {
            ex,
            ey,
            ez,
            bx,
            by,
            bz,
            ..
        } = f;
        let (ex, ey, ez) = (&*ex, &*ey, &*ez);
        for_each_z_slab(
            geom,
            exec,
            [bx, by, bz],
            move |(k0, k1), [sbx, sby, sbz]| {
                let plane = plane_len(ex);
                for k in k0..k1 {
                    for j in g..g + n[1] {
                        for i in g..g + n[0] {
                            let curl_x = (ez.get(i, j + 1, k) - ez.get(i, j, k)) / dy
                                - (ey.get(i, j, k + 1) - ey.get(i, j, k)) / dz;
                            let curl_y = (ex.get(i, j, k + 1) - ex.get(i, j, k)) / dz
                                - (ez.get(i + 1, j, k) - ez.get(i, j, k)) / dx;
                            let curl_z = (ey.get(i + 1, j, k) - ey.get(i, j, k)) / dx
                                - (ex.get(i, j + 1, k) - ex.get(i, j, k)) / dy;
                            let at = ex.idx(i, j, k) - k0 * plane;
                            sbx[at] += -dt * curl_x;
                            sby[at] += -dt * curl_y;
                            sbz[at] += -dt * curl_z;
                        }
                    }
                }
            },
        );
    }

    /// Backward difference of `arr` along `axis` at (i, j, k), optionally
    /// CKC-smoothed transversally.
    #[inline]
    fn diff_back(
        &self,
        arr: &Array3,
        i: usize,
        j: usize,
        k: usize,
        axis: usize,
        inv_d: f64,
    ) -> f64 {
        let shift = |i: usize, j: usize, k: usize, ax: usize, by: i64| -> (usize, usize, usize) {
            let mut c = [i as i64, j as i64, k as i64];
            c[ax] += by;
            (c[0] as usize, c[1] as usize, c[2] as usize)
        };
        let d0 = {
            let (pi, pj, pk) = shift(i, j, k, axis, -1);
            arr.get(i, j, k) - arr.get(pi, pj, pk)
        };
        match self.kind {
            SolverKind::Yee => d0 * inv_d,
            SolverKind::Ckc => {
                let mut acc = self.alpha[axis] * d0;
                for t in 0..3 {
                    if t == axis || self.beta[axis][t] == 0.0 {
                        continue;
                    }
                    for s in [-1i64, 1] {
                        let (si, sj, sk) = shift(i, j, k, t, s);
                        let (pi, pj, pk) = shift(si, sj, sk, axis, -1);
                        acc += self.beta[axis][t] * (arr.get(si, sj, sk) - arr.get(pi, pj, pk));
                    }
                }
                acc * inv_d
            }
        }
    }

    /// E update: `E += dt (c^2 curl B - J / eps0)` (Ampere-Maxwell),
    /// sharded over Z slabs. Curls read B, current reads J, writes go to
    /// E — slab-disjoint.
    fn push_e(&self, geom: &GridGeometry, f: &mut FieldArrays, dt: f64, exec: Exec<'_>) {
        let g = geom.guard;
        let n = geom.n_cells;
        let [dx, dy, dz] = geom.dx;
        let c2 = C * C;
        let je = dt / EPS0;
        let FieldArrays {
            ex,
            ey,
            ez,
            bx,
            by,
            bz,
            jx,
            jy,
            jz,
            ..
        } = f;
        let (bx, by, bz) = (&*bx, &*by, &*bz);
        let (jx, jy, jz) = (&*jx, &*jy, &*jz);
        for_each_z_slab(
            geom,
            exec,
            [ex, ey, ez],
            move |(k0, k1), [sex, sey, sez]| {
                let plane = plane_len(bx);
                for k in k0..k1 {
                    for j in g..g + n[1] {
                        for i in g..g + n[0] {
                            let curl_x = self.diff_back(bz, i, j, k, 1, 1.0 / dy)
                                - self.diff_back(by, i, j, k, 2, 1.0 / dz);
                            let curl_y = self.diff_back(bx, i, j, k, 2, 1.0 / dz)
                                - self.diff_back(bz, i, j, k, 0, 1.0 / dx);
                            let curl_z = self.diff_back(by, i, j, k, 0, 1.0 / dx)
                                - self.diff_back(bx, i, j, k, 1, 1.0 / dy);
                            let at = bx.idx(i, j, k) - k0 * plane;
                            sex[at] += dt * c2 * curl_x - je * jx.get(i, j, k);
                            sey[at] += dt * c2 * curl_y - je * jy.get(i, j, k);
                            sez[at] += dt * c2 * curl_z - je * jz.get(i, j, k);
                        }
                    }
                }
            },
        );
    }
}

/// Elements per z plane of a guarded array.
#[inline]
fn plane_len(arr: &Array3) -> usize {
    let [sx, sy, _] = arr.shape();
    sx * sy
}

/// One Z-slab work item: the slab's guarded-k bounds plus the three
/// output arrays' mutable plane slices for exactly those planes.
type SlabItem<'a> = ((usize, usize), [&'a mut [f64]; 3]);

/// Runs `body` once per Z slab of the *physical* cell range, handing each
/// invocation the slab's guarded-k bounds `(k0, k1)` and the three output
/// arrays' mutable plane slices for exactly those planes.
///
/// Slab bounds come from [`mpic_machine::shard_bounds`] — the same
/// contiguous chunk scheme as every other statically sharded phase —
/// offset by the guard; the slab items are dispatched onto the
/// persistent worker pool per the scheduler policy. Because each output
/// cell is written by exactly one slab and all stencil reads go to
/// shared immutable arrays, results are bit-identical for any worker
/// count or policy.
fn for_each_z_slab<F>(geom: &GridGeometry, exec: Exec<'_>, out: [&mut Array3; 3], body: F)
where
    F: Fn((usize, usize), [&mut [f64]; 3]) + Sync,
{
    let g = geom.guard;
    let nz = geom.n_cells[2];
    let plane = plane_len(out[0]);
    let bounds = mpic_machine::shard_bounds(nz, exec.workers());
    let [a0, a1, a2] = out;
    if bounds.len() <= 1 {
        // Single slab (workers == 1, the default config): run inline
        // with no pool-dispatch overhead. Identical arithmetic — the
        // sharded path is bit-exact per cell regardless.
        if let Some(&(z0, z1)) = bounds.first() {
            let (k0, k1) = (g + z0, g + z1);
            let s0 = &mut a0.as_mut_slice()[k0 * plane..k1 * plane];
            let s1 = &mut a1.as_mut_slice()[k0 * plane..k1 * plane];
            let s2 = &mut a2.as_mut_slice()[k0 * plane..k1 * plane];
            body((k0, k1), [s0, s1, s2]);
        }
        return;
    }
    // Peel each array into per-slab mutable plane slices, in order.
    let mut rest = [a0.as_mut_slice(), a1.as_mut_slice(), a2.as_mut_slice()];
    let mut consumed = 0;
    let mut items: Vec<SlabItem<'_>> = Vec::with_capacity(bounds.len());
    for &(z0, z1) in &bounds {
        let (k0, k1) = (g + z0, g + z1);
        let mut slabs = Vec::with_capacity(3);
        for r in &mut rest {
            let taken = std::mem::take(r);
            let (_, tail) = taken.split_at_mut(k0 * plane - consumed);
            let (slab, tail) = tail.split_at_mut((k1 - k0) * plane);
            *r = tail;
            slabs.push(slab);
        }
        consumed = k1 * plane;
        let slabs: [&mut [f64]; 3] = slabs.try_into().expect("three slabs");
        items.push(((k0, k1), slabs));
    }
    exec.for_each(&mut items, |_, (range, [s0, s1, s2])| {
        body(*range, [&mut **s0, &mut **s1, &mut **s2]);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpic_machine::MachineConfig;

    fn setup(
        kind: SolverKind,
        n: usize,
        cfl: f64,
    ) -> (GridGeometry, FieldArrays, MaxwellSolver, f64) {
        let geom = GridGeometry::new([n, n, n], [0.0; 3], [1.0e-6; 3], 2);
        let fields = FieldArrays::new(&geom);
        let solver = MaxwellSolver::new(kind, &geom);
        let dt = geom.cfl_dt(cfl);
        (geom, fields, solver, dt)
    }

    /// Seeds a z-propagating plane wave Ex/By consistent with c.
    fn seed_plane_wave(geom: &GridGeometry, f: &mut FieldArrays) {
        let g = geom.guard;
        let n = geom.n_cells;
        for k in 0..n[2] {
            let phase = 2.0 * std::f64::consts::PI * k as f64 / n[2] as f64;
            let e = phase.sin();
            for j in 0..n[1] {
                for i in 0..n[0] {
                    f.ex.set(i + g, j + g, k + g, e);
                    f.by.set(i + g, j + g, k + g, -e / C);
                }
            }
        }
        f.fill_guards_periodic();
    }

    #[test]
    fn vacuum_zero_fields_stay_zero() {
        let (geom, mut f, solver, dt) = setup(SolverKind::Yee, 8, 0.9);
        let mut m = Machine::new(MachineConfig::lx2());
        for _ in 0..5 {
            solver.step(&mut m, &geom, &mut f, dt);
        }
        assert_eq!(f.ex.max_abs(), 0.0);
        assert_eq!(f.bz.max_abs(), 0.0);
        assert!(m.counters().cycles(Phase::FieldSolve) > 0.0);
    }

    #[test]
    fn yee_plane_wave_energy_stable() {
        let (geom, mut f, solver, dt) = setup(SolverKind::Yee, 16, 0.5);
        seed_plane_wave(&geom, &mut f);
        let mut m = Machine::new(MachineConfig::lx2());
        let e0 = f.field_energy(&geom);
        for _ in 0..200 {
            solver.step(&mut m, &geom, &mut f, dt);
        }
        let e1 = f.field_energy(&geom);
        assert!((e1 / e0 - 1.0).abs() < 0.05, "energy drifted {e0} -> {e1}");
        assert!(f.ex.max_abs() < 10.0, "unstable");
    }

    #[test]
    fn ckc_stable_at_cfl_one() {
        // CKC's limit is c dt = dx (where Yee already blew up).
        let (geom, mut f, solver, _) = setup(SolverKind::Ckc, 16, 1.0);
        let dt = solver.max_dt(&geom);
        assert!((dt - geom.dx[0] / C).abs() < 1e-20);
        seed_plane_wave(&geom, &mut f);
        let mut m = Machine::new(MachineConfig::lx2());
        let e0 = f.field_energy(&geom);
        for _ in 0..300 {
            solver.step(&mut m, &geom, &mut f, dt);
        }
        let e1 = f.field_energy(&geom);
        assert!(
            (e1 / e0 - 1.0).abs() < 0.05,
            "CKC at CFL=1 must stay stable: {e0} -> {e1}"
        );
    }

    #[test]
    fn yee_unstable_above_cfl_limit() {
        // Yee's 3-D cubic limit is 1/sqrt(3) ~ 0.577 dx/c; at dt = dx/c
        // the diagonal checkerboard mode must blow up. (A pure
        // z-propagating wave would remain marginally stable, so seed
        // full-3D alternating noise.)
        let (geom, mut f, solver, _) = setup(SolverKind::Yee, 16, 0.5);
        let g = geom.guard;
        for k in 0..16 {
            for j in 0..16 {
                for i in 0..16 {
                    let sign = if (i + j + k) % 2 == 0 { 1.0 } else { -1.0 };
                    f.ex.set(i + g, j + g, k + g, sign * 1e-3);
                }
            }
        }
        f.fill_guards_periodic();
        let dt_unstable = geom.dx[0] / C; // CFL = sqrt(3) x limit.
        let mut m = Machine::new(MachineConfig::lx2());
        for _ in 0..300 {
            solver.step(&mut m, &geom, &mut f, dt_unstable);
            if f.ex.max_abs() > 1e3 {
                return; // Blew up as expected.
            }
        }
        panic!("expected instability growth, max {}", f.ex.max_abs());
    }

    #[test]
    fn sharded_step_is_bit_identical_for_any_worker_count_and_policy() {
        for kind in [SolverKind::Yee, SolverKind::Ckc] {
            let (geom, mut base, solver, dt) = setup(kind, 16, 0.5);
            seed_plane_wave(&geom, &mut base);
            base.jx.set(5, 6, 7, 3.0e3); // Current source in the mix.
            base.jz.set(9, 3, 12, -1.0e3);
            let run = |workers: usize, policy: SchedulerPolicy| {
                let mut f = base.clone();
                let mut m = Machine::new(MachineConfig::lx2());
                let pool = WorkerPool::new(workers);
                for _ in 0..5 {
                    solver.step_sharded(&mut m, &geom, &mut f, dt, pool.exec(policy));
                }
                (f, m.counters().cycles(Phase::FieldSolve))
            };
            let (f1, c1) = run(1, SchedulerPolicy::Static);
            for workers in [2usize, 4, 7, 16] {
                for policy in [SchedulerPolicy::Static, SchedulerPolicy::Stealing] {
                    let (fw, cw) = run(workers, policy);
                    for (name, a, b) in [
                        ("ex", &f1.ex, &fw.ex),
                        ("ey", &f1.ey, &fw.ey),
                        ("ez", &f1.ez, &fw.ez),
                        ("bx", &f1.bx, &fw.bx),
                        ("by", &f1.by, &fw.by),
                        ("bz", &f1.bz, &fw.bz),
                    ] {
                        assert!(
                            a.as_slice()
                                .iter()
                                .zip(b.as_slice())
                                .all(|(u, v)| u.to_bits() == v.to_bits()),
                            "{kind:?} {name}: {workers}-worker {policy:?} solve diverged from sequential"
                        );
                    }
                    assert_eq!(
                        c1.to_bits(),
                        cw.to_bits(),
                        "{kind:?} cycles diverged ({workers} workers, {policy:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn current_drives_e_field() {
        let (geom, mut f, solver, dt) = setup(SolverKind::Yee, 8, 0.5);
        let mut m = Machine::new(MachineConfig::lx2());
        f.jz.set(4, 4, 4, 1.0);
        solver.step(&mut m, &geom, &mut f, dt);
        // E_z response: dE = -dt J / eps0.
        let expect = -dt / EPS0;
        assert!((f.ez.get(4, 4, 4) - expect).abs() < 1e-6 * expect.abs());
    }

    #[test]
    fn ckc_coefficients_cubic() {
        let geom = GridGeometry::new([8, 8, 8], [0.0; 3], [1.0e-6; 3], 2);
        let s = MaxwellSolver::new(SolverKind::Ckc, &geom);
        assert!((s.beta[0][1] - 0.125).abs() < 1e-15);
        assert!((s.alpha[0] - 0.5).abs() < 1e-15);
        let y = MaxwellSolver::new(SolverKind::Yee, &geom);
        assert_eq!(y.alpha[0], 1.0);
        assert_eq!(y.beta[0][1], 0.0);
    }
}
