//! Field boundary conditions.
//!
//! The paper's two workloads need: fully periodic boundaries (uniform
//! plasma — handled by the guard exchange in `mpic-grid`), and the LWFA
//! configuration of Table 4: periodic in x/y with PEC + PML along z. The
//! PML is implemented as a graded conductivity damping layer (a standard
//! "pseudo-PML" / masked absorber): each step, field values inside the
//! layer are multiplied by a damping profile that rises polynomially
//! towards the boundary. This absorbs the laser and wake radiation well
//! enough for the performance study, which is what the reproduction
//! needs (the paper does not evaluate absorber quality).

use mpic_grid::{FieldArrays, GridGeometry};

/// Which boundary treatment a simulation applies along z.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryKind {
    /// Fully periodic (uniform plasma workload).
    Periodic,
    /// Absorbing damping layers at both z ends (LWFA workload).
    AbsorbingZ,
}

/// Graded damping layer applied near the z boundaries.
#[derive(Debug, Clone)]
pub struct AbsorbingLayer {
    /// Layer thickness in cells.
    pub thickness: usize,
    /// Peak damping strength per step at the outermost cell (0..1).
    pub strength: f64,
    /// Grading exponent (2-4 typical; higher concentrates damping).
    pub exponent: f64,
}

impl Default for AbsorbingLayer {
    fn default() -> Self {
        Self {
            thickness: 8,
            strength: 0.5,
            exponent: 3.0,
        }
    }
}

impl AbsorbingLayer {
    /// Damping multiplier for a cell `depth` cells inside the layer
    /// (depth 0 = outermost). Returns 1.0 outside the layer.
    pub fn factor(&self, depth: usize) -> f64 {
        if depth >= self.thickness {
            return 1.0;
        }
        let xi = 1.0 - depth as f64 / self.thickness as f64;
        1.0 - self.strength * xi.powf(self.exponent)
    }

    /// Applies the damping to all six field components in the z layers.
    ///
    /// Runs on the calling thread in a fixed plane order: this is part of
    /// the solver's fixed-order boundary/source pass, so field state
    /// after a step is independent of how the stencil sweeps were
    /// sharded.
    pub fn apply(&self, geom: &GridGeometry, f: &mut FieldArrays) {
        let g = geom.guard;
        let n = geom.n_cells;
        for depth in 0..self.thickness.min(n[2]) {
            let fac = self.factor(depth);
            if fac >= 1.0 {
                continue;
            }
            for kk in [g + depth, g + n[2] - 1 - depth] {
                for arr in [
                    &mut f.ex, &mut f.ey, &mut f.ez, &mut f.bx, &mut f.by, &mut f.bz,
                ] {
                    let [sx, sy, _] = arr.shape();
                    for j in 0..sy {
                        for i in 0..sx {
                            let v = arr.get(i, j, kk);
                            arr.set(i, j, kk, v * fac);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_grades_inward() {
        let l = AbsorbingLayer::default();
        assert!(l.factor(0) < l.factor(4));
        assert!(l.factor(0) >= 1.0 - l.strength - 1e-12);
        assert_eq!(l.factor(8), 1.0);
        assert_eq!(l.factor(100), 1.0);
    }

    #[test]
    fn apply_damps_boundary_not_centre() {
        let geom = GridGeometry::new([4, 4, 32], [0.0; 3], [1.0; 3], 2);
        let mut f = FieldArrays::new(&geom);
        f.ex.fill(1.0);
        let layer = AbsorbingLayer::default();
        layer.apply(&geom, &mut f);
        let g = geom.guard;
        assert!(f.ex.get(2, 2, g) < 1.0, "outermost plane damped");
        assert!(f.ex.get(2, 2, g + 31) < 1.0, "far plane damped");
        assert_eq!(f.ex.get(2, 2, g + 16), 1.0, "centre untouched");
    }

    #[test]
    fn repeated_application_converges_to_zero() {
        let geom = GridGeometry::new([2, 2, 16], [0.0; 3], [1.0; 3], 1);
        let mut f = FieldArrays::new(&geom);
        f.ez.fill(1.0);
        let layer = AbsorbingLayer::default();
        for _ in 0..200 {
            layer.apply(&geom, &mut f);
        }
        let g = geom.guard;
        assert!(f.ez.get(0, 0, g).abs() < 1e-10);
    }
}
