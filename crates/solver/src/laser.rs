//! Gaussian laser antenna for the LWFA workload.
//!
//! Injects a linearly-polarised (Ex) pulse from a fixed antenna plane
//! `z = z0` by driving the transverse electric field each step — the
//! standard "hard source" antenna. Parameters mirror Appendix A Table 4:
//! wavelength 0.8 um and normalised amplitude `a0 ~ 1-10`.

use mpic_grid::constants::{C, M_E, Q_E};
use mpic_grid::{FieldArrays, GridGeometry};

/// A Gaussian laser pulse antenna.
#[derive(Debug, Clone)]
pub struct LaserAntenna {
    /// Wavelength (m).
    pub lambda: f64,
    /// Normalised vector potential a0 (dimensionless intensity).
    pub a0: f64,
    /// Pulse duration (s), the Gaussian 1/e half-width in time.
    pub tau: f64,
    /// Time of peak intensity at the antenna (s).
    pub t_peak: f64,
    /// Transverse 1/e^2 waist (m).
    pub waist: f64,
    /// Antenna plane cell index (physical z cell).
    pub z_plane: usize,
}

impl LaserAntenna {
    /// Peak electric field E0 = a0 * m_e c omega / e.
    pub fn e0(&self) -> f64 {
        let omega = 2.0 * std::f64::consts::PI * C / self.lambda;
        self.a0 * M_E * C * omega / Q_E
    }

    /// Antenna field at time `t` and transverse radius `r`.
    pub fn field_at(&self, t: f64, r2: f64) -> f64 {
        let omega = 2.0 * std::f64::consts::PI * C / self.lambda;
        let env_t = (-(t - self.t_peak).powi(2) / (self.tau * self.tau)).exp();
        let env_r = (-r2 / (self.waist * self.waist)).exp();
        self.e0() * env_t * env_r * (omega * t).sin()
    }

    /// Drives the Ex component on the antenna plane at time `t`.
    pub fn inject(&self, geom: &GridGeometry, f: &mut FieldArrays, t: f64) {
        let g = geom.guard;
        let n = geom.n_cells;
        if self.z_plane >= n[2] {
            return;
        }
        let k = g + self.z_plane;
        let cx = geom.lo[0] + 0.5 * geom.extent()[0];
        let cy = geom.lo[1] + 0.5 * geom.extent()[1];
        for j in 0..n[1] {
            let y = geom.lo[1] + (j as f64 + 0.5) * geom.dx[1];
            for i in 0..n[0] {
                let x = geom.lo[0] + (i as f64 + 0.5) * geom.dx[0];
                let r2 = (x - cx).powi(2) + (y - cy).powi(2);
                f.ex.set(i + g, j + g, k, self.field_at(t, r2));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laser() -> LaserAntenna {
        LaserAntenna {
            lambda: 0.8e-6,
            a0: 2.0,
            tau: 10e-15,
            t_peak: 30e-15,
            waist: 4e-6,
            z_plane: 2,
        }
    }

    #[test]
    fn e0_matches_a0_formula() {
        // a0 = 1 at 0.8 um corresponds to ~4.0e12 V/m.
        let mut l = laser();
        l.a0 = 1.0;
        assert!((l.e0() / 4.013e12 - 1.0).abs() < 0.01, "{}", l.e0());
    }

    #[test]
    fn envelope_peaks_at_t_peak_and_axis() {
        let l = laser();
        let on_peak = l.field_at(l.t_peak + l.lambda / C / 4.0, 0.0).abs();
        let off_peak = l.field_at(l.t_peak + 5.0 * l.tau, 0.0).abs();
        let off_axis = l
            .field_at(l.t_peak + l.lambda / C / 4.0, (3.0 * l.waist).powi(2))
            .abs();
        assert!(on_peak > 10.0 * off_peak);
        assert!(on_peak > 10.0 * off_axis);
    }

    #[test]
    fn inject_writes_only_antenna_plane() {
        let geom = GridGeometry::new([8, 8, 16], [0.0; 3], [0.5e-6; 3], 2);
        let mut f = FieldArrays::new(&geom);
        let l = laser();
        l.inject(&geom, &mut f, l.t_peak);
        let g = geom.guard;
        let plane_sum: f64 = (0..8)
            .flat_map(|j| (0..8).map(move |i| (i, j)))
            .map(|(i, j)| f.ex.get(i + g, j + g, g + 2).abs())
            .sum();
        assert!(plane_sum > 0.0);
        assert_eq!(f.ex.get(g + 4, g + 4, g + 8), 0.0);
        assert_eq!(f.ey.max_abs(), 0.0);
    }
}
