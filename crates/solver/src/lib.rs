//! Maxwell field solvers and boundary machinery for Matrix-PIC.
//!
//! Implements the grid-side substrate of the paper's WarpX host: the
//! standard Yee FDTD solver and the Cole-Karkkainen-Cowan (CKC) extended
//! stencil the paper configures (`algo.maxwell_solver = ckc` with
//! `warpx.cfl = 1.0` — CKC is stable at CFL 1 on cubic cells where plain
//! Yee is not), plus the boundary conditions of Appendix A Table 4:
//! periodic in all axes for uniform plasma, and a z-absorbing damping
//! layer (pseudo-PML) with a Gaussian laser antenna for LWFA.

pub mod boundary;
pub mod laser;
pub mod maxwell;

pub use boundary::{AbsorbingLayer, BoundaryKind};
pub use laser::LaserAntenna;
pub use maxwell::{MaxwellSolver, SolverKind};
