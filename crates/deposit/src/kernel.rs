//! The deposition-kernel abstraction and the per-step driver.
//!
//! A [`DepositionKernel`] consumes one tile's staged particles and
//! produces current either directly on the grid (the WarpX-style baseline)
//! or into the tile's [`Rhocell`] accumulator (all rhocell/MPU kernels;
//! the driver then runs the common reduction). The [`Depositor`] driver
//! owns the sorting strategy, the address map and the orchestration of
//! Algorithm 1's phases, charging each to its [`Phase`] bucket.

use mpic_grid::{Array3, FieldArrays, GridGeometry, Tile, TileLayout};
use mpic_machine::{Exec, Machine, Phase, SchedulerPolicy, VAddr, WorkerPool};
use mpic_particles::{MoveStats, ParticleContainer, SortPolicy, SortStats};

use crate::common::{
    stage_tile, AddrMap, PrepStyle, Staging, TileCurrents, TileScratch, TouchedNodes,
};
use crate::rhocell::Rhocell;
use crate::shape::ShapeOrder;

/// Where a kernel writes its output for one tile.
pub enum TileOutput<'a> {
    /// Direct scatter onto per-worker private current accumulators (the
    /// cache model is still priced against the *global* array bases in
    /// `j_addr`, so the emulated cost is that of a true grid scatter).
    Grid {
        /// Current array bases for the cache model.
        j_addr: [VAddr; 3],
        /// The worker's private guarded current accumulators.
        jx: &'a mut Array3,
        /// The worker's private guarded current accumulators.
        jy: &'a mut Array3,
        /// The worker's private guarded current accumulators.
        jz: &'a mut Array3,
        /// Records every accumulator node the kernel writes, in
        /// first-touch order, so the driver can extract (and re-zero) the
        /// tile's sparse output deterministically.
        touched: &'a mut TouchedNodes,
    },
    /// Accumulation into the tile's rhocell (reduced by the driver).
    Rho {
        /// Rhocell base address.
        rho_addr: VAddr,
        /// The tile accumulator.
        rho: &'a mut Rhocell,
    },
}

/// Per-tile context handed to kernels.
pub struct TileCtx<'a> {
    /// Grid geometry.
    pub geom: &'a GridGeometry,
    /// The tile being deposited.
    pub tile: &'a Tile,
    /// Shape order in use.
    pub order: ShapeOrder,
    /// Staging scratch base address.
    pub staging_addr: VAddr,
    /// Whether the kernel should take its cell-run batched path:
    /// accumulate each same-cell particle run into a stack-resident
    /// stencil block and touch the tile accumulator once per run. Only
    /// set when the sorting strategy guarantees cell-grouped staging
    /// order (unsorted input falls back to the per-particle reference
    /// sweep — run batching cannot amortise length-1 runs).
    pub batched: bool,
    /// Whether the batched path should run its lane-parallel (SIMD)
    /// inner loops: `W`-wide node chunks in the run-block accumulation,
    /// state-free streamed pricing of the staging loads and rhocell
    /// accumulate passes, and the fused rhocell→grid reduction charge.
    /// Only ever set together with `batched` (the per-particle path has
    /// no runs to chunk). Deposited values are bit-identical to the
    /// batched-scalar path; the memory-bound phase charges (Preprocess,
    /// Compute on rhocell kernels, Reduce) are strictly cheaper under
    /// the streaming prices. See `SimConfig::simd`.
    pub simd: bool,
}

/// A current-deposition kernel variant.
///
/// `Send + Sync` because the parallel tile pipeline shares one kernel
/// instance across worker threads; kernels are stateless configuration
/// structs, so this costs nothing.
pub trait DepositionKernel: Send + Sync {
    /// Human-readable configuration name (matches the paper's tables).
    fn name(&self) -> &'static str;

    /// How the staging loop is executed.
    fn prep_style(&self) -> PrepStyle;

    /// Whether the kernel writes through a rhocell accumulator
    /// (if false it scatters straight onto the grid).
    fn uses_rhocell(&self) -> bool;

    /// Deposits one tile's staged particles.
    fn deposit_tile(&self, m: &mut Machine, ctx: &TileCtx, st: &Staging, out: &mut TileOutput);
}

/// Sorting strategy wrapped around the kernel (orthogonal to the kernel
/// itself, matching the paper's `+IncrSort` / `GlobalSort` suffixes).
#[derive(Debug, Clone)]
pub enum SortStrategy {
    /// Particles stay in SoA order (baseline, `Hybrid-noSort`).
    None,
    /// Incremental GPMA maintenance each step; global re-sort governed by
    /// the adaptive policy.
    Incremental(SortPolicy),
    /// Full counting sort every timestep (`Hybrid-GlobalSort`).
    GlobalEveryStep,
}

impl SortStrategy {
    /// Whether kernels observe cell-sorted iteration order.
    pub fn provides_sorted_order(&self) -> bool {
        !matches!(self, SortStrategy::None)
    }
}

/// Sorting work performed in one step (for logs and tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct StepSortReport {
    /// GPMA stats merged across tiles.
    pub gpma: MoveStats,
    /// Particles scanned by the incremental sweep.
    pub scanned: usize,
    /// Counting-sort stats if a global sort ran.
    pub global: Option<SortStats>,
    /// Whether the adaptive policy requested the global sort.
    pub policy_triggered: bool,
}

/// The per-step deposition driver.
pub struct Depositor {
    kernel: Box<dyn DepositionKernel>,
    strategy: SortStrategy,
    addrs: Option<AddrMap>,
    rhocells: Vec<Rhocell>,
    order: ShapeOrder,
    /// Whether kernels run their cell-run batched hot path (see
    /// [`Depositor::set_batching`]).
    batching: bool,
    /// Whether the batched path runs its lane-parallel inner loops (see
    /// [`Depositor::set_simd`]).
    simd: bool,
    /// Per-worker reusable tile buffers (index = worker id).
    scratch: Vec<TileScratch>,
    /// Per-tile sparse outputs of direct-scatter kernels (index = tile).
    tile_currents: Vec<TileCurrents>,
}

impl Depositor {
    /// Creates a driver for a kernel and sorting strategy.
    pub fn new(
        kernel: Box<dyn DepositionKernel>,
        strategy: SortStrategy,
        order: ShapeOrder,
    ) -> Self {
        Self {
            kernel,
            strategy,
            addrs: None,
            rhocells: Vec::new(),
            order,
            batching: false,
            simd: false,
            scratch: Vec::new(),
            tile_currents: Vec::new(),
        }
    }

    /// Kernel configuration name.
    pub fn name(&self) -> &'static str {
        self.kernel.name()
    }

    /// Selects the cell-run batched kernel paths (`SimConfig::batching`).
    ///
    /// Batching only engages when the sorting strategy provides
    /// cell-grouped iteration order; with an unsorted strategy the
    /// per-particle reference sweep runs regardless of this flag, so
    /// enabling batching on an unsorted configuration is a no-op rather
    /// than a correctness hazard.
    pub fn set_batching(&mut self, batching: bool) {
        self.batching = batching;
    }

    /// Whether the batched kernel paths are selected.
    pub fn batching(&self) -> bool {
        self.batching
    }

    /// Selects the lane-parallel (SIMD) inner loops of the batched
    /// kernel paths (`SimConfig::simd`). ANDed with batching: the flag
    /// engages only where a cell-run batched sweep runs at all, so
    /// `simd` without `batching` (or on an unsorted strategy) is a
    /// no-op, and the per-particle path stays the bitwise reference.
    pub fn set_simd(&mut self, simd: bool) {
        self.simd = simd;
    }

    /// Whether the lane-parallel batched inner loops are selected.
    pub fn simd(&self) -> bool {
        self.simd
    }

    /// Shape order in use.
    pub fn order(&self) -> ShapeOrder {
        self.order
    }

    /// The sorting strategy.
    pub fn strategy(&self) -> &SortStrategy {
        &self.strategy
    }

    /// The address map allocated by [`Depositor::prepare`], if any.
    ///
    /// The map pins the virtual addresses the cache model prices, so a
    /// checkpoint must capture it: restoring onto a rebuilt driver with
    /// a different map would shift every modelled address stream.
    pub fn addr_map(&self) -> Option<&AddrMap> {
        self.addrs.as_ref()
    }

    /// Reinstates an address map captured via [`Depositor::addr_map`]
    /// (checkpoint restore). The driver must already have been prepared
    /// on an identical configuration — only the addresses are replaced;
    /// rhocells and scratch pools are geometry-derived and keep their
    /// prepared state.
    pub fn restore_addr_map(&mut self, addrs: AddrMap) {
        self.addrs = Some(addrs);
    }

    /// One-time initialisation: allocates the address map, builds the
    /// rhocell accumulators and performs the initial global sort
    /// (Algorithm 1's `GlobalSortParticlesByCell`) when the strategy
    /// maintains sorted order.
    pub fn prepare(
        &mut self,
        m: &mut Machine,
        geom: &GridGeometry,
        layout: &TileLayout,
        container: &mut ParticleContainer,
    ) {
        let dims = geom.dims_with_guard();
        let grid_len = dims[0] * dims[1] * dims[2];
        let caps: Vec<usize> = container
            .tiles
            .iter()
            .map(|t| t.soa.slots().max(8))
            .collect();
        let rho_len = layout
            .iter()
            .map(|t| 3 * t.num_cells() * self.order.nodes_3d())
            .max()
            .unwrap_or(0);
        self.addrs = Some(AddrMap::new(m, grid_len, &caps, rho_len));
        self.rhocells = layout
            .iter()
            .map(|t| Rhocell::new(self.order, t.num_cells()))
            .collect();
        if self.strategy.provides_sorted_order() {
            let stats = container.global_sort(layout, geom);
            m.in_phase(Phase::Sort, |m| charge_global_sort(m, &stats));
            container.reset_counters();
        }
    }

    /// Runs the sorting phase for this step, returning the work report.
    /// `force_global` lets the caller's policy escalate to a global sort.
    /// Single-worker convenience wrapper around
    /// [`Depositor::sort_step_parallel`].
    pub fn sort_step(
        &mut self,
        m: &mut Machine,
        geom: &GridGeometry,
        layout: &TileLayout,
        container: &mut ParticleContainer,
        force_global: bool,
    ) -> StepSortReport {
        let pool = WorkerPool::sequential();
        self.sort_step_parallel(
            m,
            geom,
            layout,
            container,
            force_global,
            pool.exec(SchedulerPolicy::Static),
        )
    }

    /// [`Depositor::sort_step`] with any global counting sort sharded
    /// across the persistent worker pool. The particle order, the
    /// [`StepSortReport`] and the emulated [`Phase::Sort`] charge are
    /// identical for every worker count and scheduler policy: the
    /// sharded sort reproduces the sequential permutation exactly and
    /// the cost model is driven by the workload-shaped [`SortStats`],
    /// not by host threading.
    pub fn sort_step_parallel(
        &mut self,
        m: &mut Machine,
        geom: &GridGeometry,
        layout: &TileLayout,
        container: &mut ParticleContainer,
        force_global: bool,
        exec: Exec<'_>,
    ) -> StepSortReport {
        let mut report = StepSortReport::default();
        match &self.strategy {
            SortStrategy::None => {
                // Even the unsorted baseline redistributes particles to
                // their owning tiles every step (WarpX's `Redistribute`);
                // this is ownership maintenance, not sorting, so it is
                // charged to `Other` rather than the kernel's sort time.
                // SoA iteration order is untouched, so kernels still see
                // unsorted particles.
                let (stats, _) = container.incremental_sort(layout, geom);
                m.in_phase(Phase::Other, |m| charge_gpma(m, &stats));
            }
            SortStrategy::GlobalEveryStep => {
                let stats = container.global_sort_parallel(layout, geom, exec);
                m.in_phase(Phase::Sort, |m| charge_global_sort(m, &stats));
                report.global = Some(stats);
            }
            SortStrategy::Incremental(_) => {
                let addrs = self.addrs.as_ref().expect("prepare() not called");
                // The lane-parallel mode prices this sweep — three
                // unit-stride position streams — by the state-free
                // streaming model like every other memory-bound phase;
                // the scalar mode walks the cache simulator.
                let simd = self.simd && self.batching;
                // Stream-touch the position arrays: the sweep reads x,y,z
                // of every particle (VPU-vectorised, Algorithm 1 line 13).
                m.in_phase(Phase::Sort, |m| {
                    for (t, tile) in container.tiles.iter().enumerate() {
                        let n = tile.soa.slots();
                        // Roofline footprint of one position array: the
                        // sweep spans the tile's whole slot range.
                        let footprint = (n * 8) as u64;
                        let mut p = 0;
                        while p < n {
                            for d in 0..3 {
                                let a = addrs.soa[t][d].offset_f64(p);
                                if simd {
                                    m.v_touch_load_streamed(a, 8, footprint);
                                } else {
                                    m.v_touch_load(a, 8);
                                }
                            }
                            m.v_ops(4); // Cell compare + mask bookkeeping.
                            p += 8;
                        }
                    }
                });
                let (stats, scanned) = container.incremental_sort(layout, geom);
                m.in_phase(Phase::Sort, |m| charge_gpma(m, &stats));
                report.gpma = stats;
                report.scanned = scanned;
                if force_global {
                    let gstats = container.global_sort_parallel(layout, geom, exec);
                    m.in_phase(Phase::Sort, |m| charge_global_sort(m, &gstats));
                    report.global = Some(gstats);
                    report.policy_triggered = true;
                    container.reset_counters();
                }
            }
        }
        report
    }

    /// Runs staging, the kernel and (if applicable) the rhocell reduction
    /// for every tile, writing current onto `fields`. Single-worker
    /// convenience wrapper around [`Depositor::deposit_step_parallel`].
    pub fn deposit_step(
        &mut self,
        m: &mut Machine,
        geom: &GridGeometry,
        layout: &TileLayout,
        container: &ParticleContainer,
        fields: &mut FieldArrays,
    ) {
        let pool = WorkerPool::sequential();
        self.deposit_step_parallel(
            m,
            geom,
            layout,
            container,
            fields,
            pool.exec(SchedulerPolicy::Static),
        );
    }

    /// The parallel tile pipeline: shards tiles across the persistent
    /// worker pool for staging, the kernel sweep and the reduction
    /// *cost* charging, then applies every tile's output onto the grid
    /// sequentially in tile order.
    ///
    /// Each tile executes on a forked worker machine whose cache is
    /// flushed at the tile boundary — the model of one tile per core with
    /// a private, initially cold cache — and its counter deltas are
    /// drained per tile and merged back in tile order. Both the grid
    /// currents and the emulated per-phase cycle totals are therefore
    /// bit-identical for any worker count or scheduler policy (see
    /// `tests/parallel_determinism.rs`).
    ///
    /// Rhocell kernels (`uses_rhocell() == true`) accumulate into the
    /// tile's private rhocell; direct-scatter kernels accumulate into the
    /// worker's private dense current arrays, extracted per tile into a
    /// sparse [`TileCurrents`] in first-touch node order. Both outputs
    /// are pure functions of the tile, so the fixed-order apply pass
    /// makes the fields independent of how tiles were sharded.
    pub fn deposit_step_parallel(
        &mut self,
        m: &mut Machine,
        geom: &GridGeometry,
        layout: &TileLayout,
        container: &ParticleContainer,
        fields: &mut FieldArrays,
        exec: Exec<'_>,
    ) {
        fields.clear_currents();
        let addrs = self.addrs.as_ref().expect("prepare() not called");
        let sorted = self.strategy.provides_sorted_order();
        // Unsorted-input fallback: run batching needs cell-grouped
        // staging order, so the knob only engages on sorted strategies.
        let batched = self.batching && sorted;
        // SIMD only exists inside the batched sweeps; per-particle mode
        // ignores the knob entirely.
        let simd = self.simd && batched;
        let j_addr = [addrs.jx, addrs.jy, addrs.jz];
        let n_tiles = container.tiles.len();
        let workers = exec.workers().clamp(1, n_tiles.max(1));
        if self.scratch.len() < workers {
            self.scratch.resize_with(workers, TileScratch::default);
        }
        let order = self.order;
        let kernel: &dyn DepositionKernel = &*self.kernel;

        if kernel.uses_rhocell() {
            let counters = exec.run_counted(
                m,
                &mut self.rhocells,
                &mut self.scratch,
                |wm, t, rho, scratch| {
                    deposit_tile_worker(
                        wm, kernel, order, sorted, batched, simd, geom, layout, container, addrs,
                        j_addr, t, rho, scratch,
                    );
                },
            );
            // Fixed-order merges: tile-order counter absorption, then
            // tile-order grid application — both independent of sharding.
            for c in &counters {
                m.absorb_counters(c);
            }
            for (t, rho) in self.rhocells.iter().enumerate() {
                if container.tiles[t].is_empty() {
                    continue;
                }
                rho.apply_to_grid(
                    geom,
                    layout.tile(t),
                    &mut fields.jx,
                    &mut fields.jy,
                    &mut fields.jz,
                );
            }
        } else {
            // Direct-scatter path: same per-tile worker model, with the
            // scatter stream landing in per-worker private accumulators.
            if self.tile_currents.len() < n_tiles {
                self.tile_currents
                    .resize_with(n_tiles, TileCurrents::default);
            }
            let counters = exec.run_counted(
                m,
                &mut self.tile_currents[..n_tiles],
                &mut self.scratch,
                |wm, t, tj, scratch| {
                    scatter_tile_worker(
                        wm, kernel, order, sorted, batched, simd, geom, layout, container, addrs,
                        j_addr, t, tj, scratch,
                    );
                },
            );
            for c in &counters {
                m.absorb_counters(c);
            }
            for tj in &self.tile_currents[..n_tiles] {
                tj.apply_to_grid(&mut fields.jx, &mut fields.jy, &mut fields.jz);
            }
        }
    }
}

/// Stages one tile into the worker's pooled buffers: collects the
/// iteration order (GPMA-sorted or raw live slots) and runs the charged
/// preprocessing sweep.
fn stage_tile_scratch(
    wm: &mut Machine,
    order: ShapeOrder,
    sorted: bool,
    simd: bool,
    geom: &GridGeometry,
    tile: &Tile,
    container: &ParticleContainer,
    addrs: &AddrMap,
    t: usize,
    kernel: &dyn DepositionKernel,
    scratch: &mut TileScratch,
) {
    let ptile = &container.tiles[t];
    scratch.iteration.clear();
    if sorted {
        scratch
            .iteration
            .extend(ptile.gpma.iter_sorted().map(|(_, p)| p));
    } else {
        scratch.iteration.extend(ptile.soa.live_indices());
    }
    stage_tile(
        wm,
        geom,
        tile,
        order,
        container.charge,
        &ptile.soa,
        &scratch.iteration,
        &addrs.soa[t],
        addrs.staging,
        kernel.prep_style(),
        simd,
        &mut scratch.staging,
    );
}

/// Processes one tile end-to-end on a worker: per-tile cold cache, then
/// staging, the kernel sweep into the tile's private rhocell, and the
/// reduction cost charge. Grid values are *not* written here — the
/// orchestrator applies rhocells in tile order afterwards.
fn deposit_tile_worker(
    wm: &mut Machine,
    kernel: &dyn DepositionKernel,
    order: ShapeOrder,
    sorted: bool,
    batched: bool,
    simd: bool,
    geom: &GridGeometry,
    layout: &TileLayout,
    container: &ParticleContainer,
    addrs: &AddrMap,
    j_addr: [VAddr; 3],
    t: usize,
    rho: &mut Rhocell,
    scratch: &mut TileScratch,
) {
    if container.tiles[t].is_empty() {
        return;
    }
    wm.mem().flush_cache();
    let tile = layout.tile(t);
    stage_tile_scratch(
        wm, order, sorted, simd, geom, tile, container, addrs, t, kernel, scratch,
    );
    let ctx = TileCtx {
        geom,
        tile,
        order,
        staging_addr: addrs.staging,
        batched,
        simd,
    };
    rho.clear();
    {
        let mut out = TileOutput::Rho {
            rho_addr: addrs.rhocell[t],
            rho: &mut *rho,
        };
        kernel.deposit_tile(wm, &ctx, &scratch.staging, &mut out);
    }
    // The SIMD mode folds all three components per cell in one fused
    // traversal; the scalar mode sweeps per component. Same functional
    // result (values are applied in `apply_to_grid` either way) — only
    // the Reduce-phase charge differs.
    if simd {
        rho.charge_reduction_fused(wm, geom, tile, addrs.rhocell[t], j_addr);
    } else {
        rho.charge_reduction(wm, geom, tile, addrs.rhocell[t], j_addr);
    }
}

/// Processes one tile end-to-end on a worker for a direct-scatter
/// kernel: per-tile cold cache, staging, then the kernel's scatter sweep
/// into the worker's private dense accumulators. The touched nodes are
/// extracted into the tile's sparse [`TileCurrents`] (first-touch order)
/// and the accumulators re-zeroed, leaving the output a pure function of
/// the tile. Grid values are *not* written here — the orchestrator
/// applies tile outputs in tile order afterwards.
fn scatter_tile_worker(
    wm: &mut Machine,
    kernel: &dyn DepositionKernel,
    order: ShapeOrder,
    sorted: bool,
    batched: bool,
    simd: bool,
    geom: &GridGeometry,
    layout: &TileLayout,
    container: &ParticleContainer,
    addrs: &AddrMap,
    j_addr: [VAddr; 3],
    t: usize,
    tj: &mut TileCurrents,
    scratch: &mut TileScratch,
) {
    tj.clear();
    if container.tiles[t].is_empty() {
        return;
    }
    wm.mem().flush_cache();
    let tile = layout.tile(t);
    stage_tile_scratch(
        wm, order, sorted, simd, geom, tile, container, addrs, t, kernel, scratch,
    );
    let ctx = TileCtx {
        geom,
        tile,
        order,
        staging_addr: addrs.staging,
        batched,
        simd,
    };
    let dims = geom.dims_with_guard();
    // Disjoint field borrows: the kernel reads `staging` while writing
    // the accumulators and the touched tracker.
    let TileScratch {
        staging,
        accum,
        touched,
        ..
    } = scratch;
    if accum.as_ref().is_none_or(|a| a[0].shape() != dims) {
        *accum = Some(std::array::from_fn(|_| {
            mpic_grid::Array3::zeros(dims[0], dims[1], dims[2])
        }));
    }
    let [jx, jy, jz] = accum.as_mut().unwrap();
    touched.reset(jx.len());
    {
        let mut out = TileOutput::Grid {
            j_addr,
            jx,
            jy,
            jz,
            touched,
        };
        kernel.deposit_tile(wm, &ctx, &*staging, &mut out);
    }
    // Dense -> sparse extraction; re-zeroing only the touched nodes keeps
    // the accumulators clean for the worker's next tile.
    for &i in &touched.idx {
        tj.idx.push(i);
        for (comp, arr) in [&mut *jx, &mut *jy, &mut *jz].into_iter().enumerate() {
            let slot = &mut arr.as_mut_slice()[i];
            tj.j[comp].push(*slot);
            *slot = 0.0;
        }
    }
}

/// Charges the cost of a global counting sort.
///
/// A counting sort's permutation pass gathers every attribute from a
/// *random* source slot (the pre-sort order) and streams it to the
/// destination: the gathers dominate, costing roughly a quarter of the
/// random-access DRAM latency each under memory-level parallelism. This
/// is what makes `Hybrid-GlobalSort` (a full sort every step) lose to
/// the incremental sorter at scale — Figure 10's central observation.
fn charge_global_sort(m: &mut Machine, stats: &SortStats) {
    let n = stats.n as f64;
    // Histogram + prefix sum + permutation index pass.
    m.s_ops(op_count(6.0 * n));
    // 7 attribute arrays re-gathered (random read) + streamed out.
    let rand_read = m.cfg().dram_cy * 0.25;
    let stream_write = m.cfg().dram_cy * 0.15 / 8.0;
    m.charge(n * 7.0 * (rand_read + stream_write + 0.25));
    m.v_ops(op_count(7.0 * n / 8.0));
}

/// Float-derived operation count as a `usize`, with the domain pinned
/// before the conversion (mpic-lint L5: a bare expression-position cast
/// truncates NaN to zero and saturates overflow, both silently).
#[inline]
fn op_count(x: f64) -> usize {
    debug_assert!(
        x.is_finite() && (0.0..=u32::MAX as f64).contains(&x),
        "op count {x} outside the convertible domain"
    );
    x as usize
}

/// Charges the GPMA maintenance work reported by the sweep.
fn charge_gpma(m: &mut Machine, s: &MoveStats) {
    // Queue handling + index updates: ~8 scalar ops per applied move.
    m.s_ops(8 * s.moves_applied);
    // Deletions and O(1) inserts are a handful of ops each.
    m.s_ops(4 * (s.deletions + s.insertions));
    // Borrow shifts relocate one index entry each.
    m.s_ops(6 * s.borrow_shifts + s.bins_scanned);
    // Rebuilds re-lay-out every particle of the tile.
    m.s_ops(4 * s.rebuild_particles);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_sorted_order() {
        assert!(!SortStrategy::None.provides_sorted_order());
        assert!(SortStrategy::GlobalEveryStep.provides_sorted_order());
        assert!(SortStrategy::Incremental(SortPolicy::default()).provides_sorted_order());
    }
}
