//! Current-deposition kernels for Matrix-PIC: the paper's primary
//! contribution.
//!
//! The crate provides:
//!
//! * B-spline shape functions of orders 1-3 ([`shape`]);
//! * the rhocell conflict-free accumulator and its grid reduction
//!   ([`rhocell`]);
//! * a family of deposition kernels behind the [`kernel::DepositionKernel`]
//!   trait — the WarpX-style direct-scatter baseline ([`scalar`]), the
//!   compiler-vectorised and hand-tuned VPU rhocell kernels
//!   ([`rhocell_vec`]), and the hybrid VPU-MPU MatrixPIC kernel
//!   ([`matrix`]);
//! * the per-step driver ([`kernel::Depositor`]) that wires sorting
//!   strategies (none / incremental GPMA / global-every-step) around any
//!   kernel; and
//! * the named configuration registry ([`configs::KernelConfig`]) mapping
//!   the paper's table rows to runnable drivers.
//!
//! Every kernel is validated against the pure scalar reference
//! ([`scalar::reference_deposit`]); see `tests/equivalence.rs`.

pub mod common;
pub mod configs;
pub mod kernel;
pub mod matrix;
pub mod rhocell;
pub mod rhocell_vec;
pub mod scalar;
pub mod shape;

pub use common::{
    stage_particle, velocity_from_u, AddrMap, PrepStyle, Staged, Staging, TileScratch,
};
pub use configs::KernelConfig;
pub use kernel::{DepositionKernel, Depositor, SortStrategy, StepSortReport};
pub use matrix::MatrixKernel;
pub use rhocell::Rhocell;
pub use rhocell_vec::RhocellKernel;
pub use scalar::{reference_deposit, BaselineKernel};
pub use shape::{canonical_flops_per_particle, ShapeOrder};
